// Command graphgen generates the study's synthetic workloads as files:
// power-law, R-MAT and Erdős–Rényi edge lists, bipartite rating graphs,
// and UAI MRFs for the graphical-model algorithms.
//
//	graphgen -kind powerlaw -edges 100000 -alpha 2.5 -out g.el
//	graphgen -kind bipartite -edges 50000 -alpha 2.2 -out ratings.el
//	graphgen -kind mrf -edges 1056 -out pic.uai
//	graphgen -kind grid -rows 100 -out grid.uai
package main

import (
	"flag"
	"fmt"
	"os"

	"gcbench"
)

var (
	kind  = flag.String("kind", "powerlaw", "powerlaw | bipartite | mrf | grid | rmat | er")
	scale = flag.Int("scale", 14, "log2 vertex count (rmat)")
	verts = flag.Int("vertices", 10000, "vertex count (er)")
	edges = flag.Int64("edges", 100000, "target edge count (powerlaw, bipartite, mrf)")
	alpha = flag.Float64("alpha", 2.5, "power-law exponent")
	rows  = flag.Int("rows", 100, "grid side (grid)")
	seed  = flag.Uint64("seed", 1, "random seed")
	out   = flag.String("out", "", "output path (default stdout)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *kind {
	case "powerlaw":
		g, err := gcbench.PowerLaw(gcbench.PowerLawConfig{
			NumEdges: *edges, Alpha: *alpha, Seed: *seed, SortAdjacency: true,
		})
		if err != nil {
			return err
		}
		return gcbench.WriteEdgeList(w, g)
	case "bipartite":
		g, users, err := gcbench.Bipartite(gcbench.BipartiteConfig{
			NumEdges: *edges, Alpha: *alpha, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "users: %d (vertices [0,%d) are users, rest items)\n", users, users)
		return gcbench.WriteEdgeList(w, g)
	case "mrf":
		m, err := gcbench.RandomMRF(gcbench.MRFConfig{NumEdges: *edges, Seed: *seed})
		if err != nil {
			return err
		}
		return gcbench.WriteUAI(w, m)
	case "grid":
		m, err := gcbench.Grid(gcbench.GridConfig{Rows: *rows, Seed: *seed})
		if err != nil {
			return err
		}
		return gcbench.WriteUAI(w, m)
	case "rmat":
		g, err := gcbench.RMAT(gcbench.RMATConfig{
			Scale: *scale, NumEdges: *edges, Seed: *seed, SortAdjacency: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "degree CV: %.2f\n", gcbench.DegreeCV(g))
		return gcbench.WriteEdgeList(w, g)
	case "er":
		g, err := gcbench.ErdosRenyi(gcbench.ErdosRenyiConfig{
			NumVertices: *verts, NumEdges: *edges, Seed: *seed, SortAdjacency: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "degree CV: %.2f\n", gcbench.DegreeCV(g))
		return gcbench.WriteEdgeList(w, g)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}
