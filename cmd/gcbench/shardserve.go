package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gcbench"
)

// cmdShardServe runs ONE shard replica as its own OS process:
//
//	gcbench shard-serve -listen 127.0.0.1:9301 -shard 0
//
// The process serves the shard wire protocol (POST /rpc/info|get|
// select|publish, GET /healthz) and holds no corpus until the
// coordinator publishes its partition — a fresh process is version 0
// and rejoins above the epoch fence on its first publish. Normally
// spawned by `gcbench serve -shard-spawn` (which also supervises and
// restarts it), but it can be started by hand or by an init system and
// pointed at with `gcbench serve -shard-addrs`.
func cmdShardServe(args []string) error {
	fs := flag.NewFlagSet("shard-serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "shard RPC listen address")
	shardID := fs.Int("shard", 0, "shard index this process serves")
	vb := verbosityFlags(fs)
	fs.Parse(args)
	vb.setup()

	if *shardID < 0 {
		return fmt.Errorf("shard-serve: -shard must be ≥ 0, got %d", *shardID)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gcbench.ShardRPCHandler(gcbench.NewProcessShard(*shardID))}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	slog.Info("shard replica serving", "shard", *shardID, "addr", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

// parseShardAddrs parses the -shard-addrs topology string: shard groups
// separated by ';', replica endpoints within a group by ','. E.g.
// "h:1,h:2;h:3,h:4" is 2 shards × 2 replicas.
func parseShardAddrs(spec string) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(spec, ";") {
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-shard-addrs: empty shard group in %q", spec)
		}
		groups = append(groups, addrs)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("-shard-addrs: no shards in %q", spec)
	}
	return groups, nil
}

// wireClients builds the per-shard logical clients for a wire topology:
// one RemoteShard per replica endpoint, aggregated per shard by a
// ReplicaSet (failover reads, fan-out publish).
func wireClients(groups [][]string) ([]gcbench.ShardClient, error) {
	clients := make([]gcbench.ShardClient, len(groups))
	for i, addrs := range groups {
		replicas := make([]gcbench.ShardClient, len(addrs))
		for j, addr := range addrs {
			replicas[j] = gcbench.NewRemoteShard(addr, gcbench.RemoteShardOptions{Shard: i})
		}
		rs, err := gcbench.NewShardReplicaSet(i, replicas, nil)
		if err != nil {
			return nil, err
		}
		clients[i] = rs
	}
	return clients, nil
}

// freeLoopbackAddrs reserves n distinct loopback TCP addresses by
// binding and releasing them. The supervisor pins each shard process to
// its address, so a restart rebinds the same port and the coordinator's
// clients reconnect without re-wiring.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// spawnWireCluster launches shards×replicas `gcbench shard-serve`
// child processes under a supervisor, waits for them to come up, and
// returns the supervisor plus the per-shard topology. The caller wires
// the restore hook (Cluster.Rehydrate) once the cluster exists.
func spawnWireCluster(ctx context.Context, shards, replicas int) (*gcbench.ShardSupervisor, [][]string, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	addrs, err := freeLoopbackAddrs(shards * replicas)
	if err != nil {
		return nil, nil, err
	}
	groups := make([][]string, shards)
	specs := make([]gcbench.ShardProcSpec, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			addr := addrs[s*replicas+r]
			groups[s] = append(groups[s], addr)
			specs = append(specs, gcbench.ShardProcSpec{Shard: s, Replica: r, Addr: addr})
		}
	}
	sup, err := gcbench.NewShardSupervisor(specs, gcbench.ShardSupervisorOptions{
		Binary: self,
		Args: func(spec gcbench.ShardProcSpec) []string {
			return []string{"shard-serve", "-listen", spec.Addr, "-shard", strconv.Itoa(spec.Shard)}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := sup.Start(ctx); err != nil {
		return nil, nil, err
	}
	return sup, groups, nil
}
