// Command gcbench drives the full reproduction workflow:
//
//	gcbench plan    [-profile standard]                 # print the Table 2 campaign
//	gcbench sweep   [-profile standard] [-out runs.json] # execute it, save the corpus
//	gcbench sweep   -resume runs.json.journal            # finish an interrupted campaign
//	gcbench sweep   -timeout 90s -retries 2              # per-run budget + bounded retry
//	gcbench sweep   -listen :9090                        # live /metrics /statusz /healthz /debug/pprof
//	gcbench sweep   -models gas,pregel,xstream,graphcentric # multi-model campaign (or -models all)
//	gcbench run     -alg PR [-edges 100000] [-alpha 2.5] # one instrumented computation
//	gcbench run     -alg PR -model pregel                # same computation under another execution model
//	gcbench run     -alg PR -tracefile pr.trace.json     # + Chrome trace-event phase spans
//	gcbench figures [-runs runs.json] [-fig all|N|tableN] # regenerate figures/tables
//	gcbench ensemble [-runs runs.json] [-size 10]        # best spread/coverage ensembles
//	gcbench serve   [-runs runs.json] [-listen :8080]    # corpus + ensemble design HTTP API
//	gcbench serve   -shards 4 -replicas 2                # sharded, replicated serving tier
//	gcbench serve   -shards 4 -replicas 2 -shard-spawn   # each replica its own supervised OS process
//	gcbench shard-serve -listen 127.0.0.1:9301 -shard 0  # one shard replica process (wire protocol)
//	gcbench loadtest -url http://host:8080 [-duration 30s] # mixed-load driver + latency report
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gcbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "figures":
		err = cmdFigures(os.Args[2:])
	case "ensemble":
		err = cmdEnsemble(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "shard-serve":
		err = cmdShardServe(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gcbench: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `gcbench — graph computation behavior benchmarking (HPDC'15 reproduction)

subcommands:
  plan      print the Table 2 experiment campaign
  sweep     execute the campaign and save the behavior corpus
  run       run one algorithm on one generated graph, print its behavior
  figures   regenerate the paper's figures/tables from a corpus
  ensemble  search the corpus for the best benchmark ensembles
  predict   interpolate a computation's behavior from the corpus (§7)
  serve     serve the corpus + ensemble design as a JSON HTTP API
  shard-serve  run one corpus shard replica as a wire-protocol process
  loadtest  drive mixed load against a serve deployment, report latency percentiles

run 'gcbench <subcommand> -h' for flags.
`)
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	profile := fs.String("profile", "standard", "campaign scale: quick | standard | large")
	seed := fs.Uint64("seed", 42, "campaign seed")
	fs.Parse(args)

	specs, err := gcbench.BuildPlan(gcbench.Profile(*profile), *seed)
	if err != nil {
		return err
	}
	fmt.Printf("# Table 2 campaign, profile=%s: %d runs\n", *profile, len(specs))
	for _, s := range specs {
		fmt.Println(s.ID())
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	profile := fs.String("profile", "standard", "campaign scale: quick | standard | large")
	seed := fs.Uint64("seed", 42, "campaign seed")
	out := fs.String("out", "runs.json", "corpus output path")
	parallel := fs.Int("parallel", 0, "concurrent runs (0 = cores/2)")
	workers := fs.Int("workers", 0, "engine workers per run (0 = all cores)")
	vb := verbosityFlags(fs)
	listen := fs.String("listen", "", "serve /metrics /statusz /healthz /debug/pprof on this addr (e.g. :9090) while sweeping")
	timeout := fs.Duration("timeout", 0, "per-run wall-clock budget, e.g. 90s (0 = unlimited)")
	retries := fs.Int("retries", 0, "extra attempts for a failed or timed-out run")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt)")
	journalPath := fs.String("journal", "", "checkpoint journal path (default <out>.journal; 'none' disables)")
	resume := fs.String("resume", "", "resume from this journal, skipping its completed runs")
	faultRate := fs.Float64("faultrate", 0, "deterministic fault-injection rate in [0,1] (testing only)")
	faultSeed := fs.Uint64("faultseed", 1, "seed for -faultrate injection")
	frontierFlag := fs.String("frontier", "auto", "engine frontier schedule: auto | dense | sparse (behavior metrics are identical across modes)")
	modelsFlag := fs.String("models", "", "comma-separated execution models to sweep: gas, pregel, xstream, graphcentric (empty = gas only; each model covers the algorithms it implements)")
	algsFlag := fs.String("algs", "", "comma-separated algorithm restriction, e.g. PR,CC,SSSP (empty = full plan)")
	fs.Parse(args)
	vb.setup()
	quiet := vb.quiet

	frontier, err := gcbench.ParseFrontierMode(*frontierFlag)
	if err != nil {
		return err
	}

	models, err := parseModelList(*modelsFlag)
	if err != nil {
		return err
	}
	specs, err := gcbench.BuildPlanModels(gcbench.Profile(*profile), *seed, models)
	if err != nil {
		return err
	}
	if *algsFlag != "" {
		keep := map[gcbench.AlgorithmName]bool{}
		for _, a := range strings.Split(*algsFlag, ",") {
			name, err := gcbench.ParseAlgorithm(strings.TrimSpace(a))
			if err != nil {
				return err
			}
			keep[name] = true
		}
		filtered := specs[:0]
		for _, s := range specs {
			if keep[s.Algorithm] {
				filtered = append(filtered, s)
			}
		}
		specs = filtered
		if len(specs) == 0 {
			return fmt.Errorf("no campaign specs match -algs %s (with models %v)", *algsFlag, *modelsFlag)
		}
	}

	// The journal defaults next to the corpus. A fresh sweep truncates any
	// stale journal; -resume keeps and reuses it.
	jpath := *journalPath
	if *resume != "" {
		jpath = *resume
	} else if jpath == "" {
		jpath = *out + ".journal"
	}
	var journal *gcbench.Journal
	if jpath != "none" {
		if *resume == "" {
			os.Remove(jpath)
		} else if _, err := os.Stat(*resume); err != nil {
			// A typo'd -resume path must not silently start from scratch.
			return fmt.Errorf("resume journal: %w", err)
		}
		journal, err = gcbench.OpenJournal(jpath)
		if err != nil {
			return err
		}
		if *resume != "" {
			slog.Info("resuming campaign", "journal", jpath, "checkpointed", journal.Summary())
		}
	}

	// Ctrl-C / SIGTERM cancels the campaign at the next iteration
	// barriers; completed runs stay checkpointed for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	cfg := gcbench.SweepConfig{
		Parallel: *parallel, Workers: *workers,
		Timeout: *timeout, Retries: *retries, RetryBackoff: *backoff,
		Journal:     journal,
		InjectFault: gcbench.FaultRate(*faultRate, *faultSeed),
		Frontier:    frontier,
	}

	// -listen attaches the observability surface to this campaign: the
	// tracker feeds /statusz, the default metric registry feeds /metrics.
	if *listen != "" {
		tracker := gcbench.NewCampaignTracker()
		cfg.Tracker = tracker
		srv, err := gcbench.StartObsServer(*listen, gcbench.ObsServerOptions{
			Status: func() any { return tracker.Snapshot() },
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		slog.Info("observability server listening", "url", srv.URL(),
			"endpoints", "/metrics /statusz /healthz /debug/pprof/")
	}

	switch {
	case *vb.verbose:
		// Structured per-run events instead of the carriage-return bar,
		// which interleaves badly with log lines.
		cfg.Progress = func(done, total int, id string) {
			slog.Debug("run finished", "done", done, "total", total, "id", id)
		}
	case !*quiet:
		cfg.Progress = func(done, total int, id string) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-40s", done, total, id)
		}
	}
	// The CLI executes through the same jobs engine as the serve API's
	// POST /api/campaigns — one campaign execution path, two front ends.
	// A single-slot manager running exactly one job preserves the old
	// synchronous semantics (cfg, including Journal/Tracker/Progress,
	// passes through unchanged).
	mgr := gcbench.NewJobManager(gcbench.JobManagerConfig{MaxRunning: 1})
	job, err := mgr.Submit(gcbench.JobRequest{
		Specs:  specs,
		Config: cfg,
		Label:  fmt.Sprintf("cli sweep profile=%s seed=%d", *profile, *seed),
	})
	if err != nil {
		return err
	}
	go func() {
		<-ctx.Done() // Ctrl-C / SIGTERM
		mgr.Cancel(job.ID())
	}()
	if _, err := job.Wait(context.Background()); err != nil {
		return err
	}
	res, cerr := job.Result()
	if !*quiet && !*vb.verbose {
		fmt.Fprintln(os.Stderr)
	}
	if len(res.Runs) > 0 {
		if err := gcbench.SaveRuns(*out, res.Runs); err != nil {
			return err
		}
	}
	fmt.Printf("swept %d/%d runs in %s → %s (%d ok, %d resumed, %d failed, %d cancelled)\n",
		len(res.Runs), len(specs), time.Since(start).Round(time.Millisecond), *out,
		res.Completed, res.Skipped, res.Failed, res.Cancelled)
	for _, r := range res.Results {
		if r.Status == gcbench.RunFailed || r.Status == gcbench.RunTimeout {
			fmt.Printf("  %s %s after %d attempt(s) in %s: %s\n",
				r.Status, r.Spec.ID(), r.Attempts, r.Duration.Round(time.Millisecond), r.Err)
		}
	}
	if cerr != nil {
		if journal != nil {
			slog.Warn("campaign interrupted — completed runs are checkpointed",
				"resume", fmt.Sprintf("gcbench sweep -profile %s -seed %d -out %s -resume %s",
					*profile, *seed, *out, jpath))
		}
		return cerr
	}
	// The partial corpus is saved above; exit nonzero so scripted
	// campaigns (reproduce.sh runs under set -e) notice the gap.
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d runs failed", res.Failed, len(specs))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	alg := fs.String("alg", "PR", "algorithm: CC KC TC SSSP PR AD KM ALS NMF SGD SVD Jacobi LBP DD")
	edges := fs.Int64("edges", 100000, "target edge count (graph-based algorithms)")
	alpha := fs.Float64("alpha", 2.5, "power-law exponent")
	rows := fs.Int("rows", 1000, "matrix rows / grid side (Jacobi, LBP)")
	seed := fs.Uint64("seed", 1, "graph seed")
	tracefile := fs.String("tracefile", "", "write the run's phase spans as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
	frontierFlag := fs.String("frontier", "auto", "engine frontier schedule: auto | dense | sparse (behavior metrics are identical across modes)")
	modelFlag := fs.String("model", "gas", "execution model: gas | pregel | xstream | graphcentric")
	vb := verbosityFlags(fs)
	fs.Parse(args)
	vb.setup()

	name, err := gcbench.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}
	frontier, err := gcbench.ParseFrontierMode(*frontierFlag)
	if err != nil {
		return err
	}
	mname, err := gcbench.ParseModel(*modelFlag)
	if err != nil {
		return err
	}
	spec := gcbench.Spec{Algorithm: name, Seed: *seed}
	if mname != gcbench.ModelGAS {
		impl, err := gcbench.ModelForName(mname)
		if err != nil {
			return err
		}
		if !impl.Supports(name) {
			return fmt.Errorf("model %s does not implement algorithm %s (models implementing it: %v)",
				mname, name, gcbench.ModelsSupporting(name))
		}
		spec.Model = mname
	}
	switch strings.ToUpper(*alg) {
	case "JACOBI", "LBP":
		spec.NumRows = *rows
		spec.SizeLabel = fmt.Sprint(*rows)
	case "DD":
		spec.NumEdges = *edges
		spec.SizeLabel = fmt.Sprint(*edges)
	default:
		spec.NumEdges = *edges
		spec.Alpha = *alpha
		spec.SizeLabel = fmt.Sprint(*edges)
	}
	r, tr, err := gcbench.RunSpecTrace(context.Background(), spec, 0, frontier)
	if err != nil {
		return err
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			return err
		}
		if err := gcbench.WriteChromeTrace(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		slog.Info("wrote Chrome trace", "path", *tracefile, "iterations", tr.NumIterations())
	}
	fmt.Printf("run %s\n", r.ID())
	fmt.Printf("  edges (realized): %d\n", r.NumEdges)
	fmt.Printf("  iterations:       %d (converged=%t)\n", r.Iterations, r.Converged)
	fmt.Printf("  raw per-edge behavior: UPDT=%.3e WORK=%.3e EREAD=%.3e MSG=%.3e\n",
		r.Raw[0], r.Raw[1], r.Raw[2], r.Raw[3])
	fmt.Printf("  active fraction: ")
	step := 1
	if len(r.ActiveFraction) > 20 {
		step = len(r.ActiveFraction) / 20
	}
	for i := 0; i < len(r.ActiveFraction); i += step {
		fmt.Printf("%.2f ", r.ActiveFraction[i])
	}
	fmt.Println()
	return nil
}

func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	runsPath := fs.String("runs", "runs.json", "behavior corpus (from 'gcbench sweep')")
	fig := fs.String("fig", "all", "figure id: all, 1-23, table1, table2, table3")
	samples := fs.Int("samples", 1000000, "coverage Monte-Carlo samples (paper: 1e6)")
	maxSize := fs.Int("maxsize", 20, "largest ensemble size analyzed")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	fs.Parse(args)

	runs, err := gcbench.LoadRuns(*runsPath)
	if err != nil {
		return fmt.Errorf("loading corpus (run 'gcbench sweep' first): %w", err)
	}
	corpus, err := gcbench.NewCorpus(runs)
	if err != nil {
		return err
	}
	opt := gcbench.FigureOptions{CoverageSamples: *samples, MaxSize: *maxSize}
	ids := []string{*fig}
	if *fig == "all" {
		ids = gcbench.FigureIDs()
	}
	for _, id := range ids {
		rep, err := gcbench.Figure(corpus, id, opt)
		if err != nil {
			return err
		}
		if *csv {
			for _, t := range rep.Tables {
				fmt.Printf("# %s: %s — %s\n", rep.ID, rep.Title, t.Title)
				if err := t.RenderCSV(os.Stdout); err != nil {
					return err
				}
			}
			continue
		}
		if err := rep.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func cmdEnsemble(args []string) error {
	fs := flag.NewFlagSet("ensemble", flag.ExitOnError)
	runsPath := fs.String("runs", "runs.json", "behavior corpus (from 'gcbench sweep')")
	size := fs.Int("size", 10, "ensemble size to design")
	samples := fs.Int("samples", 200000, "coverage Monte-Carlo samples")
	anneal := fs.Bool("anneal", false, "refine with simulated annealing")
	export := fs.String("export", "", "directory to export the designed suites' workload files")
	fs.Parse(args)

	runs, err := gcbench.LoadRuns(*runsPath)
	if err != nil {
		return fmt.Errorf("loading corpus (run 'gcbench sweep' first): %w", err)
	}
	corpus, err := gcbench.NewCorpus(runs)
	if err != nil {
		return err
	}
	pool := corpus.Pool
	idx := make([]int, pool.Len())
	for i := range idx {
		idx[i] = i
	}
	spreadSets := gcbench.BestSpreadGreedy(pool.Points, idx, *size)
	spreadMembers := spreadSets[*size]
	if *anneal {
		refined, score, err := gcbench.AnnealSpread(pool.Points, idx, gcbench.AnnealOptions{Size: *size, Seed: 1})
		if err != nil {
			return err
		}
		spreadMembers = refined
		fmt.Printf("annealed spread: %.4f (greedy+exchange: %.4f)\n",
			score, spreadOf(pool.Points, spreadSets[*size]))
	}
	fmt.Printf("Best-spread ensemble of size %d (spread %.4f):\n", *size,
		spreadOf(pool.Points, spreadMembers))
	for _, m := range spreadMembers {
		fmt.Printf("  %s\n", pool.Runs[m].ID())
	}

	cov, err := gcbench.NewCoverageEstimator(*samples, 0x5eed)
	if err != nil {
		return err
	}
	covSets := gcbench.BestCoverageGreedy(cov, pool.Points, idx, *size)
	covMembers := covSets[*size]
	if *anneal {
		refined, _, err := gcbench.AnnealCoverage(cov, pool.Points, idx, gcbench.AnnealOptions{Size: *size, Seed: 1, Steps: 500})
		if err != nil {
			return err
		}
		covMembers = refined
	}
	pts := make([]gcbench.Vector, len(covMembers))
	for i, m := range covMembers {
		pts[i] = pool.Points[m]
	}
	fmt.Printf("Best-coverage ensemble of size %d (coverage %.4f, NS=%d):\n",
		*size, cov.Coverage(pts), *samples)
	for _, m := range covMembers {
		fmt.Printf("  %s\n", pool.Runs[m].ID())
	}

	if *export != "" {
		members := make([]*gcbench.Run, 0, len(spreadMembers)+len(covMembers))
		seen := map[int]bool{}
		for _, m := range append(append([]int(nil), spreadMembers...), covMembers...) {
			if seen[m] {
				continue
			}
			seen[m] = true
			members = append(members, pool.Runs[m])
		}
		if err := gcbench.ExportSuite(*export, members, nil); err != nil {
			return err
		}
		fmt.Printf("exported %d workload files to %s\n", len(members), *export)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	runsPath := fs.String("runs", "runs.json", "behavior corpus (from 'gcbench sweep')")
	alg := fs.String("alg", "PR", "algorithm to predict")
	edges := fs.Int64("edges", 50000, "target edge count")
	alpha := fs.Float64("alpha", 2.4, "power-law exponent")
	loo := fs.Bool("loo", false, "also report leave-one-out error over the corpus")
	fs.Parse(args)

	runs, err := gcbench.LoadRuns(*runsPath)
	if err != nil {
		return fmt.Errorf("loading corpus (run 'gcbench sweep' first): %w", err)
	}
	name, err := gcbench.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}
	p, err := gcbench.NewPredictor(runs)
	if err != nil {
		return err
	}
	pred, err := p.Predict(gcbench.PredictQuery{
		Algorithm: string(name), NumEdges: *edges, Alpha: *alpha,
	})
	if err != nil {
		return err
	}
	fmt.Printf("predicted behavior of <%s, %d, %.2f> (from %d corpus runs):\n",
		name, *edges, *alpha, pred.Support)
	fmt.Printf("  UPDT=%.3e WORK=%.3e EREAD=%.3e MSG=%.3e  iterations≈%.0f\n",
		pred.Raw[0], pred.Raw[1], pred.Raw[2], pred.Raw[3], pred.Iterations)
	if *loo {
		errs, err := gcbench.PredictLeaveOneOut(runs)
		if err != nil {
			return err
		}
		fmt.Printf("leave-one-out mean relative error: UPDT=%.1f%% WORK=%.1f%% EREAD=%.1f%% MSG=%.1f%%\n",
			100*errs[0], 100*errs[1], 100*errs[2], 100*errs[3])
	}
	return nil
}

// parseModelList resolves a comma-separated -models flag value; "all"
// expands to every execution model.
func parseModelList(s string) ([]gcbench.ModelName, error) {
	if s == "" {
		return nil, nil
	}
	var models []gcbench.ModelName
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.EqualFold(part, "all") {
			models = append(models, gcbench.AllModels()...)
			continue
		}
		n, err := gcbench.ParseModel(part)
		if err != nil {
			return nil, err
		}
		models = append(models, n)
	}
	return models, nil
}

func spreadOf(pool []gcbench.Vector, idx []int) float64 {
	pts := make([]gcbench.Vector, len(idx))
	for i, j := range idx {
		pts[i] = pool[j]
	}
	return gcbench.Spread(pts)
}
