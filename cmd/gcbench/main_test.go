package main

import (
	"path/filepath"
	"testing"

	"gcbench"
)

// writeTinyCorpus sweeps a minimal campaign and saves it for the
// figure/ensemble subcommand tests.
func writeTinyCorpus(t *testing.T) string {
	t.Helper()
	var specs []gcbench.Spec
	for _, alg := range []gcbench.AlgorithmName{"CC", "PR", "TC", "KM", "ALS", "SGD"} {
		for _, alpha := range []float64{2.0, 3.0} {
			s := gcbench.Spec{Algorithm: alg, NumEdges: 300, Alpha: alpha,
				SizeLabel: "300", Seed: uint64(alpha * 7)}
			if alg == "ALS" || alg == "SGD" {
				s.NumEdges = 150
			}
			specs = append(specs, s)
		}
	}
	runs, err := gcbench.Sweep(specs, gcbench.SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := gcbench.SaveRuns(path, runs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdPlan(t *testing.T) {
	if err := cmdPlan([]string{"-profile", "quick"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlan([]string{"-profile", "bogus"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"-alg", "CC", "-edges", "300"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-alg", "LBP", "-rows", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-alg", "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestCmdFiguresAndEnsemble(t *testing.T) {
	path := writeTinyCorpus(t)
	for _, fig := range []string{"table2", "13", "18"} {
		if err := cmdFigures([]string{"-runs", path, "-fig", fig,
			"-samples", "2000", "-maxsize", "4"}); err != nil {
			t.Fatalf("figures %s: %v", fig, err)
		}
	}
	if err := cmdFigures([]string{"-runs", path, "-fig", "13", "-csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFigures([]string{"-runs", "/nonexistent.json", "-fig", "13"}); err == nil {
		t.Fatal("missing corpus accepted")
	}
	if err := cmdEnsemble([]string{"-runs", path, "-size", "3", "-samples", "2000"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPredict(t *testing.T) {
	path := writeTinyCorpus(t)
	if err := cmdPredict([]string{"-runs", path, "-alg", "PR", "-edges", "500", "-alpha", "2.5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-runs", path, "-alg", "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := cmdPredict([]string{"-runs", "/nonexistent.json"}); err == nil {
		t.Fatal("missing corpus accepted")
	}
}

func TestCmdSweepQuickSubset(t *testing.T) {
	// Full quick sweep is exercised elsewhere; here only the error path.
	if err := cmdSweep([]string{"-profile", "bogus"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
