package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gcbench"
)

// writeTinyCorpus sweeps a minimal campaign and saves it for the
// figure/ensemble subcommand tests.
func writeTinyCorpus(t *testing.T) string {
	t.Helper()
	var specs []gcbench.Spec
	for _, alg := range []gcbench.AlgorithmName{"CC", "PR", "TC", "KM", "ALS", "SGD"} {
		for _, alpha := range []float64{2.0, 3.0} {
			s := gcbench.Spec{Algorithm: alg, NumEdges: 300, Alpha: alpha,
				SizeLabel: "300", Seed: uint64(alpha * 7)}
			if alg == "ALS" || alg == "SGD" {
				s.NumEdges = 150
			}
			specs = append(specs, s)
		}
	}
	runs, err := gcbench.Sweep(specs, gcbench.SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := gcbench.SaveRuns(path, runs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdPlan(t *testing.T) {
	if err := cmdPlan([]string{"-profile", "quick"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlan([]string{"-profile", "bogus"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"-alg", "CC", "-edges", "300"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-alg", "LBP", "-rows", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-alg", "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestCmdRunTracefile verifies the CLI trace export: the file must be a
// valid Chrome trace-event JSON array with one span per iteration.
func TestCmdRunTracefile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cc.trace.json")
	if err := cmdRun([]string{"-alg", "CC", "-edges", "300", "-tracefile", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	iterations := 0
	for _, e := range events {
		if e["cat"] == "iteration" {
			iterations++
		}
	}
	if iterations == 0 {
		t.Fatalf("trace file has no iteration spans (%d events)", len(events))
	}
}

// TestCmdSweepListenFlag verifies the -listen flag is plumbed: an
// unbindable address must fail the command before any run executes.
// (Serving /metrics and /statusz during a live campaign is covered by
// the race-enabled test in internal/sweep.)
func TestCmdSweepListenFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "runs.json")
	err := cmdSweep([]string{"-profile", "quick", "-out", out, "-journal", "none",
		"-quiet", "-listen", "256.256.256.256:0"})
	if err == nil {
		t.Fatal("unbindable -listen address accepted")
	}
}

func TestCmdFiguresAndEnsemble(t *testing.T) {
	path := writeTinyCorpus(t)
	for _, fig := range []string{"table2", "13", "18"} {
		if err := cmdFigures([]string{"-runs", path, "-fig", fig,
			"-samples", "2000", "-maxsize", "4"}); err != nil {
			t.Fatalf("figures %s: %v", fig, err)
		}
	}
	if err := cmdFigures([]string{"-runs", path, "-fig", "13", "-csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFigures([]string{"-runs", "/nonexistent.json", "-fig", "13"}); err == nil {
		t.Fatal("missing corpus accepted")
	}
	if err := cmdEnsemble([]string{"-runs", path, "-size", "3", "-samples", "2000"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPredict(t *testing.T) {
	path := writeTinyCorpus(t)
	if err := cmdPredict([]string{"-runs", path, "-alg", "PR", "-edges", "500", "-alpha", "2.5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-runs", path, "-alg", "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := cmdPredict([]string{"-runs", "/nonexistent.json"}); err == nil {
		t.Fatal("missing corpus accepted")
	}
}

func TestCmdSweepQuickSubset(t *testing.T) {
	// Full quick sweep is exercised elsewhere; here only the error path.
	if err := cmdSweep([]string{"-profile", "bogus"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
