package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcbench"
)

// cmdServe runs the ensemble-design API server over a measured corpus:
//
//	gcbench serve -runs runs-standard.json -listen :8080
//
// The corpus may be a runs JSON array or a sweep checkpoint journal;
// POST /api/corpus/reload hot-swaps it in place after a re-sweep.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	runsPath := fs.String("runs", "runs.json", "behavior corpus: runs JSON (from 'gcbench sweep') or a checkpoint journal")
	listen := fs.String("listen", ":8080", "API listen address")
	samples := fs.Int("samples", gcbench.DefaultCoverageSamples, "coverage Monte-Carlo samples (paper: 1e6)")
	workers := fs.Int("workers", 0, "concurrent ensemble searches (0 = all cores)")
	queue := fs.Int("queue", 64, "design requests queued before shedding with 429")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline (plumbed into search loops)")
	cacheSize := fs.Int("cache", 256, "design-response LRU cache entries")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	shards := fs.Int("shards", 1, "partition the corpus across this many consistent-hash shards (> 1 enables the sharded serving tier; responses stay byte-identical)")
	replicas := fs.Int("replicas", 1, "read replicas per shard, each answering from its own immutable snapshot")
	shardAddrs := fs.String("shard-addrs", "", "serve over externally-started shard processes: shard groups separated by ';', replica endpoints by ',' (e.g. \"h:9301,h:9302;h:9303,h:9304\" = 2 shards × 2 replicas); see 'gcbench shard-serve'")
	shardSpawn := fs.Bool("shard-spawn", false, "spawn -shards × -replicas 'gcbench shard-serve' child processes on loopback ports, supervised: crashed shards are restarted and rehydrated (epoch-fenced)")
	jobsOn := fs.Bool("jobs", false, "enable the async campaign API (POST /api/campaigns, /api/jobs): completed campaigns publish into the live corpus")
	maxRunning := fs.Int("max-running", 1, "concurrently executing campaigns (with -jobs)")
	queueDepth := fs.Int("queue-depth", 16, "campaigns queued behind the running ones before POST /api/campaigns sheds with 429 (with -jobs)")
	traceCap := fs.Int("traces", 512, "request traces retained for /debug/traces, tail-sampled (errors, 429s and slowest decile kept preferentially); 0 disables tracing")
	vb := verbosityFlags(fs)
	fs.Parse(args)
	vb.setup()

	snap, err := gcbench.LoadCorpusSnapshot(*runsPath)
	if err != nil {
		return fmt.Errorf("loading corpus (run 'gcbench sweep' first): %w", err)
	}
	// -shards/-replicas switch the corpus backend from a single Store to
	// the sharded, replicated tier; -shard-addrs/-shard-spawn further
	// move each shard replica into its own OS process over TCP. Every
	// /api response stays byte-identical across all four deployment
	// shapes (the differential harness's guarantee).
	var store *gcbench.CorpusStore
	var cluster *gcbench.ShardCluster
	switch {
	case *shardSpawn:
		sup, groups, err := spawnWireCluster(context.Background(), *shards, *replicas)
		if err != nil {
			return err
		}
		defer sup.Stop()
		clients, err := wireClients(groups)
		if err != nil {
			return err
		}
		cluster, err = gcbench.NewShardCluster(gcbench.ShardClusterOptions{
			Shards: *shards, Replicas: *replicas, Clients: clients,
		})
		if err != nil {
			return err
		}
		if _, err := cluster.Load(context.Background(), snap); err != nil {
			return err
		}
		// A restarted replica process comes back empty (version 0); the
		// restore hook republishes its partition above the epoch fence so
		// the version vector never regresses.
		sup.SetOnRestore(func(ctx context.Context, spec gcbench.ShardProcSpec) error {
			_, err := cluster.Rehydrate(ctx, spec.Shard)
			return err
		})
		slog.Info("spawned shard processes", "shards", *shards, "replicas", *replicas)
	case *shardAddrs != "":
		groups, err := parseShardAddrs(*shardAddrs)
		if err != nil {
			return err
		}
		clients, err := wireClients(groups)
		if err != nil {
			return err
		}
		cluster, err = gcbench.NewShardCluster(gcbench.ShardClusterOptions{
			Shards: len(groups), Replicas: len(groups[0]), Clients: clients,
		})
		if err != nil {
			return err
		}
		if _, err := cluster.Load(context.Background(), snap); err != nil {
			return err
		}
	case *shards > 1 || *replicas > 1:
		cluster, err = gcbench.NewShardCluster(gcbench.ShardClusterOptions{
			Shards: *shards, Replicas: *replicas,
		})
		if err != nil {
			return err
		}
		if _, err := cluster.Load(context.Background(), snap); err != nil {
			return err
		}
	default:
		store = gcbench.NewCorpusStore(snap)
	}
	var mgr *gcbench.JobManager
	if *jobsOn {
		mgr = gcbench.NewJobManager(gcbench.JobManagerConfig{
			MaxRunning: *maxRunning,
			QueueDepth: *queueDepth,
		})
	}
	var traces *gcbench.TraceStore
	if *traceCap > 0 {
		traces = gcbench.NewTraceStore(*traceCap)
	}
	srv, err := gcbench.NewAPIServer(gcbench.APIServerConfig{
		Store:          store,
		Cluster:        cluster,
		Samples:        *samples,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
		Jobs:           mgr,
		Traces:         traces,
		// The access log emits at Info through the process logger, so
		// -quiet (level Warn) suppresses it and -v keeps it alongside
		// debug logs — one wide event per request either way.
		AccessLog: slog.Default(),
	})
	if err != nil {
		return err
	}
	if err := srv.Start(*listen); err != nil {
		return err
	}
	endpoints := "/api/runs /api/behavior/{key} /api/ensemble/design /api/ensemble/best /api/predict /api/corpus /metrics /statusz /debug/pprof/"
	if mgr != nil {
		endpoints += " /api/campaigns /api/jobs"
	}
	if traces != nil {
		endpoints += " /debug/traces"
	}
	slog.Info("ensemble-design API listening",
		"url", srv.URL(),
		"corpus", *runsPath,
		"records", len(snap.Records),
		"okRuns", snap.OKCount(),
		"poolSize", snap.PoolSize(),
		"shards", *shards,
		"replicas", *replicas,
		"jobs", *jobsOn,
		"endpoints", endpoints)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests —
	// including design searches holding worker slots — within the
	// -drain budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	slog.Info("shutting down; draining in-flight requests", "budget", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if mgr != nil {
		// Stop accepting campaigns, cancel queued and running ones, and
		// wait for them to finalize so their checkpoints are flushed.
		if err := mgr.Close(shutdownCtx); err != nil {
			slog.Warn("job manager drain incomplete", "err", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain exceeded %s: %w", *drain, err)
	}
	return nil
}
