package main

import (
	"flag"
	"log/slog"
	"os"
)

// verbosity is the shared -v/-quiet flag pair. Informational messages
// go through slog to stderr, so stdout stays machine-parseable for
// scripts regardless of the chosen level.
type verbosity struct {
	verbose *bool
	quiet   *bool
}

// verbosityFlags registers -v and -quiet on fs. Subcommands that
// already had a -quiet flag keep its exact meaning (suppress progress
// output); -v adds structured per-event logging.
func verbosityFlags(fs *flag.FlagSet) *verbosity {
	return &verbosity{
		verbose: fs.Bool("v", false, "verbose: structured per-event logs on stderr"),
		quiet:   fs.Bool("quiet", false, "suppress progress output"),
	}
}

// setup installs the process-wide slog default at the selected level.
func (v *verbosity) setup() {
	level := slog.LevelInfo
	if *v.verbose {
		level = slog.LevelDebug
	}
	if *v.quiet {
		level = slog.LevelWarn
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
}
