package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"gcbench"
)

// cmdLoadtest drives mixed traffic against a live `gcbench serve`
// deployment and reports per-route latency percentiles:
//
//	gcbench loadtest -url http://127.0.0.1:8080 -duration 30s
//	gcbench loadtest -url ... -requests 5000 -predict-p99 50 -out BENCH_serve.json
//
// The run fails (exit 1) on any 5xx response unless -allow-5xx, and on
// a -predict-p99 gate violation, so it slots directly into CI smoke
// jobs. With -campaigns the mix includes real POST /api/campaigns
// submissions (quick-profile PR); the target must run with -jobs.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the serve deployment under test")
	duration := fs.Duration("duration", 30*time.Second, "load duration (ignored when -requests is set)")
	requests := fs.Int64("requests", 0, "total request budget (0 = run for -duration)")
	concurrency := fs.Int("concurrency", 8, "concurrent workers")
	seed := fs.Uint64("seed", 1, "operation-schedule seed (same seed = same schedule)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	keys := fs.String("keys", "", "comma-separated corpus keys for /api/behavior/{key} traffic (default: discovered from /api/runs)")
	campaigns := fs.Bool("campaigns", false, "include quick-profile campaign submissions (target must run with -jobs)")
	predictP99 := fs.Float64("predict-p99", 0, "fail unless /api/predict p99 ≤ this many milliseconds (0 = no gate)")
	allow5xx := fs.Bool("allow-5xx", false, "tolerate 5xx responses instead of failing the run")
	out := fs.String("out", "", "also write the full JSON report to this path")
	vb := verbosityFlags(fs)
	fs.Parse(args)
	vb.setup()

	var behaviorKeys, models []string
	if *keys != "" {
		behaviorKeys = strings.Split(*keys, ",")
	} else {
		var err error
		if behaviorKeys, models, err = discoverKeys(*url, *timeout); err != nil {
			return fmt.Errorf("discovering corpus keys (pass -keys to skip): %w", err)
		}
	}
	mix := gcbench.ServeLoadMixModels(behaviorKeys, models)
	if *campaigns {
		mix = append(mix, gcbench.LoadTestOp{
			Name: "campaign", Weight: 1, Method: http.MethodPost,
			Paths: []string{"/api/campaigns"},
			Body:  `{"profile":"quick","algorithms":["PR"],"label":"loadtest"}`,
		})
	}

	// Ctrl-C ends the run early; the partial report still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := gcbench.RunLoadTest(ctx, gcbench.LoadTestConfig{
		BaseURL:     *url,
		Concurrency: *concurrency,
		Duration:    *duration,
		Requests:    *requests,
		Seed:        *seed,
		Timeout:     *timeout,
		Mix:         mix,
	})
	if err != nil {
		return err
	}

	printLoadReport(rep)
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	}

	var gates []gcbench.LoadTestGate
	if *predictP99 > 0 {
		gates = append(gates, gcbench.LoadTestGate{Route: "predict", MaxP99Ms: *predictP99, MinCount: 1})
	}
	return rep.Check(gates, !*allow5xx)
}

// discoverKeys pulls a spread of record keys — and the distinct
// execution models — from the live corpus so the behavior op exercises
// real routes and the runs op covers the target's model axis without
// the caller naming anything.
func discoverKeys(base string, timeout time.Duration) (keys, models []string, err error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/api/runs")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("/api/runs returned %s", resp.Status)
	}
	var body struct {
		Runs []struct {
			Key   string `json:"key"`
			Model string `json:"model"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, nil, err
	}
	if len(body.Runs) == 0 {
		return nil, nil, fmt.Errorf("corpus is empty")
	}
	// Up to four keys spread across the corpus.
	step := max(1, len(body.Runs)/4)
	for i := 0; i < len(body.Runs) && len(keys) < 4; i += step {
		keys = append(keys, body.Runs[i].Key)
	}
	seen := map[string]bool{}
	for _, r := range body.Runs {
		m := r.Model
		if m == "" {
			m = string(gcbench.ModelGAS)
		}
		if !seen[m] {
			seen[m] = true
			models = append(models, m)
		}
	}
	sort.Strings(models)
	return keys, models, nil
}

// printLoadReport renders the per-route table, slowest p99 first.
func printLoadReport(rep *gcbench.LoadTestReport) {
	fmt.Printf("loadtest %s: %d requests over %.1fs, %d workers, seed %d\n",
		rep.Target, rep.Requests, rep.DurationSeconds, rep.Concurrency, rep.Seed)
	names := make([]string, 0, len(rep.Routes))
	for name := range rep.Routes {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return rep.Routes[names[i]].P99Ms > rep.Routes[names[j]].P99Ms
	})
	fmt.Printf("%-10s %8s %8s %9s %9s %9s %9s %6s\n",
		"route", "count", "rps", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "5xx")
	for _, name := range names {
		rs := rep.Routes[name]
		fmt.Printf("%-10s %8d %8.1f %9.2f %9.2f %9.2f %9.2f %6d\n",
			name, rs.Count, rs.RPS, rs.P50Ms, rs.P95Ms, rs.P99Ms, rs.MaxMs, rs.Status["5xx"])
	}
}
