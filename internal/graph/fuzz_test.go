package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzLoadEdgeList fuzzes the edge-list parser: arbitrary input must
// either produce a valid graph or a clean error — never a panic. Parsed
// graphs must survive a write/read round trip.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add([]byte("# gcbench n=3 directed=false weighted=false\n0 1\n1 2\n"))
	f.Add([]byte("# gcbench n=2 directed=true weighted=true\n0 1 0.5\n1 0 -3e9\n"))
	f.Add([]byte("# gcbench n=4 directed=false weighted=false\n# comment\n\n0 3\n"))
	f.Add([]byte(""))
	f.Add([]byte("# gcbench n=0 directed=false weighted=false\n"))
	f.Add([]byte("# gcbench n=4 directed=false weighted=false\n0 99999999999\n"))
	f.Add([]byte("# gcbench n=4 directed=false weighted=false\n0\n"))
	f.Add([]byte("# gcbench n=4 directed=false weighted=true\n0 1\n"))
	f.Add([]byte("# gcbench n=4 bogus=field\n"))
	f.Add([]byte("# gcbench n=999999999999999999999 directed=false weighted=false\n"))
	f.Add([]byte("no header at all\n0 1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		// The format legitimately allows vertex counts up to 2^31, whose
		// CSR offsets alone are multi-GB; keep the fuzzer inside a sane
		// allocation budget without weakening parser coverage.
		if n, ok := declaredVertexCount(data); ok && n > 1<<20 {
			t.Skip("declared vertex count too large for fuzzing")
		}
		g, err := ReadEdgeList(bytes.NewReader(data))
		if len(bytes.TrimSpace(data)) == 0 {
			if err == nil {
				t.Fatal("empty input accepted")
			}
			return
		}
		if err != nil {
			if g != nil {
				t.Fatal("non-nil graph returned alongside an error")
			}
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if g.NumVertices() <= 0 {
			t.Fatalf("parsed graph has %d vertices", g.NumVertices())
		}
		// Round trip: what we write back must parse to the same shape.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written graph: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.Directed() != g.Directed() ||
			g2.Weighted() != g.Weighted() {
			t.Fatalf("round trip changed shape: %d/%t/%t vs %d/%t/%t",
				g2.NumVertices(), g2.Directed(), g2.Weighted(),
				g.NumVertices(), g.Directed(), g.Weighted())
		}
		// Self-loops are dropped on read, so edges can only shrink once:
		// the second read sees none and must preserve the count exactly.
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

// declaredVertexCount pulls n= out of the header line without building
// anything.
func declaredVertexCount(data []byte) (int64, bool) {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	for _, field := range strings.Fields(string(line)) {
		if v, ok := strings.CutPrefix(field, "n="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}
