package graph

import (
	"testing"

	"gcbench/internal/rng"
)

func TestReverseArcsInvolution(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed)
		n := 3 + r.Intn(40)
		b := NewBuilder(n, false).Dedup()
		for i := 0; i < 4*n; i++ {
			b.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		rev := g.ReverseArcs()
		if int64(len(rev)) != g.NumArcs() {
			t.Fatalf("rev length %d, arcs %d", len(rev), g.NumArcs())
		}
		for u := uint32(0); int(u) < n; u++ {
			lo, hi := g.OutArcRange(u)
			for a := lo; a < hi; a++ {
				ra := rev[a]
				if ra < 0 {
					t.Fatalf("arc %d has no reverse", a)
				}
				if rev[ra] != a {
					t.Fatalf("rev not an involution at arc %d", a)
				}
				// The reverse arc runs target → source.
				v := g.ArcTarget(a)
				vlo, vhi := g.OutArcRange(v)
				if ra < vlo || ra >= vhi || g.ArcTarget(ra) != u {
					t.Fatalf("reverse of %d→%d is not %d→%d", u, v, v, u)
				}
			}
		}
	}
}

func TestReverseArcsCached(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r1 := g.ReverseArcs()
	r2 := g.ReverseArcs()
	if &r1[0] != &r2[0] {
		t.Fatal("ReverseArcs recomputed instead of cached")
	}
}

func TestReverseArcsPanicsOnDirected(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ReverseArcs on a directed graph did not panic")
		}
	}()
	g.ReverseArcs()
}
