package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a whitespace-separated edge list:
// a header line "# gcbench n=<vertices> directed=<bool> weighted=<bool>"
// followed by one "src dst [weight]" line per logical edge. Undirected
// edges are written once, with src ≤ dst.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# gcbench n=%d directed=%t weighted=%t\n",
		g.NumVertices(), g.Directed(), g.Weighted()); err != nil {
		return err
	}
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			if !g.Directed() && v < u {
				continue // emit each undirected edge once
			}
			if g.Weighted() {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, g.ArcWeight(a)); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the header are ignored, as are blank lines.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	n, directed, weighted, err := parseHeader(sc)
	if err != nil {
		return nil, err
	}

	b := NewBuilder(n, directed)
	if weighted {
		b.Weighted()
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", line, fields[1], err)
		}
		w := 1.0
		if weighted {
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: weighted graph but no weight", line)
			}
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", line, fields[2], err)
			}
		}
		b.AddWeightedEdge(uint32(u), uint32(v), w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	return b.Build()
}

// parseHeader reads the "# gcbench n=..." line.
func parseHeader(sc *bufio.Scanner) (n int, directed, weighted bool, err error) {
	if !sc.Scan() {
		return 0, false, false, fmt.Errorf("graph: empty edge-list input")
	}
	header := strings.TrimSpace(sc.Text())
	if !strings.HasPrefix(header, "# gcbench ") {
		return 0, false, false, fmt.Errorf("graph: missing '# gcbench' header, got %q", header)
	}
	for _, kv := range strings.Fields(header)[2:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return 0, false, false, fmt.Errorf("graph: malformed header field %q", kv)
		}
		switch parts[0] {
		case "n":
			n, err = strconv.Atoi(parts[1])
		case "directed":
			directed, err = strconv.ParseBool(parts[1])
		case "weighted":
			weighted, err = strconv.ParseBool(parts[1])
		default:
			err = fmt.Errorf("graph: unknown header field %q", parts[0])
		}
		if err != nil {
			return 0, false, false, err
		}
	}
	if n <= 0 {
		return 0, false, false, fmt.Errorf("graph: header vertex count %d must be positive", n)
	}
	return n, directed, weighted, nil
}
