package graph

import "sort"

// reverse-arc support: for undirected graphs every logical edge occupies
// two arcs (u→v and v→u); message-passing algorithms (LBP, DD) keep one
// value per arc direction and need to find the opposite arc in O(1).

// ReverseArcs returns, for an undirected graph, the mapping rev such that
// rev[a] is the arc index of the opposite direction of arc a
// (rev[rev[a]] == a). The result is computed on first call and cached on
// the graph. It panics on directed graphs, which have no paired arcs.
func (g *Graph) ReverseArcs() []int64 {
	if g.directed {
		panic("graph: ReverseArcs is defined only for undirected graphs")
	}
	g.revOnce.Do(func() { g.revArcs = g.computeReverseArcs() })
	return g.revArcs
}

func (g *Graph) computeReverseArcs() []int64 {
	rev := make([]int64, len(g.outAdj))
	for i := range rev {
		rev[i] = -1
	}
	// Group arcs by unordered endpoint pair and pair up the two directions
	// in order of appearance, so parallel edges (if any survived dedup)
	// match deterministically.
	byPair := make(map[uint64][]int64, g.numEdges)
	for u := uint32(0); int(u) < g.numVertices; u++ {
		for a := g.outOff[u]; a < g.outOff[u+1]; a++ {
			v := g.outAdj[a]
			lo, hi := u, v
			if lo > hi {
				lo, hi = hi, lo
			}
			key := uint64(lo)<<32 | uint64(hi)
			byPair[key] = append(byPair[key], a)
		}
	}
	for key, arcs := range byPair {
		lo := uint32(key >> 32)
		var fwd, bwd []int64
		for _, a := range arcs {
			if a >= g.outOff[lo] && a < g.outOff[lo+1] {
				fwd = append(fwd, a)
			} else {
				bwd = append(bwd, a)
			}
		}
		sort.Slice(fwd, func(i, j int) bool { return fwd[i] < fwd[j] })
		sort.Slice(bwd, func(i, j int) bool { return bwd[i] < bwd[j] })
		for i := 0; i < len(fwd) && i < len(bwd); i++ {
			rev[fwd[i]] = bwd[i]
			rev[bwd[i]] = fwd[i]
		}
	}
	return rev
}
