package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"gcbench/internal/rng"
)

// mustBuild is a test helper that fails the test on builder errors.
func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestUndirectedBasics(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := mustBuild(t, b)

	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumArcs() != 6 {
		t.Fatalf("NumArcs = %d, want 6", g.NumArcs())
	}
	if g.Directed() {
		t.Fatal("undirected graph reports Directed")
	}
	wantDeg := []int{1, 2, 2, 1}
	for v, want := range wantDeg {
		if d := g.OutDegree(uint32(v)); d != want {
			t.Fatalf("OutDegree(%d) = %d, want %d", v, d, want)
		}
		if d := g.InDegree(uint32(v)); d != want {
			t.Fatalf("InDegree(%d) = %d, want %d (undirected symmetry)", v, d, want)
		}
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Fatal("undirected edge not visible from both endpoints")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge 0-3")
	}
}

func TestDirectedBasics(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 1)
	g := mustBuild(t, b)

	if g.NumEdges() != 3 || g.NumArcs() != 3 {
		t.Fatalf("NumEdges=%d NumArcs=%d, want 3 and 3", g.NumEdges(), g.NumArcs())
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Fatalf("vertex 0 degrees out=%d in=%d, want 2, 0", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(1) != 0 || g.InDegree(1) != 2 {
		t.Fatalf("vertex 1 degrees out=%d in=%d, want 0, 2", g.OutDegree(1), g.InDegree(1))
	}
	ins := append([]uint32(nil), g.InNeighbors(1)...)
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	if len(ins) != 2 || ins[0] != 0 || ins[1] != 2 {
		t.Fatalf("InNeighbors(1) = %v, want [0 2]", ins)
	}
}

func TestInArcToOutArcDirected(t *testing.T) {
	b := NewBuilder(4, true).Weighted()
	b.AddWeightedEdge(0, 2, 10)
	b.AddWeightedEdge(1, 2, 20)
	b.AddWeightedEdge(3, 2, 30)
	g := mustBuild(t, b)

	lo, hi := g.InArcRange(2)
	if hi-lo != 3 {
		t.Fatalf("vertex 2 has %d in-arcs, want 3", hi-lo)
	}
	for a := lo; a < hi; a++ {
		src := g.InArcSource(a)
		out := g.InArcToOutArc(a)
		if g.ArcTarget(out) != 2 {
			t.Fatalf("cross-indexed out-arc %d targets %d, want 2", out, g.ArcTarget(out))
		}
		want := map[uint32]float64{0: 10, 1: 20, 3: 30}[src]
		if got := g.ArcWeight(out); got != want {
			t.Fatalf("weight via in-arc from %d = %v, want %v", src, got, want)
		}
	}
}

func TestSelfLoopsDroppedByDefault(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := mustBuild(t, b)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self-loop dropped)", g.NumEdges())
	}

	b2 := NewBuilder(2, true).KeepSelfLoops()
	b2.AddEdge(0, 0)
	g2 := mustBuild(t, b2)
	if g2.NumEdges() != 1 {
		t.Fatalf("KeepSelfLoops: NumEdges = %d, want 1", g2.NumEdges())
	}
}

func TestDedup(t *testing.T) {
	b := NewBuilder(3, false).Dedup()
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // same undirected edge
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 2)
	g := mustBuild(t, b)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}

	bd := NewBuilder(3, true).Dedup()
	bd.AddEdge(0, 1)
	bd.AddEdge(1, 0) // distinct directed arcs survive
	bd.AddEdge(0, 1)
	gd := mustBuild(t, bd)
	if gd.NumEdges() != 2 {
		t.Fatalf("directed NumEdges = %d, want 2 (0→1 and 1→0)", gd.NumEdges())
	}
}

func TestSortAdjacency(t *testing.T) {
	b := NewBuilder(5, false).SortAdjacency().Weighted()
	b.AddWeightedEdge(0, 4, 4)
	b.AddWeightedEdge(0, 2, 2)
	b.AddWeightedEdge(0, 3, 3)
	b.AddWeightedEdge(0, 1, 1)
	g := mustBuild(t, b)
	adj := g.OutNeighbors(0)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Fatalf("adjacency not sorted: %v", adj)
	}
	// Weights must follow their targets through the sort.
	lo, _ := g.OutArcRange(0)
	for i, v := range adj {
		if w := g.ArcWeight(lo + int64(i)); w != float64(v) {
			t.Fatalf("weight of arc to %d = %v, want %v", v, w, float64(v))
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(0, false).Build(); err == nil {
		t.Fatal("Build with 0 vertices succeeded")
	}
	b := NewBuilder(2, false)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with out-of-range endpoint succeeded")
	}
}

func TestWeightsDefaultToOne(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1)
	g := mustBuild(t, b)
	if g.Weighted() {
		t.Fatal("unweighted graph reports Weighted")
	}
	lo, _ := g.OutArcRange(0)
	if w := g.ArcWeight(lo); w != 1 {
		t.Fatalf("unweighted ArcWeight = %v, want 1", w)
	}
}

func TestFeatures(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	g := mustBuild(t, b)
	if err := g.SetFeatures(2, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	f := g.Features(1)
	if len(f) != 2 || f[0] != 3 || f[1] != 4 {
		t.Fatalf("Features(1) = %v, want [3 4]", f)
	}
	if err := g.SetFeatures(2, []float64{1}); err == nil {
		t.Fatal("SetFeatures with wrong length succeeded")
	}
	if err := g.SetFeatures(0, nil); err == nil {
		t.Fatal("SetFeatures with dim 0 succeeded")
	}
}

func TestDegreeDistributionSums(t *testing.T) {
	b := NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(4, 5)
	g := mustBuild(t, b)
	p := g.DegreeDistribution()
	sum := 0.0
	for _, x := range p {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("degree distribution sums to %v, want 1", sum)
	}
	if p[3] != 1.0/6.0 {
		t.Fatalf("P(3) = %v, want 1/6 (vertex 0)", p[3])
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

// Property: on random undirected graphs, every arc u→v has a matching
// arc v→u, and total arcs = 2×edges.
func TestUndirectedSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		b := NewBuilder(n, false).Dedup()
		m := r.Intn(3 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.NumArcs() != 2*g.NumEdges() {
			return false
		}
		for u := uint32(0); int(u) < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the directed transpose cross-index round-trips every arc.
func TestTransposeCrossIndexProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		b := NewBuilder(n, true).Weighted()
		m := r.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddWeightedEdge(uint32(r.Intn(n)), uint32(r.Intn(n)), r.Float64())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var inArcs int64
		for v := uint32(0); int(v) < n; v++ {
			lo, hi := g.InArcRange(v)
			inArcs += hi - lo
			for a := lo; a < hi; a++ {
				out := g.InArcToOutArc(a)
				if g.ArcTarget(out) != v {
					return false
				}
				// The out-arc's source must be the in-arc's source; verify
				// by range membership.
				src := g.InArcSource(a)
				sLo, sHi := g.OutArcRange(src)
				if out < sLo || out >= sHi {
					return false
				}
			}
		}
		return inArcs == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
