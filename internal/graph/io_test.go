package graph

import (
	"bytes"
	"strings"
	"testing"

	"gcbench/internal/rng"
)

func TestEdgeListRoundTripUnweighted(t *testing.T) {
	b := NewBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := mustBuild(t, b)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestEdgeListRoundTripWeightedDirected(t *testing.T) {
	b := NewBuilder(4, true).Weighted()
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddWeightedEdge(2, 1, 1.25)
	b.AddWeightedEdge(3, 0, -2)
	g := mustBuild(t, b)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestEdgeListRoundTripProperty(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		directed := r.Intn(2) == 0
		b := NewBuilder(n, directed).Weighted().Dedup()
		for i := 0; i < r.Intn(60); i++ {
			b.AddWeightedEdge(uint32(r.Intn(n)), uint32(r.Intn(n)), float64(r.Intn(100))/4)
		}
		g := mustBuild(t, b)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertSameGraph(t, g, g2)
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertices: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edges: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	if a.Directed() != b.Directed() {
		t.Fatalf("directedness mismatch")
	}
	for u := uint32(0); int(u) < a.NumVertices(); u++ {
		if a.OutDegree(u) != b.OutDegree(u) {
			t.Fatalf("vertex %d out-degree %d vs %d", u, a.OutDegree(u), b.OutDegree(u))
		}
		// Compare neighbor+weight multisets.
		am := arcSet(a, u)
		bm := arcSet(b, u)
		if len(am) != len(bm) {
			t.Fatalf("vertex %d arc sets differ in size", u)
		}
		for k, v := range am {
			if bm[k] != v {
				t.Fatalf("vertex %d arc %v count %d vs %d", u, k, v, bm[k])
			}
		}
	}
}

type arcKey struct {
	target uint32
	weight float64
}

func arcSet(g *Graph, u uint32) map[arcKey]int {
	m := make(map[arcKey]int)
	lo, hi := g.OutArcRange(u)
	for a := lo; a < hi; a++ {
		m[arcKey{g.ArcTarget(a), g.ArcWeight(a)}]++
	}
	return m
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"no header\n0 1\n",
		"# gcbench n=0 directed=false weighted=false\n",
		"# gcbench n=2 directed=false weighted=false\n0\n",
		"# gcbench n=2 directed=false weighted=false\nx y\n",
		"# gcbench n=2 directed=false weighted=true\n0 1\n",
		"# gcbench n=2 directed=maybe weighted=false\n",
		"# gcbench n=2 bogus=1\n",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadEdgeList(%q) succeeded, want error", c)
		}
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	in := "# gcbench n=3 directed=false weighted=false\n# comment\n\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}
