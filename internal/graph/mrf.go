package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// MRF is a pairwise Markov Random Field: an undirected Graph whose vertices
// are discrete variables with per-variable cardinalities, unary potentials,
// and one pairwise potential table per edge. It is the input type of the
// Loopy Belief Propagation and Dual Decomposition algorithms.
//
// Potentials are stored in probability (not log) space, matching the UAI
// file format the paper's DD inputs use.
type MRF struct {
	G *Graph

	// Card[v] is the number of states of variable v.
	Card []int
	// Unary[v] has length Card[v].
	Unary [][]float64
	// Pairwise[e] is the table of logical edge e, row-major with the
	// lower-numbered endpoint as the row variable:
	// table[i*Card[hi] + j] = φ(lo=i, hi=j).
	Pairwise [][]float64

	// arcEdge maps each arc index to its logical edge index.
	arcEdge []int64
}

// NewMRF wraps an undirected graph with potentials. Cardinalities, unary
// and pairwise tables must be dimensionally consistent with g.
func NewMRF(g *Graph, card []int, unary, pairwise [][]float64) (*MRF, error) {
	if g.Directed() {
		return nil, fmt.Errorf("mrf: graph must be undirected")
	}
	n := g.NumVertices()
	if len(card) != n {
		return nil, fmt.Errorf("mrf: %d cardinalities for %d variables", len(card), n)
	}
	if len(unary) != n {
		return nil, fmt.Errorf("mrf: %d unary tables for %d variables", len(unary), n)
	}
	for v, c := range card {
		if c < 1 {
			return nil, fmt.Errorf("mrf: variable %d has cardinality %d", v, c)
		}
		if len(unary[v]) != c {
			return nil, fmt.Errorf("mrf: unary table of variable %d has %d entries, want %d",
				v, len(unary[v]), c)
		}
	}
	if int64(len(pairwise)) != g.NumEdges() {
		return nil, fmt.Errorf("mrf: %d pairwise tables for %d edges", len(pairwise), g.NumEdges())
	}

	m := &MRF{G: g, Card: card, Unary: unary, Pairwise: pairwise}
	if err := m.indexArcs(); err != nil {
		return nil, err
	}
	// Validate table shapes now that edges are indexed.
	seen := make([]bool, len(pairwise))
	for u := uint32(0); int(u) < n; u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			if v < u {
				continue
			}
			e := m.arcEdge[a]
			if seen[e] {
				continue
			}
			seen[e] = true
			want := card[u] * card[v]
			if len(pairwise[e]) != want {
				return nil, fmt.Errorf("mrf: pairwise table %d (edge %d-%d) has %d entries, want %d",
					e, u, v, len(pairwise[e]), want)
			}
		}
	}
	return m, nil
}

// indexArcs assigns logical edge indices to arcs: edges are numbered in
// order of their canonical (lo, hi) appearance scanning vertices by ID.
func (m *MRF) indexArcs() error {
	g := m.G
	m.arcEdge = make([]int64, g.NumArcs())
	edgeOf := make(map[uint64]int64, g.NumEdges())
	var next int64
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			cu, cv := u, v
			if cu > cv {
				cu, cv = cv, cu
			}
			key := uint64(cu)<<32 | uint64(cv)
			e, ok := edgeOf[key]
			if !ok {
				e = next
				next++
				edgeOf[key] = e
			}
			m.arcEdge[a] = e
		}
	}
	if next != g.NumEdges() {
		return fmt.Errorf("mrf: indexed %d distinct edges, graph reports %d (parallel edges?)",
			next, g.NumEdges())
	}
	return nil
}

// ArcEdge returns the logical edge index of arc a.
func (m *MRF) ArcEdge(a int64) int64 { return m.arcEdge[a] }

// PairwiseFor returns φ(xu, xv) for the edge held by arc a, where a is an
// out-arc of u targeting v — the orientation lookup the caller would
// otherwise have to repeat.
func (m *MRF) PairwiseFor(a int64, u uint32, xu, xv int) float64 {
	v := m.G.ArcTarget(a)
	t := m.Pairwise[m.arcEdge[a]]
	if u < v {
		return t[xu*m.Card[v]+xv]
	}
	return t[xv*m.Card[u]+xu]
}

// WriteUAI writes the MRF in the UAI MARKOV file format (the PIC2011
// format the paper's DD inputs use): preamble with variable cardinalities
// and factor scopes, then one table per factor. Unary factors come first
// (one per variable), then pairwise factors in logical-edge order.
func WriteUAI(w io.Writer, m *MRF) error {
	bw := bufio.NewWriter(w)
	n := m.G.NumVertices()
	fmt.Fprintln(bw, "MARKOV")
	fmt.Fprintln(bw, n)
	for v := 0; v < n; v++ {
		if v > 0 {
			fmt.Fprint(bw, " ")
		}
		fmt.Fprint(bw, m.Card[v])
	}
	fmt.Fprintln(bw)

	// Collect edges in logical order: (lo, hi) per edge index.
	edges := m.edgeEndpoints()
	fmt.Fprintln(bw, n+len(edges))
	for v := 0; v < n; v++ {
		fmt.Fprintf(bw, "1 %d\n", v)
	}
	for _, e := range edges {
		fmt.Fprintf(bw, "2 %d %d\n", e[0], e[1])
	}
	fmt.Fprintln(bw)
	for v := 0; v < n; v++ {
		fmt.Fprintln(bw, len(m.Unary[v]))
		writeTable(bw, m.Unary[v])
	}
	for i := range edges {
		fmt.Fprintln(bw, len(m.Pairwise[i]))
		writeTable(bw, m.Pairwise[i])
	}
	return bw.Flush()
}

// edgeEndpoints returns the canonical (lo, hi) endpoints of each logical
// edge in edge-index order.
func (m *MRF) edgeEndpoints() [][2]uint32 {
	edges := make([][2]uint32, m.G.NumEdges())
	seen := make([]bool, m.G.NumEdges())
	for u := uint32(0); int(u) < m.G.NumVertices(); u++ {
		lo, hi := m.G.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := m.G.ArcTarget(a)
			e := m.arcEdge[a]
			if seen[e] {
				continue
			}
			seen[e] = true
			if u < v {
				edges[e] = [2]uint32{u, v}
			} else {
				edges[e] = [2]uint32{v, u}
			}
		}
	}
	return edges
}

func writeTable(bw *bufio.Writer, t []float64) {
	for i, x := range t {
		if i > 0 {
			fmt.Fprint(bw, " ")
		}
		fmt.Fprintf(bw, "%g", x)
	}
	fmt.Fprintln(bw)
}

// ReadUAI parses a pairwise UAI MARKOV network. Factors with scope size 1
// become unary potentials (multiplied together if a variable appears in
// several), scope size 2 become pairwise tables; larger scopes are
// rejected, as in the paper only pairwise MRFs are used.
func ReadUAI(r io.Reader) (*MRF, error) {
	tok := newTokenizer(r)
	kind, err := tok.word()
	if err != nil {
		return nil, err
	}
	if kind != "MARKOV" {
		return nil, fmt.Errorf("uai: expected MARKOV network, got %q", kind)
	}
	n, err := tok.nonNegInt("variable count")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("uai: zero variables")
	}
	card := make([]int, n)
	for i := range card {
		c, err := tok.nonNegInt("cardinality")
		if err != nil {
			return nil, err
		}
		if c < 1 {
			return nil, fmt.Errorf("uai: variable %d has cardinality %d", i, c)
		}
		card[i] = c
	}
	numFactors, err := tok.nonNegInt("factor count")
	if err != nil {
		return nil, err
	}
	scopes := make([][]int, numFactors)
	for f := 0; f < numFactors; f++ {
		sz, err := tok.nonNegInt("scope size")
		if err != nil {
			return nil, err
		}
		if sz < 1 || sz > 2 {
			return nil, fmt.Errorf("uai: factor %d has scope size %d; only pairwise MRFs supported", f, sz)
		}
		scope := make([]int, sz)
		for i := range scope {
			v, err := tok.nonNegInt("scope variable")
			if err != nil {
				return nil, err
			}
			if v >= n {
				return nil, fmt.Errorf("uai: factor %d references variable %d ≥ n=%d", f, v, n)
			}
			scope[i] = v
		}
		scopes[f] = scope
	}

	unary := make([][]float64, n)
	for v := 0; v < n; v++ {
		unary[v] = uniformTable(card[v])
	}
	// Pairwise factors keyed by canonical (lo, hi) pair; repeated factors
	// over the same pair multiply together.
	pairTables := make(map[uint64][]float64)
	var pairOrder []uint64
	for f := 0; f < numFactors; f++ {
		entries, err := tok.nonNegInt("table size")
		if err != nil {
			return nil, err
		}
		table := make([]float64, entries)
		for i := range table {
			x, err := tok.float("table entry")
			if err != nil {
				return nil, err
			}
			table[i] = x
		}
		scope := scopes[f]
		switch len(scope) {
		case 1:
			v := scope[0]
			if entries != card[v] {
				return nil, fmt.Errorf("uai: unary factor %d has %d entries, variable %d has cardinality %d",
					f, entries, v, card[v])
			}
			for i := range unary[v] {
				unary[v][i] *= table[i]
			}
		case 2:
			u, v := scope[0], scope[1]
			if u == v {
				return nil, fmt.Errorf("uai: pairwise factor %d has a repeated variable %d", f, u)
			}
			if entries != card[u]*card[v] {
				return nil, fmt.Errorf("uai: pairwise factor %d has %d entries, want %d",
					f, entries, card[u]*card[v])
			}
			// Canonicalize to lo-major order.
			if u > v {
				table = transposeTable(table, card[u], card[v])
				u, v = v, u
			}
			key := uint64(uint32(u))<<32 | uint64(uint32(v))
			if prev, ok := pairTables[key]; ok {
				for i := range prev {
					prev[i] *= table[i]
				}
			} else {
				pairTables[key] = table
				pairOrder = append(pairOrder, key)
			}
		}
	}

	b := NewBuilder(n, false)
	for _, key := range pairOrder {
		b.AddEdge(uint32(key>>32), uint32(key))
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	m, err := NewMRF(g, card, unary, tablesInScanOrder(g, pairTables))
	if err != nil {
		return nil, err
	}
	return m, nil
}

// tablesInScanOrder arranges pairwise tables into the MRF's CSR-scan edge
// numbering (edges numbered in order of first appearance scanning vertices
// by ID).
func tablesInScanOrder(g *Graph, byKey map[uint64][]float64) [][]float64 {
	out := make([][]float64, 0, g.NumEdges())
	seen := make(map[uint64]bool, len(byKey))
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			cu, cv := u, v
			if cu > cv {
				cu, cv = cv, cu
			}
			key := uint64(cu)<<32 | uint64(cv)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, byKey[key])
		}
	}
	return out
}

func uniformTable(n int) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = 1
	}
	return t
}

// transposeTable converts a rows×cols row-major table to cols×rows.
func transposeTable(t []float64, rows, cols int) []float64 {
	out := make([]float64, len(t))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[j*rows+i] = t[i*cols+j]
		}
	}
	return out
}

// tokenizer splits an io.Reader into whitespace-separated tokens with
// 1-based position tracking for error messages.
type tokenizer struct {
	sc  *bufio.Scanner
	pos int
}

func newTokenizer(r io.Reader) *tokenizer {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	return &tokenizer{sc: sc}
}

func (t *tokenizer) word() (string, error) {
	if !t.sc.Scan() {
		if err := t.sc.Err(); err != nil {
			return "", fmt.Errorf("uai: read error at token %d: %v", t.pos, err)
		}
		return "", fmt.Errorf("uai: unexpected end of input at token %d", t.pos)
	}
	t.pos++
	return t.sc.Text(), nil
}

func (t *tokenizer) nonNegInt(what string) (int, error) {
	w, err := t.word()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(w)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("uai: token %d: bad %s %q", t.pos, what, w)
	}
	return v, nil
}

func (t *tokenizer) float(what string) (float64, error) {
	w, err := t.word()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(w, 64)
	if err != nil {
		return 0, fmt.Errorf("uai: token %d: bad %s %q", t.pos, what, w)
	}
	return v, nil
}
