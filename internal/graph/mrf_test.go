package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// triangleMRF builds a 3-variable pairwise MRF on a triangle for tests.
func triangleMRF(t *testing.T) *MRF {
	t.Helper()
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := mustBuild(t, b)

	card := []int{2, 2, 3}
	unary := [][]float64{{0.4, 0.6}, {0.5, 0.5}, {0.2, 0.3, 0.5}}
	// Edge scan order from vertex 0: (0,1), (0,2), then (1,2).
	pairwise := [][]float64{
		{1, 2, 3, 4},       // 0-1: 2×2
		{1, 2, 3, 4, 5, 6}, // 0-2: 2×3
		{6, 5, 4, 3, 2, 1}, // 1-2: 2×3
	}
	m, err := NewMRF(g, card, unary, pairwise)
	if err != nil {
		t.Fatalf("NewMRF: %v", err)
	}
	return m
}

func TestMRFArcEdgeConsistency(t *testing.T) {
	m := triangleMRF(t)
	g := m.G
	// Both arcs of each edge must map to the same logical edge index.
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			e := m.ArcEdge(a)
			// Find the reverse arc.
			rlo, rhi := g.OutArcRange(v)
			found := false
			for ra := rlo; ra < rhi; ra++ {
				if g.ArcTarget(ra) == u && m.ArcEdge(ra) == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d: reverse arc maps to a different edge index", u, v)
			}
		}
	}
}

func TestMRFPairwiseForOrientation(t *testing.T) {
	m := triangleMRF(t)
	g := m.G
	// For the 0-2 edge (2×3 table {1..6}), φ(x0=1, x2=2) = 6 regardless of
	// which endpoint's arc we query through.
	lo, hi := g.OutArcRange(0)
	for a := lo; a < hi; a++ {
		if g.ArcTarget(a) == 2 {
			if got := m.PairwiseFor(a, 0, 1, 2); got != 6 {
				t.Fatalf("PairwiseFor from 0: got %v, want 6", got)
			}
		}
	}
	lo, hi = g.OutArcRange(2)
	for a := lo; a < hi; a++ {
		if g.ArcTarget(a) == 0 {
			// From vertex 2's perspective xu=x2=2, xv=x0=1.
			if got := m.PairwiseFor(a, 2, 2, 1); got != 6 {
				t.Fatalf("PairwiseFor from 2: got %v, want 6", got)
			}
		}
	}
}

func TestMRFValidation(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1)
	g := mustBuild(t, b)

	if _, err := NewMRF(g, []int{2}, nil, nil); err == nil {
		t.Fatal("wrong cardinality count accepted")
	}
	if _, err := NewMRF(g, []int{2, 0}, [][]float64{{1, 1}, {}}, [][]float64{{1, 1, 1, 1}}); err == nil {
		t.Fatal("zero cardinality accepted")
	}
	if _, err := NewMRF(g, []int{2, 2}, [][]float64{{1, 1}, {1}}, [][]float64{{1, 1, 1, 1}}); err == nil {
		t.Fatal("wrong unary size accepted")
	}
	if _, err := NewMRF(g, []int{2, 2}, [][]float64{{1, 1}, {1, 1}}, [][]float64{{1, 1}}); err == nil {
		t.Fatal("wrong pairwise size accepted")
	}
	bd := NewBuilder(2, true)
	bd.AddEdge(0, 1)
	gd := mustBuild(t, bd)
	if _, err := NewMRF(gd, []int{2, 2}, [][]float64{{1, 1}, {1, 1}}, [][]float64{{1, 1, 1, 1}}); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestUAIRoundTrip(t *testing.T) {
	m := triangleMRF(t)
	var buf bytes.Buffer
	if err := WriteUAI(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadUAI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.G.NumVertices() != 3 || m2.G.NumEdges() != 3 {
		t.Fatalf("round trip: %d vertices %d edges", m2.G.NumVertices(), m2.G.NumEdges())
	}
	for v := 0; v < 3; v++ {
		if m2.Card[v] != m.Card[v] {
			t.Fatalf("cardinality of %d: %d vs %d", v, m2.Card[v], m.Card[v])
		}
		for i := range m.Unary[v] {
			if math.Abs(m2.Unary[v][i]-m.Unary[v][i]) > 1e-12 {
				t.Fatalf("unary[%d][%d] = %v, want %v", v, i, m2.Unary[v][i], m.Unary[v][i])
			}
		}
	}
	for e := range m.Pairwise {
		for i := range m.Pairwise[e] {
			if math.Abs(m2.Pairwise[e][i]-m.Pairwise[e][i]) > 1e-12 {
				t.Fatalf("pairwise[%d][%d] = %v, want %v", e, i, m2.Pairwise[e][i], m.Pairwise[e][i])
			}
		}
	}
}

func TestReadUAITransposesReversedScope(t *testing.T) {
	// A factor written with scope (1, 0) must land transposed so that
	// PairwiseFor sees the same values.
	in := `MARKOV
2
2 3
1
2 1 0
6
1 2 3 4 5 6
`
	m, err := ReadUAI(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Scope (1,0): table rows indexed by x1 (card 3... wait card[1]=3).
	// card = [2 3]; scope (1, 0) means rows = x1 (card 3), cols = x0 (card 2):
	// φ(x1=i, x0=j) = table[i*2+j]. After canonicalization φ(x0=j, x1=i)
	// must equal the same value.
	g := m.G
	lo, hi := g.OutArcRange(0)
	for a := lo; a < hi; a++ {
		for x0 := 0; x0 < 2; x0++ {
			for x1 := 0; x1 < 3; x1++ {
				want := float64(x1*2 + x0 + 1)
				if got := m.PairwiseFor(a, 0, x0, x1); got != want {
					t.Fatalf("φ(x0=%d,x1=%d) = %v, want %v", x0, x1, got, want)
				}
			}
		}
	}
}

func TestReadUAIMergesDuplicateFactors(t *testing.T) {
	in := `MARKOV
2
2 2
2
2 0 1
2 0 1
4
1 2 3 4
4
2 2 2 2
`
	m, err := ReadUAI(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.G.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", m.G.NumEdges())
	}
	want := []float64{2, 4, 6, 8}
	for i, x := range m.Pairwise[0] {
		if x != want[i] {
			t.Fatalf("merged table[%d] = %v, want %v", i, x, want[i])
		}
	}
}

func TestReadUAIUnaryFactors(t *testing.T) {
	in := `MARKOV
2
2 2
3
1 0
1 1
2 0 1
2
0.3 0.7
2
0.9 0.1
4
1 1 1 1
`
	m, err := ReadUAI(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Unary[0][0] != 0.3 || m.Unary[0][1] != 0.7 {
		t.Fatalf("unary[0] = %v", m.Unary[0])
	}
	if m.Unary[1][0] != 0.9 || m.Unary[1][1] != 0.1 {
		t.Fatalf("unary[1] = %v", m.Unary[1])
	}
}

func TestReadUAIErrors(t *testing.T) {
	cases := map[string]string{
		"bayes net":      "BAYES\n1\n2\n0\n",
		"truncated":      "MARKOV\n3\n2 2",
		"zero vars":      "MARKOV\n0\n0\n",
		"bad card":       "MARKOV\n1\n0\n0\n",
		"triple factor":  "MARKOV\n3\n2 2 2\n1\n3 0 1 2\n8\n1 1 1 1 1 1 1 1\n",
		"var oob":        "MARKOV\n2\n2 2\n1\n2 0 5\n4\n1 1 1 1\n",
		"self pair":      "MARKOV\n2\n2 2\n1\n2 1 1\n4\n1 1 1 1\n",
		"bad table size": "MARKOV\n2\n2 2\n1\n2 0 1\n3\n1 1 1\n",
		"bad unary size": "MARKOV\n2\n2 2\n1\n1 0\n3\n1 1 1\n",
		"bad float":      "MARKOV\n2\n2 2\n1\n2 0 1\n4\n1 1 x 1\n",
	}
	for name, in := range cases {
		if _, err := ReadUAI(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: ReadUAI succeeded, want error", name)
		}
	}
}
