package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable CSR Graph.
//
// For undirected graphs, AddEdge(u, v) stores the edge once and Build
// materializes both arcs. For directed graphs, AddEdge adds a single arc
// and Build additionally constructs the transposed (in-) adjacency.
type Builder struct {
	n        int
	directed bool
	weighted bool

	src, dst []uint32
	w        []float64

	// Build options.
	dedup         bool
	sortAdj       bool
	dropSelfLoops bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed, dropSelfLoops: true}
}

// Weighted declares that edges carry weights; must be called before the
// first AddEdge that supplies a weight.
func (b *Builder) Weighted() *Builder { b.weighted = true; return b }

// Dedup requests removal of duplicate edges at Build time (parallel arcs
// between the same pair collapse to one; for weighted graphs the first
// weight wins).
func (b *Builder) Dedup() *Builder { b.dedup = true; return b }

// SortAdjacency requests neighbor lists sorted by vertex ID (needed by
// triangle counting's sorted-merge intersection).
func (b *Builder) SortAdjacency() *Builder { b.sortAdj = true; return b }

// KeepSelfLoops retains self-loop edges, which are dropped by default.
func (b *Builder) KeepSelfLoops() *Builder { b.dropSelfLoops = false; return b }

// AddEdge records an edge (or arc, for directed graphs) from u to v with
// weight 1.
func (b *Builder) AddEdge(u, v uint32) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records an edge from u to v with the given weight.
func (b *Builder) AddWeightedEdge(u, v uint32, w float64) {
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	if b.weighted {
		b.w = append(b.w, w)
	}
}

// NumPending returns the number of edges recorded so far.
func (b *Builder) NumPending() int { return len(b.src) }

// Build materializes the CSR graph. The Builder must not be reused after.
func (b *Builder) Build() (*Graph, error) {
	if b.n <= 0 {
		return nil, fmt.Errorf("graph: builder needs a positive vertex count, got %d", b.n)
	}
	if b.n > 1<<31 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds uint32 ID space", b.n)
	}
	for i := range b.src {
		if int(b.src[i]) >= b.n || int(b.dst[i]) >= b.n {
			return nil, fmt.Errorf("graph: edge %d (%d→%d) references vertex ≥ n=%d",
				i, b.src[i], b.dst[i], b.n)
		}
	}
	// A weighted graph stays weighted even with zero surviving edges
	// (Graph.Weighted derives from a non-nil weight slice).
	if b.weighted && b.w == nil {
		b.w = []float64{}
	}

	// Filter self-loops up front.
	if b.dropSelfLoops {
		k := 0
		for i := range b.src {
			if b.src[i] == b.dst[i] {
				continue
			}
			b.src[k], b.dst[k] = b.src[i], b.dst[i]
			if b.weighted {
				b.w[k] = b.w[i]
			}
			k++
		}
		b.src, b.dst = b.src[:k], b.dst[:k]
		if b.weighted {
			b.w = b.w[:k]
		}
	}

	if b.dedup {
		b.dedupEdges()
	}

	g := &Graph{
		numVertices: b.n,
		directed:    b.directed,
		adjSorted:   b.sortAdj,
	}

	if b.directed {
		g.numEdges = int64(len(b.src))
		g.outOff, g.outAdj, g.outW = buildCSR(b.n, b.src, b.dst, b.w, b.sortAdj)
		// Transpose, tracking the originating out-arc of each in-arc.
		g.inOff, g.inAdj, g.inArc = buildTranspose(b.n, g.outOff, g.outAdj)
	} else {
		g.numEdges = int64(len(b.src))
		// Double every edge into both directions.
		src2 := make([]uint32, 0, 2*len(b.src))
		dst2 := make([]uint32, 0, 2*len(b.src))
		var w2 []float64
		if b.weighted {
			w2 = make([]float64, 0, 2*len(b.w))
		}
		for i := range b.src {
			src2 = append(src2, b.src[i], b.dst[i])
			dst2 = append(dst2, b.dst[i], b.src[i])
			if b.weighted {
				w2 = append(w2, b.w[i], b.w[i])
			}
		}
		g.outOff, g.outAdj, g.outW = buildCSR(b.n, src2, dst2, w2, b.sortAdj)
		g.inOff, g.inAdj, g.inArc = g.outOff, g.outAdj, nil
	}
	return g, nil
}

// dedupEdges removes parallel edges in-place. For undirected builders the
// canonical key orders endpoints so (u,v) and (v,u) collapse.
func (b *Builder) dedupEdges() {
	type rec struct {
		key uint64
		pos int
	}
	recs := make([]rec, len(b.src))
	for i := range b.src {
		u, v := b.src[i], b.dst[i]
		if !b.directed && u > v {
			u, v = v, u
		}
		recs[i] = rec{uint64(u)<<32 | uint64(v), i}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		return recs[i].pos < recs[j].pos
	})
	src := make([]uint32, 0, len(b.src))
	dst := make([]uint32, 0, len(b.dst))
	var w []float64
	if b.weighted {
		w = make([]float64, 0, len(b.w))
	}
	var prev uint64 = ^uint64(0)
	for _, r := range recs {
		if r.key == prev {
			continue
		}
		prev = r.key
		src = append(src, b.src[r.pos])
		dst = append(dst, b.dst[r.pos])
		if b.weighted {
			w = append(w, b.w[r.pos])
		}
	}
	b.src, b.dst, b.w = src, dst, w
}

// buildCSR counting-sorts arcs by source into offset/adjacency arrays.
func buildCSR(n int, src, dst []uint32, w []float64, sortAdj bool) ([]int64, []uint32, []float64) {
	off := make([]int64, n+1)
	for _, u := range src {
		off[u+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	adj := make([]uint32, len(src))
	var weights []float64
	if w != nil {
		weights = make([]float64, len(src))
	}
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for i := range src {
		p := cursor[src[i]]
		cursor[src[i]]++
		adj[p] = dst[i]
		if w != nil {
			weights[p] = w[i]
		}
	}
	if sortAdj {
		for v := 0; v < n; v++ {
			lo, hi := off[v], off[v+1]
			if weights == nil {
				s := adj[lo:hi]
				sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			} else {
				sortArcsByTarget(adj[lo:hi], weights[lo:hi])
			}
		}
	}
	return off, adj, weights
}

// sortArcsByTarget co-sorts an adjacency slice and its weights by target ID.
func sortArcsByTarget(adj []uint32, w []float64) {
	idx := make([]int, len(adj))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return adj[idx[i]] < adj[idx[j]] })
	adjCopy := append([]uint32(nil), adj...)
	wCopy := append([]float64(nil), w...)
	for i, p := range idx {
		adj[i] = adjCopy[p]
		w[i] = wCopy[p]
	}
}

// buildTranspose constructs in-adjacency from out-CSR, recording for each
// in-arc the out-arc index it mirrors.
func buildTranspose(n int, outOff []int64, outAdj []uint32) (inOff []int64, inAdj []uint32, inArc []int64) {
	inOff = make([]int64, n+1)
	for _, v := range outAdj {
		inOff[v+1]++
	}
	for i := 1; i <= n; i++ {
		inOff[i] += inOff[i-1]
	}
	inAdj = make([]uint32, len(outAdj))
	inArc = make([]int64, len(outAdj))
	cursor := make([]int64, n)
	copy(cursor, inOff[:n])
	for u := 0; u < n; u++ {
		for a := outOff[u]; a < outOff[u+1]; a++ {
			v := outAdj[a]
			p := cursor[v]
			cursor[v]++
			inAdj[p] = uint32(u)
			inArc[p] = a
		}
	}
	return
}
