// Package graph provides the immutable compressed-sparse-row (CSR) graph
// representation shared by every algorithm and the GAS engine.
//
// A Graph stores out-adjacency (and, for directed graphs, in-adjacency) in
// flat arrays for cache-friendly sequential scans — the access pattern the
// engine's gather and scatter phases are built around. Vertex identifiers
// are dense uint32 indices in [0, NumVertices).
//
// Terminology: an *edge* is a logical connection as counted by the paper's
// nedges parameter. An *arc* is a directed CSR slot; an undirected edge
// occupies two arcs (u→v and v→u). Per-arc algorithm state (e.g. belief
// propagation messages, one per direction) is indexed by arc position.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an immutable CSR graph. Construct one with a Builder or a
// generator from internal/gen; the zero value is an empty graph.
type Graph struct {
	numVertices int
	numEdges    int64 // logical edges (undirected edges counted once)
	directed    bool

	outOff []int64  // len numVertices+1
	outAdj []uint32 // len = arcs
	outW   []float64

	// For directed graphs, the transposed adjacency. For undirected graphs
	// these alias the out arrays (every edge is stored in both directions).
	inOff []int64
	inAdj []uint32
	// inArc[i] is the out-arc index holding the same logical edge as
	// in-arc i, so per-arc data written on out-arcs is reachable from the
	// in-side. For undirected graphs inArc is nil and in-arc i IS out-arc i.
	inArc []int64

	adjSorted bool

	// Lazily computed reverse-arc mapping for undirected graphs.
	revOnce sync.Once
	revArcs []int64

	// Optional per-vertex feature vectors (e.g. 2-D points for K-Means,
	// pixel priors for LBP), stored flattened: vertex v owns
	// features[v*featureDim : (v+1)*featureDim].
	featureDim int
	features   []float64
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of logical edges (the paper's nedges).
func (g *Graph) NumEdges() int64 { return g.numEdges }

// NumArcs returns the number of directed CSR slots: NumEdges for directed
// graphs, 2×NumEdges for undirected ones (self-loops occupy one arc).
func (g *Graph) NumArcs() int64 { return int64(len(g.outAdj)) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.outW != nil }

// AdjSorted reports whether each adjacency list is sorted by neighbor ID
// (required by the triangle-counting intersection).
func (g *Graph) AdjSorted() bool { return g.adjSorted }

// OutDegree returns the number of out-arcs at v.
func (g *Graph) OutDegree(v uint32) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the number of in-arcs at v. For undirected graphs this
// equals OutDegree.
func (g *Graph) InDegree(v uint32) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns v's out-neighbor slice. The slice aliases internal
// storage and must not be modified.
func (g *Graph) OutNeighbors(v uint32) []uint32 {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns v's in-neighbor slice (aliases internal storage).
func (g *Graph) InNeighbors(v uint32) []uint32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutArcRange returns the half-open arc index range [lo, hi) of v's
// out-arcs; arc i connects v to g.ArcTarget(i) with weight g.ArcWeight(i).
func (g *Graph) OutArcRange(v uint32) (lo, hi int64) {
	return g.outOff[v], g.outOff[v+1]
}

// InArcRange returns the half-open in-arc index range of v.
func (g *Graph) InArcRange(v uint32) (lo, hi int64) {
	return g.inOff[v], g.inOff[v+1]
}

// ArcTarget returns the head vertex of out-arc i.
func (g *Graph) ArcTarget(i int64) uint32 { return g.outAdj[i] }

// InArcSource returns the tail vertex of in-arc i.
func (g *Graph) InArcSource(i int64) uint32 { return g.inAdj[i] }

// InArcToOutArc maps in-arc index i to the out-arc index storing the same
// logical edge. For undirected graphs the identity holds.
func (g *Graph) InArcToOutArc(i int64) int64 {
	if g.inArc == nil {
		return i
	}
	return g.inArc[i]
}

// ArcWeight returns the weight of out-arc i; 1.0 when unweighted.
func (g *Graph) ArcWeight(i int64) float64 {
	if g.outW == nil {
		return 1
	}
	return g.outW[i]
}

// FeatureDim returns the per-vertex feature dimensionality (0 if none).
func (g *Graph) FeatureDim() int { return g.featureDim }

// Features returns vertex v's feature vector (aliases internal storage),
// or nil when the graph carries no features.
func (g *Graph) Features(v uint32) []float64 {
	if g.features == nil {
		return nil
	}
	return g.features[int(v)*g.featureDim : (int(v)+1)*g.featureDim]
}

// SetFeatures attaches flattened per-vertex feature vectors. len(data) must
// equal NumVertices×dim.
func (g *Graph) SetFeatures(dim int, data []float64) error {
	if dim <= 0 {
		return fmt.Errorf("graph: feature dim must be positive, got %d", dim)
	}
	if len(data) != g.numVertices*dim {
		return fmt.Errorf("graph: feature data length %d != %d vertices × dim %d",
			len(data), g.numVertices, dim)
	}
	g.featureDim = dim
	g.features = data
	return nil
}

// HasEdge reports whether an out-arc u→v exists. O(log d) on sorted
// adjacency, O(d) otherwise.
func (g *Graph) HasEdge(u, v uint32) bool {
	adj := g.OutNeighbors(u)
	if g.adjSorted {
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		return i < len(adj) && adj[i] == v
	}
	for _, w := range adj {
		if w == v {
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum out-degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := uint32(0); int(v) < g.numVertices; v++ {
		if d := g.OutDegree(v); d > max {
			max = d
		}
	}
	return max
}

// DegreeDistribution returns P(k) for k = 0..MaxDegree: the fraction of
// vertices with out-degree k (the quantity of Eq. (1) in the paper).
func (g *Graph) DegreeDistribution() []float64 {
	counts := make([]int, g.MaxDegree()+1)
	for v := uint32(0); int(v) < g.numVertices; v++ {
		counts[g.OutDegree(v)]++
	}
	p := make([]float64, len(counts))
	n := float64(g.numVertices)
	for k, c := range counts {
		p[k] = float64(c) / n
	}
	return p
}
