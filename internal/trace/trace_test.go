package trace

import (
	"math"
	"testing"
	"time"
)

func sampleTrace() *RunTrace {
	return &RunTrace{
		NumVertices: 100,
		NumEdges:    1000,
		Converged:   true,
		Iterations: []IterationStats{
			{Iteration: 0, Active: 100, Updates: 100, EdgeReads: 2000, Messages: 500,
				ApplyTime: 2 * time.Millisecond, WallTime: 5 * time.Millisecond},
			{Iteration: 1, Active: 50, Updates: 50, EdgeReads: 1000, Messages: 100,
				ApplyTime: 1 * time.Millisecond, WallTime: 3 * time.Millisecond},
			{Iteration: 2, Active: 10, Updates: 10, EdgeReads: 200, Messages: 0,
				ApplyTime: 1 * time.Millisecond, WallTime: 2 * time.Millisecond},
		},
	}
}

func TestActiveFraction(t *testing.T) {
	tr := sampleTrace()
	af := tr.ActiveFraction()
	want := []float64{1.0, 0.5, 0.1}
	for i := range want {
		if math.Abs(af[i]-want[i]) > 1e-12 {
			t.Fatalf("active fraction = %v, want %v", af, want)
		}
	}
}

func TestMeans(t *testing.T) {
	tr := sampleTrace()
	if got := tr.MeanUpdates(); math.Abs(got-160.0/3) > 1e-9 {
		t.Fatalf("MeanUpdates = %v", got)
	}
	if got := tr.MeanEdgeReads(); math.Abs(got-3200.0/3) > 1e-9 {
		t.Fatalf("MeanEdgeReads = %v", got)
	}
	if got := tr.MeanMessages(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("MeanMessages = %v", got)
	}
	if got := tr.MeanApplySeconds(); math.Abs(got-0.004/3) > 1e-12 {
		t.Fatalf("MeanApplySeconds = %v", got)
	}
	if got := tr.TotalWall(); got != 10*time.Millisecond {
		t.Fatalf("TotalWall = %v", got)
	}
	if tr.NumIterations() != 3 {
		t.Fatalf("NumIterations = %d", tr.NumIterations())
	}
}

func TestEmptyTraceMeans(t *testing.T) {
	tr := &RunTrace{NumVertices: 10, NumEdges: 10}
	if tr.MeanUpdates() != 0 || tr.MeanEdgeReads() != 0 ||
		tr.MeanMessages() != 0 || tr.MeanApplySeconds() != 0 {
		t.Fatal("empty trace means not zero")
	}
	if len(tr.ActiveFraction()) != 0 {
		t.Fatal("empty trace has active series")
	}
}

// TestDegenerateTracesNeverNaN pins the guard behavior for traces that
// would otherwise divide by zero: zero (or negative) vertex counts and
// empty iteration lists must produce finite zeros, never NaN/Inf, so a
// corrupt or synthetic trace cannot poison a behavior space.
func TestDegenerateTracesNeverNaN(t *testing.T) {
	iters := []IterationStats{{Iteration: 0, Active: 5, Updates: 5, EdgeReads: 10, Messages: 3}}
	cases := []struct {
		name string
		tr   *RunTrace
		af   []float64
	}{
		{"zero vertices", &RunTrace{NumVertices: 0, NumEdges: 10, Iterations: iters}, []float64{0}},
		{"negative vertices", &RunTrace{NumVertices: -1, NumEdges: 10, Iterations: iters}, []float64{0}},
		{"empty iterations", &RunTrace{NumVertices: 10, NumEdges: 10}, nil},
		{"all zero", &RunTrace{}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			af := c.tr.ActiveFraction()
			if len(af) != len(c.af) {
				t.Fatalf("ActiveFraction length = %d, want %d", len(af), len(c.af))
			}
			for i, v := range af {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("ActiveFraction[%d] = %v", i, v)
				}
				if v != c.af[i] {
					t.Fatalf("ActiveFraction[%d] = %v, want %v", i, v, c.af[i])
				}
			}
			for name, v := range map[string]float64{
				"MeanUpdates":      c.tr.MeanUpdates(),
				"MeanEdgeReads":    c.tr.MeanEdgeReads(),
				"MeanMessages":     c.tr.MeanMessages(),
				"MeanApplySeconds": c.tr.MeanApplySeconds(),
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s = %v", name, v)
				}
			}
		})
	}
}

func TestTruncate(t *testing.T) {
	tr := sampleTrace()
	short := tr.Truncate(2)
	if short.NumIterations() != 2 {
		t.Fatalf("truncated length %d", short.NumIterations())
	}
	if short.Converged {
		t.Fatal("truncated trace still marked converged")
	}
	// Truncating at or beyond the length returns the original.
	if tr.Truncate(3) != tr || tr.Truncate(10) != tr {
		t.Fatal("no-op truncate did not return the receiver")
	}
	// Original untouched.
	if tr.NumIterations() != 3 || !tr.Converged {
		t.Fatal("Truncate mutated the original")
	}
}

// TestTruncateConstantBehaviorInvariant verifies the §5.6 premise: for a
// run with constant per-iteration behavior, truncation does not change
// the per-iteration means that define its behavior vector.
func TestTruncateConstantBehaviorInvariant(t *testing.T) {
	tr := &RunTrace{NumVertices: 10, NumEdges: 100}
	for i := 0; i < 50; i++ {
		tr.Iterations = append(tr.Iterations, IterationStats{
			Iteration: i, Active: 10, Updates: 10, EdgeReads: 200, Messages: 200,
			ApplyTime: time.Millisecond,
		})
	}
	short := tr.Truncate(5)
	if tr.MeanUpdates() != short.MeanUpdates() ||
		tr.MeanEdgeReads() != short.MeanEdgeReads() ||
		tr.MeanMessages() != short.MeanMessages() ||
		tr.MeanApplySeconds() != short.MeanApplySeconds() {
		t.Fatal("constant-behavior truncation changed the behavior vector")
	}
}
