// Package trace records per-iteration behavior of a graph computation —
// the raw measurements behind the paper's five metrics (active fraction,
// UPDT, WORK, EREAD, MSG).
package trace

import "time"

// IterationStats captures one synchronous GAS iteration.
type IterationStats struct {
	// Iteration is the 0-based iteration number.
	Iteration int `json:"iteration"`
	// Active is the number of active vertices at iteration start.
	Active int64 `json:"active"`
	// Updates is the number of vertex updates (apply calls) — the paper's
	// UPDT numerator.
	Updates int64 `json:"updates"`
	// EdgeReads is the number of gather operations ("the operation of
	// collecting data through an edge is called an edge read").
	EdgeReads int64 `json:"edgeReads"`
	// Messages is the number of scatter activation signals ("a signal is
	// called a message").
	Messages int64 `json:"messages"`
	// ApplyTime is time spent in the user-defined apply function — the
	// paper's WORK numerator.
	ApplyTime time.Duration `json:"applyTimeNs"`
	// WallTime is the full iteration wall-clock time.
	WallTime time.Duration `json:"wallTimeNs"`

	// Phase spans: wall-clock time of each of the iteration's barrier
	// phases. ApplyTime above is *summed worker busy* time (the WORK
	// numerator, unchanged); ApplyWall is the phase's elapsed time.
	GatherWall  time.Duration `json:"gatherWallNs"`
	ApplyWall   time.Duration `json:"applyWallNs"`
	ScatterWall time.Duration `json:"scatterWallNs"`
	// BarrierTime is the iteration's residual outside the three phases:
	// pre/post-iteration hooks, frontier bookkeeping and scheduling
	// slack. By construction GatherWall + ApplyWall + ScatterWall +
	// BarrierTime == WallTime.
	BarrierTime time.Duration `json:"barrierTimeNs"`
	// WorkerSpans attributes per-phase busy time to each engine worker
	// (chunk-granular timing, so a worker's busy time never exceeds the
	// phase wall time it ran under).
	WorkerSpans []WorkerSpan `json:"workerSpans,omitempty"`

	// GatherMode, ApplyMode and ScatterMode record the frontier schedule
	// each phase executed under ("dense" bitset chunk scan or "sparse"
	// compacted-frontier slices; empty when the phase ran no scan at
	// all). Execution strategy only — the behavior counters above are
	// invariant to it by construction.
	GatherMode  string `json:"gatherMode,omitempty"`
	ApplyMode   string `json:"applyMode,omitempty"`
	ScatterMode string `json:"scatterMode,omitempty"`
}

// WorkerSpan is one worker's busy time within one iteration, split by
// phase. The sum of Apply over workers equals IterationStats.ApplyTime.
type WorkerSpan struct {
	Worker  int           `json:"worker"`
	Gather  time.Duration `json:"gatherNs"`
	Apply   time.Duration `json:"applyNs"`
	Scatter time.Duration `json:"scatterNs"`
}

// RunTrace is the complete record of one graph computation.
type RunTrace struct {
	NumVertices int              `json:"numVertices"`
	NumEdges    int64            `json:"numEdges"`
	Iterations  []IterationStats `json:"iterations"`
	// Converged is false when the run stopped at the iteration cap
	// instead of by its own convergence condition.
	Converged bool `json:"converged"`
}

// NumIterations returns the number of iterations executed.
func (t *RunTrace) NumIterations() int { return len(t.Iterations) }

// ActiveFraction returns the per-iteration active fraction series —
// the paper's first behavior metric. A trace over zero vertices (or a
// negative count from a corrupt file) yields zeros, never NaN/Inf.
func (t *RunTrace) ActiveFraction() []float64 {
	out := make([]float64, len(t.Iterations))
	if t.NumVertices <= 0 {
		return out
	}
	n := float64(t.NumVertices)
	for i, it := range t.Iterations {
		out[i] = float64(it.Active) / n
	}
	return out
}

// MeanUpdates returns the average number of vertex updates per iteration
// (UPDT before per-edge normalization).
func (t *RunTrace) MeanUpdates() float64 {
	if len(t.Iterations) == 0 {
		return 0
	}
	var sum int64
	for _, it := range t.Iterations {
		sum += it.Updates
	}
	return float64(sum) / float64(len(t.Iterations))
}

// MeanEdgeReads returns the average number of edge reads per iteration
// (EREAD before per-edge normalization).
func (t *RunTrace) MeanEdgeReads() float64 {
	if len(t.Iterations) == 0 {
		return 0
	}
	var sum int64
	for _, it := range t.Iterations {
		sum += it.EdgeReads
	}
	return float64(sum) / float64(len(t.Iterations))
}

// MeanMessages returns the average number of messages per iteration
// (MSG before per-edge normalization).
func (t *RunTrace) MeanMessages() float64 {
	if len(t.Iterations) == 0 {
		return 0
	}
	var sum int64
	for _, it := range t.Iterations {
		sum += it.Messages
	}
	return float64(sum) / float64(len(t.Iterations))
}

// MeanApplySeconds returns the average apply-phase CPU seconds per
// iteration (WORK before per-edge normalization).
func (t *RunTrace) MeanApplySeconds() float64 {
	if len(t.Iterations) == 0 {
		return 0
	}
	var sum time.Duration
	for _, it := range t.Iterations {
		sum += it.ApplyTime
	}
	return sum.Seconds() / float64(len(t.Iterations))
}

// TotalWall returns the total wall-clock time across iterations.
func (t *RunTrace) TotalWall() time.Duration {
	var sum time.Duration
	for _, it := range t.Iterations {
		sum += it.WallTime
	}
	return sum
}

// Truncate returns a copy of the trace limited to the first k iterations,
// used by the paper's runtime-constrained ensembles (§5.6): algorithms with
// constant, repetitive behavior can be shortened without changing their
// behavior vector.
func (t *RunTrace) Truncate(k int) *RunTrace {
	if k >= len(t.Iterations) {
		return t
	}
	return &RunTrace{
		NumVertices: t.NumVertices,
		NumEdges:    t.NumEdges,
		Iterations:  t.Iterations[:k],
		Converged:   false,
	}
}
