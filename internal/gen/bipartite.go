package gen

import (
	"fmt"
	"math"

	"gcbench/internal/graph"
	"gcbench/internal/rng"
)

// BipartiteConfig parameterizes a Collaborative Filtering rating graph.
// Per §3.2 of the paper: source vertices of edges are users, targets are
// items, the edge weight is the rating, and the number of items equals the
// number of users.
type BipartiteConfig struct {
	// NumEdges is the target number of ratings (the paper's nedges).
	NumEdges int64
	// Alpha shapes the power-law popularity of both users and items.
	Alpha float64
	// Seed selects the random stream.
	Seed uint64
	// RatingMean and RatingStddev parameterize the Gaussian rating
	// distribution; zero values default to mean 3, stddev 1 (a 1-5 star
	// scale).
	RatingMean, RatingStddev float64
}

// Bipartite generates a user→item rating graph as a directed weighted
// graph. Vertices [0, U) are users, [U, U+I) are items, with U = I derived
// from nedges like PowerLaw. Users' out-degrees and items' in-degrees both
// follow the power law, produced by sampling each endpoint from its own
// Chung-Lu alias table.
func Bipartite(cfg BipartiteConfig) (*graph.Graph, int, error) {
	if cfg.NumEdges <= 0 {
		return nil, 0, fmt.Errorf("gen: NumEdges must be positive, got %d", cfg.NumEdges)
	}
	if cfg.Alpha <= 1 {
		return nil, 0, fmt.Errorf("gen: Alpha must exceed 1, got %v", cfg.Alpha)
	}
	mean := cfg.RatingMean
	if mean == 0 {
		mean = 3
	}
	stddev := cfg.RatingStddev
	if stddev == 0 {
		stddev = 1
	}
	r := rng.New(cfg.Seed)

	// Users and items each absorb one endpoint per edge, so size each side
	// by the degree-law mean directly.
	meanDeg := powerLawMean(100000, cfg.Alpha)
	users := int(float64(cfg.NumEdges) / meanDeg)
	if users < 2 {
		users = 2
	}
	items := users
	n := users + items

	kmax := maxDegreeFor(users)
	zipf, err := rng.NewZipf(kmax, cfg.Alpha)
	if err != nil {
		return nil, 0, err
	}
	userW := make([]float64, users)
	for i := range userW {
		userW[i] = float64(zipf.Draw(r))
	}
	itemW := make([]float64, items)
	for i := range itemW {
		itemW[i] = float64(zipf.Draw(r))
	}
	userAlias, err := rng.NewAlias(userW)
	if err != nil {
		return nil, 0, err
	}
	itemAlias, err := rng.NewAlias(itemW)
	if err != nil {
		return nil, 0, err
	}

	b := graph.NewBuilder(n, true).Weighted().Dedup()
	for i := int64(0); i < cfg.NumEdges; i++ {
		u := uint32(userAlias.Draw(r))
		v := uint32(users + itemAlias.Draw(r))
		rating := mean + stddev*r.NormFloat64()
		// Clamp to a positive scale so NMF's non-negativity holds.
		rating = math.Max(0.5, math.Min(rating, 2*mean-0.5))
		b.AddWeightedEdge(u, v, rating)
	}
	g, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return g, users, nil
}
