package gen

import (
	"math"
	"testing"

	"gcbench/internal/graph"
)

func TestPowerLawBasic(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumEdges: 5000, Alpha: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Directed() {
		t.Fatal("default power-law graph should be undirected")
	}
	// Dedup and self-loop removal shave some edges; expect within 25%.
	if g.NumEdges() < 3750 || g.NumEdges() > 5000 {
		t.Fatalf("NumEdges = %d, want within [3750, 5000]", g.NumEdges())
	}
	if g.NumVertices() < 100 {
		t.Fatalf("suspiciously few vertices: %d", g.NumVertices())
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{NumEdges: 2000, Alpha: 2.25, Seed: 42}
	a, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := uint32(0); int(v) < a.NumVertices(); v++ {
		if a.OutDegree(v) != b.OutDegree(v) {
			t.Fatalf("vertex %d degree differs: %d vs %d", v, a.OutDegree(v), b.OutDegree(v))
		}
	}
	c, err := PowerLaw(PowerLawConfig{NumEdges: 2000, Alpha: 2.25, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if degreesEqual(a, c) {
		t.Fatal("different seeds produced identical degree sequences")
	}
}

func degreesEqual(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	for v := uint32(0); int(v) < a.NumVertices(); v++ {
		if a.OutDegree(v) != b.OutDegree(v) {
			return false
		}
	}
	return true
}

// TestPowerLawTailExponent fits the realized degree distribution's tail and
// checks alpha ordering: a steeper configured alpha must produce a steeper
// realized tail (the property the sweep relies on).
func TestPowerLawTailExponent(t *testing.T) {
	slopes := make(map[float64]float64)
	for _, alpha := range []float64{2.0, 3.0} {
		g, err := PowerLaw(PowerLawConfig{NumEdges: 30000, Alpha: alpha, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		slopes[alpha] = fitTailSlope(g)
	}
	if slopes[3.0] >= slopes[2.0] {
		t.Fatalf("tail slope for alpha=3 (%v) not steeper than alpha=2 (%v)",
			slopes[3.0], slopes[2.0])
	}
}

// fitTailSlope least-squares fits log P(k) vs log k over k in [2, 30].
func fitTailSlope(g *graph.Graph) float64 {
	p := g.DegreeDistribution()
	var xs, ys []float64
	for k := 2; k < len(p) && k <= 30; k++ {
		if p[k] <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(k)))
		ys = append(ys, math.Log(p[k]))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func TestPowerLawHeavierTailForSmallerAlpha(t *testing.T) {
	gLow, err := PowerLaw(PowerLawConfig{NumEdges: 20000, Alpha: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gHigh, err := PowerLaw(PowerLawConfig{NumEdges: 20000, Alpha: 3.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gLow.MaxDegree() <= gHigh.MaxDegree() {
		t.Fatalf("alpha=2 max degree %d not above alpha=3 max degree %d",
			gLow.MaxDegree(), gHigh.MaxDegree())
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLaw(PowerLawConfig{NumEdges: 0, Alpha: 2.5}); err == nil {
		t.Fatal("NumEdges=0 accepted")
	}
	if _, err := PowerLaw(PowerLawConfig{NumEdges: 100, Alpha: 0.5}); err == nil {
		t.Fatal("Alpha=0.5 accepted")
	}
}

func TestPowerLawWeighted(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumEdges: 1000, Alpha: 2.5, Seed: 9, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("Weighted config produced unweighted graph")
	}
	for a := int64(0); a < g.NumArcs(); a++ {
		if g.ArcWeight(a) <= 0 {
			t.Fatalf("arc %d weight %v not positive", a, g.ArcWeight(a))
		}
	}
}

func TestPowerLawSorted(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumEdges: 1000, Alpha: 2.5, Seed: 5, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.AdjSorted() {
		t.Fatal("SortAdjacency not reflected")
	}
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		adj := g.OutNeighbors(v)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, adj)
			}
		}
	}
}

func TestGaussianPoints2D(t *testing.T) {
	pts := GaussianPoints2D(1000, 4, 10, 11)
	if len(pts) != 2000 {
		t.Fatalf("len = %d, want 2000", len(pts))
	}
	again := GaussianPoints2D(1000, 4, 10, 11)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("GaussianPoints2D not deterministic")
		}
	}
}

func TestBipartiteBasic(t *testing.T) {
	g, users, err := Bipartite(BipartiteConfig{NumEdges: 5000, Alpha: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || !g.Weighted() {
		t.Fatal("bipartite rating graph must be directed and weighted")
	}
	if users*2 != g.NumVertices() {
		t.Fatalf("users=%d but %d vertices; paper requires #items = #users", users, g.NumVertices())
	}
	// All arcs go user → item.
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		deg := g.OutDegree(u)
		if int(u) >= users && deg != 0 {
			t.Fatalf("item %d has %d out-arcs, want 0", u, deg)
		}
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			if int(g.ArcTarget(a)) < users {
				t.Fatalf("arc from %d targets user %d", u, g.ArcTarget(a))
			}
			w := g.ArcWeight(a)
			if w < 0.5 || w > 5.5 {
				t.Fatalf("rating %v outside clamp range", w)
			}
		}
	}
}

func TestBipartiteErrors(t *testing.T) {
	if _, _, err := Bipartite(BipartiteConfig{NumEdges: 0, Alpha: 2}); err == nil {
		t.Fatal("NumEdges=0 accepted")
	}
	if _, _, err := Bipartite(BipartiteConfig{NumEdges: 10, Alpha: 1}); err == nil {
		t.Fatal("Alpha=1 accepted")
	}
}

func TestMatrixDiagonallyDominant(t *testing.T) {
	sys, err := Matrix(JacobiConfig{NumRows: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := sys.G
	if g.NumVertices() != 500 {
		t.Fatalf("NumVertices = %d, want 500", g.NumVertices())
	}
	for i := uint32(0); int(i) < 500; i++ {
		if g.OutDegree(i) != 8 {
			t.Fatalf("row %d degree %d, want uniform 8", i, g.OutDegree(i))
		}
		var off float64
		lo, hi := g.OutArcRange(i)
		for a := lo; a < hi; a++ {
			off += math.Abs(g.ArcWeight(a))
		}
		if sys.Diag[i] <= off {
			t.Fatalf("row %d not strictly dominant: diag %v vs off-sum %v", i, sys.Diag[i], off)
		}
	}
}

func TestMatrixErrors(t *testing.T) {
	if _, err := Matrix(JacobiConfig{NumRows: 1}); err == nil {
		t.Fatal("NumRows=1 accepted")
	}
	if _, err := Matrix(JacobiConfig{NumRows: 5, Degree: 5}); err == nil {
		t.Fatal("Degree >= NumRows accepted")
	}
}

func TestGridStructure(t *testing.T) {
	m, err := Grid(GridConfig{Rows: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := m.G
	if g.NumVertices() != 100 {
		t.Fatalf("NumVertices = %d, want 100", g.NumVertices())
	}
	// 4-connected grid: 2·side·(side-1) edges.
	if g.NumEdges() != 180 {
		t.Fatalf("NumEdges = %d, want 180", g.NumEdges())
	}
	// Corner degree 2, edge 3, interior 4.
	if g.OutDegree(0) != 2 {
		t.Fatalf("corner degree %d, want 2", g.OutDegree(0))
	}
	if g.OutDegree(5) != 3 {
		t.Fatalf("border degree %d, want 3", g.OutDegree(5))
	}
	if g.OutDegree(55) != 4 {
		t.Fatalf("interior degree %d, want 4", g.OutDegree(55))
	}
	for v := 0; v < g.NumVertices(); v++ {
		if m.Card[v] != 3 {
			t.Fatalf("default States should be 3, got %d", m.Card[v])
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid(GridConfig{Rows: 1}); err == nil {
		t.Fatal("Rows=1 accepted")
	}
}

func TestMRFGenerator(t *testing.T) {
	m, err := MRF(MRFConfig{NumEdges: 1056, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.G.NumEdges() < 800 || m.G.NumEdges() > 1056 {
		t.Fatalf("NumEdges = %d, want near 1056", m.G.NumEdges())
	}
	for v := 0; v < m.G.NumVertices(); v++ {
		if m.Card[v] != 2 {
			t.Fatalf("default cardinality should be 2, got %d", m.Card[v])
		}
		for _, x := range m.Unary[v] {
			if x <= 0 {
				t.Fatal("non-positive unary potential")
			}
		}
	}
	for _, tab := range m.Pairwise {
		for _, x := range tab {
			if x <= 0 {
				t.Fatal("non-positive pairwise potential")
			}
		}
	}
}

func TestMRFErrors(t *testing.T) {
	if _, err := MRF(MRFConfig{NumEdges: 0}); err == nil {
		t.Fatal("NumEdges=0 accepted")
	}
}
