package gen

import (
	"fmt"
	"math"

	"gcbench/internal/graph"
	"gcbench/internal/rng"
)

// RMATConfig parameterizes a recursive-matrix (Kronecker) generator — the
// model behind the Graph 500 benchmark the paper's related work discusses
// (§6). It complements the Chung-Lu generator: R-MAT produces skewed
// degree distributions through recursive quadrant descent rather than an
// explicit degree law, and exhibits community-like self-similarity.
type RMATConfig struct {
	// Scale is log2 of the vertex count.
	Scale int
	// NumEdges is the target edge count.
	NumEdges int64
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). Zero values
	// default to the Graph 500 parameters (0.57, 0.19, 0.19).
	A, B, C float64
	// Seed selects the random stream.
	Seed uint64
	// Directed selects arc semantics.
	Directed bool
	// SortAdjacency orders neighbor lists.
	SortAdjacency bool
}

// RMAT generates a recursive-matrix graph.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d outside [1, 30]", cfg.Scale)
	}
	if cfg.NumEdges <= 0 {
		return nil, fmt.Errorf("gen: NumEdges must be positive, got %d", cfg.NumEdges)
	}
	a, b, c := cfg.A, cfg.B, cfg.C
	if a == 0 && b == 0 && c == 0 {
		a, b, c = 0.57, 0.19, 0.19
	}
	if a < 0 || b < 0 || c < 0 || a+b+c >= 1 {
		return nil, fmt.Errorf("gen: RMAT quadrant probabilities (%v, %v, %v) invalid", a, b, c)
	}
	r := rng.New(cfg.Seed)
	n := 1 << cfg.Scale

	builder := graph.NewBuilder(n, cfg.Directed).Dedup()
	if cfg.SortAdjacency {
		builder.SortAdjacency()
	}
	for i := int64(0); i < cfg.NumEdges; i++ {
		u, v := uint32(0), uint32(0)
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			x := r.Float64()
			switch {
			case x < a:
				// top-left: no bits set
			case x < a+b:
				v |= 1 << bit
			case x < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		builder.AddEdge(u, v)
	}
	return builder.Build()
}

// ErdosRenyiConfig parameterizes a uniform random graph — the opposite
// extreme from the scale-free generators: near-uniform degrees, like the
// paper's "graph derived from a linear solver" example (§1).
type ErdosRenyiConfig struct {
	// NumVertices is the vertex count.
	NumVertices int
	// NumEdges is the target edge count (G(n, m) model).
	NumEdges int64
	// Seed selects the random stream.
	Seed uint64
	// Directed selects arc semantics.
	Directed bool
	// SortAdjacency orders neighbor lists.
	SortAdjacency bool
}

// ErdosRenyi generates a uniform G(n, m) random graph.
func ErdosRenyi(cfg ErdosRenyiConfig) (*graph.Graph, error) {
	if cfg.NumVertices < 2 {
		return nil, fmt.Errorf("gen: NumVertices must be at least 2, got %d", cfg.NumVertices)
	}
	if cfg.NumEdges <= 0 {
		return nil, fmt.Errorf("gen: NumEdges must be positive, got %d", cfg.NumEdges)
	}
	maxEdges := int64(cfg.NumVertices) * int64(cfg.NumVertices-1) / 2
	if !cfg.Directed && cfg.NumEdges > maxEdges {
		return nil, fmt.Errorf("gen: %d edges exceed the %d possible on %d vertices",
			cfg.NumEdges, maxEdges, cfg.NumVertices)
	}
	r := rng.New(cfg.Seed)
	b := graph.NewBuilder(cfg.NumVertices, cfg.Directed).Dedup()
	if cfg.SortAdjacency {
		b.SortAdjacency()
	}
	// Sample with replacement and dedup; oversample to compensate when
	// density is non-trivial.
	target := cfg.NumEdges
	oversample := float64(target) / float64(maxEdges)
	extra := int64(float64(target) * (0.5*oversample + 0.01))
	for i := int64(0); i < target+extra; i++ {
		u := uint32(r.Intn(cfg.NumVertices))
		v := uint32(r.Intn(cfg.NumVertices))
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// DegreeCV returns the coefficient of variation of the out-degree
// distribution — the quantitative contrast between uniform and
// heavy-tailed graphs (≈0 for regular graphs, ≫1 for scale-free ones).
func DegreeCV(g *graph.Graph) float64 {
	n := g.NumVertices()
	var sum, sumSq float64
	for v := uint32(0); int(v) < n; v++ {
		d := float64(g.OutDegree(v))
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}
