package gen

import (
	"fmt"
	"math"

	"gcbench/internal/graph"
	"gcbench/internal/rng"
)

// MatrixSystem is a sparse diagonally dominant linear system A·x = b
// encoded as a weighted graph per §2.2 of the paper: each edge models a
// matrix element, source vertex = row, target vertex = column, weight =
// element value. The diagonal and right-hand side live alongside.
type MatrixSystem struct {
	G    *graph.Graph
	Diag []float64 // A[i][i], strictly dominant
	B    []float64 // right-hand side
}

// JacobiConfig parameterizes the linear-solver workload. The paper varies
// nrows in {5000, 10000, 15000, 20000} with uniform vertex degree.
type JacobiConfig struct {
	// NumRows is the matrix dimension (the paper's nrows).
	NumRows int
	// Degree is the uniform number of off-diagonal entries per row;
	// zero defaults to 8.
	Degree int
	// Seed selects the random stream.
	Seed uint64
}

// Matrix generates a square, diagonally dominant sparse system with
// uniform row degree — the Jacobi input ("a weighted graph with uniform
// degree for all vertices"). Off-diagonal values are Gaussian; the diagonal
// is set to 1 + Σ|offdiag| so Jacobi provably converges.
func Matrix(cfg JacobiConfig) (*MatrixSystem, error) {
	if cfg.NumRows <= 1 {
		return nil, fmt.Errorf("gen: NumRows must exceed 1, got %d", cfg.NumRows)
	}
	deg := cfg.Degree
	if deg == 0 {
		deg = 8
	}
	if deg >= cfg.NumRows {
		return nil, fmt.Errorf("gen: Degree %d must be below NumRows %d", deg, cfg.NumRows)
	}
	r := rng.New(cfg.Seed)
	n := cfg.NumRows

	b := graph.NewBuilder(n, true).Weighted()
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		// deg distinct off-diagonal columns per row: a fixed stride pattern
		// plus jitter keeps degree exactly uniform without rejection loops.
		for k := 1; k <= deg; k++ {
			j := (i + k*(n/(deg+1)) + r.Intn(n/(deg+1))) % n
			if j == i {
				j = (j + 1) % n
			}
			w := r.NormFloat64()
			b.AddWeightedEdge(uint32(i), uint32(j), w)
			rowSum[i] += math.Abs(w)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	diag := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = rowSum[i] + 1
		rhs[i] = r.NormFloat64()
	}
	return &MatrixSystem{G: g, Diag: diag, B: rhs}, nil
}

// GridConfig parameterizes the LBP workload: a square pixel matrix whose
// vertices carry prior estimates for each pixel color (§3.2).
type GridConfig struct {
	// Rows is the side length of the square pixel matrix (the paper's
	// nrows; the grid has Rows×Rows pixels).
	Rows int
	// States is the number of color states per pixel; zero defaults to 3.
	States int
	// Coupling is the Potts smoothing strength; zero defaults to 2.0.
	Coupling float64
	// Seed selects the random stream.
	Seed uint64
}

// Grid generates a 4-connected pixel-grid MRF with Gaussian-noised priors
// — the Loopy Belief Propagation input. The pairwise potential is a Potts
// smoother favoring equal neighboring states.
func Grid(cfg GridConfig) (*graph.MRF, error) {
	if cfg.Rows < 2 {
		return nil, fmt.Errorf("gen: Rows must be at least 2, got %d", cfg.Rows)
	}
	states := cfg.States
	if states == 0 {
		states = 3
	}
	coupling := cfg.Coupling
	if coupling == 0 {
		coupling = 2.0
	}
	r := rng.New(cfg.Seed)
	side := cfg.Rows
	n := side * side

	b := graph.NewBuilder(n, false)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := uint32(y*side + x)
			if x+1 < side {
				b.AddEdge(v, v+1)
			}
			if y+1 < side {
				b.AddEdge(v, v+uint32(side))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	card := make([]int, n)
	unary := make([][]float64, n)
	for v := 0; v < n; v++ {
		card[v] = states
		// Prior: a noisy one-hot over a smoothly varying "true" image, so
		// BP has real smoothing work to do.
		truth := ((v / side) / 4) % states
		u := make([]float64, states)
		for s := range u {
			noise := math.Abs(r.NormFloat64()) * 0.5
			if s == truth {
				u[s] = 2 + noise
			} else {
				u[s] = 0.5 + noise
			}
		}
		unary[v] = u
	}
	potts := make([]float64, states*states)
	for i := 0; i < states; i++ {
		for j := 0; j < states; j++ {
			if i == j {
				potts[i*states+j] = coupling
			} else {
				potts[i*states+j] = 1
			}
		}
	}
	pair := make([][]float64, g.NumEdges())
	for e := range pair {
		pair[e] = potts // shared read-only table
	}
	return graph.NewMRF(g, card, unary, pair)
}

// MRFConfig parameterizes the Dual Decomposition workload. The paper uses
// real PIC2011 UAI files with nedges in {1056, 1190, 1406, 1560}; this
// synthetic equivalent produces pairwise MRFs of matching size with mixed
// attractive/repulsive couplings, the regime those inference benchmarks
// stress.
type MRFConfig struct {
	// NumEdges is the target pairwise-factor count.
	NumEdges int64
	// States is the variable cardinality; zero defaults to 2 (Ising-like).
	States int
	// Seed selects the random stream.
	Seed uint64
}

// MRF generates a random pairwise Markov Random Field whose structure is a
// sparse power-law graph and whose potentials mix attractive and repulsive
// couplings with Gaussian strengths.
func MRF(cfg MRFConfig) (*graph.MRF, error) {
	if cfg.NumEdges <= 0 {
		return nil, fmt.Errorf("gen: NumEdges must be positive, got %d", cfg.NumEdges)
	}
	states := cfg.States
	if states == 0 {
		states = 2
	}
	g, err := PowerLaw(PowerLawConfig{
		NumEdges: cfg.NumEdges,
		Alpha:    2.5,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed + 0x9e37)
	n := g.NumVertices()
	card := make([]int, n)
	unary := make([][]float64, n)
	for v := 0; v < n; v++ {
		card[v] = states
		u := make([]float64, states)
		for s := range u {
			u[s] = math.Exp(0.5 * r.NormFloat64())
		}
		unary[v] = u
	}
	pair := make([][]float64, g.NumEdges())
	for e := range pair {
		strength := r.NormFloat64() // sign decides attractive vs repulsive
		t := make([]float64, states*states)
		for i := 0; i < states; i++ {
			for j := 0; j < states; j++ {
				if i == j {
					t[i*states+j] = math.Exp(strength)
				} else {
					t[i*states+j] = math.Exp(-strength)
				}
			}
		}
		pair[e] = t
	}
	return graph.NewMRF(g, card, unary, pair)
}
