// Package gen provides the synthetic graph generators behind the paper's
// Table 2 workloads: power-law graphs for Graph Analytics and Clustering,
// bipartite rating graphs for Collaborative Filtering, diagonally dominant
// matrix graphs for the Jacobi solver, pixel-grid MRFs for Loopy Belief
// Propagation, and general pairwise MRFs for Dual Decomposition.
//
// All generators are deterministic given a seed and parameterized the way
// the paper parameterizes them: by target edge count nedges and power-law
// exponent alpha (Eq. 1), with vertex data and edge weights drawn from
// Gaussian distributions (§3.2).
package gen

import (
	"fmt"
	"math"

	"gcbench/internal/graph"
	"gcbench/internal/rng"
)

// PowerLawConfig parameterizes a scale-free graph in the paper's terms.
type PowerLawConfig struct {
	// NumEdges is the target edge count (the paper's nedges). The realized
	// count after self-loop/duplicate removal is slightly lower, mirroring
	// the paper's "accepting slight variation" note.
	NumEdges int64
	// Alpha is the power-law exponent of Eq. (1), typically in [2, 3].
	Alpha float64
	// Seed selects the random stream.
	Seed uint64
	// Directed selects arc semantics; Graph Analytics inputs are
	// undirected per §3.2.
	Directed bool
	// SortAdjacency orders neighbor lists (triangle counting needs it).
	SortAdjacency bool
	// Weighted draws Gaussian edge weights |N(0,1)|+0.1 when set.
	Weighted bool
}

// PowerLaw generates a scale-free graph with degree distribution
// P(k) ~ k^-alpha using the Chung-Lu expected-degree model: each vertex
// draws an expected degree from the power law, and nedges endpoint pairs
// are sampled proportionally to those weights through an alias table.
//
// The vertex count is derived from nedges and the mean of the degree
// distribution so the realized average degree matches the target, the same
// coupling the paper accepts ("accepting slight variation in the number of
// vertices").
func PowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if cfg.NumEdges <= 0 {
		return nil, fmt.Errorf("gen: NumEdges must be positive, got %d", cfg.NumEdges)
	}
	if cfg.Alpha <= 1 {
		return nil, fmt.Errorf("gen: Alpha must exceed 1 for a normalizable degree law, got %v", cfg.Alpha)
	}
	r := rng.New(cfg.Seed)

	n := vertexCountFor(cfg.NumEdges, cfg.Alpha)
	kmax := maxDegreeFor(n)
	zipf, err := rng.NewZipf(kmax, cfg.Alpha)
	if err != nil {
		return nil, err
	}

	// Expected degree per vertex, power-law distributed.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(zipf.Draw(r))
	}
	alias, err := rng.NewAlias(weights)
	if err != nil {
		return nil, err
	}

	b := graph.NewBuilder(n, cfg.Directed).Dedup()
	if cfg.SortAdjacency {
		b.SortAdjacency()
	}
	if cfg.Weighted {
		b.Weighted()
	}
	for i := int64(0); i < cfg.NumEdges; i++ {
		u := uint32(alias.Draw(r))
		v := uint32(alias.Draw(r))
		if u == v {
			continue // dropped anyway; skip the work
		}
		if cfg.Weighted {
			b.AddWeightedEdge(u, v, math.Abs(r.NormFloat64())+0.1)
		} else {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// vertexCountFor sizes the vertex set so that the expected mean degree of
// the power law yields roughly nedges edges: n ≈ 2·nedges / E[k].
func vertexCountFor(nedges int64, alpha float64) int {
	// E[k] for P(k) ~ k^-alpha over k = 1..kmax. Use a generous kmax for
	// the estimate; the sum converges quickly for alpha > 2.
	mean := powerLawMean(100000, alpha)
	n := int(float64(2*nedges) / mean)
	if n < 4 {
		n = 4
	}
	return n
}

// powerLawMean returns E[k] of the truncated power law on [1, kmax].
func powerLawMean(kmax int, alpha float64) float64 {
	var num, den float64
	for k := 1; k <= kmax; k++ {
		p := math.Pow(float64(k), -alpha)
		num += float64(k) * p
		den += p
	}
	return num / den
}

// maxDegreeFor caps degrees at the natural cutoff ~sqrt(n·mean) so hub
// vertices cannot exceed simple-graph feasibility; at least 8 so tiny
// graphs still get heavy-tailed draws.
func maxDegreeFor(n int) int {
	k := int(math.Sqrt(float64(n)) * 4)
	if k < 8 {
		k = 8
	}
	if k > n-1 && n > 1 {
		k = n - 1
	}
	return k
}

// GaussianPoints2D returns n 2-D points with coordinates drawn from k
// Gaussian clusters whose centers are themselves drawn from N(0, spread²).
// This is the vertex data for the K-Means workload ("vertices are data
// points (in this paper they are 2D vectors)").
func GaussianPoints2D(n, k int, spread float64, seed uint64) []float64 {
	r := rng.New(seed)
	if k < 1 {
		k = 1
	}
	centers := make([]float64, 2*k)
	for i := range centers {
		centers[i] = r.NormFloat64() * spread
	}
	pts := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		pts[2*i] = centers[2*c] + r.NormFloat64()
		pts[2*i+1] = centers[2*c+1] + r.NormFloat64()
	}
	return pts
}
