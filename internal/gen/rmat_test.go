package gen

import (
	"testing"
)

func TestRMATBasic(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 12, NumEdges: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4096 {
		t.Fatalf("NumVertices = %d, want 4096", g.NumVertices())
	}
	if g.NumEdges() < 15000 || g.NumEdges() > 20000 {
		t.Fatalf("NumEdges = %d, want near 20000 after dedup", g.NumEdges())
	}
}

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Scale: 10, NumEdges: 5000, Seed: 9}
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !degreesEqual(a, b) {
		t.Fatal("same seed produced different RMAT graphs")
	}
}

func TestRMATSkewedVsErdosRenyi(t *testing.T) {
	rmat, err := RMAT(RMATConfig{Scale: 12, NumEdges: 30000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(ErdosRenyiConfig{NumVertices: 4096, NumEdges: 30000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cvRMAT, cvER := DegreeCV(rmat), DegreeCV(er)
	// R-MAT's recursive skew must produce a materially heavier-tailed
	// degree distribution than the uniform model at equal density.
	if cvRMAT < 2*cvER {
		t.Fatalf("DegreeCV: RMAT %v not ≫ ER %v", cvRMAT, cvER)
	}
	if rmat.MaxDegree() <= er.MaxDegree() {
		t.Fatalf("max degree: RMAT %d not above ER %d", rmat.MaxDegree(), er.MaxDegree())
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0, NumEdges: 10}); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 10, NumEdges: 0}); err == nil {
		t.Fatal("0 edges accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 10, NumEdges: 10, A: 0.6, B: 0.3, C: 0.2}); err == nil {
		t.Fatal("probabilities above 1 accepted")
	}
}

func TestErdosRenyiNearUniform(t *testing.T) {
	g, err := ErdosRenyi(ErdosRenyiConfig{NumVertices: 2000, NumEdges: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(20) degrees: CV ≈ 1/√20 ≈ 0.22.
	if cv := DegreeCV(g); cv > 0.4 {
		t.Fatalf("ER degree CV = %v, want < 0.4 (near-uniform)", cv)
	}
	if g.NumEdges() < 18000 {
		t.Fatalf("NumEdges = %d, want close to 20000", g.NumEdges())
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(ErdosRenyiConfig{NumVertices: 1, NumEdges: 1}); err == nil {
		t.Fatal("1 vertex accepted")
	}
	if _, err := ErdosRenyi(ErdosRenyiConfig{NumVertices: 4, NumEdges: 100}); err == nil {
		t.Fatal("overfull graph accepted")
	}
	if _, err := ErdosRenyi(ErdosRenyiConfig{NumVertices: 4, NumEdges: 0}); err == nil {
		t.Fatal("0 edges accepted")
	}
}

func TestDegreeCVContrastAcrossAlphas(t *testing.T) {
	// DegreeCV must order the Chung-Lu family correctly: smaller alpha →
	// heavier tail → larger CV.
	gLow, err := PowerLaw(PowerLawConfig{NumEdges: 20000, Alpha: 2.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gHigh, err := PowerLaw(PowerLawConfig{NumEdges: 20000, Alpha: 3.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if DegreeCV(gLow) <= DegreeCV(gHigh) {
		t.Fatalf("CV(α=2)=%v not above CV(α=3)=%v", DegreeCV(gLow), DegreeCV(gHigh))
	}
}
