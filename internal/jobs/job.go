package jobs

import (
	"context"
	"sync"
	"time"

	"gcbench/internal/sweep"
)

// Job is one tracked campaign. All methods are safe for concurrent use;
// obtain jobs from Manager.Submit or Manager.Get.
type Job struct {
	id        string
	label     string
	req       Request
	total     int
	createdAt time.Time

	mu              sync.Mutex
	state           State
	startedAt       time.Time
	finishedAt      time.Time
	doneCount       int
	err             string
	corpusVersion   int64
	cancel          context.CancelFunc
	cancelRequested bool
	res             *sweep.CampaignResult
	resErr          error
	events          []Event
	updated         chan struct{} // closed and replaced on every event append
	watchers        int

	done chan struct{} // closed when the job reaches a terminal state
}

// ID returns the job's manager-assigned identifier ("j1", "j2", ...).
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status renders a point-in-time snapshot (without queue position; see
// Manager.StatusOf for the queue-aware variant).
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:            j.id,
		Label:         j.label,
		State:         j.state,
		Total:         j.total,
		Done:          j.doneCount,
		Error:         j.err,
		CorpusVersion: j.corpusVersion,
		CreatedAt:     j.createdAt,
		StartedAt:     j.startedAt,
		FinishedAt:    j.finishedAt,
	}
	if j.res != nil {
		st.Completed = j.res.Completed
		st.Skipped = j.res.Skipped
		st.FailedRuns = j.res.Failed
		st.CancelledRuns = j.res.Cancelled
		st.Done = len(j.res.Results)
	}
	return st
}

// Result returns the campaign outcome exactly as sweep.ExecuteCampaign
// produced it (nil result for jobs cancelled before starting). Valid
// once the job is terminal; callers usually Wait first.
func (j *Job) Result() (*sweep.CampaignResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.resErr
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx expires, returning the
// job's final state (or its current state with ctx's error on timeout).
func (j *Job) Wait(ctx context.Context) (State, error) {
	select {
	case <-j.done:
		return j.State(), nil
	case <-ctx.Done():
		return j.State(), ctx.Err()
	}
}

// Watchers returns how many Watch streams are currently attached.
func (j *Job) Watchers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watchers
}

// Watch streams the job's events: everything already emitted is
// replayed in order, then live events follow. The channel closes after
// the terminal "state" event has been delivered, or when ctx is
// cancelled (client disconnect). Any number of watchers may be active.
func (j *Job) Watch(ctx context.Context) <-chan Event {
	ch := make(chan Event)
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
	go func() {
		defer close(ch)
		defer func() {
			j.mu.Lock()
			j.watchers--
			j.mu.Unlock()
		}()
		next := 0
		for {
			j.mu.Lock()
			pending := j.events[next:]
			updated := j.updated
			j.mu.Unlock()
			for _, e := range pending {
				select {
				case ch <- e:
				case <-ctx.Done():
					return
				}
				next++
				if e.Type == "state" && e.State.Terminal() {
					return
				}
			}
			select {
			case <-updated:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Events returns a copy of everything emitted so far.
func (j *Job) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// emit appends one event and wakes every watcher.
func (j *Job) emit(e Event) {
	j.mu.Lock()
	e.Seq = len(j.events) + 1
	e.Time = time.Now().UTC()
	e.JobID = j.id
	j.events = append(j.events, e)
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()
}

// markRunning transitions queued → running.
func (j *Job) markRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = time.Now().UTC()
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: StateRunning})
}

// finish transitions to a terminal state and releases waiters. Called
// exactly once per job, by Manager.finalize.
func (j *Job) finish(state State, msg string) {
	j.mu.Lock()
	j.state = state
	j.err = msg
	j.finishedAt = time.Now().UTC()
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: state, Error: msg})
	close(j.done)
}

func (j *Job) noteProgress(done int) {
	j.mu.Lock()
	if done > j.doneCount {
		j.doneCount = done
	}
	j.mu.Unlock()
}

func (j *Job) setCancel(fn context.CancelFunc) {
	j.mu.Lock()
	requested := j.cancelRequested
	j.cancel = fn
	j.mu.Unlock()
	// A cancel that raced ahead of the context's installation must still
	// take effect, or the campaign would run to completion uncancelled.
	if requested {
		fn()
	}
}

// cancelCtx cancels the job's campaign context. The request is sticky:
// if the context is not installed yet, it is cancelled on installation.
func (j *Job) cancelCtx() {
	j.mu.Lock()
	j.cancelRequested = true
	fn := j.cancel
	j.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (j *Job) setResult(res *sweep.CampaignResult, err error) {
	j.mu.Lock()
	j.res, j.resErr = res, err
	j.mu.Unlock()
}

func (j *Job) setCorpusVersion(v int64) {
	j.mu.Lock()
	j.corpusVersion = v
	j.mu.Unlock()
}
