// Package jobs is the asynchronous campaign-execution subsystem: a
// bounded-queue job manager that wraps the resilient sweep runner
// (sweep.ExecuteCampaign) so campaigns can be submitted, observed,
// cancelled and garbage-collected while the rest of the process — most
// importantly the `gcbench serve` API — keeps running.
//
// The manager is a FIFO scheduler with two bounds: MaxRunning campaigns
// execute concurrently, and at most QueueDepth more wait behind them.
// A submission past both bounds is refused with ErrQueueFull, which the
// HTTP layer maps to 429 — backpressure instead of unbounded memory.
//
// Every job owns a cancellable context and walks one state machine:
//
//	queued ──────────────► running ───────────► ok
//	   │                      │                  │ (publish failure
//	   │ Cancel               │ Cancel           ▼  demotes to failed)
//	   └──────────► cancelled ◄┘            failed
//
// ok, failed and cancelled are terminal. Terminal jobs are retained
// (bounded by Retain, oldest evicted first) so clients can read results
// after completion without the manager growing forever.
//
// Progress is a subscribable event stream: the manager re-emits the
// sweep runner's per-spec progress callbacks as ordered Events that any
// number of watchers can replay-then-follow (Job.Watch) — the data
// source for the serve layer's NDJSON streams. When a publish sink is
// installed (SetPublish), a job that completes with measured runs pushes
// them into the live corpus before its terminal state becomes visible,
// so a client that polls "state == ok" can rely on the corpus already
// containing the new runs.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/obs"
	"gcbench/internal/obs/otrace"
	"gcbench/internal/sweep"
)

// State is a job's position in the lifecycle state machine.
type State string

// Job states. StateOK, StateFailed and StateCancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateOK        State = "ok"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateOK || s == StateFailed || s == StateCancelled
}

// Sentinel errors of the submission path.
var (
	// ErrQueueFull refuses a submission when MaxRunning jobs are running
	// and QueueDepth more are already waiting (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed refuses submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound reports an unknown (or GC-evicted) job ID.
	ErrNotFound = errors.New("jobs: no such job")
)

// Event is one entry in a job's ordered progress stream.
type Event struct {
	// Seq numbers the job's events from 1; heartbeats emitted by the
	// HTTP layer carry Seq 0.
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	JobID string    `json:"jobId"`
	// Type is "state" (lifecycle transition), "progress" (one campaign
	// spec finished), "published" (runs appended to the live corpus), or
	// "heartbeat" (stream keepalive, HTTP layer only).
	Type string `json:"type"`
	// State accompanies "state" events.
	State State `json:"state,omitempty"`
	// Done/Total/RunID accompany "progress" events.
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	RunID string `json:"runId,omitempty"`
	// CorpusVersion accompanies "published" events.
	CorpusVersion int64 `json:"corpusVersion,omitempty"`
	// Error accompanies terminal "state" events of failed jobs.
	Error string `json:"error,omitempty"`
}

// Request describes one campaign submission.
type Request struct {
	// Specs is the campaign plan; must be non-empty.
	Specs []sweep.Spec
	// Config is the resilient-runner configuration (timeout, retries,
	// journal, parallelism). The manager chains its own event emission
	// onto Config.Progress; a caller-supplied Progress still fires.
	Config sweep.Config
	// Label is a human-readable tag echoed in Status ("sweep -profile
	// quick", "PR smoke", ...).
	Label string
	// Span, when non-nil, is the submitting request's root span. The
	// manager opens a child "job" span under it when the campaign starts —
	// linking the asynchronous execution back to the 202 request that
	// submitted it, across the async boundary — and the job span becomes
	// the parent of every per-run span the sweep runner opens.
	Span *otrace.Span
}

// Status is a JSON-encodable point-in-time snapshot of one job.
type Status struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	State State  `json:"state"`
	// QueuePosition is the 1-based position among waiting jobs (0 once
	// the job leaves the queue).
	QueuePosition int `json:"queuePosition,omitempty"`
	// Total is the campaign's spec count; Done counts finished specs.
	Total int `json:"total"`
	Done  int `json:"done"`
	// Terminal accounting, mirroring sweep.CampaignResult.
	Completed     int    `json:"completed"`
	Skipped       int    `json:"skipped"`
	FailedRuns    int    `json:"failedRuns"`
	CancelledRuns int    `json:"cancelledRuns"`
	Error         string `json:"error,omitempty"`
	// CorpusVersion is the corpus version the job's runs were published
	// as (0 when nothing was published).
	CorpusVersion int64     `json:"corpusVersion,omitempty"`
	CreatedAt     time.Time `json:"createdAt"`
	StartedAt     time.Time `json:"startedAt,omitzero"`
	FinishedAt    time.Time `json:"finishedAt,omitzero"`
}

// PublishFunc pushes a completed job's measured runs into a live corpus
// and returns the published corpus version. Installed by the serving
// layer via Manager.SetPublish.
type PublishFunc func(jobID string, runs []*behavior.Run) (int64, error)

// ExecuteFunc runs one campaign; the default is sweep.ExecuteCampaign.
// Overridable for lifecycle tests that need controllable run durations.
type ExecuteFunc func(ctx context.Context, specs []sweep.Spec, cfg sweep.Config) (*sweep.CampaignResult, error)

// Config parameterizes a Manager.
type Config struct {
	// MaxRunning bounds concurrently executing campaigns (default 1 —
	// campaigns are internally parallel already; see sweep.Config).
	MaxRunning int
	// QueueDepth bounds jobs waiting behind the running ones before
	// Submit refuses with ErrQueueFull (default 16).
	QueueDepth int
	// Retain bounds how many terminal jobs are kept for later inspection
	// before the oldest are evicted (default 64).
	Retain int
	// Registry receives the gcbench_jobs_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Execute runs a campaign (default sweep.ExecuteCampaign; test seam).
	Execute ExecuteFunc
}

// Manager schedules campaign jobs. Construct with NewManager; the zero
// value is not usable.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for List and GC
	queue   []*Job   // FIFO of jobs waiting for a running slot
	running int
	nextID  int
	closed  bool
	publish PublishFunc

	mSubmitted *obs.Counter
	mShed      *obs.Counter
	mOK        *obs.Counter
	mFailed    *obs.Counter
	mCancelled *obs.Counter
	mPublished *obs.Counter
	gQueued    *obs.Gauge
	gRunning   *obs.Gauge
	gRetained  *obs.Gauge
}

// NewManager builds a Manager from cfg, applying defaults.
func NewManager(cfg Config) *Manager {
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Execute == nil {
		cfg.Execute = sweep.ExecuteCampaign
	}
	reg := cfg.Registry
	return &Manager{
		cfg:  cfg,
		jobs: make(map[string]*Job),

		mSubmitted: reg.Counter("gcbench_jobs_submitted_total", "Campaign jobs accepted by Submit."),
		mShed:      reg.Counter("gcbench_jobs_shed_total", "Submissions refused because the queue was full."),
		mOK:        reg.Counter("gcbench_jobs_ok_total", "Jobs that reached the ok terminal state."),
		mFailed:    reg.Counter("gcbench_jobs_failed_total", "Jobs that reached the failed terminal state."),
		mCancelled: reg.Counter("gcbench_jobs_cancelled_total", "Jobs that reached the cancelled terminal state."),
		mPublished: reg.Counter("gcbench_jobs_published_runs_total", "Measured runs published into the live corpus."),
		gQueued:    reg.Gauge("gcbench_jobs_queued", "Jobs waiting for a running slot."),
		gRunning:   reg.Gauge("gcbench_jobs_running", "Campaigns executing right now."),
		gRetained:  reg.Gauge("gcbench_jobs_retained", "Jobs currently tracked (queued + running + retained terminal)."),
	}
}

// SetPublish installs the corpus publish sink consulted when a job
// completes with measured runs. Publication happens before the terminal
// state is emitted, and a publish error demotes the job to failed.
func (m *Manager) SetPublish(fn PublishFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.publish = fn
}

// Submit accepts a campaign for asynchronous execution: immediately
// started when a running slot is free, otherwise queued FIFO. Returns
// ErrQueueFull when both bounds are exhausted and ErrClosed after Close.
func (m *Manager) Submit(req Request) (*Job, error) {
	if len(req.Specs) == 0 {
		return nil, fmt.Errorf("jobs: empty campaign (no specs)")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	start := m.running < m.cfg.MaxRunning
	if !start && len(m.queue) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.mShed.Inc()
		return nil, ErrQueueFull
	}
	m.nextID++
	j := &Job{
		id:        fmt.Sprintf("j%d", m.nextID),
		label:     req.Label,
		req:       req,
		total:     len(req.Specs),
		createdAt: time.Now().UTC(),
		state:     StateQueued,
		updated:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if start {
		m.running++
	} else {
		m.queue = append(m.queue, j)
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	m.mSubmitted.Inc()
	j.emit(Event{Type: "state", State: StateQueued})
	if start {
		m.start(j)
	}
	return j, nil
}

// Get returns a tracked job by ID (false after GC eviction).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every tracked job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = m.StatusOf(j)
	}
	return out
}

// StatusOf renders a job's status, including its live queue position.
func (m *Manager) StatusOf(j *Job) Status {
	st := j.Status()
	if st.State == StateQueued {
		m.mu.Lock()
		for i, q := range m.queue {
			if q == j {
				st.QueuePosition = i + 1
				break
			}
		}
		m.mu.Unlock()
	}
	return st
}

// Cancel stops a job: a queued job transitions to cancelled without ever
// starting, a running one has its context cancelled (the sweep runner
// stops at its next iteration barriers and the job finalizes
// asynchronously). Cancelling a terminal job is a no-op. Returns
// ErrNotFound for unknown IDs.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	wasQueued := false
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			wasQueued = true
			break
		}
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	if wasQueued {
		// Mirror what ExecuteCampaign returns under a pre-cancelled
		// context: every spec accounted for as cancelled, nothing run.
		res := &sweep.CampaignResult{
			Results:   make([]sweep.RunResult, len(j.req.Specs)),
			Cancelled: len(j.req.Specs),
		}
		for i, s := range j.req.Specs {
			res.Results[i] = sweep.RunResult{
				Spec: s, Status: behavior.StatusCancelled, Err: context.Canceled.Error(),
			}
		}
		j.setResult(res, context.Canceled)
		m.finalize(j, StateCancelled, "cancelled while queued")
		return nil
	}
	j.cancelCtx()
	return nil
}

// Close stops accepting submissions, cancels every queued and running
// job, and waits for running jobs to finalize until ctx expires.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	queued := m.queue
	m.queue = nil
	inQueue := make(map[*Job]bool, len(queued))
	for _, j := range queued {
		inQueue[j] = true
	}
	// Every non-terminal job off the queue has been started (its campaign
	// goroutine may not have marked it running yet), so it must be
	// cancelled and awaited, not finalized here.
	var active []*Job
	for _, j := range m.jobs {
		if !inQueue[j] && !j.State().Terminal() {
			active = append(active, j)
		}
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	for _, j := range queued {
		j.setResult(nil, context.Canceled)
		m.finalize(j, StateCancelled, "cancelled: manager closed")
	}
	for _, j := range active {
		j.cancelCtx()
	}
	for _, j := range active {
		select {
		case <-j.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// start launches a job's campaign goroutine. The job context is
// independent of any submitting request so an HTTP-submitted campaign
// outlives its submission request.
func (m *Manager) start(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	j.setCancel(cancel)
	go m.run(ctx, j)
}

// run executes one campaign and finalizes the job.
func (m *Manager) run(ctx context.Context, j *Job) {
	defer j.cancelCtx()
	j.markRunning()

	// The job span survives the submitting request's 202: its parent (the
	// serve root span) has long ended, but the trace keeps accepting
	// children, so the queryable tree shows the submission and the
	// asynchronous execution as one request. Nil-safe throughout — an
	// untraced submission propagates a nil span and nothing records.
	jobSpan := j.req.Span.StartChild("job "+j.id, "job",
		otrace.Int("specs", len(j.req.Specs)),
		otrace.String("label", j.label))
	ctx = otrace.ContextWithSpan(ctx, jobSpan)

	cfg := j.req.Config
	userProgress := cfg.Progress
	cfg.Progress = func(done, total int, id string) {
		j.noteProgress(done)
		j.emit(Event{Type: "progress", Done: done, Total: total, RunID: id})
		if userProgress != nil {
			userProgress(done, total, id)
		}
	}

	res, err := m.cfg.Execute(ctx, j.req.Specs, cfg)
	j.setResult(res, err)

	state, msg := StateOK, ""
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
		state, msg = StateCancelled, err.Error()
	case err != nil:
		state, msg = StateFailed, err.Error()
	case res != nil && res.Failed > 0:
		state = StateFailed
		msg = fmt.Sprintf("%d of %d runs failed", res.Failed, len(j.req.Specs))
	}

	// Publish before the terminal state becomes visible: a client that
	// observes state ok can rely on the corpus already holding the runs.
	if state == StateOK && res != nil && len(res.Runs) > 0 {
		m.mu.Lock()
		pub := m.publish
		m.mu.Unlock()
		if pub != nil {
			version, perr := pub(j.id, res.Runs)
			if perr != nil {
				state, msg = StateFailed, fmt.Sprintf("publishing %d runs: %v", len(res.Runs), perr)
			} else {
				j.setCorpusVersion(version)
				m.mPublished.Add(float64(len(res.Runs)))
				j.emit(Event{Type: "published", CorpusVersion: version})
			}
		}
	}

	switch state {
	case StateFailed:
		jobSpan.Fail(msg)
	case StateCancelled:
		jobSpan.SetAttr("cancelled", true)
	}
	jobSpan.End()

	m.finalize(j, state, msg)
	m.scheduleNext()
}

// finalize moves a job to a terminal state, bumps the terminal counters,
// and evicts the oldest retained terminal jobs past the Retain bound.
func (m *Manager) finalize(j *Job, state State, msg string) {
	j.finish(state, msg)
	switch state {
	case StateOK:
		m.mOK.Inc()
	case StateFailed:
		m.mFailed.Inc()
	case StateCancelled:
		m.mCancelled.Inc()
	}
	m.gc()
}

// scheduleNext frees the finished job's running slot and starts the
// oldest queued job, if any.
func (m *Manager) scheduleNext() {
	m.mu.Lock()
	m.running--
	var next *Job
	if !m.closed && len(m.queue) > 0 {
		next = m.queue[0]
		m.queue = m.queue[1:]
		m.running++
	}
	m.updateGaugesLocked()
	m.mu.Unlock()
	if next != nil {
		m.start(next)
	}
}

// gc evicts the oldest terminal jobs beyond the Retain bound.
func (m *Manager) gc() {
	m.mu.Lock()
	defer m.mu.Unlock()
	var terminal []string
	for _, id := range m.order {
		if m.jobs[id].State().Terminal() {
			terminal = append(terminal, id)
		}
	}
	for len(terminal) > m.cfg.Retain {
		id := terminal[0]
		terminal = terminal[1:]
		delete(m.jobs, id)
		for i, o := range m.order {
			if o == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.updateGaugesLocked()
}

// updateGaugesLocked refreshes the queue/running/retained gauges.
// Callers hold m.mu.
func (m *Manager) updateGaugesLocked() {
	m.gQueued.Set(float64(len(m.queue)))
	m.gRunning.Set(float64(m.running))
	m.gRetained.Set(float64(len(m.jobs)))
}
