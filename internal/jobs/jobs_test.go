package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/obs"
	"gcbench/internal/sweep"
)

func testSpecs(n int) []sweep.Spec {
	specs := make([]sweep.Spec, n)
	for i := range specs {
		specs[i] = sweep.Spec{Algorithm: "PR", SizeLabel: fmt.Sprint(100 + i), Alpha: 2.0, Seed: 1}
	}
	return specs
}

func okResult(specs []sweep.Spec) *sweep.CampaignResult {
	res := &sweep.CampaignResult{Completed: len(specs)}
	for _, s := range specs {
		res.Results = append(res.Results, sweep.RunResult{Spec: s, Status: behavior.StatusOK})
		res.Runs = append(res.Runs, &behavior.Run{Algorithm: "PR", SizeLabel: s.SizeLabel, Alpha: s.Alpha})
	}
	return res
}

// instantExec completes immediately, reporting one progress tick per spec.
func instantExec(ctx context.Context, specs []sweep.Spec, cfg sweep.Config) (*sweep.CampaignResult, error) {
	for i, s := range specs {
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(specs), s.ID())
		}
	}
	return okResult(specs), nil
}

// blockingExec returns an ExecuteFunc that blocks until release is
// closed or the campaign context is cancelled (mirroring the sweep
// runner's cancellation contract: res non-nil, err = ctx.Err()).
func blockingExec(release <-chan struct{}) ExecuteFunc {
	return func(ctx context.Context, specs []sweep.Spec, cfg sweep.Config) (*sweep.CampaignResult, error) {
		select {
		case <-release:
			return okResult(specs), nil
		case <-ctx.Done():
			res := &sweep.CampaignResult{Cancelled: len(specs)}
			for _, s := range specs {
				res.Results = append(res.Results, sweep.RunResult{
					Spec: s, Status: behavior.StatusCancelled, Err: ctx.Err().Error(),
				})
			}
			return res, ctx.Err()
		}
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s: wait: %v (state %s)", j.ID(), err, got)
	}
	if got != want {
		t.Fatalf("job %s: terminal state %s, want %s", j.ID(), got, want)
	}
}

func TestJobRunsToOKAndPublishes(t *testing.T) {
	m := newTestManager(t, Config{Execute: instantExec})
	published := make(chan int, 1)
	m.SetPublish(func(jobID string, runs []*behavior.Run) (int64, error) {
		published <- len(runs)
		return 7, nil
	})
	specs := testSpecs(3)
	j, err := m.Submit(Request{Specs: specs, Label: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateOK)
	select {
	case n := <-published:
		if n != 3 {
			t.Fatalf("published %d runs, want 3", n)
		}
	default:
		t.Fatal("publish sink never called")
	}
	st := m.StatusOf(j)
	if st.CorpusVersion != 7 || st.Done != 3 || st.Completed != 3 {
		t.Fatalf("status after ok: %+v", st)
	}

	// The event stream must show the full lifecycle in order: queued,
	// running, three progress ticks, published, ok.
	var types []string
	for _, e := range j.Events() {
		types = append(types, e.Type+"/"+string(e.State))
	}
	want := []string{"state/queued", "state/running", "progress/", "progress/", "progress/", "published/", "state/ok"}
	if len(types) != len(want) {
		t.Fatalf("events %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event[%d] = %s, want %s (all: %v)", i, types[i], want[i], types)
		}
	}
}

func TestCancelWhileQueuedNeverExecutes(t *testing.T) {
	release := make(chan struct{})
	executed := make(chan string, 8)
	exec := blockingExec(release)
	m := newTestManager(t, Config{
		MaxRunning: 1,
		Execute: func(ctx context.Context, specs []sweep.Spec, cfg sweep.Config) (*sweep.CampaignResult, error) {
			executed <- specs[0].SizeLabel
			return exec(ctx, specs, cfg)
		},
	})
	first, err := m.Submit(Request{Specs: testSpecs(1)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Request{Specs: testSpecs(2)})
	if err != nil {
		t.Fatal(err)
	}
	if st := m.StatusOf(queued); st.State != StateQueued || st.QueuePosition != 1 {
		t.Fatalf("second job not queued at position 1: %+v", st)
	}

	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, queued, StateCancelled)
	res, rerr := queued.Result()
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("cancelled-while-queued result error = %v, want context.Canceled", rerr)
	}
	if res == nil || res.Cancelled != 2 || len(res.Results) != 2 {
		t.Fatalf("cancelled-while-queued result = %+v, want 2 cancelled specs", res)
	}

	close(release)
	waitState(t, first, StateOK)
	// Only the first job's campaign may ever have reached the executor.
	if n := len(executed); n != 1 {
		t.Fatalf("%d campaigns executed, want 1 (cancelled job must never start)", n)
	}
}

func TestCancelMidRunFinalizesCancelled(t *testing.T) {
	m := newTestManager(t, Config{Execute: blockingExec(nil)})
	publishCalls := 0
	m.SetPublish(func(string, []*behavior.Run) (int64, error) {
		publishCalls++
		return 1, nil
	})
	j, err := m.Submit(Request{Specs: testSpecs(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Let it reach running before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
	if publishCalls != 0 {
		t.Fatalf("cancelled job published %d times; cancelled runs must not enter the corpus", publishCalls)
	}
	// Cancelling again is a no-op, not an error.
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatalf("second cancel: %v", err)
	}
}

func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{MaxRunning: 1, QueueDepth: 1, Registry: reg, Execute: blockingExec(release)})
	if _, err := m.Submit(Request{Specs: testSpecs(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Specs: testSpecs(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Specs: testSpecs(1)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
}

func TestQueuedJobStartsAfterSlotFrees(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Config{MaxRunning: 1, Execute: blockingExec(release)})
	first, _ := m.Submit(Request{Specs: testSpecs(1)})
	second, err := m.Submit(Request{Specs: testSpecs(1)})
	if err != nil {
		t.Fatal(err)
	}
	if second.State() != StateQueued {
		t.Fatalf("second job state %s, want queued", second.State())
	}
	close(release)
	waitState(t, first, StateOK)
	waitState(t, second, StateOK)
}

func TestFailedRunsDemoteJob(t *testing.T) {
	m := newTestManager(t, Config{
		Execute: func(ctx context.Context, specs []sweep.Spec, cfg sweep.Config) (*sweep.CampaignResult, error) {
			res := okResult(specs)
			res.Completed--
			res.Failed = 1
			res.Results[0].Status = behavior.StatusFailed
			return res, nil
		},
	})
	j, _ := m.Submit(Request{Specs: testSpecs(2)})
	waitState(t, j, StateFailed)
	if st := m.StatusOf(j); st.Error == "" || st.FailedRuns != 1 {
		t.Fatalf("failed job status: %+v", st)
	}
}

func TestPublishErrorDemotesJob(t *testing.T) {
	m := newTestManager(t, Config{Execute: instantExec})
	m.SetPublish(func(string, []*behavior.Run) (int64, error) {
		return 0, errors.New("corpus on fire")
	})
	j, _ := m.Submit(Request{Specs: testSpecs(1)})
	waitState(t, j, StateFailed)
	if st := m.StatusOf(j); st.CorpusVersion != 0 {
		t.Fatalf("corpus version %d recorded despite publish failure", st.CorpusVersion)
	}
}

func TestWatchReplaysAndTerminates(t *testing.T) {
	m := newTestManager(t, Config{Execute: instantExec})
	j, _ := m.Submit(Request{Specs: testSpecs(2)})
	waitState(t, j, StateOK)

	// A watcher attached after completion replays everything, then the
	// channel closes — it must not hang waiting for more.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var got []Event
	for e := range j.Watch(ctx) {
		got = append(got, e)
	}
	if ctx.Err() != nil {
		t.Fatal("watch did not terminate after the terminal event")
	}
	if len(got) == 0 || got[len(got)-1].State != StateOK {
		t.Fatalf("replay ended with %+v, want terminal ok state event", got)
	}
	for i, e := range got {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d; stream must be gapless from 1", i, e.Seq)
		}
	}
}

func TestWatchStopsOnClientCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Execute: blockingExec(release)})
	j, _ := m.Submit(Request{Specs: testSpecs(1)})

	ctx, cancel := context.WithCancel(context.Background())
	ch := j.Watch(ctx)
	<-ch // queued event arrives
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				if j.Watchers() != 0 {
					t.Fatalf("%d watchers still attached after cancel", j.Watchers())
				}
				return
			}
		case <-deadline:
			t.Fatal("watch channel never closed after context cancel")
		}
	}
}

func TestRetainEvictsOldestTerminal(t *testing.T) {
	m := newTestManager(t, Config{Retain: 2, Execute: instantExec})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := m.Submit(Request{Specs: testSpecs(1)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateOK)
		ids = append(ids, j.ID())
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatalf("job %s should have been GC'd (retain=2)", ids[0])
	}
	if _, ok := m.Get(ids[3]); !ok {
		t.Fatalf("newest job %s must survive GC", ids[3])
	}
	if got := len(m.List()); got != 2 {
		t.Fatalf("%d jobs tracked, want 2", got)
	}
}

func TestCloseCancelsQueuedAndRefusesSubmits(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(Config{MaxRunning: 1, Registry: obs.NewRegistry(), Execute: blockingExec(release)})
	running, _ := m.Submit(Request{Specs: testSpecs(1)})
	queued, _ := m.Submit(Request{Specs: testSpecs(1)})

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- m.Close(ctx)
	}()
	waitState(t, running, StateCancelled) // Close cancels the running job's context
	waitState(t, queued, StateCancelled)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.Submit(Request{Specs: testSpecs(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
}

func TestSubmitEmptyCampaign(t *testing.T) {
	m := newTestManager(t, Config{Execute: instantExec})
	if _, err := m.Submit(Request{}); err == nil {
		t.Fatal("empty campaign accepted")
	}
}
