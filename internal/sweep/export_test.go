package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/graph"
)

func TestExportSuite(t *testing.T) {
	dir := t.TempDir()
	members := []*behavior.Run{
		{Algorithm: "TC", Domain: "Graph Analytics", NumEdges: 300, Alpha: 2.5, SizeLabel: "300"},
		{Algorithm: "ALS", Domain: "Collaborative Filtering", NumEdges: 200, Alpha: 2.0, SizeLabel: "200"},
		{Algorithm: "DD", Domain: "Graphical Model", NumEdges: 80, SizeLabel: "80"},
		{Algorithm: "LBP", Domain: "Graphical Model", NumEdges: 100, SizeLabel: "100"},
		{Algorithm: "Jacobi", Domain: "Linear Solver", NumEdges: 800, SizeLabel: "100"},
	}
	if err := ExportSuite(dir, members, nil); err != nil {
		t.Fatal(err)
	}

	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"TC", "ALS", "DD", "LBP", "Jacobi"} {
		if !strings.Contains(string(manifest), alg) {
			t.Fatalf("manifest missing %s:\n%s", alg, manifest)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 { // 5 workloads + manifest
		t.Fatalf("exported %d files, want 6", len(entries))
	}

	// Every exported edge list must parse back; every UAI must parse back.
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		switch {
		case strings.HasSuffix(e.Name(), ".el"):
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.ReadEdgeList(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if g.NumEdges() == 0 {
				t.Fatalf("%s: empty graph", e.Name())
			}
		case strings.HasSuffix(e.Name(), ".uai"):
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := graph.ReadUAI(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if m.G.NumEdges() == 0 {
				t.Fatalf("%s: empty MRF", e.Name())
			}
		}
	}
}

func TestExportSuiteCustomSeeds(t *testing.T) {
	dir := t.TempDir()
	members := []*behavior.Run{
		{Algorithm: "CC", Domain: "Graph Analytics", NumEdges: 200, Alpha: 2.5, SizeLabel: "200"},
	}
	called := false
	err := ExportSuite(dir, members, func(r *behavior.Run) uint64 {
		called = true
		return 99
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("seed function not consulted")
	}
}
