package sweep

import (
	"context"
	"errors"
	"sync"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
)

// smallSpec returns the smallest spec that exercises algorithm alg — the
// sizes TestRunSpecEveryAlgorithm uses.
func smallSpec(alg algorithms.Name) Spec {
	spec := Spec{Algorithm: alg, SizeLabel: "test", Seed: 5}
	switch alg {
	case algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD:
		spec.NumEdges = 400
		spec.Alpha = 2.5
	case algorithms.Jacobi:
		spec.NumRows = 100
	case algorithms.LBP:
		spec.NumRows = 10
	case algorithms.DD:
		spec.NumEdges = 80
	default:
		spec.NumEdges = 500
		spec.Alpha = 2.5
	}
	return spec
}

// TestFrontierBehaviorInvariance is the paper-facing contract of the
// frontier work: for every algorithm in the plan, the deterministic
// behavior vector — UPDT, EREAD, MSG and the active-fraction series —
// is bit-identical whichever schedule executed it. WORK is excluded:
// it is wall-time based and legitimately varies with the schedule.
func TestFrontierBehaviorInvariance(t *testing.T) {
	cache := &graphCache{}
	ctx := context.Background()
	for _, alg := range algorithms.AllNames() {
		spec := smallSpec(alg)
		base, _, err := runSpecTrace(ctx, spec, 4, algorithms.FrontierDense, cache)
		if err != nil {
			t.Fatalf("%s dense: %v", alg, err)
		}
		for _, mode := range []algorithms.FrontierMode{algorithms.FrontierSparse, algorithms.FrontierAuto} {
			run, _, err := runSpecTrace(ctx, spec, 4, mode, cache)
			if err != nil {
				t.Fatalf("%s %v: %v", alg, mode, err)
			}
			if run.Iterations != base.Iterations {
				t.Fatalf("%s %v: %d iterations, dense ran %d", alg, mode, run.Iterations, base.Iterations)
			}
			if run.Converged != base.Converged {
				t.Fatalf("%s %v: converged=%v, dense %v", alg, mode, run.Converged, base.Converged)
			}
			for _, d := range []int{behavior.UPDT, behavior.EREAD, behavior.MSG} {
				if run.Raw[d] != base.Raw[d] {
					t.Fatalf("%s %v: %s = %v, dense %v — behavior leaked from the schedule",
						alg, mode, behavior.DimNames[d], run.Raw[d], base.Raw[d])
				}
			}
			if len(run.ActiveFraction) != len(base.ActiveFraction) {
				t.Fatalf("%s %v: active series length %d != %d",
					alg, mode, len(run.ActiveFraction), len(base.ActiveFraction))
			}
			for i := range run.ActiveFraction {
				if run.ActiveFraction[i] != base.ActiveFraction[i] {
					t.Fatalf("%s %v: activeFraction[%d] = %v, dense %v",
						alg, mode, i, run.ActiveFraction[i], base.ActiveFraction[i])
				}
			}
		}
	}
}

// TestGraphCacheSingleflight: 16 concurrent requests for one key must
// invoke the builder exactly once and all observe the same value — the
// regression for the duplicate-concurrent-build bug, where a campaign's
// first wave built the same largest graph Parallel times over.
func TestGraphCacheSingleflight(t *testing.T) {
	c := &graphCache{}
	var mu sync.Mutex
	builds := 0
	var wg sync.WaitGroup
	results := make([]any, 16)
	release := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.getOrBuild("k", func() (any, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				<-release // hold the build so every goroutine queues behind it
				return "graph", nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("builder invoked %d times for one key, want 1", builds)
	}
	for i, v := range results {
		if v != "graph" {
			t.Fatalf("goroutine %d saw %v", i, v)
		}
	}
	if c.entries() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.entries())
	}
}

// TestGraphCacheErrorNotCached: a failed build must not poison the key —
// the retry path rebuilds, while concurrent waiters of the failed
// generation still observe its error.
func TestGraphCacheErrorNotCached(t *testing.T) {
	c := &graphCache{}
	boom := errors.New("generator failed")
	if _, err := c.getOrBuild("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first build err = %v, want %v", err, boom)
	}
	if c.entries() != 0 {
		t.Fatalf("failed build left %d entries cached", c.entries())
	}
	v, err := c.getOrBuild("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("rebuild after failure = %v, %v; want 42, nil", v, err)
	}
}

// TestGraphCacheRetainRelease exercises plan-derived refcount eviction.
func TestGraphCacheRetainRelease(t *testing.T) {
	c := &graphCache{}
	c.retain(map[string]int{"a": 2, "b": 1})
	for _, k := range []string{"a", "b"} {
		if _, err := c.getOrBuild(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.entries() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.entries())
	}
	c.release("a")
	if c.entries() != 2 {
		t.Fatal("entry evicted while a spec still needs it")
	}
	c.release("b")
	if c.entries() != 1 {
		t.Fatal("last release of b did not evict it")
	}
	c.release("a")
	if c.entries() != 0 {
		t.Fatal("last release of a did not evict it")
	}
	c.release("") // empty keys (per-run workloads) are a no-op
	// A cache without a retained plan never evicts (single-run path).
	c2 := &graphCache{}
	if _, err := c2.getOrBuild("x", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c2.release("x")
	if c2.entries() != 1 {
		t.Fatal("release evicted from an unretained cache")
	}
}

// TestCampaignReleasesGraphs: after a campaign finishes — including specs
// that share graphs — every shared graph has been released and the cache
// is empty, so campaign peak memory is bounded by in-flight specs, not
// plan size.
func TestCampaignReleasesGraphs(t *testing.T) {
	var captured *graphCache
	campaignCacheHook = func(c *graphCache) { captured = c }
	defer func() { campaignCacheHook = nil }()

	specs := []Spec{
		{Algorithm: algorithms.CC, NumEdges: 300, Alpha: 2.5, SizeLabel: "300", Seed: 1},
		{Algorithm: algorithms.PR, NumEdges: 300, Alpha: 2.5, SizeLabel: "300", Seed: 1}, // shares CC's graph
		{Algorithm: algorithms.SSSP, NumEdges: 300, Alpha: 2.0, SizeLabel: "300", Seed: 2},
		{Algorithm: algorithms.DD, NumEdges: 80, SizeLabel: "80", Seed: 3}, // uncached per-run workload
	}
	res, err := ExecuteCampaign(context.Background(), specs, Config{Parallel: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(specs) {
		t.Fatalf("completed %d/%d specs", res.Completed, len(specs))
	}
	if captured == nil {
		t.Fatal("campaign cache hook never fired")
	}
	if n := captured.entries(); n != 0 {
		t.Fatalf("campaign finished with %d graphs still cached, want 0", n)
	}
}
