package sweep

import (
	"fmt"
	"math"
	"testing"

	"gcbench/internal/behavior"
)

// TestGoldenCorpusSubset re-executes a small deterministic slice of the
// shipped standard corpus (runs-standard.json, profile=standard seed=42)
// and pins the counter-derived behavior against it, so engine or sweep
// refactors cannot silently shift the paper's numbers. WORK is wall-clock
// derived and excluded; UPDT/EREAD/MSG are exact counter ratios and must
// agree to floating-point noise.
func TestGoldenCorpusSubset(t *testing.T) {
	golden, err := LoadRunsFile("../../runs-standard.json")
	if err != nil {
		t.Fatalf("loading golden corpus: %v", err)
	}
	key := func(alg, label string, alpha float64) string {
		return fmt.Sprintf("%s|%s|%.2f", alg, label, alpha)
	}
	want := map[string]*behavior.Run{}
	for _, r := range golden {
		want[key(r.Algorithm, r.SizeLabel, r.Alpha)] = r
	}

	specs, err := BuildPlan(ProfileStandard, 42)
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × 2 graph structures, all at the fast 1e3 scale.
	targets := map[string]bool{
		key("CC", "1e3", 2.0): true, key("CC", "1e3", 2.5): true,
		key("PR", "1e3", 2.0): true, key("PR", "1e3", 2.5): true,
	}
	cache := &graphCache{}
	checked := 0
	for _, spec := range specs {
		k := key(string(spec.Algorithm), spec.SizeLabel, spec.Alpha)
		if !targets[k] {
			continue
		}
		g, ok := want[k]
		if !ok {
			t.Fatalf("golden corpus lacks %s", k)
		}
		got, err := RunSpec(spec, 0, cache)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID(), err)
		}
		if got.NumEdges != g.NumEdges {
			t.Errorf("%s: realized edges %d, golden %d", k, got.NumEdges, g.NumEdges)
		}
		if got.Iterations != g.Iterations || got.Converged != g.Converged {
			t.Errorf("%s: iterations %d/conv=%t, golden %d/conv=%t",
				k, got.Iterations, got.Converged, g.Iterations, g.Converged)
		}
		for _, d := range []int{behavior.UPDT, behavior.EREAD, behavior.MSG} {
			if !withinRel(got.Raw[d], g.Raw[d], 1e-9) {
				t.Errorf("%s: %s = %v, golden %v", k, behavior.DimNames[d], got.Raw[d], g.Raw[d])
			}
		}
		if len(got.ActiveFraction) != len(g.ActiveFraction) {
			t.Errorf("%s: active series length %d, golden %d",
				k, len(got.ActiveFraction), len(g.ActiveFraction))
		} else {
			for i := range got.ActiveFraction {
				if !withinRel(got.ActiveFraction[i], g.ActiveFraction[i], 1e-9) {
					t.Errorf("%s: activeFraction[%d] = %v, golden %v",
						k, i, got.ActiveFraction[i], g.ActiveFraction[i])
				}
			}
		}
		checked++
	}
	if checked != len(targets) {
		t.Fatalf("checked %d golden runs, want %d", checked, len(targets))
	}
}

// withinRel reports |a-b| <= tol * max(|a|, |b|), with exact match
// required when either side is zero.
func withinRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

// TestGoldenPlanCoversStandardCorpus pins the campaign shape itself: the
// standard seed-42 plan must produce exactly the golden corpus's spec
// set, so plan refactors cannot silently drop or relabel runs.
func TestGoldenPlanCoversStandardCorpus(t *testing.T) {
	golden, err := LoadRunsFile("../../runs-standard.json")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := BuildPlan(ProfileStandard, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(golden) {
		t.Fatalf("plan has %d specs, golden corpus %d", len(specs), len(golden))
	}
	planIDs := map[string]int{}
	for _, s := range specs {
		planIDs[fmt.Sprintf("%s|%s|%.2f", s.Algorithm, s.SizeLabel, s.Alpha)]++
	}
	for _, r := range golden {
		k := fmt.Sprintf("%s|%s|%.2f", r.Algorithm, r.SizeLabel, r.Alpha)
		if planIDs[k] == 0 {
			t.Fatalf("golden run %s missing from the standard plan", k)
		}
		planIDs[k]--
	}
}
