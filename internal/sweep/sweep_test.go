package sweep

import (
	"bytes"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
)

func TestBuildPlanShape(t *testing.T) {
	specs, err := BuildPlan(ProfileQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 7 graph-varying GA/KM algorithms × 20 + 4 CF × 20 + 4 Jacobi +
	// 4 LBP + 4 DD = 232.
	if len(specs) != 232 {
		t.Fatalf("plan has %d specs, want 232", len(specs))
	}
	counts := map[algorithms.Name]int{}
	for _, s := range specs {
		counts[s.Algorithm]++
	}
	for _, alg := range []algorithms.Name{algorithms.CC, algorithms.KM, algorithms.ALS} {
		if counts[alg] != 20 {
			t.Fatalf("%s has %d specs, want 20 (4 sizes × 5 alphas)", alg, counts[alg])
		}
	}
	for _, alg := range []algorithms.Name{algorithms.Jacobi, algorithms.LBP, algorithms.DD} {
		if counts[alg] != 4 {
			t.Fatalf("%s has %d specs, want 4", alg, counts[alg])
		}
	}
}

func TestBuildPlanSharedGraphSeeds(t *testing.T) {
	specs, err := BuildPlan(ProfileQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// CC and PR runs on the same (size, alpha) must share the graph seed.
	seedOf := func(alg algorithms.Name, label string, alpha float64) uint64 {
		for _, s := range specs {
			if s.Algorithm == alg && s.SizeLabel == label && s.Alpha == alpha {
				return s.Seed
			}
		}
		t.Fatalf("spec %s/%s/%v not found", alg, label, alpha)
		return 0
	}
	if seedOf(algorithms.CC, "1e3", 2.5) != seedOf(algorithms.PR, "1e3", 2.5) {
		t.Fatal("CC and PR do not share a graph seed")
	}
	if seedOf(algorithms.CC, "1e3", 2.5) == seedOf(algorithms.CC, "1e3", 3.0) {
		t.Fatal("different alphas share a graph seed")
	}
}

func TestBuildPlanUnknownProfile(t *testing.T) {
	if _, err := BuildPlan(Profile("bogus"), 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int64]string{
		1000: "1e3", 10000: "1e4", 1000000: "1e6",
		1056: "1056", 300: "300", 20000: "2e4",
	}
	for n, want := range cases {
		if got := sizeLabel(n); got != want {
			t.Fatalf("sizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestRunSpecEveryAlgorithm executes one small spec per algorithm —
// the integration test that the whole dispatch works end to end.
func TestRunSpecEveryAlgorithm(t *testing.T) {
	cache := &graphCache{}
	for _, alg := range algorithms.AllNames() {
		spec := Spec{Algorithm: alg, SizeLabel: "test", Seed: 5}
		switch alg {
		case algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD:
			spec.NumEdges = 400
			spec.Alpha = 2.5
		case algorithms.Jacobi:
			spec.NumRows = 100
		case algorithms.LBP:
			spec.NumRows = 10
		case algorithms.DD:
			spec.NumEdges = 80
		default:
			spec.NumEdges = 500
			spec.Alpha = 2.5
		}
		r, err := RunSpec(spec, 2, cache)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if r.Iterations == 0 {
			t.Fatalf("%s: no iterations recorded", alg)
		}
		if r.Raw[behavior.UPDT] <= 0 {
			t.Fatalf("%s: UPDT = %v, want positive", alg, r.Raw[behavior.UPDT])
		}
		if len(r.ActiveFraction) != r.Iterations {
			t.Fatalf("%s: active series length %d != iterations %d",
				alg, len(r.ActiveFraction), r.Iterations)
		}
		if r.Domain != alg.Domain() {
			t.Fatalf("%s: domain %q", alg, r.Domain)
		}
	}
}

func TestExecuteParallelAndProgress(t *testing.T) {
	specs := []Spec{
		{Algorithm: algorithms.CC, NumEdges: 300, Alpha: 2.5, SizeLabel: "300", Seed: 1},
		{Algorithm: algorithms.PR, NumEdges: 300, Alpha: 2.5, SizeLabel: "300", Seed: 1},
		{Algorithm: algorithms.SSSP, NumEdges: 300, Alpha: 2.0, SizeLabel: "300", Seed: 2},
		{Algorithm: algorithms.TC, NumEdges: 300, Alpha: 2.0, SizeLabel: "300", Seed: 2},
	}
	calls := 0
	runs, err := Execute(specs, Config{Parallel: 2, Workers: 1, Progress: func(done, total int, id string) {
		calls++
		if total != 4 {
			t.Errorf("total = %d", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 || calls != 4 {
		t.Fatalf("runs=%d progress calls=%d, want 4 and 4", len(runs), calls)
	}
	for i, r := range runs {
		if r == nil {
			t.Fatalf("run %d missing", i)
		}
		if string(specs[i].Algorithm) != r.Algorithm {
			t.Fatalf("run %d is %s, want %s (order must be preserved)", i, r.Algorithm, specs[i].Algorithm)
		}
	}
}

func TestExecuteDeterministic(t *testing.T) {
	specs := []Spec{
		{Algorithm: algorithms.CC, NumEdges: 500, Alpha: 2.25, SizeLabel: "500", Seed: 9},
		{Algorithm: algorithms.KC, NumEdges: 500, Alpha: 2.25, SizeLabel: "500", Seed: 9},
	}
	a, err := Execute(specs, Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(specs, Config{Parallel: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		// WORK is timing-based; every counter-derived dimension must match.
		for _, d := range []int{behavior.UPDT, behavior.EREAD, behavior.MSG} {
			if a[i].Raw[d] != b[i].Raw[d] {
				t.Fatalf("run %d dim %s differs across configs: %v vs %v",
					i, behavior.DimNames[d], a[i].Raw[d], b[i].Raw[d])
			}
		}
		if a[i].Iterations != b[i].Iterations {
			t.Fatalf("run %d iterations differ", i)
		}
	}
}

func TestSaveLoadRuns(t *testing.T) {
	runs := []*behavior.Run{
		{Algorithm: "CC", Domain: "Graph Analytics", NumEdges: 100, Alpha: 2.5,
			SizeLabel: "100", Iterations: 3, Converged: true,
			ActiveFraction: []float64{1, 0.5, 0.1},
			Raw:            behavior.Vector{0.1, 0.2, 0.3, 0.4}},
	}
	var buf bytes.Buffer
	if err := SaveRuns(&buf, runs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRuns(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Algorithm != "CC" || got[0].Raw != runs[0].Raw {
		t.Fatalf("round trip mismatch: %+v", got[0])
	}
	if _, err := LoadRuns(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
