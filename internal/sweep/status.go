package sweep

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gcbench/internal/behavior"
)

// Provenance records where and when one campaign run executed, so a
// corpus (and its checkpoint journal) carries enough context to judge
// whether two measurements are comparable — the "validated run
// provenance" LDBC Graphalytics asks of a trustworthy harness.
type Provenance struct {
	// GoVersion is runtime.Version() of the executing binary.
	GoVersion string `json:"goVersion"`
	// GOMAXPROCS is the scheduler parallelism during the run.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GcbenchVersion is the main-module version from the binary's build
	// info ("(devel)" for source builds), with the VCS revision appended
	// when the build was stamped.
	GcbenchVersion string `json:"gcbenchVersion,omitempty"`
	// StartedAt / FinishedAt bound the run's wall-clock window,
	// including retries and backoff.
	StartedAt  time.Time `json:"startedAt"`
	FinishedAt time.Time `json:"finishedAt"`
}

// buildVersion resolves the gcbench build identity once; ReadBuildInfo
// walks the embedded module data, which is not free.
var buildVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			v += "+" + rev
			break
		}
	}
	return v
})

// newProvenance stamps a run's start.
func newProvenance(start time.Time) *Provenance {
	return &Provenance{
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		GcbenchVersion: buildVersion(),
		StartedAt:      start,
	}
}

// Tracker observes a campaign live: ExecuteCampaign (when
// Config.Tracker is set) reports every attempt start and every finished
// spec, and Snapshot renders the whole campaign's state as one
// JSON-encodable value — the /statusz payload.
type Tracker struct {
	mu        sync.Mutex
	startedAt time.Time
	order     []string
	states    map[string]*RunState
}

// NewTracker returns an empty campaign tracker.
func NewTracker() *Tracker {
	return &Tracker{states: make(map[string]*RunState)}
}

// RunState is one spec's live state in a campaign.
type RunState struct {
	ID string `json:"id"`
	// State is "pending", "running", or a final behavior.RunStatus
	// ("ok", "failed", "timeout", "cancelled", "skipped").
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	// StartedAt is RFC3339Nano of the first attempt ("" while pending).
	StartedAt string `json:"startedAt,omitempty"`
	// DurationMs is total wall time across attempts (final states only).
	DurationMs int64  `json:"durationMs,omitempty"`
	Err        string `json:"error,omitempty"`
}

// CampaignStatus is a point-in-time snapshot of a campaign.
type CampaignStatus struct {
	StartedAt string `json:"startedAt"`
	ElapsedMs int64  `json:"elapsedMs"`
	Total     int    `json:"total"`
	Pending   int    `json:"pending"`
	Running   int    `json:"running"`
	Completed int    `json:"completed"`
	Skipped   int    `json:"skipped"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	// ETAMs extrapolates the remaining wall time from the mean pace of
	// finished specs. It is null (not 0, which would read as "done") until
	// the first spec finishes — an all-pending campaign has no pace to
	// extrapolate from.
	ETAMs *int64 `json:"etaMs"`
	// RunSeconds summarizes the per-spec wall-time distribution of the
	// process-wide gcbench_sweep_run_seconds histogram as interpolated
	// percentiles — the SLO view of run latency. Nil until a run finishes.
	RunSeconds *RunSecondsSummary `json:"runSeconds,omitempty"`
	Runs       []RunState         `json:"runs"`
}

// RunSecondsSummary is the /statusz percentile digest of per-spec wall
// time, derived from the run-duration histogram's buckets by linear
// interpolation (no raw samples are retained).
type RunSecondsSummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// begin registers the campaign's spec list; every spec starts pending.
func (t *Tracker) begin(specs []Spec) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.startedAt = time.Now()
	for _, s := range specs {
		id := s.ID()
		if _, ok := t.states[id]; ok {
			continue
		}
		t.order = append(t.order, id)
		t.states[id] = &RunState{ID: id, State: "pending"}
	}
}

// runStarted marks one attempt of a spec as in flight.
func (t *Tracker) runStarted(id string, attempt int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.states[id]
	if !ok {
		return
	}
	st.State = "running"
	st.Attempts = attempt
	if st.StartedAt == "" {
		st.StartedAt = time.Now().UTC().Format(time.RFC3339Nano)
	}
}

// runFinished records a spec's final RunResult.
func (t *Tracker) runFinished(r RunResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.states[r.Spec.ID()]
	if !ok {
		return
	}
	st.State = string(r.Status)
	st.Attempts = r.Attempts
	st.DurationMs = r.Duration.Milliseconds()
	st.Err = r.Err
	if st.StartedAt == "" && r.Provenance != nil {
		st.StartedAt = r.Provenance.StartedAt.UTC().Format(time.RFC3339Nano)
	}
}

// Snapshot returns the campaign's current state. Safe to call from any
// goroutine, any number of times, including after the campaign ended.
func (t *Tracker) Snapshot() CampaignStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := CampaignStatus{Total: len(t.order), Runs: make([]RunState, 0, len(t.order))}
	if !t.startedAt.IsZero() {
		s.StartedAt = t.startedAt.UTC().Format(time.RFC3339Nano)
		s.ElapsedMs = time.Since(t.startedAt).Milliseconds()
	}
	for _, id := range t.order {
		st := t.states[id]
		s.Runs = append(s.Runs, *st)
		switch st.State {
		case "pending":
			s.Pending++
		case "running":
			s.Running++
		case string(behavior.StatusOK):
			s.Completed++
		case string(behavior.StatusSkipped):
			s.Skipped++
		case string(behavior.StatusFailed), string(behavior.StatusTimeout):
			s.Failed++
		case string(behavior.StatusCancelled):
			s.Cancelled++
		}
	}
	if finished := s.Completed + s.Skipped + s.Failed + s.Cancelled; finished > 0 && s.ElapsedMs > 0 {
		remaining := s.Total - finished
		eta := int64(float64(s.ElapsedMs) / float64(finished) * float64(remaining))
		s.ETAMs = &eta
	}
	if p50, ok := metricRunSeconds.Quantile(0.50); ok {
		p95, _ := metricRunSeconds.Quantile(0.95)
		p99, _ := metricRunSeconds.Quantile(0.99)
		s.RunSeconds = &RunSecondsSummary{
			Count: metricRunSeconds.Count(),
			P50:   p50,
			P95:   p95,
			P99:   p99,
		}
	}
	return s
}
