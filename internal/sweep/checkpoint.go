package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gcbench/internal/behavior"
	"gcbench/internal/obs"
)

// metricJournalWrites counts atomic journal rewrites (one per Record).
var metricJournalWrites = obs.Default().Counter("gcbench_sweep_journal_writes_total", "Checkpoint journal rewrites.")

// JournalEntry is one checkpoint record: the final outcome of one spec,
// keyed by the spec's ID. Successful entries embed the measured behavior
// run so a resumed campaign can rebuild the full corpus without
// re-executing anything.
type JournalEntry struct {
	ID     string             `json:"id"`
	Spec   Spec               `json:"spec"`
	Status behavior.RunStatus `json:"status"`
	// Attempts and DurationMs mirror the RunResult accounting.
	Attempts   int           `json:"attempts"`
	DurationMs int64         `json:"durationMs"`
	Err        string        `json:"error,omitempty"`
	Run        *behavior.Run `json:"run,omitempty"`
	// Provenance carries the run's execution environment and start/end
	// timestamps into the checkpoint, so a resumed campaign's corpus
	// still documents where every measurement came from.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// entryOf converts a finished RunResult into its journal record.
func entryOf(r RunResult) JournalEntry {
	return JournalEntry{
		ID:         r.Spec.ID(),
		Spec:       r.Spec,
		Status:     r.Status,
		Attempts:   r.Attempts,
		DurationMs: r.Duration.Milliseconds(),
		Err:        r.Err,
		Run:        r.Run,
		Provenance: r.Provenance,
	}
}

// Journal is a campaign checkpoint: an append-only JSONL file with one
// JournalEntry per line, rewritten atomically (temp file + rename in the
// journal's directory) on every Record so a killed process never leaves a
// torn file behind. Re-recording a spec ID (a failed run retried by a
// resumed campaign) replaces the earlier entry.
type Journal struct {
	path string

	mu      sync.Mutex
	order   []string
	entries map[string]JournalEntry
}

// OpenJournal opens (or creates) the journal at path, loading any
// existing entries for resume. A trailing partial line — a write cut off
// by a kill before the atomic rewrite landed — is tolerated and dropped.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, entries: make(map[string]JournalEntry)}
	entries, err := LoadJournal(path)
	if err != nil {
		if os.IsNotExist(err) {
			return j, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if _, ok := j.entries[e.ID]; !ok {
			j.order = append(j.order, e.ID)
		}
		j.entries[e.ID] = e
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct spec IDs recorded.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// CompletedCount returns how many recorded entries are StatusOK.
func (j *Journal) CompletedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Status == behavior.StatusOK {
			n++
		}
	}
	return n
}

// Completed returns the journaled behavior run for spec if a successful
// entry exists for the same spec identity (ID and seed — a journal from a
// different campaign seed never satisfies a resume). Failed or timed-out
// entries return false so a resumed campaign re-executes them.
func (j *Journal) Completed(spec Spec) (*behavior.Run, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[spec.ID()]
	if !ok || e.Status != behavior.StatusOK || e.Run == nil || e.Spec.Seed != spec.Seed {
		return nil, false
	}
	return e.Run, true
}

// Entries returns the recorded entries in first-recorded order.
func (j *Journal) Entries() []JournalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEntry, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.entries[id])
	}
	return out
}

// Record checkpoints one finished spec and atomically persists the
// journal. Safe for concurrent use by campaign worker goroutines.
func (j *Journal) Record(e JournalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[e.ID]; !ok {
		j.order = append(j.order, e.ID)
	}
	j.entries[e.ID] = e
	metricJournalWrites.Inc()
	return j.flushLocked()
}

// flushLocked writes every entry as one JSON line to a temp file in the
// journal's directory, fsyncs, and renames it over the journal path.
func (j *Journal) flushLocked() error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	for _, id := range j.order {
		if err := enc.Encode(j.entries[id]); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), j.path)
}

// LoadJournal reads a journal file's entries in file order. A final
// partial line is dropped; a malformed line elsewhere is an error.
func LoadJournal(path string) ([]JournalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var entries []JournalEntry
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			// Only tolerate corruption on the final line (torn write).
			pendingErr = fmt.Errorf("sweep: journal %s line %d: %w", path, line, err)
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: reading journal %s: %w", path, err)
	}
	return entries, nil
}

// Summary renders a one-line résumé of the journal for CLI output.
func (j *Journal) Summary() string {
	entries := j.Entries()
	ok, failed := 0, 0
	for _, e := range entries {
		if e.Status == behavior.StatusOK {
			ok++
		} else {
			failed++
		}
	}
	return fmt.Sprintf("%d checkpointed (%d ok, %d failed)", len(entries), ok, failed)
}
