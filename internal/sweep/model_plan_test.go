package sweep

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/model"
)

// TestBuildPlanModelsGASIdentity: the single-GAS (and empty) model list
// must reproduce BuildPlan exactly — same specs, same JSON encoding — so
// every pre-model-axis caller is untouched by the new axis.
func TestBuildPlanModelsGASIdentity(t *testing.T) {
	base, err := BuildPlan(ProfileQuick, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, models := range [][]model.Name{nil, {model.GAS}} {
		got, err := BuildPlanModels(ProfileQuick, 42, models)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("BuildPlanModels(%v) differs from BuildPlan", models)
		}
	}
	// GAS specs must serialize without a model key at all.
	body, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "model") {
		t.Fatalf("GAS plan JSON mentions model: %s", body)
	}
}

func TestBuildPlanModelsExpansion(t *testing.T) {
	all := model.AllNames()
	specs, err := BuildPlanModels(ProfileQuick, 42, all)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildPlan(ProfileQuick, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Each model contributes exactly the base specs whose algorithm it
	// implements.
	want := 0
	perModel := map[model.Name]int{}
	for _, n := range all {
		impl, err := model.ForName(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range base {
			if impl.Supports(s.Algorithm) {
				want++
				perModel[n]++
			}
		}
	}
	if len(specs) != want {
		t.Fatalf("plan has %d specs, want %d", len(specs), want)
	}
	got := map[model.Name]int{}
	ids := map[string]bool{}
	for _, s := range specs {
		got[s.EffectiveModel()]++
		if ids[s.ID()] {
			t.Fatalf("duplicate spec ID %s", s.ID())
		}
		ids[s.ID()] = true
		if s.EffectiveModel() == model.GAS && s.Model != "" {
			t.Fatalf("GAS spec %s carries explicit model tag %q", s.ID(), s.Model)
		}
	}
	for _, n := range all {
		if got[n] != perModel[n] {
			t.Errorf("%s: %d specs, want %d", n, got[n], perModel[n])
		}
	}
	// Expansion is deterministic regardless of the request order.
	reversed := []model.Name{model.GraphCentric, model.XStream, model.Pregel, model.GAS}
	again, err := BuildPlanModels(ProfileQuick, 42, reversed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, specs) {
		t.Fatal("model order in the request changed the plan")
	}
	if _, err := BuildPlanModels(ProfileQuick, 42, []model.Name{"giraph"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSpecIDModelSuffix(t *testing.T) {
	s := Spec{Algorithm: algorithms.PR, NumEdges: 100000, Alpha: 2.5, SizeLabel: "1e5", Seed: 1}
	if got := s.ID(); got != "<PR, 1e5, 2.50>" {
		t.Errorf("GAS ID = %q", got)
	}
	s.Model = model.Pregel
	if got := s.ID(); got != "<PR, 1e5, 2.50, pregel>" {
		t.Errorf("pregel ID = %q", got)
	}
	j := Spec{Algorithm: algorithms.Jacobi, NumRows: 5000, SizeLabel: "5000", Model: "xstream"}
	if got := j.ID(); got != "<Jacobi, 5000, xstream>" {
		t.Errorf("no-alpha model ID = %q", got)
	}
}

// TestSpecJSONBackCompat: specs decoded from pre-model-axis journals
// carry no model and read as effective GAS.
func TestSpecJSONBackCompat(t *testing.T) {
	old := `{"algorithm":"PR","numEdges":100000,"alpha":2.5,"sizeLabel":"1e5","seed":42}`
	var s Spec
	if err := json.Unmarshal([]byte(old), &s); err != nil {
		t.Fatal(err)
	}
	if s.Model != "" || s.EffectiveModel() != model.GAS {
		t.Fatalf("pre-model spec decoded as model %q (effective %s)", s.Model, s.EffectiveModel())
	}
	if s.ID() != "<PR, 1e5, 2.50>" {
		t.Fatalf("pre-model spec ID = %q", s.ID())
	}
}

// TestMultiModelCampaignAndResume runs one computation under all four
// models through the resilient runner with a checkpoint journal, then
// resumes: the model rides the whole execution path — run tagging,
// journal keys, resume matching — without any model-specific branches in
// the runner.
func TestMultiModelCampaignAndResume(t *testing.T) {
	base := Spec{Algorithm: algorithms.CC, NumEdges: 400, Alpha: 2.2, SizeLabel: "m", Seed: 3}
	var specs []Spec
	for _, n := range model.AllNames() {
		s := base
		s.Model = model.Name(model.Tag(n))
		specs = append(specs, s)
	}
	jpath := filepath.Join(t.TempDir(), "models.journal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteCampaign(context.Background(), specs, Config{Parallel: 2, Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(specs) || len(res.Runs) != len(specs) {
		t.Fatalf("completed %d runs of %d", res.Completed, len(specs))
	}
	for i, r := range res.Runs {
		want := model.Tag(specs[i].EffectiveModel())
		if r.Model != want {
			t.Errorf("run %d model = %q, want %q", i, r.Model, want)
		}
		if r.Raw[behavior.UPDT] <= 0 || r.Raw[behavior.EREAD] <= 0 {
			t.Errorf("run %d (%s): degenerate behavior %v", i, r.ID(), r.Raw)
		}
	}
	// All four runs are distinct journal entries; resume skips them all.
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ExecuteCampaign(context.Background(), specs, Config{
		Parallel: 2, Journal: j2,
		InjectFault: func(s Spec) error {
			t.Errorf("spec %s re-executed on resume", s.ID())
			return nil
		},
	})
	if err != nil || res2.Skipped != len(specs) {
		t.Fatalf("resume: err=%v skipped=%d, want %d", err, res2.Skipped, len(specs))
	}
	for i, r := range res2.Runs {
		if r.Model != model.Tag(specs[i].EffectiveModel()) {
			t.Errorf("resumed run %d model = %q, want %q", i, r.Model, model.Tag(specs[i].EffectiveModel()))
		}
	}
}

// TestModelBehaviorDiffersOnSharedGraph: the point of the axis — the
// same computation on the same graph occupies different behavior-space
// points under different engines.
func TestModelBehaviorDiffersOnSharedGraph(t *testing.T) {
	base := Spec{Algorithm: algorithms.CC, NumEdges: 400, Alpha: 2.2, SizeLabel: "m", Seed: 3}
	cache := &graphCache{}
	gas, err := RunSpec(base, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	pre := base
	pre.Model = model.Pregel
	pregel, err := RunSpec(pre, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	if gas.NumEdges != pregel.NumEdges {
		t.Fatalf("models saw different graphs: %d vs %d edges", gas.NumEdges, pregel.NumEdges)
	}
	if gas.Raw == pregel.Raw {
		t.Error("GAS and Pregel produced identical behavior vectors; the model axis measures nothing")
	}
}
