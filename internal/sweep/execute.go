package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
	"gcbench/internal/model"
	"gcbench/internal/trace"
)

// Config controls campaign execution.
//
// Two parallelism knobs compose: Parallel bounds how many *runs* execute
// concurrently, while Workers is the engine parallelism *within* each
// run. Total engine goroutines peak near Parallel × Workers, so a
// throughput-oriented campaign uses Parallel = cores with Workers = 1,
// whereas faithful per-run WORK timing wants Parallel = 1 with
// Workers = cores; the defaults split the difference.
type Config struct {
	// Workers is the engine parallelism within one run (0 = GOMAXPROCS).
	Workers int
	// Parallel is how many runs execute concurrently (0 = GOMAXPROCS/2,
	// min 1). Runs are independent; graph construction is cached and
	// shared.
	Parallel int
	// Progress, when non-nil, is called after every finished spec —
	// succeeded, failed, timed out, cancelled, or skipped via resume —
	// so done reaches total even on an all-failure campaign. Calls are
	// serialized; id is the finished spec's ID.
	Progress func(done, total int, id string)

	// Timeout is the per-attempt wall-clock budget of one run (0 = no
	// limit). Enforced cooperatively at engine iteration barriers.
	Timeout time.Duration
	// Retries is how many extra attempts a failed or timed-out run gets
	// before it is recorded as failed (0 = single attempt).
	Retries int
	// RetryBackoff is the wait before the first retry, doubling per
	// subsequent attempt (default 100ms when Retries > 0).
	RetryBackoff time.Duration
	// Journal, when non-nil, receives a checkpoint record after every
	// completed or failed run, and its previously completed entries are
	// restored instead of re-executed (resume).
	Journal *Journal
	// InjectFault, when non-nil, is consulted before every attempt; a
	// non-nil error fails that attempt. Deterministic fault injection for
	// testing isolation, retry and resume behavior (see FaultRate).
	InjectFault func(Spec) error
	// Tracker, when non-nil, observes the campaign live (attempt starts,
	// finished specs) and serves point-in-time snapshots — the /statusz
	// data source.
	Tracker *Tracker
	// Frontier selects the engine's active-set scheduling strategy for
	// every run (default FrontierAuto). Behavior metrics are invariant to
	// it; only execution speed differs.
	Frontier algorithms.FrontierMode
}

// Execute runs every spec and returns the behavior corpus in spec order.
// It is ExecuteContext with a background context.
func Execute(specs []Spec, cfg Config) ([]*behavior.Run, error) {
	return ExecuteContext(context.Background(), specs, cfg)
}

// ExecuteContext runs every spec and returns the behavior corpus in spec
// order. Unlike ExecuteCampaign it fails the whole sweep if any run
// failed — but only after every other run has completed (and, when
// cfg.Journal is set, been checkpointed), so a retry of the same
// campaign can resume rather than start over.
func ExecuteContext(ctx context.Context, specs []Spec, cfg Config) ([]*behavior.Run, error) {
	res, err := ExecuteCampaign(ctx, specs, cfg)
	if err != nil {
		return nil, err
	}
	if res.Failed > 0 {
		f := res.FirstFailure()
		return nil, fmt.Errorf("sweep: %d/%d runs failed; first: run %s (attempts=%d): %s",
			res.Failed, len(specs), f.Spec.ID(), f.Attempts, f.Err)
	}
	return res.Runs, nil
}

// graphCache shares generated graphs between algorithms in the same
// domain group, as the paper shares one graph per structure.
//
// Builds are deduplicated in flight (singleflight): when a campaign
// launches with Parallel ≈ cores, every run of the first wave asks for
// the same few graphs at once, and letting each build its own copy
// multiplies peak RSS by the parallelism degree on the largest size.
// The first caller builds; everyone else blocks on the entry's ready
// channel and shares the result.
type graphCache struct {
	mu   sync.Mutex
	m    map[string]*cacheEntry
	refs map[string]int // remaining users per key (nil = retain forever)
}

// cacheEntry is one build, possibly still in flight.
type cacheEntry struct {
	ready chan struct{} // closed when v/err are final
	v     any
	err   error
}

func (c *graphCache) getOrBuild(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*cacheEntry)
	}
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.v, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	e.v, e.err = build()
	if e.err != nil {
		// Failed builds are not cached: a retried attempt must rebuild
		// rather than replay the error forever. Concurrent waiters of
		// this entry still observe the failure.
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.v, e.err
}

// retain declares how many campaign specs will request each key, enabling
// release-at-zero eviction. Without a retain call the cache keeps every
// entry for its lifetime (the single-run and test paths).
func (c *graphCache) retain(counts map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refs = counts
}

// release records that one spec holding key is done with it; the entry is
// evicted when no remaining spec needs it, so a full sizes × alphas
// campaign no longer retains every graph simultaneously. No-op for empty
// keys and for caches without a retain'd plan.
func (c *graphCache) release(key string) {
	if key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.refs == nil {
		return
	}
	if n := c.refs[key] - 1; n > 0 {
		c.refs[key] = n
	} else {
		delete(c.refs, key)
		delete(c.m, key)
	}
}

// entries returns the number of cached (or in-flight) graphs.
func (c *graphCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// cfGraph pairs a rating graph with its user count.
type cfGraph struct {
	g     *graph.Graph
	users int
}

// cacheKey returns the shared-graph cache key of the spec, or "" for
// workloads generated per run (Jacobi, LBP, DD).
func (s Spec) cacheKey() string {
	switch s.Algorithm {
	case algorithms.CC, algorithms.KC, algorithms.TC, algorithms.SSSP,
		algorithms.PR, algorithms.AD, algorithms.KM:
		return fmt.Sprintf("ga/%d/%.2f/%d", s.NumEdges, s.Alpha, s.Seed)
	case algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD:
		return fmt.Sprintf("cf/%d/%.2f/%d", s.NumEdges, s.Alpha, s.Seed)
	}
	return ""
}

// RunSpec executes one graph computation and converts its trace into a
// behavior run. cache may be nil.
func RunSpec(spec Spec, workers int, cache *graphCache) (*behavior.Run, error) {
	return RunSpecContext(context.Background(), spec, workers, cache)
}

// RunSpecContext is RunSpec under a context: a cancelled or expired ctx
// stops the computation at its next engine iteration barrier and returns
// an error wrapping ctx.Err().
func RunSpecContext(ctx context.Context, spec Spec, workers int, cache *graphCache) (*behavior.Run, error) {
	run, _, err := runSpecTrace(ctx, spec, workers, algorithms.FrontierAuto, cache)
	return run, err
}

// RunSpecTrace executes one spec under the given frontier schedule and
// returns the behavior run together with the full engine trace —
// per-iteration counters plus the phase spans and modes the Chrome trace
// export renders.
func RunSpecTrace(ctx context.Context, spec Spec, workers int, frontier algorithms.FrontierMode) (*behavior.Run, *trace.RunTrace, error) {
	return runSpecTrace(ctx, spec, workers, frontier, nil)
}

// runSpecTrace executes one spec through its execution model: the
// workload (graph, rating matrix, linear system or MRF) is built — or
// fetched from the campaign's shared cache, which is keyed on structure
// alone so every model sweeping the same graph shares one copy — and
// handed to the model implementation the spec names.
func runSpecTrace(ctx context.Context, spec Spec, workers int, frontier algorithms.FrontierMode, cache *graphCache) (*behavior.Run, *trace.RunTrace, error) {
	if cache == nil {
		cache = &graphCache{}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	m, err := model.ForName(spec.EffectiveModel())
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: %w", err)
	}
	if !m.Supports(spec.Algorithm) {
		return nil, nil, fmt.Errorf("sweep: model %s does not implement algorithm %s", m.Name(), spec.Algorithm)
	}
	w, err := specWorkload(spec, cache)
	if err != nil {
		return nil, nil, err
	}
	out, err := m.Run(ctx, w, spec.Algorithm, model.Options{
		Workers:  workers,
		Context:  ctx,
		Frontier: frontier,
		Seed:     spec.Seed,
	})
	if err != nil {
		return nil, nil, err
	}

	r := &behavior.Run{
		Algorithm:      string(spec.Algorithm),
		Model:          model.Tag(spec.EffectiveModel()),
		Domain:         spec.Algorithm.Domain(),
		NumEdges:       out.Trace.NumEdges,
		Alpha:          spec.Alpha,
		SizeLabel:      spec.SizeLabel,
		Iterations:     out.Trace.NumIterations(),
		Converged:      out.Trace.Converged,
		ActiveFraction: out.Trace.ActiveFraction(),
		Raw:            behavior.FromTrace(out.Trace),
	}
	return r, out.Trace, nil
}

// specWorkload assembles (or fetches from the shared cache) the input
// the spec's algorithm runs over. Graph-shaped workloads are cached per
// structure — never per model — so a multi-model campaign builds each
// graph once.
func specWorkload(spec Spec, cache *graphCache) (model.Workload, error) {
	switch spec.Algorithm {
	case algorithms.CC, algorithms.KC, algorithms.TC, algorithms.SSSP,
		algorithms.PR, algorithms.AD, algorithms.KM:
		g, err := gaGraph(spec, cache)
		if err != nil {
			return model.Workload{}, err
		}
		return model.Workload{Graph: g}, nil

	case algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD:
		v, err := cache.getOrBuild(spec.cacheKey(), func() (any, error) {
			g, users, err := gen.Bipartite(gen.BipartiteConfig{
				NumEdges: spec.NumEdges, Alpha: spec.Alpha, Seed: spec.Seed,
			})
			if err != nil {
				return nil, err
			}
			return cfGraph{g, users}, nil
		})
		if err != nil {
			return model.Workload{}, err
		}
		cg := v.(cfGraph)
		return model.Workload{Ratings: cg.g, Users: cg.users}, nil

	case algorithms.Jacobi:
		sys, err := gen.Matrix(gen.JacobiConfig{NumRows: spec.NumRows, Seed: spec.Seed})
		if err != nil {
			return model.Workload{}, err
		}
		return model.Workload{System: sys}, nil

	case algorithms.LBP:
		m, err := gen.Grid(gen.GridConfig{Rows: spec.NumRows, Seed: spec.Seed})
		if err != nil {
			return model.Workload{}, err
		}
		return model.Workload{MRF: m}, nil

	case algorithms.DD:
		m, err := gen.MRF(gen.MRFConfig{NumEdges: spec.NumEdges, Seed: spec.Seed})
		if err != nil {
			return model.Workload{}, err
		}
		return model.Workload{MRF: m}, nil
	}
	return model.Workload{}, fmt.Errorf("sweep: unknown algorithm %q", spec.Algorithm)
}

// gaGraph builds (or fetches) the shared Graph Analytics / Clustering
// graph for a spec: undirected, sorted adjacency (for TC), with 2-D
// Gaussian features attached (for KM).
func gaGraph(spec Spec, cache *graphCache) (*graph.Graph, error) {
	v, err := cache.getOrBuild(spec.cacheKey(), func() (any, error) {
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			NumEdges:      spec.NumEdges,
			Alpha:         spec.Alpha,
			Seed:          spec.Seed,
			SortAdjacency: true,
		})
		if err != nil {
			return nil, err
		}
		pts := gen.GaussianPoints2D(g.NumVertices(), 8, 15, spec.Seed^0xfeed)
		if err := g.SetFeatures(2, pts); err != nil {
			return nil, err
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Graph), nil
}

// SaveRuns writes the corpus as JSON.
func SaveRuns(w io.Writer, runs []*behavior.Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(runs)
}

// LoadRuns reads a corpus written by SaveRuns.
func LoadRuns(r io.Reader) ([]*behavior.Run, error) {
	var runs []*behavior.Run
	if err := json.NewDecoder(r).Decode(&runs); err != nil {
		return nil, fmt.Errorf("sweep: decoding runs: %w", err)
	}
	return runs, nil
}

// SaveRunsFile and LoadRunsFile are path convenience wrappers.
func SaveRunsFile(path string, runs []*behavior.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveRuns(f, runs); err != nil {
		return err
	}
	return f.Close()
}

// LoadRunsFile reads a corpus file.
func LoadRunsFile(path string) ([]*behavior.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRuns(f)
}
