package sweep

import (
	"context"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/obs/otrace"
)

// TestTracingBehaviorInvariance pins the tracing contract: running a
// campaign with a span in the context (traced) versus without (untraced)
// yields bit-identical behavior vectors. The engine is never
// instrumented — iteration/phase spans are synthesized afterwards from
// walls it records regardless — so any divergence here means tracing
// leaked into the measurement path.
func TestTracingBehaviorInvariance(t *testing.T) {
	for _, alg := range []algorithms.Name{algorithms.PR, algorithms.CC, algorithms.Jacobi} {
		spec := smallSpec(alg)

		baseRes := runResilient(context.Background(), spec, Config{Workers: 2}, &graphCache{})
		if baseRes.Err != "" {
			t.Fatalf("%s untraced: %s", alg, baseRes.Err)
		}

		store := otrace.NewStore(4)
		_, root := store.StartTrace("test campaign", "job", otrace.TraceID{}, otrace.SpanID{})
		ctx := otrace.ContextWithSpan(context.Background(), root)
		tracedRes := runResilient(ctx, spec, Config{Workers: 2}, &graphCache{})
		root.End()
		if tracedRes.Err != "" {
			t.Fatalf("%s traced: %s", alg, tracedRes.Err)
		}

		base, traced := baseRes.Run, tracedRes.Run
		if base.Iterations != traced.Iterations || base.Converged != traced.Converged {
			t.Fatalf("%s: traced run shape differs: %d/%v vs %d/%v",
				alg, traced.Iterations, traced.Converged, base.Iterations, base.Converged)
		}
		// Bit-identical, not approximately equal: tracing must not perturb
		// a single float. WORK is excluded — it is wall-time based and
		// varies between any two runs, traced or not.
		for _, d := range []int{behavior.UPDT, behavior.EREAD, behavior.MSG} {
			if base.Raw[d] != traced.Raw[d] {
				t.Fatalf("%s: %s = %v traced vs %v untraced",
					alg, behavior.DimNames[d], traced.Raw[d], base.Raw[d])
			}
		}
		for i := range base.ActiveFraction {
			if base.ActiveFraction[i] != traced.ActiveFraction[i] {
				t.Fatalf("%s: active fraction diverges at iteration %d", alg, i)
			}
		}

		// And the traced run actually produced spans: run → iterations.
		tr, ok := store.Get(root.TraceID())
		if !ok {
			t.Fatalf("%s: traced run recorded no trace", alg)
		}
		var runs, iters int
		for _, sd := range tr.Spans() {
			switch sd.Kind {
			case "run":
				runs++
			case "iteration":
				iters++
			}
		}
		if runs == 0 || iters == 0 {
			t.Fatalf("%s: trace has %d run spans, %d iteration spans", alg, runs, iters)
		}
	}
}

// BenchmarkRunTraced/BenchmarkRunUntraced measure the per-run cost of
// tracing end to end (span open, graft of every iteration/phase span,
// span close) against the bare runner. The engine reads no extra clocks
// when traced, so the delta is the graft's allocation cost only — the
// <5% overhead budget.
func BenchmarkRunUntraced(b *testing.B) {
	spec := smallSpec(algorithms.PR)
	cache := &graphCache{}
	runResilient(context.Background(), spec, Config{Workers: 2}, cache) // warm graph cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runResilient(context.Background(), spec, Config{Workers: 2}, cache)
		if res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkRunTraced(b *testing.B) {
	spec := smallSpec(algorithms.PR)
	cache := &graphCache{}
	store := otrace.NewStore(8)
	runResilient(context.Background(), spec, Config{Workers: 2}, cache) // warm graph cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, root := store.StartTrace("bench", "job", otrace.TraceID{}, otrace.SpanID{})
		ctx := otrace.ContextWithSpan(context.Background(), root)
		res := runResilient(ctx, spec, Config{Workers: 2}, cache)
		root.End()
		if res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}
