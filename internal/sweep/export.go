package sweep

import (
	"fmt"
	"os"
	"path/filepath"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// ExportSuite materializes a designed benchmark suite to disk: for each
// selected run, the workload file that reproduces it (edge list or UAI
// MRF) plus a MANIFEST.txt describing the members — so an ensemble chosen
// for spread/coverage can be carried to any graph-processing system, the
// end goal of the paper's methodology.
func ExportSuite(dir string, runs []*behavior.Run, seedOf func(*behavior.Run) uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	manifest, err := os.Create(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "# gcbench benchmark suite")
	fmt.Fprintln(manifest, "# member  algorithm  size  alpha  workload-file")

	for i, r := range runs {
		seed := uint64(i + 1)
		if seedOf != nil {
			seed = seedOf(r)
		}
		name, err := exportWorkload(dir, i, r, seed)
		if err != nil {
			return fmt.Errorf("sweep: exporting %s: %w", r.ID(), err)
		}
		fmt.Fprintf(manifest, "%d  %s  %s  %.2f  %s\n", i, r.Algorithm, r.SizeLabel, r.Alpha, name)
	}
	return manifest.Close()
}

// exportWorkload writes one member's input file and returns its name.
func exportWorkload(dir string, i int, r *behavior.Run, seed uint64) (string, error) {
	alg := algorithms.Name(r.Algorithm)
	base := fmt.Sprintf("%02d-%s-%s", i, r.Algorithm, r.SizeLabel)
	switch alg {
	case algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD:
		g, _, err := gen.Bipartite(gen.BipartiteConfig{
			NumEdges: r.NumEdges, Alpha: r.Alpha, Seed: seed,
		})
		if err != nil {
			return "", err
		}
		return base + ".el", writeEdgeFile(dir, base+".el", g)
	case algorithms.LBP:
		side := intSqrt(int(r.NumEdges))
		if side < 2 {
			side = 2
		}
		m, err := gen.Grid(gen.GridConfig{Rows: side, Seed: seed})
		if err != nil {
			return "", err
		}
		return base + ".uai", writeUAIFile(dir, base+".uai", m)
	case algorithms.DD:
		m, err := gen.MRF(gen.MRFConfig{NumEdges: r.NumEdges, Seed: seed})
		if err != nil {
			return "", err
		}
		return base + ".uai", writeUAIFile(dir, base+".uai", m)
	case algorithms.Jacobi:
		sys, err := gen.Matrix(gen.JacobiConfig{NumRows: int(r.NumEdges) / 8, Seed: seed})
		if err != nil {
			return "", err
		}
		return base + ".el", writeEdgeFile(dir, base+".el", sys.G)
	default:
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			NumEdges: r.NumEdges, Alpha: r.Alpha, Seed: seed, SortAdjacency: true,
		})
		if err != nil {
			return "", err
		}
		return base + ".el", writeEdgeFile(dir, base+".el", g)
	}
}

func writeEdgeFile(dir, name string, g *graph.Graph) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		return err
	}
	return f.Close()
}

func writeUAIFile(dir, name string, m *graph.MRF) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.WriteUAI(f, m); err != nil {
		return err
	}
	return f.Close()
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
