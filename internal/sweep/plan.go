// Package sweep builds and executes the paper's experiment campaign
// (Table 2): every algorithm run over its domain's graph-feature matrix,
// producing the behavior-run corpus that Sections 4 and 5 analyze.
//
// The paper's absolute scales (nedges up to 10^9 on a 48-node cluster)
// are mapped to laptop-scale profiles; per-edge normalization makes the
// behavior vectors scale-invariant to first order (see DESIGN.md §3).
//
// # Campaign execution
//
// ExecuteCampaign is the resilient entry point: per-run wall-clock
// timeouts, bounded retry with exponential backoff, panic isolation, and
// an optional checkpoint Journal that lets an interrupted campaign resume
// with zero re-execution of completed runs. Execute/ExecuteContext wrap
// it with fail-if-anything-failed semantics for callers that need a
// complete corpus.
//
// Two parallelism knobs compose (see Config): Parallel bounds concurrent
// *runs*, Workers bounds engine goroutines *within* each run, so peak
// engine parallelism is roughly Parallel × Workers. Graph construction is
// cached per structure and shared between concurrent runs.
package sweep

import (
	"fmt"

	"gcbench/internal/algorithms"
	"gcbench/internal/model"
)

// Spec identifies one graph computation: the <algorithm, graph size,
// degree distribution> tuple of §5.1, extended with the execution model
// that runs it.
type Spec struct {
	Algorithm algorithms.Name `json:"algorithm"`
	// Model is the execution model (empty means GAS, keeping specs and
	// checkpoint journals written before the model axis byte-compatible).
	Model model.Name `json:"model,omitempty"`
	// NumEdges is the generator's target edge count (GA, Clustering, CF
	// and DD workloads).
	NumEdges int64 `json:"numEdges,omitempty"`
	// Alpha is the power-law exponent (0 where Table 2 has no α column).
	Alpha float64 `json:"alpha,omitempty"`
	// NumRows is the matrix/grid dimension (Jacobi and LBP workloads).
	NumRows int `json:"numRows,omitempty"`
	// SizeLabel is the human-readable scale column of Table 2.
	SizeLabel string `json:"sizeLabel"`
	// Seed selects the graph's random stream; runs sharing a graph share
	// the seed, mirroring the paper's one-graph-per-structure setup.
	Seed uint64 `json:"seed"`
}

// ID renders the spec's identifying tuple. Non-GAS specs append the
// model, so the same computation under two models never shares an ID —
// checkpoint resume, fault injection and tracing all key on it. GAS
// specs render exactly as before the model axis, so old journals still
// match.
func (s Spec) ID() string {
	id := ""
	if s.Alpha == 0 {
		id = fmt.Sprintf("<%s, %s>", s.Algorithm, s.SizeLabel)
	} else {
		id = fmt.Sprintf("<%s, %s, %.2f>", s.Algorithm, s.SizeLabel, s.Alpha)
	}
	if m := model.Canonical(string(s.Model)); m != model.GAS {
		id = id[:len(id)-1] + fmt.Sprintf(", %s>", m)
	}
	return id
}

// EffectiveModel returns the spec's execution model, resolving the
// empty (pre-model-axis) tag to GAS.
func (s Spec) EffectiveModel() model.Name {
	return model.Canonical(string(s.Model))
}

// Profile selects the campaign scale.
type Profile string

const (
	// ProfileQuick is for tests and smoke runs (seconds).
	ProfileQuick Profile = "quick"
	// ProfileStandard is the default laptop-scale reproduction (minutes).
	ProfileStandard Profile = "standard"
	// ProfileLarge pushes one decade further (tens of minutes).
	ProfileLarge Profile = "large"
)

// Alphas is the paper's degree-distribution sweep (Table 2).
var Alphas = []float64{2.0, 2.25, 2.5, 2.75, 3.0}

// profileScales returns the four graph-size decades per domain group.
func profileScales(p Profile) (ga, cf []int64, rows, grids []int, ddEdges []int64, err error) {
	// DD sizes are the paper's real MRF sizes at every profile — they are
	// already laptop-scale.
	ddEdges = []int64{1056, 1190, 1406, 1560}
	switch p {
	case ProfileQuick:
		ga = []int64{300, 1000, 3000, 10000}
		cf = []int64{100, 300, 1000, 3000}
		rows = []int{100, 200, 300, 400}
		grids = []int{12, 16, 24, 32}
	case ProfileStandard:
		ga = []int64{1000, 10000, 100000, 1000000}
		cf = []int64{100, 1000, 10000, 100000}
		rows = []int{500, 1000, 1500, 2000}
		grids = []int{50, 100, 150, 200}
	case ProfileLarge:
		ga = []int64{10000, 100000, 1000000, 10000000}
		cf = []int64{1000, 10000, 100000, 1000000}
		rows = []int{5000, 10000, 15000, 20000}
		grids = []int{100, 200, 300, 400}
	default:
		err = fmt.Errorf("sweep: unknown profile %q", p)
	}
	return
}

// sizeLabel renders an edge count compactly (1000 → "1e3").
func sizeLabel(n int64) string {
	e := 0
	v := n
	for v >= 10 && v%10 == 0 {
		v /= 10
		e++
	}
	if v < 10 && e >= 3 {
		return fmt.Sprintf("%de%d", v, e)
	}
	return fmt.Sprintf("%d", n)
}

// graphSeed derives the shared seed of a graph structure so every
// algorithm in a domain group sees the same graph, as in the paper.
func graphSeed(base uint64, group string, size int64, alpha float64) uint64 {
	h := base ^ 0x9e3779b97f4a7c15
	for _, c := range group {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h = (h ^ uint64(size)) * 0x100000001b3
	h = (h ^ uint64(alpha*100)) * 0x100000001b3
	return h
}

// BuildPlan constructs the Table 2 campaign for a profile: for each
// Graph Analytics and Clustering algorithm, 4 sizes × 5 alphas; for each
// CF algorithm, the same grid one decade lower; Jacobi and LBP over four
// matrix dimensions; DD over the four paper MRF sizes.
func BuildPlan(p Profile, seed uint64) ([]Spec, error) {
	ga, cf, rows, grids, ddEdges, err := profileScales(p)
	if err != nil {
		return nil, err
	}
	var specs []Spec
	gaAlgs := []algorithms.Name{algorithms.CC, algorithms.KC, algorithms.TC,
		algorithms.SSSP, algorithms.PR, algorithms.AD, algorithms.KM}
	for _, alg := range gaAlgs {
		for _, size := range ga {
			for _, alpha := range Alphas {
				specs = append(specs, Spec{
					Algorithm: alg,
					NumEdges:  size,
					Alpha:     alpha,
					SizeLabel: sizeLabel(size),
					Seed:      graphSeed(seed, "ga", size, alpha),
				})
			}
		}
	}
	cfAlgs := []algorithms.Name{algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD}
	for _, alg := range cfAlgs {
		for _, size := range cf {
			for _, alpha := range Alphas {
				specs = append(specs, Spec{
					Algorithm: alg,
					NumEdges:  size,
					Alpha:     alpha,
					SizeLabel: sizeLabel(size),
					Seed:      graphSeed(seed, "cf", size, alpha),
				})
			}
		}
	}
	for _, r := range rows {
		specs = append(specs, Spec{
			Algorithm: algorithms.Jacobi,
			NumRows:   r,
			SizeLabel: fmt.Sprintf("%d", r),
			Seed:      graphSeed(seed, "jacobi", int64(r), 0),
		})
	}
	for _, side := range grids {
		specs = append(specs, Spec{
			Algorithm: algorithms.LBP,
			NumRows:   side,
			SizeLabel: fmt.Sprintf("%d", side),
			Seed:      graphSeed(seed, "lbp", int64(side), 0),
		})
	}
	for _, e := range ddEdges {
		specs = append(specs, Spec{
			Algorithm: algorithms.DD,
			NumEdges:  e,
			SizeLabel: fmt.Sprintf("%d", e),
			Seed:      graphSeed(seed, "dd", e, 0),
		})
	}
	return specs, nil
}

// BuildPlanModels expands the Table 2 campaign across execution models:
// for each requested model, the profile's plan restricted to the
// algorithms that model implements. GAS specs carry an empty Model tag
// (the pre-model-axis encoding), so BuildPlanModels(p, seed, [gas]) is
// spec-for-spec identical to BuildPlan(p, seed). Duplicate model names
// collapse; specs are grouped model-major in AllNames order so the
// campaign's shared-graph cache drains one model's working set before
// the next begins.
func BuildPlanModels(p Profile, seed uint64, models []model.Name) ([]Spec, error) {
	if len(models) == 0 {
		return BuildPlan(p, seed)
	}
	base, err := BuildPlan(p, seed)
	if err != nil {
		return nil, err
	}
	want := make(map[model.Name]bool, len(models))
	for _, m := range models {
		n, err := model.Parse(string(m))
		if err != nil {
			return nil, err
		}
		want[n] = true
	}
	var specs []Spec
	for _, m := range model.AllNames() {
		if !want[m] {
			continue
		}
		impl, err := model.ForName(m)
		if err != nil {
			return nil, err
		}
		for _, s := range base {
			if !impl.Supports(s.Algorithm) {
				continue
			}
			s.Model = model.Name(model.Tag(m))
			specs = append(specs, s)
		}
	}
	return specs, nil
}
