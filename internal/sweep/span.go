package sweep

import (
	"fmt"
	"time"

	"gcbench/internal/obs/otrace"
	"gcbench/internal/trace"
)

// graftMaxIterations bounds how many iterations one run grafts as spans.
// Longer runs are stride-sampled: the graft is post-run bookkeeping that
// happens after the run's Duration is measured, but it still costs
// allocations, and a 10k-iteration run must not pay 40k span inserts for
// a trace whose per-trace cap would drop most of them anyway.
const graftMaxIterations = 256

// graftRunTrace attaches a finished run's engine trace to its run span as
// synthesized iteration and phase child spans. The engine itself is never
// instrumented: every offset and duration here is a wall-clock figure the
// engine already recorded in trace.IterationStats, so tracing adds zero
// clock reads (and zero cost of any kind) to the computation itself.
//
// Offsets are relative to the run span's start. Graph generation and
// cache waits precede iteration 0, so the synthesized timeline is the
// iteration phases' internal structure, not an absolute alignment with
// the run span's wall time.
func graftRunTrace(sp *otrace.Span, rt *trace.RunTrace) {
	if sp == nil || rt == nil {
		return
	}
	stride := 1
	if n := len(rt.Iterations); n > graftMaxIterations {
		stride = (n + graftMaxIterations - 1) / graftMaxIterations
		sp.SetAttr("iterationStride", stride)
	}
	var cursor time.Duration
	for i := range rt.Iterations {
		it := &rt.Iterations[i]
		if i%stride != 0 {
			cursor += it.WallTime
			continue
		}
		iter := sp.AddChild(fmt.Sprintf("iteration %d", it.Iteration), "iteration",
			cursor, it.WallTime,
			otrace.Int64("active", it.Active),
			otrace.Int64("updates", it.Updates),
			otrace.Int64("edgeReads", it.EdgeReads),
			otrace.Int64("messages", it.Messages))
		addPhase := func(name, mode string, offset, wall time.Duration) {
			if wall <= 0 {
				return
			}
			var attrs []otrace.Attr
			if mode != "" {
				attrs = append(attrs, otrace.String("mode", mode))
			}
			sp.AddChildUnder(iter, name, "phase", offset, wall, attrs...)
		}
		addPhase("gather", it.GatherMode, cursor, it.GatherWall)
		addPhase("apply", it.ApplyMode, cursor+it.GatherWall, it.ApplyWall)
		addPhase("scatter", it.ScatterMode, cursor+it.GatherWall+it.ApplyWall, it.ScatterWall)
		cursor += it.WallTime
	}
	sp.SetAttr("iterations", len(rt.Iterations))
	sp.SetAttr("converged", rt.Converged)
}
