package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/obs"
)

// scrapeMetrics fetches /metrics and parses the label-free samples.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		out[name] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func scrapeStatus(t *testing.T, url string) CampaignStatus {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatalf("statusz: %v", err)
	}
	defer resp.Body.Close()
	var s CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	return s
}

// TestCampaignLiveObservability is the acceptance scenario for the HTTP
// surface: a campaign runs with an attached tracker and observability
// server; /metrics and /statusz are scraped mid-flight (counters must be
// monotone, status must always account for every spec), and the final
// scrape must match the campaign's saved corpus exactly. Runs under the
// race detector in CI.
func TestCampaignLiveObservability(t *testing.T) {
	specs := campaignSpecs(10)
	tracker := NewTracker()
	srv, err := obs.StartServer("127.0.0.1:0", obs.ServerOptions{
		Status: func() any { return tracker.Snapshot() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Throttle the campaign so the mid-flight scrapes observe it live.
	var slow sync.Once
	cfg := Config{
		Parallel: 2, Workers: 1,
		Tracker: tracker,
		InjectFault: func(Spec) error {
			slow.Do(func() { time.Sleep(50 * time.Millisecond) })
			return nil
		},
	}

	type outcome struct {
		res *CampaignResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := ExecuteCampaign(context.Background(), specs, cfg)
		done <- outcome{res, err}
	}()

	// Mid-flight scrapes: counters monotone, status totals conserved.
	counters := []string{
		"gcbench_sweep_runs_started_total",
		"gcbench_sweep_runs_completed_total",
		"gcbench_engine_iterations_total",
		"gcbench_engine_updates_total",
	}
	prev := scrapeMetrics(t, srv.URL())
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := scrapeMetrics(t, srv.URL())
		for _, c := range counters {
			if cur[c] < prev[c] {
				t.Errorf("scrape %d: counter %s went backwards: %v -> %v", i, c, prev[c], cur[c])
			}
		}
		st := scrapeStatus(t, srv.URL())
		if st.Total != len(specs) {
			t.Errorf("scrape %d: statusz total = %d, want %d", i, st.Total, len(specs))
		}
		if sum := st.Pending + st.Running + st.Completed + st.Skipped + st.Failed + st.Cancelled; sum != st.Total {
			t.Errorf("scrape %d: statusz states sum to %d, total %d", i, sum, st.Total)
		}
		prev = cur
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}

	// Final scrape must agree with the saved corpus.
	st := scrapeStatus(t, srv.URL())
	if st.Completed != len(out.res.Runs) {
		t.Fatalf("final statusz completed = %d, corpus has %d runs", st.Completed, len(out.res.Runs))
	}
	if st.Pending != 0 || st.Running != 0 || st.Failed != 0 {
		t.Fatalf("final statusz not settled: %+v", st)
	}
	final := scrapeMetrics(t, srv.URL())
	for _, c := range counters {
		if final[c] < prev[c] {
			t.Fatalf("final counter %s went backwards: %v -> %v", c, prev[c], final[c])
		}
	}
	// The completed counter must have advanced by at least this
	// campaign's successes (other tests share the default registry, so
	// exact equality is not assertable).
	if final["gcbench_sweep_runs_completed_total"] < float64(out.res.Completed) {
		t.Fatalf("completed counter %v < campaign completions %d",
			final["gcbench_sweep_runs_completed_total"], out.res.Completed)
	}
	// Every per-run state in the final status is terminal and matches a
	// result in the corpus accounting.
	for _, rs := range st.Runs {
		if rs.State != string(behavior.StatusOK) {
			t.Fatalf("final run state %q for %s", rs.State, rs.ID)
		}
		if rs.Attempts < 1 || rs.StartedAt == "" {
			t.Fatalf("final run %s missing attempt accounting: %+v", rs.ID, rs)
		}
	}
}

// TestRunResultProvenance verifies every executed spec carries its
// execution environment and timing, and that the checkpoint journal
// persists it.
func TestRunResultProvenance(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir + "/prov.journal")
	if err != nil {
		t.Fatal(err)
	}
	specs := campaignSpecs(3)
	res, err := ExecuteCampaign(context.Background(), specs, Config{Parallel: 2, Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		p := r.Provenance
		if p == nil {
			t.Fatalf("%s: no provenance", r.Spec.ID())
		}
		if p.GoVersion != runtime.Version() {
			t.Errorf("%s: GoVersion = %q", r.Spec.ID(), p.GoVersion)
		}
		if p.GOMAXPROCS < 1 {
			t.Errorf("%s: GOMAXPROCS = %d", r.Spec.ID(), p.GOMAXPROCS)
		}
		if p.StartedAt.IsZero() || p.FinishedAt.Before(p.StartedAt) {
			t.Errorf("%s: timestamps %v .. %v", r.Spec.ID(), p.StartedAt, p.FinishedAt)
		}
	}
	// Journal round-trip preserves provenance.
	entries, err := LoadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(specs) {
		t.Fatalf("journal entries = %d, want %d", len(entries), len(specs))
	}
	for _, e := range entries {
		if e.Provenance == nil || e.Provenance.GoVersion == "" || e.Provenance.StartedAt.IsZero() {
			t.Fatalf("journal entry %s lacks provenance: %+v", e.ID, e.Provenance)
		}
	}
}

// TestTrackerSnapshotLifecycle pins the tracker state machine on a
// campaign with a permanent failure.
func TestTrackerSnapshotLifecycle(t *testing.T) {
	specs := campaignSpecs(4)
	poison := specs[1].ID()
	tracker := NewTracker()
	cfg := Config{
		Parallel: 2, Workers: 1, Retries: 1, RetryBackoff: time.Millisecond,
		Tracker: tracker,
		InjectFault: func(s Spec) error {
			if s.ID() == poison {
				return context.DeadlineExceeded
			}
			return nil
		},
	}
	if _, err := ExecuteCampaign(context.Background(), specs, cfg); err != nil {
		t.Fatal(err)
	}
	st := tracker.Snapshot()
	if st.Total != 4 || st.Completed != 3 || st.Failed != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	for _, rs := range st.Runs {
		if rs.ID == poison {
			if rs.State != string(behavior.StatusTimeout) || rs.Attempts != 2 || rs.Err == "" {
				t.Fatalf("poisoned run state = %+v", rs)
			}
		}
	}
	if st.ETAMs == nil || *st.ETAMs != 0 {
		t.Fatalf("finished campaign ETA = %v, want 0", st.ETAMs)
	}
	if st.RunSeconds == nil || st.RunSeconds.Count == 0 {
		t.Fatalf("finished campaign has no run-duration percentiles: %+v", st.RunSeconds)
	}
	if !(st.RunSeconds.P50 <= st.RunSeconds.P95 && st.RunSeconds.P95 <= st.RunSeconds.P99) {
		t.Fatalf("percentiles not monotone: %+v", st.RunSeconds)
	}
}

// TestStatusETANullBeforeFirstFinish: a campaign with zero finished
// specs must report a null ETA, not 0 — extrapolating from nothing would
// render a bogus "done now" figure.
func TestStatusETANullBeforeFirstFinish(t *testing.T) {
	tracker := NewTracker()
	tracker.begin(campaignSpecs(2))
	st := tracker.Snapshot()
	if st.ETAMs != nil {
		t.Fatalf("ETA before any finish = %d, want null", *st.ETAMs)
	}
	body, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"etaMs":null`) {
		t.Fatalf("etaMs does not render as JSON null: %s", body)
	}
}
