package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
)

// campaignSpecs builds n small, fast specs with distinct IDs.
func campaignSpecs(n int) []Spec {
	algs := []algorithms.Name{algorithms.CC, algorithms.PR, algorithms.KC, algorithms.SSSP}
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{
			Algorithm: algs[i%len(algs)],
			NumEdges:  300,
			Alpha:     2.0 + 0.25*float64(i%5),
			SizeLabel: fmt.Sprintf("c%d", i),
			Seed:      uint64(i + 1),
		}
	}
	return specs
}

// TestCampaignFaultIsolation is the acceptance scenario: one spec always
// fails, the campaign still completes, emits a corpus containing every
// other run, and reports the failure with its attempt count.
func TestCampaignFaultIsolation(t *testing.T) {
	specs := campaignSpecs(6)
	poison := specs[2].ID()
	progress := 0
	lastDone := 0
	cfg := Config{
		Parallel: 3, Workers: 1,
		Retries: 2, RetryBackoff: time.Millisecond,
		InjectFault: func(s Spec) error {
			if s.ID() == poison {
				return errors.New("always failing")
			}
			return nil
		},
		Progress: func(done, total int, id string) {
			progress++
			lastDone = done
			if total != len(specs) {
				t.Errorf("total = %d", total)
			}
		},
	}
	res, err := ExecuteCampaign(context.Background(), specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5 || res.Failed != 1 || len(res.Runs) != 5 {
		t.Fatalf("completed=%d failed=%d corpus=%d, want 5/1/5",
			res.Completed, res.Failed, len(res.Runs))
	}
	f := res.FirstFailure()
	if f == nil || f.Spec.ID() != poison {
		t.Fatalf("FirstFailure = %+v, want %s", f, poison)
	}
	if f.Status != behavior.StatusFailed || f.Attempts != 3 || f.Err == "" {
		t.Fatalf("failed result = status %s attempts %d err %q, want failed/3/non-empty",
			f.Status, f.Attempts, f.Err)
	}
	// Progress must account for the failed run too (not just successes).
	if progress != 6 || lastDone != 6 {
		t.Fatalf("progress fired %d times, last done %d; want 6 and 6", progress, lastDone)
	}
	// Sibling results stay in spec order and unpoisoned.
	for i, r := range res.Results {
		if r.Spec.ID() != specs[i].ID() {
			t.Fatalf("result %d is %s, want %s", i, r.Spec.ID(), specs[i].ID())
		}
		if i != 2 && (r.Status != behavior.StatusOK || r.Run == nil) {
			t.Fatalf("sibling %d poisoned: %+v", i, r)
		}
	}
	// The strict Execute wrapper reports the failure as an error.
	if _, err := Execute(specs, cfg); err == nil {
		t.Fatal("Execute accepted a failing campaign")
	}
}

func TestCampaignRetryRecoversTransientFault(t *testing.T) {
	specs := campaignSpecs(4)
	flaky := specs[1].ID()
	var mu sync.Mutex
	attempts := 0
	cfg := Config{
		Parallel: 2, Workers: 1,
		Retries: 2, RetryBackoff: time.Millisecond,
		InjectFault: func(s Spec) error {
			if s.ID() != flaky {
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			attempts++
			if attempts <= 2 {
				return fmt.Errorf("transient fault %d", attempts)
			}
			return nil
		},
	}
	res, err := ExecuteCampaign(context.Background(), specs, cfg)
	if err != nil || res.Failed != 0 || res.Completed != 4 {
		t.Fatalf("err=%v completed=%d failed=%d, want nil/4/0", err, res.Completed, res.Failed)
	}
	for _, r := range res.Results {
		want := 1
		if r.Spec.ID() == flaky {
			want = 3
		}
		if r.Attempts != want {
			t.Fatalf("%s attempts = %d, want %d", r.Spec.ID(), r.Attempts, want)
		}
	}
}

func TestCampaignPanicIsolated(t *testing.T) {
	specs := campaignSpecs(3)
	bomb := specs[0].ID()
	cfg := Config{
		Parallel: 1, Workers: 1,
		InjectFault: func(s Spec) error {
			if s.ID() == bomb {
				panic("spec exploded")
			}
			return nil
		},
	}
	res, err := ExecuteCampaign(context.Background(), specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Completed != 2 {
		t.Fatalf("completed=%d failed=%d, want 2/1", res.Completed, res.Failed)
	}
	if f := res.FirstFailure(); f.Status != behavior.StatusFailed ||
		f.Err != "panic: spec exploded" {
		t.Fatalf("panic not captured: %+v", f)
	}
}

func TestCampaignPerRunTimeout(t *testing.T) {
	specs := campaignSpecs(2)
	cfg := Config{
		Parallel: 1, Workers: 1,
		// An already-expired per-attempt deadline: every attempt stops at
		// the first barrier check with DeadlineExceeded.
		Timeout: time.Nanosecond,
		Retries: 1, RetryBackoff: time.Millisecond,
	}
	res, err := ExecuteCampaign(context.Background(), specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || len(res.Runs) != 0 {
		t.Fatalf("failed=%d corpus=%d, want 2/0", res.Failed, len(res.Runs))
	}
	for _, r := range res.Results {
		if r.Status != behavior.StatusTimeout || r.Attempts != 2 {
			t.Fatalf("result = status %s attempts %d, want timeout/2", r.Status, r.Attempts)
		}
	}
}

// TestCampaignCancelThenResume is the acceptance scenario for checkpoint
// + resume: cancel a campaign mid-flight, verify the journal is valid,
// then resume and verify zero completed specs are re-executed.
func TestCampaignCancelThenResume(t *testing.T) {
	specs := campaignSpecs(8)
	jpath := filepath.Join(t.TempDir(), "campaign.journal")

	j1, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Parallel: 1, Workers: 1, Journal: j1,
		Progress: func(done, total int, id string) {
			if done == 3 {
				cancel()
			}
		},
	}
	res1, err := ExecuteCampaign(ctx, specs, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	// Parallel=1 and the slot being released only after the checkpoint
	// lands make the cut deterministic: exactly 3 completed.
	if res1.Completed != 3 || res1.Cancelled != 5 {
		t.Fatalf("completed=%d cancelled=%d, want 3/5", res1.Completed, res1.Cancelled)
	}

	// The journal on disk is valid and holds exactly the completed runs.
	entries, err := LoadJournal(jpath)
	if err != nil {
		t.Fatalf("journal invalid after cancellation: %v", err)
	}
	completed := map[string]bool{}
	for _, e := range entries {
		if e.Status != behavior.StatusOK || e.Run == nil {
			t.Fatalf("journal entry %s: status %s run=%v", e.ID, e.Status, e.Run != nil)
		}
		completed[e.ID] = true
	}
	if len(completed) != 3 {
		t.Fatalf("journal has %d completed entries, want 3", len(completed))
	}

	// Resume: only the missing five execute, none of the journaled three.
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	executed := map[string]bool{}
	cfg2 := Config{
		Parallel: 2, Workers: 1, Journal: j2,
		InjectFault: func(s Spec) error {
			mu.Lock()
			executed[s.ID()] = true
			mu.Unlock()
			return nil
		},
	}
	res2, err := ExecuteCampaign(context.Background(), specs, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Skipped != 3 || res2.Completed != 5 || len(res2.Runs) != len(specs) {
		t.Fatalf("skipped=%d completed=%d corpus=%d, want 3/5/%d",
			res2.Skipped, res2.Completed, len(res2.Runs), len(specs))
	}
	for id := range executed {
		if completed[id] {
			t.Fatalf("completed spec %s was re-executed on resume", id)
		}
	}
	if len(executed) != 5 {
		t.Fatalf("%d specs executed on resume, want 5", len(executed))
	}
	// The resumed corpus preserves spec order across the skip/run split.
	for i, r := range res2.Runs {
		if r.Algorithm != string(specs[i].Algorithm) || r.SizeLabel != specs[i].SizeLabel {
			t.Fatalf("corpus entry %d is <%s,%s>, want <%s,%s>",
				i, r.Algorithm, r.SizeLabel, specs[i].Algorithm, specs[i].SizeLabel)
		}
	}
	// A second resume of the now-complete journal re-executes nothing.
	j3, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := ExecuteCampaign(context.Background(), specs, Config{
		Parallel: 2, Journal: j3,
		InjectFault: func(s Spec) error {
			t.Errorf("spec %s executed on full resume", s.ID())
			return nil
		},
	})
	if err != nil || res3.Skipped != len(specs) || len(res3.Runs) != len(specs) {
		t.Fatalf("full resume: err=%v skipped=%d corpus=%d", err, res3.Skipped, len(res3.Runs))
	}
}

func TestJournalSeedMismatchNotResumed(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	spec := campaignSpecs(1)[0]
	run := &behavior.Run{Algorithm: string(spec.Algorithm), SizeLabel: spec.SizeLabel}
	if err := j.Record(entryOf(RunResult{Spec: spec, Status: behavior.StatusOK, Run: run, Attempts: 1})); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Completed(spec); !ok {
		t.Fatal("matching spec not restored")
	}
	other := spec
	other.Seed++
	if _, ok := j.Completed(other); ok {
		t.Fatal("journal from a different campaign seed satisfied a resume")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	specs := campaignSpecs(2)
	for _, s := range specs {
		e := entryOf(RunResult{Spec: s, Status: behavior.StatusOK, Attempts: 1,
			Run: &behavior.Run{Algorithm: string(s.Algorithm), SizeLabel: s.SizeLabel}})
		if err := j.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn write: a partial record with no trailing newline.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"<CC, trunca`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, err := LoadJournal(jpath)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	// Corruption anywhere else is a real error, not silently dropped.
	if err := os.WriteFile(jpath, []byte("garbage\n{\"id\":\"x\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(jpath); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestFaultRateDeterministicAndSeedable(t *testing.T) {
	specs := campaignSpecs(32)
	count := func(seed uint64) (failed int, pattern string) {
		hook := FaultRate(0.5, seed)
		for _, s := range specs {
			if hook(s) != nil {
				failed++
				pattern += "x"
			} else {
				pattern += "."
			}
		}
		return
	}
	f1, p1 := count(7)
	_, p2 := count(7)
	if p1 != p2 {
		t.Fatal("same seed produced different fault patterns")
	}
	if f1 == 0 || f1 == len(specs) {
		t.Fatalf("rate 0.5 failed %d/%d specs", f1, len(specs))
	}
	if _, p3 := count(8); p3 == p1 {
		t.Fatal("different seeds produced identical fault patterns")
	}
	if FaultRate(0, 1) != nil {
		t.Fatal("rate 0 should disable injection")
	}
}
