package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/obs"
	"gcbench/internal/obs/otrace"
	"gcbench/internal/trace"
)

// Campaign metrics on the process-wide obs registry.
var (
	metricRunsStarted   = obs.Default().Counter("gcbench_sweep_runs_started_total", "Run attempts started (retries included).")
	metricRunsCompleted = obs.Default().Counter("gcbench_sweep_runs_completed_total", "Specs finished successfully.")
	metricRunsFailed    = obs.Default().Counter("gcbench_sweep_runs_failed_total", "Specs that exhausted every attempt (failed + timeout).")
	metricRunsRetried   = obs.Default().Counter("gcbench_sweep_runs_retried_total", "Extra attempts after a failed or timed-out first attempt.")
	metricRunsSkipped   = obs.Default().Counter("gcbench_sweep_runs_skipped_total", "Specs restored from a checkpoint journal (resume).")
	metricRunsCancelled = obs.Default().Counter("gcbench_sweep_runs_cancelled_total", "Specs stopped or never started due to cancellation.")
	metricQueueDepth    = obs.Default().Gauge("gcbench_sweep_queue_depth", "Specs not yet finished in the running campaign.")
	metricActiveRuns    = obs.Default().Gauge("gcbench_sweep_active_runs", "Specs executing right now.")
	metricRunSeconds    = obs.Default().Histogram("gcbench_sweep_run_seconds", "Per-spec wall time across attempts.",
		[]float64{0.01, 0.1, 0.5, 1, 5, 15, 60, 300, 1800})
)

// countFinished bumps the per-status counters for one finished spec.
func countFinished(st behavior.RunStatus) {
	switch st {
	case behavior.StatusOK:
		metricRunsCompleted.Inc()
	case behavior.StatusSkipped:
		metricRunsSkipped.Inc()
	case behavior.StatusFailed, behavior.StatusTimeout:
		metricRunsFailed.Inc()
	case behavior.StatusCancelled:
		metricRunsCancelled.Inc()
	}
}

// RunResult is the outcome of one campaign spec: either a measured
// behavior run, or an account of why the spec produced none.
type RunResult struct {
	Spec   Spec               `json:"spec"`
	Status behavior.RunStatus `json:"status"`
	// Run is the measured behavior (StatusOK and StatusSkipped only).
	Run *behavior.Run `json:"run,omitempty"`
	// Err is the last attempt's error string (empty on success).
	Err string `json:"error,omitempty"`
	// Attempts is how many attempts were made (0 for skipped/cancelled
	// specs that never started).
	Attempts int `json:"attempts"`
	// Duration is wall-clock time spent on this spec across all attempts,
	// including retry backoff.
	Duration time.Duration `json:"durationNs"`
	// Provenance records the execution environment and the run's
	// start/end timestamps (nil for specs that never started).
	Provenance *Provenance `json:"provenance,omitempty"`
}

// CampaignResult aggregates a resilient campaign: every spec is accounted
// for exactly once, and the partial corpus of successful runs is usable
// even when some specs failed or the campaign was cancelled mid-flight.
type CampaignResult struct {
	// Results has one entry per spec, in spec order.
	Results []RunResult
	// Runs is the corpus of measured behavior runs (successful and
	// journal-restored specs), in spec order.
	Runs []*behavior.Run
	// Completed counts StatusOK results; Skipped counts journal restores;
	// Failed counts StatusFailed + StatusTimeout; Cancelled counts specs
	// stopped or never started due to context cancellation.
	Completed, Skipped, Failed, Cancelled int
}

// FirstFailure returns the first failed or timed-out result in spec
// order, or nil if every spec succeeded.
func (r *CampaignResult) FirstFailure() *RunResult {
	for i := range r.Results {
		if s := r.Results[i].Status; s == behavior.StatusFailed || s == behavior.StatusTimeout {
			return &r.Results[i]
		}
	}
	return nil
}

// ExecuteCampaign runs a sweep campaign resiliently: specs execute
// concurrently under cfg.Parallel; a run that errors, times out
// (cfg.Timeout) or panics is retried up to cfg.Retries times with
// exponential backoff and then recorded as a failed RunResult, without
// disturbing sibling runs. When cfg.Journal is set, completed and failed
// specs are checkpointed as they finish and previously completed specs
// are restored instead of re-executed.
//
// Cancelling ctx stops the campaign cooperatively: in-flight runs stop at
// their next iteration barrier, queued specs are marked cancelled without
// starting, and the returned CampaignResult (with its journal) reflects
// everything that did complete. The error is nil unless ctx was cancelled
// or a journal write failed; per-spec failures are reported in Results,
// not as an error.
func ExecuteCampaign(ctx context.Context, specs []Spec, cfg Config) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	par := cfg.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0) / 2
		if par < 1 {
			par = 1
		}
	}

	results := make([]RunResult, len(specs))
	cache := &graphCache{}
	// Refcount shared graphs from the plan so each is released (and its
	// memory reclaimed) as soon as no remaining spec needs it — a full
	// sizes × alphas campaign must not retain every graph at once.
	refs := make(map[string]int)
	for i := range specs {
		if k := specs[i].cacheKey(); k != "" {
			refs[k]++
		}
	}
	cache.retain(refs)
	if campaignCacheHook != nil {
		campaignCacheHook(cache)
	}
	if cfg.Tracker != nil {
		cfg.Tracker.begin(specs)
	}
	metricQueueDepth.Set(float64(len(specs)))

	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	var mu sync.Mutex // serializes Progress calls and the done counter
	done := 0
	var journalErr error
	finish := func(i int) {
		// Every spec releases its shared graph exactly once, whatever its
		// outcome — skipped and cancelled specs will never need it either.
		cache.release(specs[i].cacheKey())
		countFinished(results[i].Status)
		metricQueueDepth.Add(-1)
		metricRunSeconds.Observe(results[i].Duration.Seconds())
		if cfg.Tracker != nil {
			cfg.Tracker.runFinished(results[i])
		}
		if cfg.Journal != nil {
			st := results[i].Status
			if st == behavior.StatusOK || st == behavior.StatusFailed || st == behavior.StatusTimeout {
				if err := cfg.Journal.Record(entryOf(results[i])); err != nil {
					mu.Lock()
					if journalErr == nil {
						journalErr = err
					}
					mu.Unlock()
				}
			}
		}
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(specs), specs[i].ID())
			mu.Unlock()
		}
	}

	for i := range specs {
		// Resume: restore journaled runs without taking an execution slot.
		if cfg.Journal != nil {
			if run, ok := cfg.Journal.Completed(specs[i]); ok {
				results[i] = RunResult{Spec: specs[i], Status: behavior.StatusSkipped, Run: run}
				finish(i)
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			results[i] = RunResult{Spec: specs[i], Status: behavior.StatusCancelled, Err: err.Error()}
			finish(i)
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			results[i] = RunResult{Spec: specs[i], Status: behavior.StatusCancelled, Err: ctx.Err().Error()}
			finish(i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = runResilient(ctx, specs[i], cfg, cache)
			finish(i)
		}(i)
	}
	wg.Wait()

	res := &CampaignResult{Results: results}
	for i := range results {
		switch results[i].Status {
		case behavior.StatusOK:
			res.Completed++
		case behavior.StatusSkipped:
			res.Skipped++
		case behavior.StatusFailed, behavior.StatusTimeout:
			res.Failed++
		case behavior.StatusCancelled:
			res.Cancelled++
		}
		if results[i].Run != nil {
			res.Runs = append(res.Runs, results[i].Run)
		}
	}
	if journalErr != nil {
		return res, fmt.Errorf("sweep: checkpoint journal: %w", journalErr)
	}
	return res, ctx.Err()
}

// runResilient executes one spec with per-attempt timeout, bounded retry
// with exponential backoff, and panic isolation.
func runResilient(ctx context.Context, spec Spec, cfg Config, cache *graphCache) RunResult {
	start := time.Now()
	res := RunResult{Spec: spec, Provenance: newProvenance(start)}
	defer func() { res.Provenance.FinishedAt = time.Now() }()
	// The per-run span hangs under whatever span the campaign context
	// carries (the jobs layer's "job" span, or nothing for untraced CLI
	// sweeps, in which case sp is nil and every call below no-ops).
	sp := otrace.FromContext(ctx).StartChild("run "+spec.ID(), "run")
	defer func() {
		if sp == nil {
			return
		}
		sp.SetAttr("attempts", res.Attempts)
		if res.Status != behavior.StatusOK {
			sp.SetAttr("runStatus", string(res.Status))
		}
		if res.Err != "" {
			sp.Fail(res.Err)
		}
		sp.End()
	}()
	metricActiveRuns.Add(1)
	defer metricActiveRuns.Add(-1)
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	attempts := cfg.Retries + 1
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			wait := backoff << uint(attempt-2)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		res.Attempts = attempt
		metricRunsStarted.Inc()
		if attempt > 1 {
			metricRunsRetried.Inc()
		}
		if cfg.Tracker != nil {
			cfg.Tracker.runStarted(spec.ID(), attempt)
		}
		run, rt, err := attemptSpec(ctx, spec, cfg, cache)
		if err == nil {
			res.Status = behavior.StatusOK
			res.Run = run
			res.Duration = time.Since(start)
			graftRunTrace(sp, rt)
			return res
		}
		lastErr = err
	}
	res.Duration = time.Since(start)
	switch {
	case ctx.Err() != nil:
		res.Status = behavior.StatusCancelled
		if lastErr == nil {
			lastErr = ctx.Err()
		}
	case errors.Is(lastErr, context.DeadlineExceeded):
		res.Status = behavior.StatusTimeout
	default:
		res.Status = behavior.StatusFailed
	}
	res.Err = lastErr.Error()
	return res
}

// attemptSpec makes one attempt at a spec: fault injection, per-attempt
// deadline, and recovery from panics raised by the generator, driver, or
// (via the engine's panic propagation) a vertex program. The engine
// trace is returned alongside the run so the caller can graft its
// iteration/phase timeline onto the run span.
func attemptSpec(ctx context.Context, spec Spec, cfg Config, cache *graphCache) (run *behavior.Run, rt *trace.RunTrace, err error) {
	defer func() {
		if p := recover(); p != nil {
			run, rt, err = nil, nil, fmt.Errorf("panic: %v", p)
		}
	}()
	if cfg.InjectFault != nil {
		if ferr := cfg.InjectFault(spec); ferr != nil {
			return nil, nil, ferr
		}
	}
	actx := ctx
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	return runSpecTrace(actx, spec, cfg.Workers, cfg.Frontier, cache)
}

// campaignCacheHook, when non-nil, receives every campaign's graph cache
// as it is created — test instrumentation for the refcount-release and
// singleflight behavior.
var campaignCacheHook func(*graphCache)

// FaultRate returns a deterministic, seedable InjectFault hook that fails
// roughly rate of all attempts. The decision depends only on (seed, spec
// ID, attempt number), so a campaign replays identically and retries can
// succeed where first attempts failed.
func FaultRate(rate float64, seed uint64) func(Spec) error {
	if rate <= 0 {
		return nil
	}
	var mu sync.Mutex
	attempt := make(map[string]int)
	return func(s Spec) error {
		mu.Lock()
		attempt[s.ID()]++
		n := attempt[s.ID()]
		mu.Unlock()
		h := seed ^ 0x9e3779b97f4a7c15
		for _, c := range s.ID() {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
		h = (h ^ uint64(n)) * 0x100000001b3
		if float64(h>>11)/float64(1<<53) < math.Min(rate, 1) {
			return fmt.Errorf("injected fault (rate=%g, attempt=%d)", rate, n)
		}
		return nil
	}
}
