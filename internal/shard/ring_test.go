package shard

import (
	"fmt"
	"testing"
)

// probeKeys generates a deterministic corpus-like key population: the
// record-key shapes the ring actually routes in production.
func probeKeys(n int) []string {
	keys := make([]string, n)
	algs := []string{"PR", "CC", "SSSP", "BFS", "KC", "TC", "Jacobi"}
	for i := range keys {
		keys[i] = fmt.Sprintf("%s_1e%d_a2.%d_%d", algs[i%len(algs)], 3+i%4, i%9, i)
	}
	return keys
}

func TestRingDeterministicAndValid(t *testing.T) {
	a, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5, 0)
	for _, k := range probeKeys(500) {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("ring not deterministic: %q → %d vs %d", k, oa, ob)
		}
		if oa < 0 || oa >= 5 {
			t.Fatalf("owner out of range: %q → %d", k, oa)
		}
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Error("0-shard ring accepted")
	}
	if _, err := NewRing(2, -1); err == nil {
		t.Error("negative vnode count accepted")
	}
}

// TestRingUniformity asserts the consistent-hash key distribution stays
// within tolerance of uniform across realistic shard counts: with 160
// virtual nodes per shard the expected per-shard share deviates from
// K/N by ~1/√160 ≈ 8%, so a [0.7, 1.35]× band is a real property, not
// a vacuous one.
func TestRingUniformity(t *testing.T) {
	const K = 20000
	keys := probeKeys(K)
	for _, n := range []int{2, 4, 8, 16} {
		r, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		mean := float64(K) / float64(n)
		for s, c := range counts {
			if ratio := float64(c) / mean; ratio < 0.70 || ratio > 1.35 {
				t.Errorf("n=%d shard %d holds %d keys (%.2f× mean %.0f); distribution out of tolerance: %v",
					n, s, c, ratio, mean, counts)
			}
		}
	}
}

// TestRingBoundedMovementOnAdd asserts the consistent-hashing resize
// contract: growing N → N+1 shards remaps at most K/N + ε keys, and
// every remapped key lands on the new shard (existing shards never
// trade keys among themselves — their ring points are unchanged).
func TestRingBoundedMovementOnAdd(t *testing.T) {
	const K = 20000
	keys := probeKeys(K)
	for _, n := range []int{2, 4, 8} {
		before, _ := NewRing(n, 0)
		after, _ := NewRing(n+1, 0)
		moved := 0
		for _, k := range keys {
			a, b := before.Owner(k), after.Owner(k)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d→%d: key %q moved %d→%d, not to the added shard", n, n+1, k, a, b)
			}
		}
		// ε = 2% of K absorbs the hash-placement variance around the
		// expected K/(N+1) movement.
		if bound := K/n + K/50; moved > bound {
			t.Errorf("n=%d→%d: %d keys remapped, bound K/N+ε = %d", n, n+1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("n=%d→%d: no keys remapped; the new shard would start empty forever", n, n+1)
		}
	}
}

// TestRingBoundedMovementOnRemove asserts the inverse: shrinking N+1 →
// N moves exactly the removed shard's keys (nothing else may move, and
// nothing of the removed shard may stay).
func TestRingBoundedMovementOnRemove(t *testing.T) {
	const K = 20000
	keys := probeKeys(K)
	for _, n := range []int{2, 4, 8} {
		before, _ := NewRing(n+1, 0)
		after, _ := NewRing(n, 0)
		moved := 0
		for _, k := range keys {
			a, b := before.Owner(k), after.Owner(k)
			if a == n && b == n {
				t.Fatalf("n=%d→%d: key %q still owned by removed shard", n+1, n, k)
			}
			if a != n && a != b {
				t.Fatalf("n=%d→%d: key %q moved %d→%d though its shard was not removed", n+1, n, k, a, b)
			}
			if a == n {
				moved++
			}
		}
		if bound := K/n + K/50; moved > bound {
			t.Errorf("n=%d→%d: %d keys remapped, bound K/N+ε = %d", n+1, n, moved, bound)
		}
	}
}
