package shard

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gcbench/internal/obs"
)

// ProcSpec names one shard replica process: which shard it serves,
// which replica slot it fills, and the address it must listen on. The
// address is fixed by the supervisor, not chosen by the child, so a
// restarted process rebinds the same endpoint and the coordinator's
// RemoteShard clients reconnect without re-wiring.
type ProcSpec struct {
	Shard   int
	Replica int
	Addr    string
}

// SupervisorOptions parameterizes process supervision.
type SupervisorOptions struct {
	// Binary is the executable to spawn for each replica (typically
	// os.Executable(), re-entering as `gcbench shard-serve`).
	Binary string
	// Args builds the argv (after the binary name) for a spec.
	Args func(ProcSpec) []string
	// Spawn overrides process creation entirely (tests). When set,
	// Binary/Args are unused. The returned function blocks until the
	// process exits, like (*exec.Cmd).Wait.
	Spawn func(ProcSpec) (wait func() error, kill func(), err error)
	// HealthInterval is the probe period per process (default 500ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// HealthFailures is how many consecutive probe failures declare a
	// live process dead and force a restart (default 3).
	HealthFailures int
	// StartTimeout bounds how long a spawned process gets to become
	// healthy before the supervisor gives up on that attempt and
	// respawns (default 10s).
	StartTimeout time.Duration
	// RestartBackoff is the initial delay before respawning a dead
	// process, doubling per consecutive failure up to 5s (default
	// 100ms). A successful restore resets it.
	RestartBackoff time.Duration
	// Logger receives supervision events (default slog.Default()).
	Logger *slog.Logger
	// Registry receives gcbench_shard_proc_restarts_total (default
	// obs.Default()).
	Registry *obs.Registry
}

const (
	procRestartsMetric = "gcbench_shard_proc_restarts_total"
	procRestartsHelp   = "Shard replica process restarts performed by the supervisor, by shard and replica."
)

// Supervisor owns a fleet of shard replica processes: it spawns them,
// probes their /healthz, and when one dies — process exit or
// consecutive probe failures — respawns it on the same address and
// invokes the restore hook so the coordinator rehydrates it (see
// Cluster.Rehydrate). Restart, not failover, is its job: while a
// replica is down, the coordinator's ReplicaSet keeps reads flowing to
// the survivors; the supervisor's work is making "down" temporary.
type Supervisor struct {
	opts  SupervisorOptions
	specs []ProcSpec
	procs []*superProc

	// onRestore is called after a replica process is healthy again so
	// the coordinator can republish its partition (epoch-fenced).
	onRestore atomic.Pointer[func(ctx context.Context, spec ProcSpec) error]

	mRestarts *obs.CounterVec

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  atomic.Bool
	restarts atomic.Uint64
}

// superProc is one supervised process slot.
type superProc struct {
	spec   ProcSpec
	client *RemoteShard // health probe target

	mu     sync.Mutex
	kill   func()        // terminates the current incarnation (nil when down)
	exited chan struct{} // closed when the current incarnation exits
}

// terminate kills the slot's current incarnation, if any.
func (p *superProc) terminate() {
	p.mu.Lock()
	kill := p.kill
	p.kill = nil
	p.mu.Unlock()
	if kill != nil {
		kill()
	}
}

// exitedCh returns the current incarnation's exit channel (nil if the
// slot has no live incarnation).
func (p *superProc) exitedCh() chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// NewSupervisor builds a supervisor for the given replica specs.
func NewSupervisor(specs []ProcSpec, opts SupervisorOptions) (*Supervisor, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("supervisor: no processes to supervise")
	}
	if opts.Spawn == nil && (opts.Binary == "" || opts.Args == nil) {
		return nil, fmt.Errorf("supervisor: need Binary+Args or a Spawn hook")
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 500 * time.Millisecond
	}
	if opts.HealthTimeout == 0 {
		opts.HealthTimeout = time.Second
	}
	if opts.HealthFailures == 0 {
		opts.HealthFailures = 3
	}
	if opts.StartTimeout == 0 {
		opts.StartTimeout = 10 * time.Second
	}
	if opts.RestartBackoff == 0 {
		opts.RestartBackoff = 100 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	s := &Supervisor{
		opts:      opts,
		specs:     specs,
		mRestarts: opts.Registry.CounterVec(procRestartsMetric, procRestartsHelp, []string{"shard", "replica"}),
	}
	for _, spec := range specs {
		s.procs = append(s.procs, &superProc{
			spec: spec,
			client: NewRemoteShard(spec.Addr, RemoteOptions{
				Shard:    spec.Shard,
				Retries:  -1, // probes decide retry policy themselves
				Registry: opts.Registry,
			}),
		})
	}
	return s, nil
}

// SetOnRestore installs the hook invoked after a crashed replica is
// healthy again — typically Cluster.Rehydrate, which republishes the
// replica's partition above the epoch fence. Must be set before the
// first restart can complete a restore; safe to set after Start.
func (s *Supervisor) SetOnRestore(fn func(ctx context.Context, spec ProcSpec) error) {
	s.onRestore.Store(&fn)
}

// Restarts reports how many process restarts the supervisor has
// performed since Start.
func (s *Supervisor) Restarts() uint64 { return s.restarts.Load() }

// Start spawns every replica process and blocks until all are healthy
// (or ctx expires). Monitors then run until Stop.
func (s *Supervisor) Start(ctx context.Context) error {
	if s.started.Swap(true) {
		return fmt.Errorf("supervisor: already started")
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for _, p := range s.procs {
		if err := s.spawn(p); err != nil {
			s.Stop()
			return fmt.Errorf("supervisor: spawning shard %d replica %d: %w", p.spec.Shard, p.spec.Replica, err)
		}
	}
	for _, p := range s.procs {
		if err := s.awaitHealthy(ctx, p, s.opts.StartTimeout); err != nil {
			s.Stop()
			return err
		}
	}
	for _, p := range s.procs {
		s.wg.Add(1)
		go s.monitor(p)
	}
	return nil
}

// Stop terminates every process and waits for monitors to exit. Safe to
// call more than once.
func (s *Supervisor) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	for _, p := range s.procs {
		p.terminate()
	}
	s.wg.Wait()
}

// Kill forcibly terminates the process serving (shard, replica) — the
// failure-injection hook the differential harness uses to prove
// crash-recovery invariants. The monitor observes the death and
// restarts the process as it would any crash.
func (s *Supervisor) Kill(shardID, replica int) error {
	for _, p := range s.procs {
		if p.spec.Shard == shardID && p.spec.Replica == replica {
			p.terminate()
			return nil
		}
	}
	return fmt.Errorf("supervisor: no process for shard %d replica %d", shardID, replica)
}

// spawn starts one incarnation of p and hands its wait/kill handles to
// the slot. exited is signalled (once) when the process ends.
func (s *Supervisor) spawn(p *superProc) error {
	var wait func() error
	var kill func()
	var err error
	if s.opts.Spawn != nil {
		wait, kill, err = s.opts.Spawn(p.spec)
	} else {
		cmd := exec.Command(s.opts.Binary, s.opts.Args(p.spec)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		wait = cmd.Wait
		kill = func() { _ = cmd.Process.Kill() }
	}
	if err != nil {
		return err
	}
	exited := make(chan struct{})
	go func() {
		_ = wait()
		close(exited)
	}()
	p.mu.Lock()
	p.kill = kill
	p.exited = exited
	p.mu.Unlock()
	return nil
}

// awaitHealthy polls p's /healthz until it answers or the budget runs
// out.
func (s *Supervisor) awaitHealthy(ctx context.Context, p *superProc, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		if p.client.Healthy(ctx, s.opts.HealthTimeout) {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("supervisor: shard %d replica %d (%s) not healthy after %v",
				p.spec.Shard, p.spec.Replica, p.spec.Addr, budget)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// monitor watches one slot for the life of the supervisor: it waits for
// the current incarnation to die — process exit or HealthFailures
// consecutive probe failures — then respawns it on the same address,
// waits for health, and runs the restore hook. Backoff doubles across
// consecutive failed restarts and resets on a completed restore.
func (s *Supervisor) monitor(p *superProc) {
	defer s.wg.Done()
	backoff := s.opts.RestartBackoff
	for {
		exited := p.exitedCh()
		if exited == nil {
			// Slot is down (restart in progress below, or terminal).
			exited = closedChan
		}
		ticker := time.NewTicker(s.opts.HealthInterval)
		fails := 0
	alive:
		for {
			select {
			case <-s.ctx.Done():
				ticker.Stop()
				return
			case <-exited:
				break alive
			case <-ticker.C:
				if p.client.Healthy(s.ctx, s.opts.HealthTimeout) {
					fails = 0
					continue
				}
				fails++
				if fails >= s.opts.HealthFailures {
					s.opts.Logger.Warn("shard replica unresponsive; restarting",
						"shard", p.spec.Shard, "replica", p.spec.Replica, "addr", p.spec.Addr,
						"consecutiveFailures", fails)
					p.terminate()
					break alive
				}
			}
		}
		ticker.Stop()
		if s.ctx.Err() != nil {
			return
		}

		// The incarnation is dead: respawn on the same address, restore,
		// repeat until it sticks or the supervisor stops.
		s.opts.Logger.Warn("shard replica process exited; restarting",
			"shard", p.spec.Shard, "replica", p.spec.Replica, "addr", p.spec.Addr)
		for {
			select {
			case <-time.After(backoff):
			case <-s.ctx.Done():
				return
			}
			s.restarts.Add(1)
			s.mRestarts.With(strconv.Itoa(p.spec.Shard), strconv.Itoa(p.spec.Replica)).Inc()
			if err := s.spawn(p); err != nil {
				s.opts.Logger.Error("respawn failed", "shard", p.spec.Shard, "replica", p.spec.Replica, "err", err)
				backoff = nextBackoff(backoff)
				continue
			}
			if err := s.awaitHealthy(s.ctx, p, s.opts.StartTimeout); err != nil {
				s.opts.Logger.Error("restarted replica never became healthy",
					"shard", p.spec.Shard, "replica", p.spec.Replica, "err", err)
				p.terminate()
				backoff = nextBackoff(backoff)
				continue
			}
			if err := s.restore(p); err != nil {
				s.opts.Logger.Error("restore after restart failed",
					"shard", p.spec.Shard, "replica", p.spec.Replica, "err", err)
				p.terminate()
				backoff = nextBackoff(backoff)
				continue
			}
			s.opts.Logger.Info("shard replica restored",
				"shard", p.spec.Shard, "replica", p.spec.Replica, "addr", p.spec.Addr)
			backoff = s.opts.RestartBackoff
			break
		}
	}
}

// restore runs the coordinator's rehydration hook for p, retrying a few
// times — the coordinator may briefly refuse while a concurrent publish
// holds its lock.
func (s *Supervisor) restore(p *superProc) error {
	fn := s.onRestore.Load()
	if fn == nil {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(s.ctx, s.opts.StartTimeout)
		lastErr = (*fn)(ctx, p.spec)
		cancel()
		if lastErr == nil {
			return nil
		}
		select {
		case <-time.After(100 * time.Millisecond << attempt):
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
	return lastErr
}

func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// closedChan is a pre-closed channel monitor uses when a slot has no
// live incarnation, making the "dead" path immediate.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
