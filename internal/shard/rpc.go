package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"gcbench/internal/corpus"
)

// The shard wire protocol is deliberately minimal: each ShardClient
// method maps to one POST endpoint carrying the method's JSON-tagged
// request struct and returning its response struct — exactly the
// shapes PR 8 gave the interface so this transport could be dropped in
// without touching the coordinator.
//
//	POST /rpc/info     InfoRequest    → InfoResponse
//	POST /rpc/get      GetRequest     → GetResponse
//	POST /rpc/select   SelectRequest  → SelectResponse
//	POST /rpc/publish  PublishRequest → PublishResponse
//	GET  /healthz      liveness probe (200 whenever the process serves)
//
// Application errors (e.g. "no snapshot published" on a freshly
// restarted, not-yet-rehydrated replica) return 500 with a JSON
// {"error": ...} body; the client surfaces them verbatim and does not
// retry — retry is reserved for transport faults, where the request
// may never have reached the shard.

// rpcError is the wire error envelope.
type rpcError struct {
	Error string `json:"error"`
}

// RPCHandler exposes client over the shard wire protocol. One handler
// serves one shard replica; a process typically wraps it in its own
// http.Server (see `gcbench shard-serve`).
func RPCHandler(client ShardClient) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	rpcRoute(mux, "info", client.Info)
	rpcRoute(mux, "get", client.Get)
	rpcRoute(mux, "select", client.Select)
	rpcRoute(mux, "publish", client.Publish)
	return mux
}

// rpcRoute registers one method endpoint: decode the request struct,
// invoke the method with the request's context, encode the response.
func rpcRoute[Req, Resp any](mux *http.ServeMux, name string, call func(context.Context, Req) (Resp, error)) {
	mux.HandleFunc("POST /rpc/"+name, func(w http.ResponseWriter, r *http.Request) {
		var req Req
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&req); err != nil {
			writeRPC(w, http.StatusBadRequest, rpcError{Error: fmt.Sprintf("decoding %s request: %v", name, err)})
			return
		}
		resp, err := call(r.Context(), req)
		if err != nil {
			writeRPC(w, http.StatusInternalServerError, rpcError{Error: err.Error()})
			return
		}
		writeRPC(w, http.StatusOK, resp)
	})
}

func writeRPC(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// NewProcessShard returns the ShardClient a standalone shard process
// serves: a single replica of shard id, classifying ensemble-pool
// membership identically to the coordinator. The process is one
// replica endpoint; the coordinator's ReplicaSet is the replica
// fan-out, so R replicas of a shard are R of these processes.
func NewProcessShard(id int) *LocalShard {
	return NewLocalShard(id, 1, corpus.PoolMember)
}
