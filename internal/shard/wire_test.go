package shard

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"gcbench/internal/corpus"
	"gcbench/internal/obs"
)

// testEntries carves n entries out of the standard corpus, keys already
// assigned, seqs ascending.
func testEntries(t testing.TB, n int) []Entry {
	t.Helper()
	snap := standardSnapshot(t)
	if n > len(snap.Records) {
		t.Fatalf("want %d entries, corpus has %d", n, len(snap.Records))
	}
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = Entry{Seq: i, Record: snap.Records[i]}
	}
	return entries
}

// wireShard serves a fresh single-replica LocalShard over the RPC
// protocol and returns a RemoteShard client for it.
func wireShard(t testing.TB, id int) (*LocalShard, *RemoteShard) {
	t.Helper()
	local := NewLocalShard(id, 1, corpus.PoolMember)
	srv := httptest.NewServer(RPCHandler(local))
	t.Cleanup(srv.Close)
	remote := NewRemoteShard(srv.URL, RemoteOptions{Shard: id, Registry: obs.NewRegistry()})
	return local, remote
}

// TestRPCRoundtrip proves the wire transport is transparent: every
// ShardClient method answered over HTTP matches the in-process answer
// from the same shard, field for field.
func TestRPCRoundtrip(t *testing.T) {
	ctx := context.Background()
	local, remote := wireShard(t, 3)
	entries := testEntries(t, 20)

	pubWire, err := remote.Publish(ctx, PublishRequest{Replace: true, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	if pubWire.Version != 1 || pubWire.Records != len(entries) {
		t.Fatalf("publish over wire: %+v", pubWire)
	}

	infoL, _ := local.Info(ctx, InfoRequest{})
	infoW, err := remote.Info(ctx, InfoRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(infoL, infoW) {
		t.Errorf("Info diverges: local %+v wire %+v", infoL, infoW)
	}

	for _, e := range entries[:5] {
		gl, _ := local.Get(ctx, GetRequest{Key: e.Record.Key})
		gw, err := remote.Get(ctx, GetRequest{Key: e.Record.Key})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gl, gw) {
			t.Errorf("Get(%s) diverges:\nlocal %+v\nwire  %+v", e.Record.Key, gl, gw)
		}
	}

	selL, _ := local.Select(ctx, SelectRequest{Filter: corpus.Filter{Algorithms: []string{"PR"}}})
	selW, err := remote.Select(ctx, SelectRequest{Filter: corpus.Filter{Algorithms: []string{"PR"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(selL, selW) {
		t.Errorf("Select diverges: local %+v wire %+v", selL, selW)
	}

	// Application errors relay as errors, not as empty answers: a miss on
	// an unpublished shard must fail the same way in-process does.
	_, fresh := wireShard(t, 4)
	if _, err := fresh.Get(ctx, GetRequest{Key: "nope"}); err == nil {
		t.Error("Get on unpublished shard over wire: want error, got nil")
	}
}

// flakyProxy fronts a backend and kills the first failN connections at
// the TCP level — the transport-error shape a crashing or restarting
// shard process produces (as opposed to an application error, which
// arrives as a well-formed 500).
type flakyProxy struct {
	ln       net.Listener
	backend  string
	failN    int32
	attempts atomic.Int32
}

func newFlakyProxy(t testing.TB, backend string, failN int32) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend, failN: failN}
	t.Cleanup(func() { ln.Close() })
	go p.run()
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.attempts.Add(1)
		if n <= p.failN {
			conn.Close() // torn connection mid-handshake
			continue
		}
		go func() {
			defer conn.Close()
			up, err := net.Dial("tcp", p.backend)
			if err != nil {
				return
			}
			defer up.Close()
			done := make(chan struct{}, 2)
			cp := func(dst, src net.Conn) {
				buf := make([]byte, 32<<10)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						if _, werr := dst.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				done <- struct{}{}
			}
			go cp(up, conn)
			go cp(conn, up)
			<-done
		}()
	}
}

// TestRemoteRetriesTransientReads proves the retry policy: a read that
// hits torn connections succeeds once a retry gets through, while a
// publish fails on the first transport error (never retried — a blind
// retry of a non-idempotent version bump could double-advance the
// fence).
func TestRemoteRetriesTransientReads(t *testing.T) {
	ctx := context.Background()
	local := NewLocalShard(0, 1, corpus.PoolMember)
	if _, err := local.Publish(ctx, PublishRequest{Replace: true, Entries: testEntries(t, 8)}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(RPCHandler(local))
	defer srv.Close()
	backend := srv.Listener.Addr().String()

	proxy := newFlakyProxy(t, backend, 2)
	remote := NewRemoteShard(proxy.addr(), RemoteOptions{
		Shard: 0, Retries: 3, RetryBackoff: time.Millisecond, Registry: obs.NewRegistry(),
		// Fresh transport: the shared pool would reuse a live connection
		// and never hit the proxy's accept path per attempt.
		Client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	info, err := remote.Info(ctx, InfoRequest{})
	if err != nil {
		t.Fatalf("read across 2 torn connections with 3 retries: %v", err)
	}
	if info.Version != 1 || info.Records != 8 {
		t.Fatalf("retried read answered wrong: %+v", info)
	}
	if got := proxy.attempts.Load(); got != 3 {
		t.Errorf("proxy saw %d connection attempts, want 3 (2 torn + 1 served)", got)
	}

	proxy2 := newFlakyProxy(t, backend, 1)
	remote2 := NewRemoteShard(proxy2.addr(), RemoteOptions{
		Shard: 0, Retries: 3, RetryBackoff: time.Millisecond, Registry: obs.NewRegistry(),
		Client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	if _, err := remote2.Publish(ctx, PublishRequest{Replace: true, Entries: testEntries(t, 1)}); err == nil {
		t.Fatal("publish across a torn connection: want error (publishes are never retried), got nil")
	}
	if got := proxy2.attempts.Load(); got != 1 {
		t.Errorf("publish made %d connection attempts, want exactly 1", got)
	}
}

// TestPublishEpochFence proves the fence arithmetic on both sides of
// restart: a publish below the current version still advances, and a
// version-0 (freshly restarted) shard rejoins at the fence, strictly
// above everything it served before.
func TestPublishEpochFence(t *testing.T) {
	ctx := context.Background()
	entries := testEntries(t, 4)

	s := NewLocalShard(0, 2, corpus.PoolMember)
	for i := 0; i < 3; i++ {
		if _, err := s.Publish(ctx, PublishRequest{Replace: true, Entries: entries}); err != nil {
			t.Fatal(err)
		}
	}
	// Fence below current: version still advances monotonically.
	resp, err := s.Publish(ctx, PublishRequest{Replace: true, Entries: entries, MinVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 4 {
		t.Fatalf("publish with stale fence 2 over version 3: got %d, want 4", resp.Version)
	}

	// Restart: a fresh process is version 0. Rehydrating with the
	// coordinator's fence lands strictly above the pre-crash version.
	restarted := NewLocalShard(0, 2, corpus.PoolMember)
	resp, err = restarted.Publish(ctx, PublishRequest{Replace: true, Entries: entries, MinVersion: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 5 {
		t.Fatalf("rehydrated shard version = %d, want fence 5", resp.Version)
	}
}

// TestReplicaSetFailover proves a dead replica degrades capacity, not
// availability: reads fail over to survivors, Info reports the outage
// as Down (for /readyz), and only a fully dead set errors.
func TestReplicaSetFailover(t *testing.T) {
	ctx := context.Background()
	entries := testEntries(t, 10)

	local := NewLocalShard(0, 1, corpus.PoolMember)
	if _, err := local.Publish(ctx, PublishRequest{Replace: true, Entries: entries}); err != nil {
		t.Fatal(err)
	}
	alive := httptest.NewServer(RPCHandler(local))
	defer alive.Close()
	dead := httptest.NewServer(RPCHandler(NewLocalShard(0, 1, corpus.PoolMember)))
	deadAddr := dead.URL
	dead.Close() // connection refused from here on

	reg := obs.NewRegistry()
	mk := func(url string) *RemoteShard {
		return NewRemoteShard(url, RemoteOptions{Shard: 0, Retries: -1, RetryBackoff: time.Millisecond, Registry: reg})
	}
	rs, err := NewReplicaSet(0, []ShardClient{mk(deadAddr), mk(alive.URL)}, reg)
	if err != nil {
		t.Fatal(err)
	}

	// Every read must succeed regardless of which replica the rotation
	// starts at.
	for i := 0; i < 6; i++ {
		g, err := rs.Get(ctx, GetRequest{Key: entries[0].Record.Key})
		if err != nil {
			t.Fatalf("read %d with one dead replica: %v", i, err)
		}
		if !g.Found {
			t.Fatalf("read %d: key missing", i)
		}
	}
	sel, err := rs.Select(ctx, SelectRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Seqs) != len(entries) {
		t.Fatalf("failover select returned %d seqs, want %d", len(sel.Seqs), len(entries))
	}

	info, err := rs.Info(ctx, InfoRequest{})
	if err != nil {
		t.Fatalf("Info with one live replica: %v", err)
	}
	if info.Down != 1 || info.Replicas != 2 || info.Version != 1 {
		t.Errorf("degraded Info = %+v, want Down=1 Replicas=2 Version=1", info)
	}

	// Both replicas dead: reads and Info must error, not hang or lie.
	alive.Close()
	if _, err := rs.Get(ctx, GetRequest{Key: entries[0].Record.Key}); err == nil {
		t.Error("Get with all replicas dead: want error")
	}
	if _, err := rs.Info(ctx, InfoRequest{}); err == nil {
		t.Error("Info with all replicas dead: want error")
	}
}

// TestReplicaSetPublishFence proves replica-set publishes land every
// replica on the same version under the shared fence, and that a
// replica refusing the publish fails the set.
func TestReplicaSetPublishFence(t *testing.T) {
	ctx := context.Background()
	entries := testEntries(t, 6)

	locals := []*LocalShard{NewLocalShard(0, 1, corpus.PoolMember), NewLocalShard(0, 1, corpus.PoolMember)}
	// Skew the replicas' starting versions — exactly what a crash-restart
	// produces — then prove the fence re-converges them.
	for i := 0; i < 3; i++ {
		if _, err := locals[0].Publish(ctx, PublishRequest{Replace: true, Entries: entries}); err != nil {
			t.Fatal(err)
		}
	}
	clients := make([]ShardClient, len(locals))
	for i, l := range locals {
		srv := httptest.NewServer(RPCHandler(l))
		defer srv.Close()
		clients[i] = NewRemoteShard(srv.URL, RemoteOptions{Shard: 0, Registry: obs.NewRegistry()})
	}
	rs, err := NewReplicaSet(0, clients, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rs.Publish(ctx, PublishRequest{Replace: true, Entries: entries, MinVersion: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 4 {
		t.Fatalf("fenced set publish acknowledged version %d, want 4", resp.Version)
	}
	for i, l := range locals {
		info, _ := l.Info(ctx, InfoRequest{})
		if info.Version != 4 {
			t.Errorf("replica %d at version %d after fenced publish, want 4", i, info.Version)
		}
	}
}

// spawnHookShard is the Supervisor test double for one process slot: a
// real HTTP server on the pinned address, serving a fresh (version-0)
// LocalShard each incarnation — the restart-amnesia behavior of a real
// process.
func spawnHookShard(t testing.TB, spec ProcSpec) (wait func() error, kill func(), err error) {
	ln, err := net.Listen("tcp", spec.Addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: RPCHandler(NewLocalShard(spec.Shard, 1, corpus.PoolMember))}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return func() error { return <-done },
		func() { srv.Close() },
		nil
}

// TestSupervisorRestartsAndRestores proves the supervision loop end to
// end: kill a replica, the supervisor respawns it on the same address,
// waits for health, and invokes the restore hook so the coordinator can
// rehydrate it.
func TestSupervisorRestartsAndRestores(t *testing.T) {
	addrs, err := freePorts(2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []ProcSpec{
		{Shard: 0, Replica: 0, Addr: addrs[0]},
		{Shard: 1, Replica: 0, Addr: addrs[1]},
	}
	restored := make(chan ProcSpec, 8)
	sup, err := NewSupervisor(specs, SupervisorOptions{
		Spawn:          func(spec ProcSpec) (func() error, func(), error) { return spawnHookShard(t, spec) },
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
		RestartBackoff: 10 * time.Millisecond,
		StartTimeout:   5 * time.Second,
		Registry:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.SetOnRestore(func(_ context.Context, spec ProcSpec) error {
		restored <- spec
		return nil
	})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	// Both endpoints serve after Start.
	ctx := context.Background()
	for _, spec := range specs {
		r := NewRemoteShard(spec.Addr, RemoteOptions{Shard: spec.Shard, Registry: obs.NewRegistry()})
		if !r.Healthy(ctx, time.Second) {
			t.Fatalf("shard %d not healthy after Start", spec.Shard)
		}
	}

	if err := sup.Kill(1, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case spec := <-restored:
		if spec.Shard != 1 {
			t.Fatalf("restore hook fired for shard %d, want 1", spec.Shard)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("restore hook never fired after kill")
	}
	if sup.Restarts() == 0 {
		t.Error("Restarts() = 0 after a kill-restart cycle")
	}
	// The restarted endpoint serves again on the same address.
	r := NewRemoteShard(specs[1].Addr, RemoteOptions{Shard: 1, Registry: obs.NewRegistry()})
	if !r.Healthy(ctx, time.Second) {
		t.Error("restarted shard not healthy on its original address")
	}
}

// freePorts reserves n loopback addresses for supervised test shards.
func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}
