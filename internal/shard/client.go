package shard

import (
	"context"

	"gcbench/internal/corpus"
)

// Entry is one sharded corpus record: the record itself plus its global
// sequence number — the record's position in the cluster-wide canonical
// load order, which scatter-gather merges sort by so a reassembled
// result is indistinguishable from a single-store scan.
type Entry struct {
	// Seq is the record's cluster-wide canonical position (0-based).
	Seq int `json:"seq"`
	// Record is the full corpus record, key pre-assigned by the
	// coordinator (keys are global: collision suffixes depend on every
	// record loaded before this one, not just the ones on this shard).
	Record corpus.Record `json:"record"`
}

// InfoRequest asks a shard for its serving state.
type InfoRequest struct{}

// InfoResponse reports a shard's identity and publish state.
type InfoResponse struct {
	// Shard is the shard's index in the cluster.
	Shard int `json:"shard"`
	// Version is the shard's monotonic snapshot version (0 = nothing
	// published yet; the shard is not ready). For a replica set it is
	// the minimum over reachable replicas — the version every read is
	// guaranteed to see at least.
	Version uint64 `json:"version"`
	// Records is the number of records in the current snapshot.
	Records int `json:"records"`
	// Replicas is the shard's replica count.
	Replicas int `json:"replicas"`
	// Down counts replica endpoints that are currently unreachable.
	// Reads keep serving from the survivors, but /readyz reports the
	// shard degraded until the supervisor restores them.
	Down int `json:"down,omitempty"`
}

// GetRequest fetches one record by key from the owning shard.
type GetRequest struct {
	Key string `json:"key"`
}

// GetResponse carries the record (Found false when the key is not in
// the shard's current snapshot).
type GetResponse struct {
	Version uint64 `json:"version"`
	Found   bool   `json:"found"`
	Entry   Entry  `json:"entry"`
}

// SelectRequest scatters a corpus filter to a shard.
type SelectRequest struct {
	Filter corpus.Filter `json:"filter"`
	// PoolOnly restricts the match to ensemble-pool members (measured
	// graph-varying runs) — the design search's partial candidate sets.
	PoolOnly bool `json:"poolOnly"`
}

// SelectResponse is a shard's partial result set: the matching entries
// in ascending sequence order.
type SelectResponse struct {
	Version uint64 `json:"version"`
	// Seqs lists the matching records' global sequence numbers,
	// ascending. The coordinator maps them back to its merged view, so
	// the wire payload stays compact (no record bodies).
	Seqs []int `json:"seqs"`
}

// PublishRequest installs records on a shard. Replace true swaps the
// shard's whole partition (initial load, reload); false appends to it
// (hot-publish). Either way the shard builds one new immutable snapshot
// and publishes it to every replica before acknowledging.
type PublishRequest struct {
	Replace bool    `json:"replace"`
	Entries []Entry `json:"entries"`
	// MinVersion is the publish's epoch fence: the shard's new snapshot
	// version is max(current+1, MinVersion). The coordinator always
	// sends its last acknowledged version + 1, which pins two
	// invariants at once: replicas of one shard acknowledge the same
	// publish at the same version, and a shard process that crashed and
	// restarted with version 0 rejoins at a version strictly above
	// everything it served before — so version-vector-keyed response
	// caches can never alias a pre-crash body onto post-restart data.
	MinVersion uint64 `json:"minVersion,omitempty"`
}

// PublishResponse acknowledges the publish with the shard's new version.
type PublishResponse struct {
	Version uint64 `json:"version"`
	Records int    `json:"records"`
}

// ShardClient is the shard boundary: RPC-shaped (context-first,
// JSON-serializable request/response structs, no shared memory implied)
// so the in-process implementation can later be replaced by a network
// transport without changing the coordinator. Implementations must be
// safe for concurrent use.
type ShardClient interface {
	// Info reports the shard's serving state (readiness = Version > 0).
	Info(ctx context.Context, req InfoRequest) (InfoResponse, error)
	// Get fetches one record by key from a read replica.
	Get(ctx context.Context, req GetRequest) (GetResponse, error)
	// Select evaluates a filter against a read replica's snapshot and
	// returns the matching sequence numbers — one leg of a scatter-
	// gather query.
	Select(ctx context.Context, req SelectRequest) (SelectResponse, error)
	// Publish installs a new or grown partition, versioning the shard.
	Publish(ctx context.Context, req PublishRequest) (PublishResponse, error)
}
