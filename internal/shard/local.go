package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gcbench/internal/corpus"
)

// partSnapshot is one immutable version of a shard's partition: the
// shard's entries in ascending sequence order plus a key index. Strictly
// read-only after construction, so replicas can serve it lock-free.
type partSnapshot struct {
	version uint64
	entries []Entry
	byKey   map[string]int // key → index into entries
	pool    []bool         // entries[i] is an ensemble-pool member
}

// replica is one read replica: an atomically swappable pointer to the
// partition snapshot it serves. In-process the replicas share the
// immutable snapshot memory; over a wire each would hold its own copy,
// which is why publishes install replicas one by one instead of assuming
// shared state.
type replica struct {
	snap atomic.Pointer[partSnapshot]
}

// LocalShard is the in-process ShardClient: R replicas over a
// consistent-hash partition, versioned publishes serialized by a
// per-shard mutex (never a cluster-wide lock), reads served round-robin
// from any replica without locking.
type LocalShard struct {
	id       int
	replicas []*replica
	// next picks the serving replica round-robin, spreading read load
	// the way a wire client would across replica endpoints.
	next atomic.Uint64
	// pubMu serializes publishers against each other; readers never
	// take it — they load a replica's snapshot pointer and are done.
	pubMu   sync.Mutex
	version atomic.Uint64
	// poolMember classifies records into the ensemble-design pool; the
	// cluster injects it so shard and coordinator agree on membership.
	poolMember func(*corpus.Record) bool
}

// NewLocalShard builds shard id with the given replica count (min 1).
func NewLocalShard(id, replicas int, poolMember func(*corpus.Record) bool) *LocalShard {
	if replicas < 1 {
		replicas = 1
	}
	s := &LocalShard{id: id, poolMember: poolMember}
	for i := 0; i < replicas; i++ {
		s.replicas = append(s.replicas, &replica{})
	}
	return s
}

// read returns the serving replica's current snapshot (nil before the
// first publish).
func (s *LocalShard) read() *partSnapshot {
	r := s.replicas[s.next.Add(1)%uint64(len(s.replicas))]
	return r.snap.Load()
}

// Info implements ShardClient.
func (s *LocalShard) Info(_ context.Context, _ InfoRequest) (InfoResponse, error) {
	resp := InfoResponse{Shard: s.id, Replicas: len(s.replicas)}
	if snap := s.read(); snap != nil {
		resp.Version = snap.version
		resp.Records = len(snap.entries)
	}
	return resp, nil
}

// Get implements ShardClient.
func (s *LocalShard) Get(_ context.Context, req GetRequest) (GetResponse, error) {
	snap := s.read()
	if snap == nil {
		return GetResponse{}, fmt.Errorf("shard %d: no snapshot published", s.id)
	}
	resp := GetResponse{Version: snap.version}
	if i, ok := snap.byKey[req.Key]; ok {
		resp.Found = true
		resp.Entry = snap.entries[i]
	}
	return resp, nil
}

// Select implements ShardClient: the shard-local leg of a scatter-gather
// query. Entries are stored in ascending sequence order, so the response
// is too — the coordinator's merge is a k-way append, not a sort.
func (s *LocalShard) Select(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	snap := s.read()
	if snap == nil {
		return SelectResponse{}, fmt.Errorf("shard %d: no snapshot published", s.id)
	}
	if err := ctx.Err(); err != nil {
		return SelectResponse{}, err
	}
	f := req.Filter
	if req.PoolOnly {
		// Pool membership already implies status ok; mirroring
		// corpus.PoolSelect, the status restriction is ignored.
		f.Statuses = nil
	}
	resp := SelectResponse{Version: snap.version}
	for i := range snap.entries {
		if req.PoolOnly && !snap.pool[i] {
			continue
		}
		if f.Matches(&snap.entries[i].Record) {
			resp.Seqs = append(resp.Seqs, snap.entries[i].Seq)
		}
	}
	return resp, nil
}

// Publish implements ShardClient: build one immutable snapshot from the
// previous one plus the request, then install it on every replica before
// acknowledging. Serialized per shard; concurrent readers keep serving
// whichever snapshot their replica pointed at when they loaded it.
func (s *LocalShard) Publish(_ context.Context, req PublishRequest) (PublishResponse, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()

	var entries []Entry
	if req.Replace {
		entries = append([]Entry(nil), req.Entries...)
	} else {
		cur := s.replicas[0].snap.Load()
		if cur == nil {
			return PublishResponse{}, fmt.Errorf("shard %d: append before initial publish", s.id)
		}
		entries = make([]Entry, 0, len(cur.entries)+len(req.Entries))
		entries = append(entries, cur.entries...)
		entries = append(entries, req.Entries...)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq <= entries[i-1].Seq {
			return PublishResponse{}, fmt.Errorf("shard %d: publish entries out of sequence order (%d after %d)",
				s.id, entries[i].Seq, entries[i-1].Seq)
		}
	}
	// Epoch fence: never publish below the coordinator's MinVersion. A
	// fresh process (version 0) rehydrating after a crash lands at the
	// fence — strictly above every version it served before — instead
	// of restarting at 1 and aliasing stale cache entries.
	version := s.version.Load() + 1
	if req.MinVersion > version {
		version = req.MinVersion
	}
	s.version.Store(version)
	snap := &partSnapshot{
		version: version,
		entries: entries,
		byKey:   make(map[string]int, len(entries)),
		pool:    make([]bool, len(entries)),
	}
	for i := range entries {
		if entries[i].Record.Key == "" {
			return PublishResponse{}, fmt.Errorf("shard %d: entry seq %d has no key (keys are assigned by the coordinator)",
				s.id, entries[i].Seq)
		}
		if prev, dup := snap.byKey[entries[i].Record.Key]; dup {
			return PublishResponse{}, fmt.Errorf("shard %d: duplicate key %q (seqs %d and %d)",
				s.id, entries[i].Record.Key, entries[prev].Seq, entries[i].Seq)
		}
		snap.byKey[entries[i].Record.Key] = i
		snap.pool[i] = s.poolMember(&entries[i].Record)
	}
	for _, r := range s.replicas {
		r.snap.Store(snap)
	}
	return PublishResponse{Version: snap.version, Records: len(entries)}, nil
}
