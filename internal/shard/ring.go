// Package shard is the sharded, replicated corpus serving tier: it
// splits a behavior corpus across N store instances by consistent-hash
// of record key, replicates each shard's immutable snapshots across R
// replicas for lock-free reads, and coordinates scatter-gather queries
// and versioned hot-publish through a Cluster.
//
// The shard boundary is the RPC-shaped ShardClient interface: every
// method takes a context and exchanges JSON-serializable request/
// response structs, so the in-process LocalShard can be swapped for a
// wire transport without touching the coordinator. Results are bit-
// identical to the single-store path by construction: the Cluster
// rebuilds its merged global view (normalization maxima, canonical
// record order, ensemble pool, predictor) through the same
// internal/corpus constructors a single store uses, and scatter-gather
// merges preserve the canonical sequence order.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the ring's default virtual-node count per
// shard. 160 points per shard keeps the key distribution within a few
// percent of uniform for realistic shard counts while the ring stays
// small enough to rebuild instantly on resize.
const DefaultVirtualNodes = 160

// Ring is a consistent-hash ring mapping record keys to shard indices.
// Each shard owns VirtualNodes points on the ring; a key belongs to the
// shard owning the first point clockwise of the key's hash. Immutable
// after construction — resizing builds a new Ring, and consistent
// hashing bounds how many keys change owner to roughly K/N.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over shards shard indices (0..shards-1) with
// vnodes virtual nodes each (0 means DefaultVirtualNodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", shards)
	}
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 virtual node per shard, got %d", vnodes)
	}
	r := &Ring{vnodes: vnodes, shards: shards}
	r.points = make([]ringPoint, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d#vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical 64-bit hashes are vanishingly rare but must still
		// order deterministically for the ring to be reproducible.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner returns the shard index owning key.
func (r *Ring) Owner(key string) int {
	h := hashKey(key)
	// First ring point at or clockwise of h, wrapping past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashKey is the ring's hash: 64-bit FNV-1a through a splitmix64
// finalizer. Plain FNV-1a leaves similar short keys (record keys and
// vnode labels differ in a handful of characters) correlated enough to
// visibly skew the ring; the finalizer's avalanche restores uniform
// point placement. Both stages are fixed algorithms — stable across
// processes and Go versions, so a wire deployment's routers agree on
// placement.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
