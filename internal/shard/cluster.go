package shard

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/obs"
	"gcbench/internal/obs/otrace"
)

// Options parameterizes a Cluster.
type Options struct {
	// Shards is the partition count (default 1).
	Shards int
	// Replicas is the read-replica count per shard (default 1).
	Replicas int
	// VirtualNodes is the ring's per-shard virtual-node count
	// (default DefaultVirtualNodes).
	VirtualNodes int
	// Registry receives the gcbench_shard_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Clients, when non-empty, supplies one logical transport per shard
	// — e.g. a ReplicaSet of RemoteShards over TCP — instead of the
	// default in-process LocalShards. len(Clients) must equal Shards
	// (or Shards may be left 0 to derive it). Replicas then only
	// describes the deployment for /statusz; the replica fan-out lives
	// inside the injected clients.
	Clients []ShardClient
}

// View is one consistent, immutable global state of the cluster: the
// merged snapshot plus the per-shard version vector it was built from.
// Readers load the current view once and use it for a whole request;
// publishes install a fresh view atomically.
type View struct {
	// Merged is the cluster-wide corpus snapshot, rebuilt through the
	// same internal/corpus constructors a single store uses, so its
	// normalization maxima, canonical record order, key assignment,
	// ensemble pool and predictor are bit-identical to a single-store
	// load of the same records. Merged.Version is the cluster epoch.
	Merged *corpus.Snapshot
	// VV is the monotonic per-shard version vector at build time.
	VV []uint64
	// NormEpoch identifies the normalization regime: it advances only
	// when a publish changes the corpus-wide maxima (or the record set
	// they are computed over in a way that rescales points). Responses
	// that depend on one shard plus the normalization can be cached
	// across publishes of unrelated shards by keying on
	// (owner shard version, NormEpoch).
	NormEpoch int64
	// BuiltAt is the view's construction time.
	BuiltAt time.Time

	// poolIdxBySeq maps a record's global sequence number to its index
	// in Merged.Pool (-1 when the record is not a pool member).
	poolIdxBySeq []int
	// ownerBySeq maps a record's sequence number to its owning shard.
	ownerBySeq []int
}

// Epoch returns the view's cluster epoch (Merged.Version): the number
// of publishes — initial load, appends, reloads — the cluster has
// performed. A 1-shard cluster's epoch equals a single store's version
// for the same publish history, which the differential harness relies
// on.
func (v *View) Epoch() int64 { return v.Merged.Version }

// VVString renders the version vector canonically ("3.1.4.2") — the
// serving layer's cache-key component for whole-corpus responses.
func (v *View) VVString() string {
	parts := make([]string, len(v.VV))
	for i, ver := range v.VV {
		parts[i] = strconv.FormatUint(ver, 10)
	}
	return strings.Join(parts, ".")
}

// PoolIndexOfSeq maps a global sequence number to the merged pool index
// (-1 when the record is not a pool member, or when seq is outside this
// view — a caller racing a publish can hold a seq from a newer view
// than the one it loaded, and must treat it as not-yet-visible rather
// than panic).
func (v *View) PoolIndexOfSeq(seq int) int {
	if seq < 0 || seq >= len(v.poolIdxBySeq) {
		return -1
	}
	return v.poolIdxBySeq[seq]
}

// OwnerOfSeq returns the shard owning the record at seq, or -1 when seq
// is outside this view (see PoolIndexOfSeq).
func (v *View) OwnerOfSeq(seq int) int {
	if seq < 0 || seq >= len(v.ownerBySeq) {
		return -1
	}
	return v.ownerBySeq[seq]
}

// Cluster coordinates N consistent-hash shards with R replicas each:
// global key assignment, versioned per-shard hot-publish, the merged
// global view, and scatter-gather query execution. Construct with New;
// the zero value is not usable.
type Cluster struct {
	opts   Options
	ring   *Ring
	shards []ShardClient

	view atomic.Pointer[View]
	// pubMu serializes publishers (Load, Append, Reload) against each
	// other. Readers never take it: they load the view pointer and the
	// shard replicas' snapshot pointers, both atomic.
	pubMu sync.Mutex

	mFanouts  *obs.Counter
	mShardLat *obs.HistogramVec
	mRPCErrs  *obs.CounterVec
}

// shardLatencyBuckets resolve the in-process microsecond regime and the
// wire regime: a remote shard RPC on a loaded network lands in
// milliseconds-to-seconds, and bounded retries on a flapping process
// push the tail past the old 1s ceiling — without the 2.5/10/30s
// buckets every wire-mode latency collapses into +Inf and the histogram
// tail goes blind exactly when it matters.
var shardLatencyBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6, .002, .01, .05, .25, 1, 2.5, 10, 30,
}

// New builds an empty cluster: ring and shards exist, but nothing is
// published yet, so Ready reports false and there is no View until
// Load. This unpublished state is exactly what /readyz reports 503 for.
func New(opts Options) (*Cluster, error) {
	if opts.Shards == 0 {
		opts.Shards = max(1, len(opts.Clients))
	}
	if opts.Replicas == 0 {
		opts.Replicas = 1
	}
	if opts.Shards < 1 || opts.Replicas < 1 {
		return nil, fmt.Errorf("shard: need ≥ 1 shard and ≥ 1 replica, got %d × %d", opts.Shards, opts.Replicas)
	}
	if len(opts.Clients) > 0 && len(opts.Clients) != opts.Shards {
		return nil, fmt.Errorf("shard: %d injected clients for %d shards", len(opts.Clients), opts.Shards)
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	ring, err := NewRing(opts.Shards, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opts: opts,
		ring: ring,
		mFanouts: opts.Registry.Counter("gcbench_shard_fanouts_total",
			"Scatter-gather fan-outs executed across the shard tier."),
		mShardLat: opts.Registry.HistogramVec("gcbench_shard_request_seconds",
			"Shard RPC latency in seconds by shard and operation.",
			[]string{"shard", "op"}, shardLatencyBuckets),
		mRPCErrs: opts.Registry.CounterVec(rpcErrorsMetric,
			rpcErrorsHelp, []string{"shard", "kind"}),
	}
	if len(opts.Clients) > 0 {
		c.shards = append(c.shards, opts.Clients...)
	} else {
		for i := 0; i < opts.Shards; i++ {
			c.shards = append(c.shards, NewLocalShard(i, opts.Replicas, corpus.PoolMember))
		}
	}
	return c, nil
}

// rpcErrorsMetric is shared by the Cluster (logical call failures) and
// the wire transports (per-attempt and per-replica failures), so one
// scrape shows the whole failure picture by shard and kind.
const (
	rpcErrorsMetric = "gcbench_shard_rpc_errors_total"
	rpcErrorsHelp   = "Shard RPC failures by shard and kind (logical op, per-replica attempt, or transport retry)."
)

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.opts.Shards }

// Replicas returns the per-shard replica count.
func (c *Cluster) Replicas() int { return c.opts.Replicas }

// Ring returns the cluster's consistent-hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// View returns the current global view (nil before Load).
func (c *Cluster) View() *View { return c.view.Load() }

// Ready reports whether every shard has published at least one version,
// every replica process is reachable, and a global view exists — the
// /readyz criterion — plus the per-shard serving state for the probe's
// diagnostic payload. A shard with a dead replica keeps answering reads
// through failover, but readiness stays false until the supervisor
// restores the replica: the probe's job is to say "degraded", the
// survivors' job is to keep the reads flowing meanwhile.
func (c *Cluster) Ready(ctx context.Context) (bool, []InfoResponse) {
	infos := make([]InfoResponse, len(c.shards))
	ready := c.View() != nil
	for i, s := range c.shards {
		info, err := s.Info(ctx, InfoRequest{})
		if err != nil || info.Version == 0 || info.Down > 0 {
			ready = false
		}
		info.Shard = i
		infos[i] = info
	}
	return ready, infos
}

// Load partitions snap's records across the shards by consistent hash
// of their (already assigned) keys, publishes every partition — every
// shard gets a publish, even an empty one, so readiness is uniform —
// and installs the initial global view. The snapshot is retained as the
// merged view; the cluster owns it from here on.
func (c *Cluster) Load(ctx context.Context, snap *corpus.Snapshot) (*View, error) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	return c.replaceLocked(ctx, snap)
}

// replaceLocked implements Load and Reload: full-partition Replace
// publishes to every shard, then a fresh view.
func (c *Cluster) replaceLocked(ctx context.Context, snap *corpus.Snapshot) (*View, error) {
	parts := make([][]Entry, len(c.shards))
	for seq := range snap.Records {
		owner := c.ring.Owner(snap.Records[seq].Key)
		parts[owner] = append(parts[owner], Entry{Seq: seq, Record: snap.Records[seq]})
	}
	if err := c.publishAll(ctx, parts, true, nil); err != nil {
		return nil, err
	}
	return c.installView(ctx, snap)
}

// Append publishes a grown corpus: the merged view's records plus one
// ok record per run, re-keyed and renormalized globally (the same
// semantics as corpus.Store.Append — a new run that raises a dimension
// maximum rescales every older point), with only the shards owning new
// records republished. Unaffected shards keep serving their snapshots
// untouched — appends propagate with per-shard publishes, never a
// cluster-wide reader-blocking lock.
func (c *Cluster) Append(ctx context.Context, runs []*behavior.Run, from string) (*View, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("shard: nothing to append")
	}
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	cur := c.View()
	if cur == nil {
		return nil, fmt.Errorf("shard: cluster has no published view")
	}
	old := cur.Merged
	records := make([]corpus.Record, 0, len(old.Records)+len(runs))
	records = append(records, old.Records...)
	for _, r := range runs {
		records = append(records, corpus.Record{
			Run: r, Status: behavior.StatusOK,
			Algorithm: r.Algorithm, SizeLabel: r.SizeLabel, Alpha: r.Alpha, Model: r.Model,
		})
	}
	source := old.Source
	if source == "" {
		source = from
	}
	// Rebuild the merged snapshot through the shared constructor: keys
	// of pre-existing records are stable (collision suffixes depend only
	// on records loaded before them), new records get globally unique
	// keys, and the whole corpus renormalizes in one pass.
	merged, err := corpus.NewSnapshotFromRecords(records, source)
	if err != nil {
		return nil, fmt.Errorf("shard: appending %d runs from %s: %w", len(runs), from, err)
	}
	parts := make([][]Entry, len(c.shards))
	for seq := len(old.Records); seq < len(merged.Records); seq++ {
		owner := c.ring.Owner(merged.Records[seq].Key)
		parts[owner] = append(parts[owner], Entry{Seq: seq, Record: merged.Records[seq]})
	}
	affected := make([]bool, len(c.shards))
	for i := range parts {
		affected[i] = len(parts[i]) > 0
	}
	if err := c.publishAll(ctx, parts, false, affected); err != nil {
		return nil, err
	}
	return c.installView(ctx, merged)
}

// Reload re-reads the merged view's source file and replaces every
// partition with the fresh load.
func (c *Cluster) Reload(ctx context.Context) (*View, error) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	cur := c.View()
	if cur == nil || cur.Merged.Source == "" {
		return nil, fmt.Errorf("shard: cluster has no reloadable source")
	}
	snap, err := corpus.LoadFile(cur.Merged.Source)
	if err != nil {
		return nil, err
	}
	return c.replaceLocked(ctx, snap)
}

// publishAll pushes partitions to their shards in parallel (one RPC per
// shard, each serialized only by that shard's own publish mutex). With
// affected non-nil, only flagged shards are published (append); nil
// publishes every shard (replace). Every publish carries the epoch
// fence — last acknowledged version + 1 — so replicas acknowledge in
// lockstep and restarted processes can never regress the version
// vector. Any failure aborts the view swap, so readers keep the
// previous consistent view; the cluster then needs a Reload to
// re-establish partition/view agreement.
func (c *Cluster) publishAll(ctx context.Context, parts [][]Entry, replace bool, affected []bool) error {
	fence := c.fences()
	var wg sync.WaitGroup
	errs := make([]error, len(c.shards))
	for i := range c.shards {
		if affected != nil && !affected[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			begin := time.Now()
			_, err := c.shards[i].Publish(ctx, PublishRequest{
				Replace: replace, Entries: parts[i], MinVersion: fence[i],
			})
			c.mShardLat.With(strconv.Itoa(i), "publish").Observe(time.Since(begin).Seconds())
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.mRPCErrs.With(strconv.Itoa(i), "publish").Inc()
			return fmt.Errorf("shard %d: publish: %w", i, err)
		}
	}
	return nil
}

// fences returns the per-shard publish fence: the last version the
// coordinator saw acknowledged, plus one. Called with pubMu held.
func (c *Cluster) fences() []uint64 {
	fence := make([]uint64, len(c.shards))
	if cur := c.View(); cur != nil {
		for i, v := range cur.VV {
			fence[i] = v + 1
		}
	} else {
		for i := range fence {
			fence[i] = 1
		}
	}
	return fence
}

// installView assembles and atomically publishes the next global view
// from the current shard versions and the freshly merged snapshot.
// Shards are already published when this runs, so every key the view
// knows is fetchable from its owner.
func (c *Cluster) installView(ctx context.Context, merged *corpus.Snapshot) (*View, error) {
	prev := c.View()
	var epoch int64 = 1
	if prev != nil {
		epoch = prev.Epoch() + 1
	}
	merged.Version = epoch
	vv := make([]uint64, len(c.shards))
	for i, s := range c.shards {
		info, err := s.Info(ctx, InfoRequest{})
		if err != nil {
			c.mRPCErrs.With(strconv.Itoa(i), "info").Inc()
			return nil, fmt.Errorf("shard %d: info: %w", i, err)
		}
		vv[i] = info.Version
	}
	v := &View{
		Merged:       merged,
		VV:           vv,
		NormEpoch:    epoch,
		BuiltAt:      time.Now(),
		poolIdxBySeq: make([]int, len(merged.Records)),
		ownerBySeq:   make([]int, len(merged.Records)),
	}
	for seq := range v.poolIdxBySeq {
		v.poolIdxBySeq[seq] = -1
		v.ownerBySeq[seq] = c.ring.Owner(merged.Records[seq].Key)
	}
	for pi := 0; pi < merged.PoolSize(); pi++ {
		if seq, ok := merged.Lookup(merged.PoolRecord(pi).Key); ok {
			v.poolIdxBySeq[seq] = pi
		}
	}
	if prev != nil && sameNormalization(prev.Merged, merged) {
		v.NormEpoch = prev.NormEpoch
	}
	c.view.Store(v)
	return v, nil
}

// sameNormalization reports whether two merged snapshots normalize
// points identically: equal space and pool maxima. A publish that
// leaves the maxima untouched cannot move any pre-existing record's
// normalized coordinates, so responses depending only on one record
// plus the normalization survive it.
func sameNormalization(a, b *corpus.Snapshot) bool {
	sameSpace := func(x, y *behavior.Space) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || x.Max == y.Max
	}
	return sameSpace(a.Space, b.Space) && sameSpace(a.Pool, b.Pool)
}

// Owner returns the shard index owning key under the current ring.
func (c *Cluster) Owner(key string) int { return c.ring.Owner(key) }

// Get routes a single-record read to the key's owning shard (any
// replica answers from its own snapshot).
func (c *Cluster) Get(ctx context.Context, key string) (GetResponse, error) {
	owner := c.ring.Owner(key)
	ctx, sp := otrace.StartSpan(ctx, fmt.Sprintf("shard %d get", owner), "shard",
		otrace.Int("shard", owner), otrace.String("key", key))
	begin := time.Now()
	resp, err := c.shards[owner].Get(ctx, GetRequest{Key: key})
	c.mShardLat.With(strconv.Itoa(owner), "get").Observe(time.Since(begin).Seconds())
	if err != nil {
		c.mRPCErrs.With(strconv.Itoa(owner), "get").Inc()
		sp.Fail(err.Error())
	}
	sp.End()
	return resp, err
}

// Scatter fans a filter out to every shard in parallel, gathers each
// shard's partial result set, and merges them into one ascending
// global sequence list — identical to the order a single-store scan
// would produce. poolOnly restricts matches to ensemble-pool members
// (the design search's candidate scatter).
func (c *Cluster) Scatter(ctx context.Context, f corpus.Filter, poolOnly bool) ([]int, error) {
	c.mFanouts.Inc()
	op := "select"
	if poolOnly {
		op = "candidates"
	}
	ctx, sp := otrace.StartSpan(ctx, "scatter "+op, "scatter",
		otrace.Int("shards", len(c.shards)))
	defer sp.End()

	var wg sync.WaitGroup
	partial := make([][]int, len(c.shards))
	errs := make([]error, len(c.shards))
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, ssp := otrace.StartSpan(ctx, fmt.Sprintf("shard %d %s", i, op), "shard",
				otrace.Int("shard", i))
			begin := time.Now()
			resp, err := c.shards[i].Select(sctx, SelectRequest{Filter: f, PoolOnly: poolOnly})
			c.mShardLat.With(strconv.Itoa(i), op).Observe(time.Since(begin).Seconds())
			if err != nil {
				ssp.Fail(err.Error())
			} else {
				ssp.SetAttr("matches", len(resp.Seqs))
			}
			ssp.End()
			partial[i], errs[i] = resp.Seqs, err
		}(i)
	}
	wg.Wait()
	total := 0
	for i := range c.shards {
		if errs[i] != nil {
			c.mRPCErrs.With(strconv.Itoa(i), op).Inc()
			sp.Fail(errs[i].Error())
			return nil, fmt.Errorf("shard %d: select: %w", i, errs[i])
		}
		total += len(partial[i])
	}
	merged := make([]int, 0, total)
	for _, p := range partial {
		merged = append(merged, p...)
	}
	sort.Ints(merged)
	sp.SetAttr("matches", total)
	return merged, nil
}

// Rehydrate restores a restarted shard from the coordinator's current
// merged view: the shard's whole partition is republished (Replace, to
// every replica) with the epoch fence, and a new view installs with
// that shard's version-vector entry advanced. Restart amnesia is the
// failure this heals — a shard process that crashed lost both its
// in-memory partition and its version counter; the republish restores
// the exact records the merged view says it owns (including every
// hot-publish since initial load, which the on-disk corpus source alone
// would not), and the fence lands it strictly above every version it
// served before.
//
// The merged snapshot itself is unchanged — the corpus did not move, so
// the cluster epoch (corpusVersion) and NormEpoch stay put and every
// /api body renders exactly as before the crash. Only the version
// vector advances, which retires the dead process's cache keys: caches
// keyed on (VV) or (owner version, NormEpoch) can never serve a body
// the restarted shard no longer backs.
func (c *Cluster) Rehydrate(ctx context.Context, shardID int) (*View, error) {
	if shardID < 0 || shardID >= len(c.shards) {
		return nil, fmt.Errorf("shard: rehydrate shard %d of %d", shardID, len(c.shards))
	}
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	cur := c.View()
	if cur == nil {
		return nil, fmt.Errorf("shard: cluster has no published view to rehydrate from")
	}
	var part []Entry
	for seq := range cur.Merged.Records {
		if cur.ownerBySeq[seq] == shardID {
			part = append(part, Entry{Seq: seq, Record: cur.Merged.Records[seq]})
		}
	}
	begin := time.Now()
	_, err := c.shards[shardID].Publish(ctx, PublishRequest{
		Replace: true, Entries: part, MinVersion: cur.VV[shardID] + 1,
	})
	c.mShardLat.With(strconv.Itoa(shardID), "rehydrate").Observe(time.Since(begin).Seconds())
	if err != nil {
		c.mRPCErrs.With(strconv.Itoa(shardID), "rehydrate").Inc()
		return nil, fmt.Errorf("shard %d: rehydrate: %w", shardID, err)
	}
	info, err := c.shards[shardID].Info(ctx, InfoRequest{})
	if err != nil {
		c.mRPCErrs.With(strconv.Itoa(shardID), "info").Inc()
		return nil, fmt.Errorf("shard %d: info after rehydrate: %w", shardID, err)
	}
	vv := append([]uint64(nil), cur.VV...)
	vv[shardID] = info.Version
	v := &View{
		Merged:       cur.Merged,
		VV:           vv,
		NormEpoch:    cur.NormEpoch,
		BuiltAt:      time.Now(),
		poolIdxBySeq: cur.poolIdxBySeq,
		ownerBySeq:   cur.ownerBySeq,
	}
	c.view.Store(v)
	return v, nil
}
