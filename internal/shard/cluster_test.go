package shard

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/obs"
)

// standardSnapshot loads the shipped corpus once per test binary.
var (
	stdOnce sync.Once
	stdSnap *corpus.Snapshot
	stdErr  error
)

func standardSnapshot(t testing.TB) *corpus.Snapshot {
	t.Helper()
	stdOnce.Do(func() {
		stdSnap, stdErr = corpus.LoadFile("../../runs-standard.json")
	})
	if stdErr != nil {
		t.Fatalf("loading runs-standard.json: %v", stdErr)
	}
	return stdSnap
}

func newTestCluster(t testing.TB, shards, replicas int) *Cluster {
	t.Helper()
	c, err := New(Options{Shards: shards, Replicas: replicas, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background(), standardSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	return c
}

func fakeRun(alg, size string, alpha float64) *behavior.Run {
	return &behavior.Run{
		Algorithm: alg, Domain: "test", SizeLabel: size, Alpha: alpha,
		NumEdges: 1000, Iterations: 3, Converged: true,
		ActiveFraction: []float64{1, 0.5, 0.1},
		Raw:            behavior.Vector{0.5, 1e-9, 0.9, 0.3},
	}
}

// TestClusterPartitionsCompletely asserts the load partitioning is a
// true partition: every record lands on exactly the shard the ring
// names, shards are disjoint, and the union is the corpus.
func TestClusterPartitionsCompletely(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 4, 2)
	view := c.View()
	if view == nil {
		t.Fatal("no view after Load")
	}
	seen := map[int]int{} // seq → shard
	total := 0
	for i, sc := range c.shards {
		info, err := sc.Info(ctx, InfoRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if info.Version != 1 {
			t.Errorf("shard %d version = %d after initial load", i, info.Version)
		}
		total += info.Records
		// Drain the shard via an unrestricted select.
		resp, err := sc.Select(ctx, SelectRequest{})
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range resp.Seqs {
			if prev, dup := seen[seq]; dup {
				t.Fatalf("seq %d on both shard %d and %d", seq, prev, i)
			}
			seen[seq] = i
			if want := c.Owner(view.Merged.Records[seq].Key); want != i {
				t.Errorf("seq %d (key %s) on shard %d, ring says %d", seq, view.Merged.Records[seq].Key, i, want)
			}
		}
	}
	if total != len(view.Merged.Records) || len(seen) != len(view.Merged.Records) {
		t.Fatalf("shards hold %d records (%d distinct seqs), corpus has %d",
			total, len(seen), len(view.Merged.Records))
	}
	// More than one shard must actually hold data for the standard corpus.
	byShard := map[int]bool{}
	for _, s := range seen {
		byShard[s] = true
	}
	if len(byShard) < 2 {
		t.Errorf("all records on %d shard(s); partitioning is vacuous", len(byShard))
	}
}

// TestScatterMatchesSingleStore asserts scatter-gather select over N
// shards returns exactly the sequence list a single-store Select/
// PoolSelect produces — same set, same canonical order.
func TestScatterMatchesSingleStore(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 4, 2)
	snap := c.View().Merged
	filters := []corpus.Filter{
		{},
		{Algorithms: []string{"PR"}},
		{Algorithms: []string{"PR", "CC"}, Sizes: []string{"1e5"}},
		{Alphas: []float64{2.5}},
		{Statuses: []behavior.RunStatus{behavior.StatusOK}},
		{Algorithms: []string{"nope"}},
	}
	for _, f := range filters {
		got, err := c.Scatter(ctx, f, false)
		if err != nil {
			t.Fatal(err)
		}
		want := snap.Select(f)
		if !equalIntsLoose(got, want) {
			t.Errorf("Scatter(%+v) = %v, single-store Select = %v", f, got, want)
		}

		gotPool, err := c.Scatter(ctx, f, true)
		if err != nil {
			t.Fatal(err)
		}
		poolIdx := make([]int, 0, len(gotPool))
		for _, seq := range gotPool {
			pi := c.View().PoolIndexOfSeq(seq)
			if pi < 0 {
				t.Fatalf("pool scatter returned non-pool seq %d", seq)
			}
			poolIdx = append(poolIdx, pi)
		}
		wantPool := snap.PoolSelect(f)
		if !equalIntsLoose(poolIdx, wantPool) {
			t.Errorf("pool Scatter(%+v) = %v, single-store PoolSelect = %v", f, poolIdx, wantPool)
		}
	}
}

func equalIntsLoose(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterGetRoutesToOwner asserts single-record reads resolve from
// the owning shard for every key in the corpus.
func TestClusterGetRoutesToOwner(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 4, 3)
	snap := c.View().Merged
	for seq := range snap.Records {
		key := snap.Records[seq].Key
		resp, err := c.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Found || resp.Entry.Seq != seq {
			t.Fatalf("Get(%s): found=%v seq=%d, want seq %d", key, resp.Found, resp.Entry.Seq, seq)
		}
		if resp.Entry.Record.Key != key {
			t.Fatalf("Get(%s) returned record keyed %s", key, resp.Entry.Record.Key)
		}
	}
	if resp, err := c.Get(ctx, "no_such_key"); err != nil || resp.Found {
		t.Fatalf("Get(missing) = found=%v err=%v", resp.Found, err)
	}
}

// TestClusterAppend asserts hot-publish semantics: only owning shards
// republish (version vector moves element-wise), the epoch advances,
// pre-existing keys are stable, and the merged view renormalizes
// corpus-wide exactly like corpus.Store.Append.
func TestClusterAppend(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 4, 2)
	v1 := c.View()
	oldKeys := make([]string, len(v1.Merged.Records))
	for i := range v1.Merged.Records {
		oldKeys[i] = v1.Merged.Records[i].Key
	}

	// Mirror the append against a plain single store: the merged view
	// must stay equivalent to it in every indexed respect.
	st := corpus.NewStore(mustSnapshotCopy(t, v1.Merged))

	// Derive raw vectors from the observed maxima so domination is by
	// construction, not an assumption about the shipped corpus: big
	// raises every (positive) dimension maximum 4×, its companion stays
	// strictly inside them.
	var bigRaw, midRaw behavior.Vector
	for d := range bigRaw {
		bigRaw[d] = v1.Merged.Space.Max[d] * 4
		midRaw[d] = v1.Merged.Space.Max[d] * 0.25
	}
	big := fakeRun("SSSP", "9e9", 2.2)
	big.Raw = bigRaw
	mid := fakeRun("PR", "9e9", 2.1)
	mid.Raw = midRaw
	runs := []*behavior.Run{big, mid}

	v2, err := c.Append(ctx, runs, "job j1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Append(runs, "job j1")
	if err != nil {
		t.Fatal(err)
	}

	if v2.Epoch() != v1.Epoch()+1 {
		t.Errorf("epoch %d → %d, want +1", v1.Epoch(), v2.Epoch())
	}
	if len(v2.Merged.Records) != len(v1.Merged.Records)+2 {
		t.Fatalf("records %d → %d", len(v1.Merged.Records), len(v2.Merged.Records))
	}
	for i, k := range oldKeys {
		if v2.Merged.Records[i].Key != k {
			t.Fatalf("append changed pre-existing key %q → %q", k, v2.Merged.Records[i].Key)
		}
	}
	// Version vector: exactly the owning shards advanced.
	newOwners := map[int]bool{}
	for seq := len(oldKeys); seq < len(v2.Merged.Records); seq++ {
		newOwners[v2.OwnerOfSeq(seq)] = true
	}
	for i := range v2.VV {
		wantVer := v1.VV[i]
		if newOwners[i] {
			wantVer++
		}
		if v2.VV[i] != wantVer {
			t.Errorf("shard %d version %d → %d (owns new record: %v)", i, v1.VV[i], v2.VV[i], newOwners[i])
		}
	}
	// Renormalization: merged points equal the single-store oracle's.
	if !reflect.DeepEqual(v2.Merged.Space.Points, want.Space.Points) {
		t.Error("merged space points diverge from single-store Append")
	}
	if !reflect.DeepEqual(v2.Merged.Space.Max, want.Space.Max) {
		t.Error("merged space maxima diverge from single-store Append")
	}
	// The dominating run moved the maxima, so the normalization epoch
	// must advance with the cluster epoch.
	if v2.NormEpoch != v2.Epoch() {
		t.Errorf("norm epoch %d after maxima-moving append at epoch %d", v2.NormEpoch, v2.Epoch())
	}

	// A second append dominated by the first must keep the maxima — and
	// therefore the normalization epoch — while the cluster epoch moves.
	small := fakeRun("CC", "8e8", 2.3)
	for d := range small.Raw {
		small.Raw[d] = v2.Merged.Space.Max[d] * 0.5
	}
	v3, err := c.Append(ctx, []*behavior.Run{small}, "job j2")
	if err != nil {
		t.Fatal(err)
	}
	if v3.Epoch() != v2.Epoch()+1 {
		t.Errorf("epoch %d → %d, want +1", v2.Epoch(), v3.Epoch())
	}
	if v3.NormEpoch != v2.NormEpoch {
		t.Errorf("norm epoch moved %d → %d though maxima are unchanged", v2.NormEpoch, v3.NormEpoch)
	}

	// New records are fetchable from their owners.
	for seq := len(oldKeys); seq < len(v3.Merged.Records); seq++ {
		key := v3.Merged.Records[seq].Key
		resp, err := c.Get(ctx, key)
		if err != nil || !resp.Found || resp.Entry.Seq != seq {
			t.Fatalf("Get(appended %s): found=%v seq=%d err=%v", key, resp.Found, resp.Entry.Seq, err)
		}
	}
}

// mustSnapshotCopy rebuilds an equivalent snapshot from a record copy,
// so store and cluster mutate independent memory.
func mustSnapshotCopy(t testing.TB, snap *corpus.Snapshot) *corpus.Snapshot {
	t.Helper()
	records := append([]corpus.Record(nil), snap.Records...)
	cp, err := corpus.NewSnapshotFromRecords(records, snap.Source)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestClusterReadiness asserts the /readyz criterion: not ready before
// Load, ready after, with per-shard versions in the diagnostic payload.
func TestClusterReadiness(t *testing.T) {
	ctx := context.Background()
	c, err := New(Options{Shards: 3, Replicas: 2, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ready, infos := c.Ready(ctx)
	if ready {
		t.Fatal("cluster ready before any publish")
	}
	if len(infos) != 3 {
		t.Fatalf("got %d shard infos, want 3", len(infos))
	}
	for _, info := range infos {
		if info.Version != 0 {
			t.Errorf("shard %d version %d before publish", info.Shard, info.Version)
		}
	}
	if _, err := c.Load(ctx, standardSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ready, infos = c.Ready(ctx)
	if !ready {
		t.Fatal("cluster not ready after Load")
	}
	for _, info := range infos {
		if info.Version != 1 || info.Replicas != 2 {
			t.Errorf("shard %d: version=%d replicas=%d after load", info.Shard, info.Version, info.Replicas)
		}
	}
}

// TestClusterConcurrentReadsDuringAppend hammers scatter reads and
// routed gets while appends publish — the race detector's view of the
// lock-free read path.
func TestClusterConcurrentReadsDuringAppend(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 4, 2)
	keys := make([]string, 0, 8)
	for i := 0; i < 8 && i < len(c.View().Merged.Records); i++ {
		keys = append(keys, c.View().Merged.Records[i].Key)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					if _, err := c.Scatter(ctx, corpus.Filter{Algorithms: []string{"PR"}}, i%4 == 0); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := c.Get(ctx, keys[(w+i)%len(keys)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Append(ctx, []*behavior.Run{fakeRun("PR", "7e7", 2.0+float64(i)/10)}, "race-append"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := c.View().Epoch(); got != 6 {
		t.Errorf("epoch after 5 appends = %d, want 6", got)
	}
}
