package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"gcbench/internal/obs"
)

// ReplicaSet groups R replica endpoints of one shard into the single
// logical ShardClient the Cluster routes to. Reads spread round-robin
// across the replicas and fail over: a dead or not-yet-rehydrated
// replica's error sends the read to the next survivor instead of
// surfacing, so one crashed process degrades capacity, not
// availability. Publishes fan out to every replica and succeed only
// when all acknowledge — the install-before-ack guarantee LocalShard
// gives in-process, preserved across processes. Info aggregates the
// set's state, reporting unreachable replicas as Down so /readyz can
// show the shard degraded while failover keeps reads green.
type ReplicaSet struct {
	shard    int
	replicas []ShardClient
	next     atomic.Uint64
	mErrs    *obs.CounterVec
}

// NewReplicaSet builds the logical client for shard id over the given
// replica transports (min 1). reg receives per-replica failover error
// counts (default obs.Default()).
func NewReplicaSet(id int, replicas []ShardClient, reg *obs.Registry) (*ReplicaSet, error) {
	if len(replicas) < 1 {
		return nil, fmt.Errorf("shard %d: replica set needs ≥ 1 replica", id)
	}
	if reg == nil {
		reg = obs.Default()
	}
	return &ReplicaSet{
		shard:    id,
		replicas: replicas,
		mErrs:    reg.CounterVec(rpcErrorsMetric, rpcErrorsHelp, []string{"shard", "kind"}),
	}, nil
}

// Replicas returns the replica transports (for supervision wiring).
func (rs *ReplicaSet) Replicas() []ShardClient { return rs.replicas }

// failover runs op against replicas round-robin, starting at the next
// rotation slot and advancing past failures until one answers or every
// replica has been tried.
func failover[Resp any](ctx context.Context, rs *ReplicaSet, kind string, op func(ShardClient) (Resp, error)) (Resp, error) {
	start := rs.next.Add(1)
	var lastErr error
	var zero Resp
	for i := 0; i < len(rs.replicas); i++ {
		replica := rs.replicas[(start+uint64(i))%uint64(len(rs.replicas))]
		resp, err := op(replica)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		rs.mErrs.With(strconv.Itoa(rs.shard), "replica_"+kind).Inc()
		if ctx.Err() != nil {
			// The caller's deadline expired; trying more replicas only
			// burns their time on a request nobody is waiting for.
			return zero, lastErr
		}
	}
	return zero, fmt.Errorf("shard %d: all %d replicas failed: %w", rs.shard, len(rs.replicas), lastErr)
}

// Info implements ShardClient: every replica is probed concurrently and
// the answers aggregate into the shard's serving state. Version is the
// minimum over reachable replicas — the version any read is guaranteed
// to see at least — and Down counts the unreachable ones. Only a shard
// with zero reachable replicas errors.
func (rs *ReplicaSet) Info(ctx context.Context, req InfoRequest) (InfoResponse, error) {
	type probe struct {
		info InfoResponse
		err  error
	}
	probes := make([]probe, len(rs.replicas))
	var wg sync.WaitGroup
	for i, replica := range rs.replicas {
		wg.Add(1)
		go func(i int, replica ShardClient) {
			defer wg.Done()
			probes[i].info, probes[i].err = replica.Info(ctx, req)
		}(i, replica)
	}
	wg.Wait()
	agg := InfoResponse{Shard: rs.shard, Replicas: len(rs.replicas)}
	live := 0
	var lastErr error
	for i := range probes {
		if probes[i].err != nil {
			rs.mErrs.With(strconv.Itoa(rs.shard), "replica_info").Inc()
			agg.Down++
			lastErr = probes[i].err
			continue
		}
		if live == 0 || probes[i].info.Version < agg.Version {
			agg.Version = probes[i].info.Version
			agg.Records = probes[i].info.Records
		}
		live++
	}
	if live == 0 {
		return agg, fmt.Errorf("shard %d: all %d replicas unreachable: %w", rs.shard, len(rs.replicas), lastErr)
	}
	return agg, nil
}

// Get implements ShardClient with read failover.
func (rs *ReplicaSet) Get(ctx context.Context, req GetRequest) (GetResponse, error) {
	return failover(ctx, rs, "get", func(c ShardClient) (GetResponse, error) {
		return c.Get(ctx, req)
	})
}

// Select implements ShardClient with read failover.
func (rs *ReplicaSet) Select(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	return failover(ctx, rs, "select", func(c ShardClient) (SelectResponse, error) {
		return c.Select(ctx, req)
	})
}

// Publish implements ShardClient: the partition installs on every
// replica before the set acknowledges. The shared epoch fence
// (PublishRequest.MinVersion) lands every replica on the same version,
// so the acknowledged Version is the set's version, not one process's.
// A replica that cannot accept the publish fails the whole call; the
// coordinator keeps its previous view and the supervisor's restore path
// retries once the replica is back.
func (rs *ReplicaSet) Publish(ctx context.Context, req PublishRequest) (PublishResponse, error) {
	resps := make([]PublishResponse, len(rs.replicas))
	errs := make([]error, len(rs.replicas))
	var wg sync.WaitGroup
	for i, replica := range rs.replicas {
		wg.Add(1)
		go func(i int, replica ShardClient) {
			defer wg.Done()
			resps[i], errs[i] = replica.Publish(ctx, req)
		}(i, replica)
	}
	wg.Wait()
	agg := PublishResponse{}
	for i := range rs.replicas {
		if errs[i] != nil {
			rs.mErrs.With(strconv.Itoa(rs.shard), "replica_publish").Inc()
			return PublishResponse{}, fmt.Errorf("shard %d replica %d: publish: %w", rs.shard, i, errs[i])
		}
		if resps[i].Version > agg.Version {
			agg = resps[i]
		}
	}
	return agg, nil
}
