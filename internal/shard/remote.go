package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gcbench/internal/obs"
)

// defaultRPCTransport is the shared connection pool for every
// RemoteShard in the process: shard RPCs are many small requests to a
// handful of endpoints, exactly the shape keep-alive pooling exists
// for. Shared across shards so the pool amortizes over the whole tier.
var defaultRPCTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// defaultRPCClient wraps the shared transport. Per-call deadlines come
// from contexts, not from http.Client.Timeout, so one slow publish
// cannot be cut short by a ceiling tuned for reads.
var defaultRPCClient = &http.Client{Transport: defaultRPCTransport}

// RemoteOptions parameterizes a RemoteShard.
type RemoteOptions struct {
	// Shard is the shard index served by the endpoint (metric label and
	// error-message context).
	Shard int
	// Timeout is the per-call deadline applied on top of the caller's
	// context (default 5s). Publishes get PublishTimeout instead.
	Timeout time.Duration
	// PublishTimeout bounds publish calls, which ship whole partitions
	// (default 60s).
	PublishTimeout time.Duration
	// Retries is how many extra attempts a read (Info/Get/Select) gets
	// after a transport-level failure (default 2). Publishes are never
	// retried here: the coordinator owns publish recovery, and a blind
	// retry of a non-idempotent version bump could double-advance the
	// fence.
	Retries int
	// RetryBackoff is the base delay between read retries, jittered
	// uniformly in [base, 2·base] and doubled per attempt (default
	// 25ms). The jitter matters for the same reason the serve tier's
	// Retry-After is jittered: simultaneous failures must not retry in
	// lockstep.
	RetryBackoff time.Duration
	// Client overrides the pooled HTTP client (tests, custom TLS).
	Client *http.Client
	// Registry receives gcbench_shard_rpc_errors_total attempt failures
	// (default obs.Default()).
	Registry *obs.Registry
}

// RemoteShard is the wire ShardClient: it speaks the shard RPC protocol
// to one replica endpoint over pooled HTTP connections, with per-call
// deadlines and bounded, jittered retry on transport-level read
// failures. Safe for concurrent use.
type RemoteShard struct {
	shard int
	base  string
	hc    *http.Client
	opts  RemoteOptions
	mErrs *obs.CounterVec
}

// NewRemoteShard builds a client for the replica endpoint at baseURL
// (e.g. "http://127.0.0.1:9301"; a bare host:port is promoted to http).
func NewRemoteShard(baseURL string, opts RemoteOptions) *RemoteShard {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.PublishTimeout == 0 {
		opts.PublishTimeout = 60 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = defaultRPCClient
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	return &RemoteShard{
		shard: opts.Shard,
		base:  strings.TrimRight(baseURL, "/"),
		hc:    opts.Client,
		opts:  opts,
		mErrs: opts.Registry.CounterVec(rpcErrorsMetric, rpcErrorsHelp, []string{"shard", "kind"}),
	}
}

// Addr returns the endpoint the client targets.
func (r *RemoteShard) Addr() string { return r.base }

// errRemoteApp tags an application-level error relayed from the shard
// process (HTTP status + wire error body): the request reached the
// shard and was answered; retrying the transport cannot change the
// answer.
type errRemoteApp struct {
	status int
	msg    string
}

func (e errRemoteApp) Error() string { return e.msg }

// call performs one RPC with bounded retry: transport failures
// (connection refused while a process restarts, a torn connection, a
// deadline on the wire) are retried for idempotent reads with jittered
// doubling backoff; application errors and publishes are not.
func (r *RemoteShard) call(ctx context.Context, op string, req, resp any, idempotent bool) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("shard %d: marshal %s: %w", r.shard, op, err)
	}
	timeout := r.opts.Timeout
	retries := 0
	if idempotent {
		retries = r.opts.Retries
	}
	if op == "publish" {
		timeout = r.opts.PublishTimeout
	}
	backoff := r.opts.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = r.attempt(ctx, op, body, resp, timeout)
		if lastErr == nil {
			return nil
		}
		r.mErrs.With(strconv.Itoa(r.shard), op).Inc()
		var app errRemoteApp
		if errors.As(lastErr, &app) || attempt >= retries || ctx.Err() != nil {
			break
		}
		// Jittered, doubling backoff between read retries.
		delay := backoff + time.Duration(rand.Int64N(int64(backoff)+1))
		backoff *= 2
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return fmt.Errorf("shard %d: %s %s: %w", r.shard, op, r.base, lastErr)
}

// attempt is one HTTP round trip under the per-call deadline.
func (r *RemoteShard) attempt(ctx context.Context, op string, body []byte, resp any, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/rpc/"+op, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var werr rpcError
		msg := hresp.Status
		if b, rerr := io.ReadAll(io.LimitReader(hresp.Body, 4096)); rerr == nil {
			if json.Unmarshal(b, &werr) == nil && werr.Error != "" {
				msg = werr.Error
			}
		}
		return errRemoteApp{status: hresp.StatusCode, msg: msg}
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("decoding %s response: %w", op, err)
	}
	return nil
}

// Healthy probes the endpoint's /healthz within timeout.
func (r *RemoteShard) Healthy(ctx context.Context, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Info implements ShardClient.
func (r *RemoteShard) Info(ctx context.Context, req InfoRequest) (InfoResponse, error) {
	var resp InfoResponse
	err := r.call(ctx, "info", req, &resp, true)
	return resp, err
}

// Get implements ShardClient.
func (r *RemoteShard) Get(ctx context.Context, req GetRequest) (GetResponse, error) {
	var resp GetResponse
	err := r.call(ctx, "get", req, &resp, true)
	return resp, err
}

// Select implements ShardClient.
func (r *RemoteShard) Select(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	var resp SelectResponse
	err := r.call(ctx, "select", req, &resp, true)
	return resp, err
}

// Publish implements ShardClient. Not retried: see RemoteOptions.Retries.
func (r *RemoteShard) Publish(ctx context.Context, req PublishRequest) (PublishResponse, error) {
	var resp PublishResponse
	err := r.call(ctx, "publish", req, &resp, false)
	return resp, err
}
