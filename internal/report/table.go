// Package report renders the paper's tables and figure data series as
// aligned ASCII tables and CSV — the "same rows/series the paper reports",
// regenerated from a measured behavior corpus.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is a figure or table reproduction: explanatory notes plus one or
// more data tables.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []*Table
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting needed: cells are
// numeric/identifier strings; commas are rejected defensively).
func (t *Table) RenderCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the whole report.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "   %s\n", n); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
