package report

import (
	"bytes"
	"strings"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/sweep"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header", "c"},
		Rows:   [][]string{{"1", "2", "3"}, {"wide-cell", "x", "y"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "long-header", "wide-cell", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "has,comma"}, {"q\"uote", "z"}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"q""uote"`) {
		t.Fatalf("quote not escaped: %s", out)
	}
}

func TestF(t *testing.T) {
	if F(0) != "0" {
		t.Fatal("F(0)")
	}
	if F(0.5) != "0.5000" {
		t.Fatalf("F(0.5) = %q", F(0.5))
	}
	if !strings.Contains(F(1e-9), "e") {
		t.Fatalf("F(1e-9) = %q, want scientific", F(1e-9))
	}
}

// miniCorpus runs a small but complete campaign: every algorithm, two
// sizes, two alphas — enough structure for every figure to render.
func miniCorpus(t testing.TB) *Corpus {
	t.Helper()
	var specs []sweep.Spec
	gaAlgs := []algorithms.Name{algorithms.CC, algorithms.KC, algorithms.TC,
		algorithms.SSSP, algorithms.PR, algorithms.AD, algorithms.KM}
	for _, alg := range gaAlgs {
		for _, size := range []int64{300, 1000} {
			for _, alpha := range []float64{2.0, 2.5, 3.0} {
				specs = append(specs, sweep.Spec{Algorithm: alg, NumEdges: size,
					Alpha: alpha, SizeLabel: sizeLabelFor(size), Seed: uint64(size) ^ uint64(alpha*100)})
			}
		}
	}
	for _, alg := range []algorithms.Name{algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD} {
		for _, size := range []int64{100, 400} {
			for _, alpha := range []float64{2.0, 2.5, 3.0} {
				specs = append(specs, sweep.Spec{Algorithm: alg, NumEdges: size,
					Alpha: alpha, SizeLabel: sizeLabelFor(size), Seed: uint64(size) ^ uint64(alpha*100)})
			}
		}
	}
	specs = append(specs,
		sweep.Spec{Algorithm: algorithms.Jacobi, NumRows: 100, SizeLabel: "100", Seed: 1},
		sweep.Spec{Algorithm: algorithms.Jacobi, NumRows: 200, SizeLabel: "200", Seed: 2},
		sweep.Spec{Algorithm: algorithms.LBP, NumRows: 8, SizeLabel: "8", Seed: 3},
		sweep.Spec{Algorithm: algorithms.LBP, NumRows: 12, SizeLabel: "12", Seed: 4},
		sweep.Spec{Algorithm: algorithms.DD, NumEdges: 60, SizeLabel: "60", Seed: 5},
		sweep.Spec{Algorithm: algorithms.DD, NumEdges: 90, SizeLabel: "90", Seed: 6},
	)
	runs, err := sweep.Execute(specs, sweep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCorpus(runs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sizeLabelFor(n int64) string { return formatSize(n) }

var testOpt = FigureOptions{
	CoverageSamples: 20000,
	TopKSamples:     2000,
	MaxSize:         8,
	TopKSize:        3,
}

func TestAllFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("mini campaign takes a few seconds")
	}
	c := miniCorpus(t)
	for _, id := range FigureIDs() {
		rep, err := Figure(c, id, testOpt)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatalf("figure %s render: %v", id, err)
		}
		if buf.Len() < 40 {
			t.Fatalf("figure %s suspiciously empty:\n%s", id, buf.String())
		}
		if len(rep.Tables) == 0 {
			t.Fatalf("figure %s has no tables", id)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	c := &Corpus{}
	if _, err := Figure(c, "99", FigureOptions{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestParseSizeLabel(t *testing.T) {
	cases := map[string]int64{"1e3": 1000, "2e4": 20000, "300": 300, "1056": 1056}
	for s, want := range cases {
		if got := parseSizeLabel(s); got != want {
			t.Fatalf("parseSizeLabel(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestCorpusSizeRanks(t *testing.T) {
	runs := []*behavior.Run{
		{Algorithm: "CC", Domain: "Graph Analytics", SizeLabel: "1e3", Alpha: 2.0, Raw: behavior.Vector{1, 1, 1, 1}},
		{Algorithm: "CC", Domain: "Graph Analytics", SizeLabel: "1e4", Alpha: 2.0, Raw: behavior.Vector{1, 1, 1, 1}},
		{Algorithm: "ALS", Domain: "Collaborative Filtering", SizeLabel: "100", Alpha: 2.0, Raw: behavior.Vector{1, 1, 1, 1}},
		{Algorithm: "ALS", Domain: "Collaborative Filtering", SizeLabel: "1e3", Alpha: 2.0, Raw: behavior.Vector{1, 1, 1, 1}},
	}
	c, err := NewCorpus(runs)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks align the smallest size of each domain at 0 even though the
	// absolute scales differ by a decade.
	if c.SizeRank(runs[0]) != 0 || c.SizeRank(runs[1]) != 1 {
		t.Fatalf("GA ranks: %d, %d", c.SizeRank(runs[0]), c.SizeRank(runs[1]))
	}
	if c.SizeRank(runs[2]) != 0 || c.SizeRank(runs[3]) != 1 {
		t.Fatalf("CF ranks: %d, %d", c.SizeRank(runs[2]), c.SizeRank(runs[3]))
	}
	// Pool excludes nothing here (all graph-varying).
	if c.Pool.Len() != 4 {
		t.Fatalf("pool size %d, want 4", c.Pool.Len())
	}
}

func TestCorpusPoolExcludesFixedGraphAlgorithms(t *testing.T) {
	runs := []*behavior.Run{
		{Algorithm: "CC", Domain: "Graph Analytics", SizeLabel: "1e3", Alpha: 2.0, Raw: behavior.Vector{1, 1, 1, 1}},
		{Algorithm: "Jacobi", Domain: "Linear Solver", SizeLabel: "500", Raw: behavior.Vector{2, 2, 2, 2}},
		{Algorithm: "DD", Domain: "Graphical Model", SizeLabel: "1056", Raw: behavior.Vector{3, 3, 3, 3}},
	}
	c, err := NewCorpus(runs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pool.Len() != 1 || c.Pool.Runs[0].Algorithm != "CC" {
		t.Fatalf("pool = %d runs", c.Pool.Len())
	}
	// Full space still normalizes over everything.
	if c.Space.Max != (behavior.Vector{3, 3, 3, 3}) {
		t.Fatalf("space max = %v", c.Space.Max)
	}
}
