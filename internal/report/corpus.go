package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gcbench/internal/behavior"
	"gcbench/internal/ensemble"
)

// GraphVaryingAlgorithms are the 11 algorithms whose graph structure
// varies in Table 2 — the ensemble-analysis pool of §5.2 ("Jacobi, LBP and
// DD are not considered because their graph structures do not vary").
var GraphVaryingAlgorithms = []string{
	"CC", "KC", "TC", "SSSP", "PR", "AD", "KM", "ALS", "NMF", "SGD", "SVD",
}

// Corpus wraps a measured run collection with the two normalized views the
// analysis needs: the full space (Figures 1-13) and the 11-algorithm
// ensemble pool (Figures 14-23, Table 3), normalized separately so the
// solver/graphical-model runs don't distort the §5 space the paper built
// from its 215 graph-varying runs.
type Corpus struct {
	Runs  []*behavior.Run
	Space *behavior.Space

	Pool        *behavior.Space
	poolRunIdx  []int // Pool index → Runs index
	sizeRankOf  map[string]int
	alphaValues []float64

	covCache map[int]*ensemble.CoverageEstimator

	// The empirical upper bounds are properties of the unit behavior cube,
	// not of any particular figure, so they are computed once per
	// (maxSize, sample-count) and shared across Figures 14-23.
	ubSpreadCache   map[int][]float64
	ubCoverageCache map[[2]int][]float64
}

// NewCorpus builds both normalized views.
func NewCorpus(runs []*behavior.Run) (*Corpus, error) {
	space, err := behavior.NewSpace(runs)
	if err != nil {
		return nil, err
	}
	varying := make(map[string]bool, len(GraphVaryingAlgorithms))
	for _, a := range GraphVaryingAlgorithms {
		varying[a] = true
	}
	var poolRuns []*behavior.Run
	var poolIdx []int
	for i, r := range runs {
		if varying[r.Algorithm] {
			poolRuns = append(poolRuns, r)
			poolIdx = append(poolIdx, i)
		}
	}
	c := &Corpus{
		Runs:            runs,
		Space:           space,
		poolRunIdx:      poolIdx,
		covCache:        map[int]*ensemble.CoverageEstimator{},
		ubSpreadCache:   map[int][]float64{},
		ubCoverageCache: map[[2]int][]float64{},
	}
	if len(poolRuns) > 0 {
		pool, err := behavior.NewSpace(poolRuns)
		if err != nil {
			return nil, err
		}
		c.Pool = pool
	}
	c.buildSizeRanks()
	return c, nil
}

// buildSizeRanks assigns each SizeLabel a per-domain rank so graphs of
// different domains align by scale decade (the paper's CF sizes sit one
// decade below the Graph Analytics sizes but occupy the same four slots
// of Table 2).
func (c *Corpus) buildSizeRanks() {
	c.sizeRankOf = make(map[string]int)
	perDomain := map[string][]int64{}
	seen := map[string]bool{}
	for _, r := range c.Runs {
		key := r.Domain + "/" + r.SizeLabel
		if seen[key] {
			continue
		}
		seen[key] = true
		perDomain[r.Domain] = append(perDomain[r.Domain], parseSizeLabel(r.SizeLabel))
	}
	alphaSeen := map[float64]bool{}
	for _, r := range c.Runs {
		if r.Alpha != 0 && !alphaSeen[r.Alpha] {
			alphaSeen[r.Alpha] = true
			c.alphaValues = append(c.alphaValues, r.Alpha)
		}
	}
	sort.Float64s(c.alphaValues)
	for domain, sizes := range perDomain {
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		for rank, s := range sizes {
			c.sizeRankOf[domain+"/"+formatSize(s)] = rank
		}
	}
}

// SizeRank returns the per-domain scale rank (0 = smallest) of a run.
func (c *Corpus) SizeRank(r *behavior.Run) int {
	return c.sizeRankOf[r.Domain+"/"+r.SizeLabel]
}

// parseSizeLabel inverts sizeLabel-style strings ("1e5" or "1056").
func parseSizeLabel(s string) int64 {
	if i := strings.IndexByte(s, 'e'); i > 0 {
		mant, err1 := strconv.ParseInt(s[:i], 10, 64)
		exp, err2 := strconv.Atoi(s[i+1:])
		if err1 == nil && err2 == nil {
			v := mant
			for k := 0; k < exp; k++ {
				v *= 10
			}
			return v
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// formatSize must match the label the run carries; reuse the same rules.
func formatSize(n int64) string {
	e := 0
	v := n
	for v >= 10 && v%10 == 0 {
		v /= 10
		e++
	}
	if v < 10 && e >= 3 {
		return fmt.Sprintf("%de%d", v, e)
	}
	return fmt.Sprintf("%d", n)
}

// Coverage returns (building if needed) a deterministic estimator with the
// given sample count, cached for reuse across figures.
func (c *Corpus) Coverage(samples int) (*ensemble.CoverageEstimator, error) {
	if est, ok := c.covCache[samples]; ok {
		return est, nil
	}
	est, err := ensemble.NewCoverageEstimator(samples, 0x5eed)
	if err != nil {
		return nil, err
	}
	c.covCache[samples] = est
	return est, nil
}

// upperBoundSpread returns the cached empirical spread upper bound.
func (c *Corpus) upperBoundSpread(maxSize int) []float64 {
	if ub, ok := c.ubSpreadCache[maxSize]; ok {
		return ub
	}
	ub := ensemble.UpperBoundSpread(maxSize, 0xface)
	c.ubSpreadCache[maxSize] = ub
	return ub
}

// upperBoundCoverage returns the cached empirical coverage upper bound for
// the given estimator sample count.
func (c *Corpus) upperBoundCoverage(cov *ensemble.CoverageEstimator, maxSize int) []float64 {
	key := [2]int{maxSize, cov.NumSamples()}
	if ub, ok := c.ubCoverageCache[key]; ok {
		return ub
	}
	ub := ensemble.UpperBoundCoverage(cov, maxSize, 0xface)
	c.ubCoverageCache[key] = ub
	return ub
}

// PoolIdxByAlgorithm returns pool indices per algorithm.
func (c *Corpus) PoolIdxByAlgorithm() map[string][]int {
	return c.Pool.ByAlgorithm()
}

// PoolIdxByGraph groups pool indices by (size-rank, alpha) graph
// structure keys, the single-graph ensembles of §5.3.
func (c *Corpus) PoolIdxByGraph() map[string][]int {
	m := make(map[string][]int)
	for i, r := range c.Pool.Runs {
		key := fmt.Sprintf("size#%d/α=%.2f", c.SizeRank(r), r.Alpha)
		m[key] = append(m[key], i)
	}
	return m
}
