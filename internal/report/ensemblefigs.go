package report

import (
	"fmt"
	"sort"

	"gcbench/internal/behavior"
	"gcbench/internal/ensemble"
)

// ensembleFigure dispatches the §5 analyses (Figures 14-23, Table 3).
func ensembleFigure(c *Corpus, id string, opt FigureOptions) (*Report, error) {
	if c.Pool == nil || c.Pool.Len() == 0 {
		return nil, fmt.Errorf("report: corpus has no graph-varying runs for ensemble analysis")
	}
	switch id {
	case "14":
		return figSpreadSingleAlg(c, opt)
	case "15":
		return figCoverageSingleAlg(c, opt)
	case "16":
		return figSpreadSingleGraph(c, opt)
	case "17":
		return figCoverageSingleGraph(c, opt)
	case "18":
		return figSpreadUnrestricted(c, opt)
	case "19":
		return figCoverageUnrestricted(c, opt)
	case "table3":
		return table3(c, opt)
	case "20":
		return figFrequency(c, opt, ensemble.MetricSpread)
	case "21":
		return figFrequency(c, opt, ensemble.MetricCoverage)
	case "22":
		return figLimited(c, opt, ensemble.MetricSpread)
	case "23":
		return figLimited(c, opt, ensemble.MetricCoverage)
	}
	return nil, fmt.Errorf("report: unknown ensemble figure %q", id)
}

// sortedKeys returns map keys in sorted order for deterministic columns.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bestSpreadPerGroup computes, per group, the best-achievable spread at
// each ensemble size — exhaustively when the group is small enough,
// greedy+exchange otherwise.
func bestSpreadPerGroup(pool []behavior.Vector, groups map[string][]int, maxSize int) (map[string][]float64, error) {
	out := make(map[string][]float64, len(groups))
	for key, idx := range groups {
		var sets [][]int
		if len(idx) <= 22 {
			var err error
			sets, err = ensemble.BestSpreadExhaustive(pool, idx, maxSize)
			if err != nil {
				return nil, err
			}
		} else {
			sets = ensemble.BestSpreadGreedy(pool, idx, maxSize)
		}
		curve := make([]float64, maxSize+1)
		for k := 1; k <= maxSize && k < len(sets); k++ {
			if sets[k] != nil {
				curve[k] = ensemble.SpreadOf(pool, sets[k])
			}
		}
		out[key] = curve
	}
	return out, nil
}

// bestCoveragePerGroup computes greedy best-coverage curves per group.
func bestCoveragePerGroup(cov *ensemble.CoverageEstimator, pool []behavior.Vector, groups map[string][]int, maxSize int) map[string][]float64 {
	out := make(map[string][]float64, len(groups))
	for key, idx := range groups {
		sets := ensemble.BestCoverageGreedy(cov, pool, idx, maxSize)
		curve := make([]float64, maxSize+1)
		for k := 1; k <= maxSize && k < len(sets); k++ {
			if sets[k] == nil {
				continue
			}
			pts := make([]behavior.Vector, len(sets[k]))
			for i, j := range sets[k] {
				pts[i] = pool[j]
			}
			curve[k] = cov.Coverage(pts)
		}
		out[key] = curve
	}
	return out
}

// curveTable renders per-size curves, one column per group plus an
// optional upper bound.
func curveTable(groups map[string][]float64, upper []float64, maxSize int) *Table {
	keys := sortedKeys(groups)
	t := &Table{Header: append([]string{"size"}, keys...)}
	if upper != nil {
		t.Header = append(t.Header, "UpperBound")
	}
	for k := 1; k <= maxSize; k++ {
		cells := []string{fmt.Sprint(k)}
		for _, key := range keys {
			curve := groups[key]
			if k < len(curve) && curve[k] != 0 {
				cells = append(cells, fmt.Sprintf("%.4f", curve[k]))
			} else {
				cells = append(cells, "-")
			}
		}
		if upper != nil {
			cells = append(cells, fmt.Sprintf("%.4f", upper[k]))
		}
		t.AddRow(cells...)
	}
	return t
}

func figSpreadSingleAlg(c *Corpus, opt FigureOptions) (*Report, error) {
	groups := c.PoolIdxByAlgorithm()
	curves, err := bestSpreadPerGroup(c.Pool.Points, groups, opt.MaxSize)
	if err != nil {
		return nil, err
	}
	upper := c.upperBoundSpread(opt.MaxSize)
	rep := &Report{ID: "Figure 14", Title: "Spread: Single Algorithm Ensembles",
		Notes: []string{
			"Best-achievable spread per ensemble size, restricted to one algorithm's runs (exhaustive subset search).",
			"Upper bound: maximally dispersed synthetic members in the unit behavior cube.",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}

func figCoverageSingleAlg(c *Corpus, opt FigureOptions) (*Report, error) {
	cov, err := c.Coverage(opt.CoverageSamples)
	if err != nil {
		return nil, err
	}
	groups := c.PoolIdxByAlgorithm()
	curves := bestCoveragePerGroup(cov, c.Pool.Points, groups, opt.MaxSize)
	upper := c.upperBoundCoverage(cov, opt.MaxSize)
	rep := &Report{ID: "Figure 15", Title: "Coverage: Single Algorithm Ensembles",
		Notes: []string{
			fmt.Sprintf("Greedy best-coverage per ensemble size, restricted to one algorithm's runs (NS = %d).", cov.NumSamples()),
			"Coverage = reciprocal mean distance from a random behavior point to its nearest member (see DESIGN.md §2).",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}

// singleGraphGroups restricts the §5.3 pool to the paper's fifteen
// structures: the three smallest size ranks × five alphas.
func singleGraphGroups(c *Corpus) map[string][]int {
	groups := map[string][]int{}
	for i, r := range c.Pool.Runs {
		rank := c.SizeRank(r)
		if rank > 2 || r.Alpha == 0 {
			continue
		}
		key := fmt.Sprintf("size#%d/α=%.2f", rank, r.Alpha)
		groups[key] = append(groups[key], i)
	}
	return groups
}

func figSpreadSingleGraph(c *Corpus, opt FigureOptions) (*Report, error) {
	groups := singleGraphGroups(c)
	curves, err := bestSpreadPerGroup(c.Pool.Points, groups, opt.MaxSize)
	if err != nil {
		return nil, err
	}
	upper := c.upperBoundSpread(opt.MaxSize)
	rep := &Report{ID: "Figure 16", Title: "Spread: Single Graph Ensembles",
		Notes: []string{
			"Fifteen graph structures (3 size ranks × 5 alphas), 11 algorithm runs each (§5.3).",
			"Ensemble size is capped by the 11 runs available per graph.",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}

func figCoverageSingleGraph(c *Corpus, opt FigureOptions) (*Report, error) {
	cov, err := c.Coverage(opt.CoverageSamples)
	if err != nil {
		return nil, err
	}
	groups := singleGraphGroups(c)
	curves := bestCoveragePerGroup(cov, c.Pool.Points, groups, opt.MaxSize)
	upper := c.upperBoundCoverage(cov, opt.MaxSize)
	rep := &Report{ID: "Figure 17", Title: "Coverage: Single Graph Ensembles",
		Notes: []string{
			"Fifteen graph structures (3 size ranks × 5 alphas), 11 algorithm runs each (§5.3).",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}

// allPoolIdx returns 0..len(pool)-1.
func allPoolIdx(c *Corpus) []int {
	idx := make([]int, c.Pool.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// summarizeBest reduces per-group curves to the per-size maximum.
func summarizeBest(curves map[string][]float64, maxSize int) []float64 {
	best := make([]float64, maxSize+1)
	for _, curve := range curves {
		for k := 1; k <= maxSize && k < len(curve); k++ {
			if curve[k] > best[k] {
				best[k] = curve[k]
			}
		}
	}
	return best
}

func figSpreadUnrestricted(c *Corpus, opt FigureOptions) (*Report, error) {
	sets := ensemble.BestSpreadGreedy(c.Pool.Points, allPoolIdx(c), opt.MaxSize)
	unrestricted := make([]float64, opt.MaxSize+1)
	for k := 1; k <= opt.MaxSize && k < len(sets); k++ {
		if sets[k] != nil {
			unrestricted[k] = ensemble.SpreadOf(c.Pool.Points, sets[k])
		}
	}
	algCurves, err := bestSpreadPerGroup(c.Pool.Points, c.PoolIdxByAlgorithm(), opt.MaxSize)
	if err != nil {
		return nil, err
	}
	graphCurves, err := bestSpreadPerGroup(c.Pool.Points, singleGraphGroups(c), opt.MaxSize)
	if err != nil {
		return nil, err
	}
	curves := map[string][]float64{
		"Unrestricted":    unrestricted,
		"BestSingleAlg":   summarizeBest(algCurves, opt.MaxSize),
		"BestSingleGraph": summarizeBest(graphCurves, opt.MaxSize),
	}
	upper := c.upperBoundSpread(opt.MaxSize)
	rep := &Report{ID: "Figure 18", Title: "Spread: Unrestricted Ensembles",
		Notes: []string{
			"Unrestricted ensembles draw from all graph-varying runs (greedy + exchange search).",
			"The paper's headline: unrestricted spread stays ~3x above single-algorithm ensembles at size 20.",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}

func figCoverageUnrestricted(c *Corpus, opt FigureOptions) (*Report, error) {
	cov, err := c.Coverage(opt.CoverageSamples)
	if err != nil {
		return nil, err
	}
	all := map[string][]int{"Unrestricted": allPoolIdx(c)}
	unrestricted := bestCoveragePerGroup(cov, c.Pool.Points, all, opt.MaxSize)["Unrestricted"]
	algCurves := bestCoveragePerGroup(cov, c.Pool.Points, c.PoolIdxByAlgorithm(), opt.MaxSize)
	graphCurves := bestCoveragePerGroup(cov, c.Pool.Points, singleGraphGroups(c), opt.MaxSize)
	curves := map[string][]float64{
		"Unrestricted":    unrestricted,
		"BestSingleAlg":   summarizeBest(algCurves, opt.MaxSize),
		"BestSingleGraph": summarizeBest(graphCurves, opt.MaxSize),
	}
	upper := c.upperBoundCoverage(cov, opt.MaxSize)
	rep := &Report{ID: "Figure 19", Title: "Coverage: Unrestricted Ensembles",
		Notes: []string{
			"The paper's headline: ~30% better coverage than single-algorithm ensembles, ≈3.9 at 20 members.",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}

// table3 lists the members of the best spread and coverage ensembles at
// sizes 5, 10, 15, 20.
func table3(c *Corpus, opt FigureOptions) (*Report, error) {
	cov, err := c.Coverage(opt.CoverageSamples)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "Table 3", Title: "Members of Ensembles Achieving Best Spread and Coverage",
		Notes: []string{"Runs are <algorithm, size, alpha> tuples; sizes ≥ 10 list algorithms only, as in the paper."}}
	idx := allPoolIdx(c)
	spreadSets := ensemble.BestSpreadGreedy(c.Pool.Points, idx, opt.MaxSize)
	covSets := ensemble.BestCoverageGreedy(cov, c.Pool.Points, idx, opt.MaxSize)
	t := &Table{Header: []string{"type", "size", "runs"}}
	for _, size := range []int{5, 10, 15, 20} {
		if size <= opt.MaxSize && size < len(spreadSets) && spreadSets[size] != nil {
			t.AddRow("Best spread", fmt.Sprint(size), memberList(c, spreadSets[size], size >= 10))
		}
	}
	for _, size := range []int{5, 10, 15, 20} {
		if size <= opt.MaxSize && size < len(covSets) && covSets[size] != nil {
			t.AddRow("Best coverage", fmt.Sprint(size), memberList(c, covSets[size], size >= 10))
		}
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

func memberList(c *Corpus, members []int, algsOnly bool) string {
	out := ""
	for i, m := range members {
		if i > 0 {
			out += ", "
		}
		r := c.Pool.Runs[m]
		if algsOnly {
			out += r.Algorithm
		} else {
			out += r.ID()
		}
	}
	return out
}

// figFrequency is Figures 20/21: how often each algorithm appears in the
// 100 best ensembles of size TopKSize.
func figFrequency(c *Corpus, opt FigureOptions, metric ensemble.Metric) (*Report, error) {
	tkOpt := ensemble.TopKOptions{Size: opt.TopKSize, K: 100}
	if metric == ensemble.MetricCoverage {
		cov, err := c.Coverage(opt.TopKSamples)
		if err != nil {
			return nil, err
		}
		tkOpt.Cov = cov
		tkOpt.BeamWidth = 500
	}
	tops, err := ensemble.TopEnsembles(metric, c.Pool.Points, allPoolIdx(c), tkOpt)
	if err != nil {
		return nil, err
	}
	freq := ensemble.Frequency(tops, func(i int) string { return c.Pool.Runs[i].Algorithm })
	figID := "Figure 20"
	if metric == ensemble.MetricCoverage {
		figID = "Figure 21"
	}
	rep := &Report{ID: figID,
		Title: fmt.Sprintf("Frequency of Appearance of Each Algorithm in Top100 Sets for %s", titleCase(metric.String())),
		Notes: []string{
			fmt.Sprintf("Top-100 ensembles of size %d by beam search (§5.5's shadowing-minimizing analysis).", opt.TopKSize),
		}}
	t := &Table{Header: []string{"algorithm", "appearances"}}
	for _, alg := range GraphVaryingAlgorithms {
		t.AddRow(alg, fmt.Sprint(freq[alg]))
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// limitedPools builds the §5.6 constrained candidate pools.
func limitedPools(c *Corpus) map[string][]int {
	pools := map[string][]int{}
	// (a) limited algorithms: the three that contribute most to both
	// spread and coverage — KM, ALS, TC.
	for i, r := range c.Pool.Runs {
		switch r.Algorithm {
		case "KM", "ALS", "TC":
			pools["LimitedAlgs(KM,ALS,TC)"] = append(pools["LimitedAlgs(KM,ALS,TC)"], i)
		}
	}
	// (b) limited graphs: three structures — the largest size ranks at
	// α = 2.0, as the paper's best limited-graph ensembles use.
	for i, r := range c.Pool.Runs {
		if r.Alpha == 2.0 && c.SizeRank(r) >= 1 {
			pools["LimitedGraphs(3,α=2.0)"] = append(pools["LimitedGraphs(3,α=2.0)"], i)
		}
	}
	// (c) limited runtime: the constant-behavior algorithms whose runs can
	// be shortened without changing their behavior vector.
	constant := map[string]bool{"AD": true, "KM": true, "NMF": true, "SGD": true, "SVD": true}
	for i, r := range c.Pool.Runs {
		if constant[r.Algorithm] {
			pools["LimitedRuntime(const-behavior)"] = append(pools["LimitedRuntime(const-behavior)"], i)
		}
	}
	return pools
}

// figLimited is Figures 22/23: spread/coverage under limited algorithms,
// graphs and runtime, compared with the unrestricted curve.
func figLimited(c *Corpus, opt FigureOptions, metric ensemble.Metric) (*Report, error) {
	pools := limitedPools(c)
	pools["Unrestricted"] = allPoolIdx(c)
	var curves map[string][]float64
	var upper []float64
	var figID, title string
	if metric == ensemble.MetricSpread {
		var err error
		curves, err = bestSpreadPerGroup(c.Pool.Points, pools, opt.MaxSize)
		if err != nil {
			return nil, err
		}
		upper = c.upperBoundSpread(opt.MaxSize)
		figID, title = "Figure 22", "Spread: Limited Algorithms, Graphs, Runtime"
	} else {
		cov, err := c.Coverage(opt.CoverageSamples)
		if err != nil {
			return nil, err
		}
		curves = bestCoveragePerGroup(cov, c.Pool.Points, pools, opt.MaxSize)
		upper = c.upperBoundCoverage(cov, opt.MaxSize)
		figID, title = "Figure 23", "Coverage: Limited Algorithms, Graphs, Runtime"
	}
	rep := &Report{ID: figID, Title: title,
		Notes: []string{
			"LimitedAlgs: only KM, ALS, TC (the top diversity contributors).",
			"LimitedGraphs: three structures (large sizes, α=2.0) across all algorithms.",
			"LimitedRuntime: only constant-behavior algorithms (AD, KM, NMF, SGD, SVD), whose runs can be truncated.",
		}}
	rep.Tables = append(rep.Tables, curveTable(curves, upper, opt.MaxSize))
	return rep, nil
}
