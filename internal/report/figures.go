package report

import (
	"fmt"
	"sort"

	"gcbench/internal/behavior"
)

// FigureOptions tunes the analysis figures.
type FigureOptions struct {
	// CoverageSamples is the Monte-Carlo sample count for coverage
	// (default 1,000,000 — the paper's NS).
	CoverageSamples int
	// TopKSamples is the (smaller) sample count used inside the top-100
	// beam search, where a full-precision estimate per candidate is
	// unaffordable (default 20,000).
	TopKSamples int
	// MaxSize is the largest ensemble size analyzed (default 20).
	MaxSize int
	// TopKSize is the ensemble size of the §5.5 top-100 frequency
	// analysis (default 5).
	TopKSize int
	// ActiveRows caps the number of iteration rows printed for active
	// fraction figures (default 25; series are downsampled).
	ActiveRows int
}

func (o FigureOptions) withDefaults() FigureOptions {
	if o.CoverageSamples == 0 {
		o.CoverageSamples = 1_000_000
	}
	if o.TopKSamples == 0 {
		o.TopKSamples = 20_000
	}
	if o.MaxSize == 0 {
		o.MaxSize = 20
	}
	if o.TopKSize == 0 {
		o.TopKSize = 5
	}
	if o.ActiveRows == 0 {
		o.ActiveRows = 25
	}
	return o
}

// FigureIDs lists every reproducible table/figure identifier.
func FigureIDs() []string {
	ids := []string{"table1", "table2"}
	for i := 1; i <= 23; i++ {
		ids = append(ids, fmt.Sprintf("%d", i))
		if i == 19 {
			ids = append(ids, "table3")
		}
	}
	// "space" is an extra (behavior-space scatter), not a paper figure.
	ids = append(ids, "space")
	return ids
}

// Figure builds the named figure/table reproduction from the corpus.
func Figure(c *Corpus, id string, opt FigureOptions) (*Report, error) {
	opt = opt.withDefaults()
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(c), nil
	case "1":
		return activeFractionFigure(c, "1", "GA Active Fraction for All Graphs",
			[]string{"CC", "KC", "TC", "SSSP", "PR", "AD"}, opt), nil
	case "2":
		return metricFigure(c, "2", "KC Metric Values", "KC"), nil
	case "3":
		return metricFigure(c, "3", "TC Metric Values", "TC"), nil
	case "4":
		return metricFigure(c, "4", "PR Metric Values", "PR"), nil
	case "5":
		return activeFractionFigure(c, "5", "KM Active Fraction for All Graphs",
			[]string{"KM"}, opt), nil
	case "6":
		return metricFigure(c, "6", "KM Metric Values", "KM"), nil
	case "7":
		return activeFractionFigure(c, "7", "ALS Active Fraction for All Graphs",
			[]string{"ALS"}, opt), nil
	case "8":
		return metricFigure(c, "8", "ALS Metric Values", "ALS"), nil
	case "9":
		return metricFigure(c, "9", "SGD Metric Values", "SGD"), nil
	case "10":
		return metricFigure(c, "10", "SVD Metric Values", "SVD"), nil
	case "11":
		return activeFractionFigure(c, "11", "Active Fraction for LBP",
			[]string{"LBP"}, opt), nil
	case "12":
		return solverMetricFigure(c), nil
	case "13":
		return allAlgorithmsFigure(c), nil
	case "14", "15", "16", "17", "18", "19", "table3", "20", "21", "22", "23":
		return ensembleFigure(c, id, opt)
	case "space":
		return SpaceScatter(c), nil
	default:
		return nil, fmt.Errorf("report: unknown figure %q (known: %v)", id, FigureIDs())
	}
}

// runsOf returns the corpus runs of one algorithm, sorted by (size, α).
func runsOf(c *Corpus, alg string) []*behavior.Run {
	var runs []*behavior.Run
	for _, r := range c.Runs {
		if r.Algorithm == alg {
			runs = append(runs, r)
		}
	}
	sort.Slice(runs, func(i, j int) bool {
		si, sj := parseSizeLabel(runs[i].SizeLabel), parseSizeLabel(runs[j].SizeLabel)
		if si != sj {
			return si < sj
		}
		return runs[i].Alpha < runs[j].Alpha
	})
	return runs
}

// activeFractionFigure prints per-iteration active fractions, one column
// per graph, iterations downsampled to opt.ActiveRows rows.
func activeFractionFigure(c *Corpus, id, title string, algs []string, opt FigureOptions) *Report {
	rep := &Report{ID: "Figure " + id, Title: title,
		Notes: []string{
			"Active fraction = active vertices / all vertices per iteration (§3.4).",
			"Iterations are downsampled to at most " + fmt.Sprint(opt.ActiveRows) + " rows; column = one graph run.",
		}}
	for _, alg := range algs {
		runs := runsOf(c, alg)
		if len(runs) == 0 {
			continue
		}
		maxIter := 0
		for _, r := range runs {
			if len(r.ActiveFraction) > maxIter {
				maxIter = len(r.ActiveFraction)
			}
		}
		rows := opt.ActiveRows
		if maxIter < rows {
			rows = maxIter
		}
		t := &Table{Title: fmt.Sprintf("%s (converges in %d-%d iterations)", alg, minIter(runs), maxIter)}
		t.Header = append(t.Header, "iter")
		for _, r := range runs {
			if r.Alpha != 0 {
				t.Header = append(t.Header, fmt.Sprintf("%s/α%.2f", r.SizeLabel, r.Alpha))
			} else {
				t.Header = append(t.Header, r.SizeLabel)
			}
		}
		for k := 0; k < rows; k++ {
			iter := k
			if rows > 1 {
				iter = k * (maxIter - 1) / (rows - 1)
			}
			cells := []string{fmt.Sprint(iter)}
			for _, r := range runs {
				if iter < len(r.ActiveFraction) {
					cells = append(cells, fmt.Sprintf("%.3f", r.ActiveFraction[iter]))
				} else {
					cells = append(cells, "-") // converged earlier
				}
			}
			t.AddRow(cells...)
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep
}

func minIter(runs []*behavior.Run) int {
	m := runs[0].Iterations
	for _, r := range runs {
		if r.Iterations < m {
			m = r.Iterations
		}
	}
	return m
}

// metricFigure prints one algorithm's four per-edge metrics across its
// graph sweep, max-normalized within the figure as in §3.4.
func metricFigure(c *Corpus, id, title, alg string) *Report {
	runs := runsOf(c, alg)
	rep := &Report{ID: "Figure " + id, Title: title,
		Notes: []string{
			"Per-edge metrics (value / iteration / edge), max-normalized to ≤ 1.0 within this figure (§3.4).",
		}}
	var maxV behavior.Vector
	for _, r := range runs {
		for d := 0; d < behavior.Dims; d++ {
			if r.Raw[d] > maxV[d] {
				maxV[d] = r.Raw[d]
			}
		}
	}
	t := &Table{Header: []string{"size", "alpha", "UPDT", "WORK", "EREAD", "MSG", "iters"}}
	for _, r := range runs {
		cells := []string{r.SizeLabel, fmt.Sprintf("%.2f", r.Alpha)}
		for d := 0; d < behavior.Dims; d++ {
			v := 0.0
			if maxV[d] > 0 {
				v = r.Raw[d] / maxV[d]
			}
			cells = append(cells, fmt.Sprintf("%.4f", v))
		}
		cells = append(cells, fmt.Sprint(r.Iterations))
		t.AddRow(cells...)
	}
	rep.Tables = append(rep.Tables, t)
	return rep
}

// solverMetricFigure is Figure 12: Jacobi, LBP and DD metrics vs size.
func solverMetricFigure(c *Corpus) *Report {
	rep := &Report{ID: "Figure 12", Title: "Metric Values for Jacobi, LBP, and DD",
		Notes: []string{
			"Per-edge metrics max-normalized to ≤ 1.0 within this figure (§3.4).",
		}}
	var runs []*behavior.Run
	for _, alg := range []string{"Jacobi", "LBP", "DD"} {
		runs = append(runs, runsOf(c, alg)...)
	}
	var maxV behavior.Vector
	for _, r := range runs {
		for d := 0; d < behavior.Dims; d++ {
			if r.Raw[d] > maxV[d] {
				maxV[d] = r.Raw[d]
			}
		}
	}
	t := &Table{Header: []string{"algorithm", "size", "UPDT", "WORK", "EREAD", "MSG", "iters"}}
	for _, r := range runs {
		cells := []string{r.Algorithm, r.SizeLabel}
		for d := 0; d < behavior.Dims; d++ {
			v := 0.0
			if maxV[d] > 0 {
				v = r.Raw[d] / maxV[d]
			}
			cells = append(cells, fmt.Sprintf("%.4f", v))
		}
		cells = append(cells, fmt.Sprint(r.Iterations))
		t.AddRow(cells...)
	}
	rep.Tables = append(rep.Tables, t)
	return rep
}

// allAlgorithmsFigure is Figure 13: every algorithm's mean metric values
// on one normalized scale, plus the §1 "1000-fold variation" check.
func allAlgorithmsFigure(c *Corpus) *Report {
	rep := &Report{ID: "Figure 13", Title: "Metric Values for All Algorithms",
		Notes: []string{
			"Mean per-edge metrics per algorithm, max-normalized across all algorithms.",
		}}
	byAlg := map[string][]*behavior.Run{}
	var order []string
	for _, r := range c.Runs {
		if _, ok := byAlg[r.Algorithm]; !ok {
			order = append(order, r.Algorithm)
		}
		byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r)
	}
	means := map[string]behavior.Vector{}
	var maxV behavior.Vector
	for alg, runs := range byAlg {
		var m behavior.Vector
		for _, r := range runs {
			for d := 0; d < behavior.Dims; d++ {
				m[d] += r.Raw[d]
			}
		}
		for d := 0; d < behavior.Dims; d++ {
			m[d] /= float64(len(runs))
			if m[d] > maxV[d] {
				maxV[d] = m[d]
			}
		}
		means[alg] = m
	}
	t := &Table{Header: []string{"algorithm", "UPDT", "WORK", "EREAD", "MSG"}}
	for _, alg := range order {
		m := means[alg]
		cells := []string{alg}
		for d := 0; d < behavior.Dims; d++ {
			v := 0.0
			if maxV[d] > 0 {
				v = m[d] / maxV[d]
			}
			cells = append(cells, fmt.Sprintf("%.4f", v))
		}
		t.AddRow(cells...)
	}
	rep.Tables = append(rep.Tables, t)

	rr := behavior.RangeRatio(c.Runs)
	v := &Table{Title: "Behavior variation across the corpus (contribution 1: ~1000-fold)",
		Header: []string{"dimension", "max/min ratio"}}
	for d := 0; d < behavior.Dims; d++ {
		v.AddRow(behavior.DimNames[d], F(rr[d]))
	}
	rep.Tables = append(rep.Tables, v)
	return rep
}

// Table1 reprints the paper's survey of prior comparative studies — it is
// background, not an experiment, and is included for completeness.
func Table1() *Report {
	rep := &Report{ID: "Table 1", Title: "Comparative Graph Processing System Evaluations (survey reprint)",
		Notes: []string{"Static background from the paper; nothing to measure."}}
	t := &Table{Header: []string{"study", "systems", "algorithms", "graphs"}}
	t.AddRow("M. Han [10]", "Giraph, GPS, Mizan, GraphLab",
		"PageRank, SSSP, WCC, DMST",
		"soc-LiveJournal, com-Orkut, Arabic-2005, Twitter-2010, UK-2007-05")
	t.AddRow("B. Elser [6]", "Map-Reduce, Stratosphere, Hama, Giraph, GraphLab",
		"K-core decomposition",
		"ca.AstroPh, ca.CondMat, Amazon0601, web-BerkStan, com.Youtube, wiki-Talk, com.Orkut")
	t.AddRow("Y. Guo [9]", "Hadoop, YARN, Stratosphere, Giraph, GraphLab, Neo4j",
		"Statistics, BFS, CC, CD, GE",
		"Amazon, WikiTalk, KGS, Citation, DotaLeague, Synth, Friendster")
	rep.Tables = append(rep.Tables, t)
	return rep
}

// Table2 prints the realized campaign matrix: the graph feature variables
// per domain, as measured from the corpus.
func Table2(c *Corpus) *Report {
	rep := &Report{ID: "Table 2", Title: "Graph Feature Variables",
		Notes: []string{
			"Scales are the laptop-scale mapping of the paper's Table 2 (see DESIGN.md §3).",
		}}
	sizes := map[string]map[string]bool{}
	alphas := map[string]map[string]bool{}
	algsOf := map[string]map[string]bool{}
	var domains []string
	for _, r := range c.Runs {
		if _, ok := sizes[r.Domain]; !ok {
			domains = append(domains, r.Domain)
			sizes[r.Domain] = map[string]bool{}
			alphas[r.Domain] = map[string]bool{}
			algsOf[r.Domain] = map[string]bool{}
		}
		sizes[r.Domain][r.SizeLabel] = true
		if r.Alpha != 0 {
			alphas[r.Domain][fmt.Sprintf("%.2f", r.Alpha)] = true
		}
		algsOf[r.Domain][r.Algorithm] = true
	}
	t := &Table{Header: []string{"domain", "algorithms", "sizes", "alpha"}}
	for _, d := range domains {
		t.AddRow(d, joinSortedBySize(algsOf[d], false), joinSortedBySize(sizes[d], true),
			joinSortedBySize(alphas[d], false))
	}
	rep.Tables = append(rep.Tables, t)
	return rep
}

func joinSortedBySize(set map[string]bool, numeric bool) string {
	var xs []string
	for k := range set {
		xs = append(xs, k)
	}
	if numeric {
		sort.Slice(xs, func(i, j int) bool { return parseSizeLabel(xs[i]) < parseSizeLabel(xs[j]) })
	} else {
		sort.Strings(xs)
	}
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
