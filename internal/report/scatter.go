package report

import (
	"fmt"
	"sort"
	"strings"

	"gcbench/internal/behavior"
)

// SpaceScatter renders ASCII scatter plots of the normalized behavior
// space — the six 2-D projections of the 4-D <UPDT, WORK, EREAD, MSG>
// cube, with one glyph per algorithm. Not a paper figure; a reading aid
// for the corpus (`gcbench figures -fig space`).
func SpaceScatter(c *Corpus) *Report {
	rep := &Report{ID: "Extra", Title: "Behavior Space Projections",
		Notes: []string{
			"Six 2-D projections of the normalized 4-D behavior space; one glyph per algorithm.",
			"An ensemble with good spread/coverage picks points far apart in every panel.",
		}}

	glyphOf := assignGlyphs(c)
	var legend []string
	var names []string
	for name := range glyphOf {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphOf[name], name))
	}
	rep.Notes = append(rep.Notes, "legend: "+strings.Join(legend, " "))

	for xi := 0; xi < behavior.Dims; xi++ {
		for yi := xi + 1; yi < behavior.Dims; yi++ {
			rep.Tables = append(rep.Tables, scatterPanel(c, xi, yi, glyphOf))
		}
	}
	return rep
}

// assignGlyphs gives each algorithm a distinct printable glyph, preferring
// a mnemonic letter from its name.
func assignGlyphs(c *Corpus) map[string]byte {
	preferred := map[string]byte{
		"CC": 'C', "KC": 'K', "TC": 'T', "SSSP": 'S', "PR": 'P', "AD": 'A',
		"KM": 'M', "ALS": 'L', "NMF": 'N', "SGD": 'G', "SVD": 'V',
		"Jacobi": 'J', "LBP": 'B', "DD": 'D',
	}
	fallback := []byte("0123456789*#@+%&")
	used := map[byte]bool{}
	out := map[string]byte{}
	var order []string
	seen := map[string]bool{}
	for _, r := range c.Runs {
		if !seen[r.Algorithm] {
			seen[r.Algorithm] = true
			order = append(order, r.Algorithm)
		}
	}
	sort.Strings(order)
	fi := 0
	for _, name := range order {
		g, ok := preferred[name]
		if !ok || used[g] {
			g = fallback[fi%len(fallback)]
			fi++
		}
		used[g] = true
		out[name] = g
	}
	return out
}

const (
	scatterW = 56
	scatterH = 18
)

// scatterPanel plots one projection over the pool space.
func scatterPanel(c *Corpus, xi, yi int, glyphOf map[string]byte) *Table {
	grid := make([][]byte, scatterH)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", scatterW))
	}
	space := c.Space
	for i, r := range space.Runs {
		pt := space.Point(i)
		x := int(pt[xi] * float64(scatterW-1))
		y := int(pt[yi] * float64(scatterH-1))
		row := scatterH - 1 - y
		cell := grid[row][x]
		g := glyphOf[r.Algorithm]
		switch {
		case cell == ' ':
			grid[row][x] = g
		case cell != g:
			grid[row][x] = '*' // collision of different algorithms
		}
	}
	t := &Table{
		Title: fmt.Sprintf("%s (x) vs %s (y), normalized [0,1]",
			behavior.DimNames[xi], behavior.DimNames[yi]),
		Header: []string{"plot"},
	}
	for _, row := range grid {
		t.AddRow("|" + string(row) + "|")
	}
	t.AddRow("+" + strings.Repeat("-", scatterW) + "+")
	return t
}
