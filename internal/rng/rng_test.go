package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: streams diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical 64-bit draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must differ from a fresh continuation of the parent.
	diverged := false
	for i := 0; i < 50; i++ {
		if parent.Uint64() != child.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(200)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d vs %d", got, sum)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(21)
	const draws = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	for i, w := range weights {
		got := counts[i] / draws
		want := w / 10.0
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, ws := range cases {
		if _, err := NewAlias(ws); err == nil {
			t.Fatalf("NewAlias(%v) succeeded, want error", ws)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("single-outcome alias returned nonzero index")
		}
	}
}

func TestZipfDistributionShape(t *testing.T) {
	const n, alpha, draws = 50, 2.0, 500000
	z, err := NewZipf(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	r := New(33)
	counts := make([]float64, n+1)
	for i := 0; i < draws; i++ {
		k := z.Draw(r)
		if k < 1 || k > n {
			t.Fatalf("Zipf draw %d out of [1,%d]", k, n)
		}
		counts[k]++
	}
	// P(1)/P(2) should be 2^alpha = 4.
	ratio := counts[1] / counts[2]
	if math.Abs(ratio-4) > 0.3 {
		t.Fatalf("P(1)/P(2) = %v, want ~4 for alpha=2", ratio)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 2.0); err == nil {
		t.Fatal("NewZipf(0, _) succeeded")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("NewZipf(_, -1) succeeded")
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(4, 2.0)
	want := []float64{1, 0.25, 1.0 / 9.0, 1.0 / 16.0}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("weight[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkAliasDraw(b *testing.B) {
	a, _ := NewAlias(PowerLawWeights(1<<16, 2.2))
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Draw(r)
	}
	_ = sink
}
