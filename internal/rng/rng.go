// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible experiment sweeps.
//
// Every graph generator and Monte-Carlo estimator in gcbench draws from an
// explicit *rng.Source seeded by the caller; nothing uses the global
// math/rand state, so a sweep re-run with the same plan produces
// byte-identical graphs and behavior corpora.
//
// The core generator is xoshiro256** seeded through SplitMix64, the standard
// pairing recommended by the xoshiro authors: SplitMix64 decorrelates
// arbitrary user seeds (including 0 and small integers), and xoshiro256**
// passes BigCrush while costing a handful of ALU ops per draw.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64

	// Cached second normal variate from the polar method.
	spare     float64
	haveSpare bool
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically derived from seed. Distinct seeds
// yield decorrelated streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	return &r
}

// Split derives an independent child stream from the parent without
// perturbing the parent's own sequence beyond one draw. Use it to hand each
// parallel worker or each generated graph its own stream.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection keeps the distribution
// exactly uniform.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire 2019: multiply-shift with rejection of the biased low range.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// NormFloat64 returns a standard normal variate via the polar (Marsaglia)
// method. A cached second variate makes the amortized cost one pair of
// uniforms per two normals.
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
