package rng

import (
	"fmt"
	"math"
)

// Alias samples from an arbitrary discrete distribution in O(1) per draw
// using Vose's alias method. Construction is O(n).
type Alias struct {
	prob  []float64 // probability of returning i directly from column i
	alias []int32   // fallback outcome for column i
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. It returns an error if the weights are
// empty, contain negatives/NaN, or sum to zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("rng: weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scale so the average column holds exactly 1.0 of probability mass.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical residue: remaining columns carry full mass.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Draw returns an outcome in [0, N()) with probability proportional to its
// construction weight.
func (a *Alias) Draw(r *Source) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// PowerLawWeights returns weights w_k proportional to k^(-alpha) for
// k = 1..n, i.e. the discrete power-law degree distribution of Eq. (1) in
// the paper. Index i holds the weight of degree i+1.
func PowerLawWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	for k := 1; k <= n; k++ {
		w[k-1] = math.Pow(float64(k), -alpha)
	}
	return w
}

// Zipf draws integers in [1, n] with P(k) proportional to k^(-alpha),
// backed by an alias table (O(1) per draw after O(n) setup).
type Zipf struct {
	alias *Alias
}

// NewZipf constructs a power-law sampler over [1, n]. It panics only on
// programmer error (n <= 0 handled by error return).
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: Zipf needs n > 0, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("rng: Zipf needs alpha >= 0, got %v", alpha)
	}
	a, err := NewAlias(PowerLawWeights(n, alpha))
	if err != nil {
		return nil, err
	}
	return &Zipf{alias: a}, nil
}

// Draw returns a degree value in [1, n].
func (z *Zipf) Draw(r *Source) int { return z.alias.Draw(r) + 1 }
