package pregel

import (
	"math"

	"gcbench/internal/graph"
)

// Pregel formulations of three study algorithms, used to check result
// equivalence with the GAS implementations.

// CCProgram is Pregel min-label propagation (the classic "maximum value"
// example of the Pregel paper, inverted to minimum).
type CCProgram struct{}

// Init labels every vertex with its own ID.
func (CCProgram) Init(_ *graph.Graph, v uint32) uint32 { return v }

// Compute adopts the smallest incoming label and propagates improvements.
func (CCProgram) Compute(ctx *Context[uint32], step int, v uint32, s uint32, msgs []uint32) uint32 {
	improved := step == 0 // initially everyone announces
	for _, m := range msgs {
		if m < s {
			s = m
			improved = true
		}
	}
	if improved {
		ctx.SendToNeighbors(v, s)
	}
	ctx.VoteToHalt()
	return s
}

// Combine keeps the smaller label.
func (CCProgram) Combine(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// SSSPProgram is Pregel distance relaxation.
type SSSPProgram struct {
	Source uint32
}

// Init sets the source to zero and everything else to infinity.
func (p SSSPProgram) Init(_ *graph.Graph, v uint32) float64 {
	if v == p.Source {
		return 0
	}
	return math.Inf(1)
}

// Compute relaxes on incoming proposals; weights ride on edges, so the
// send must happen per-edge.
func (p SSSPProgram) Compute(ctx *Context[float64], step int, v uint32, s float64, msgs []float64) float64 {
	improved := step == 0 && v == p.Source
	for _, m := range msgs {
		if m < s {
			s = m
			improved = true
		}
	}
	if improved {
		g := ctx.g
		lo, hi := g.OutArcRange(v)
		for a := lo; a < hi; a++ {
			ctx.SendTo(g.ArcTarget(a), s+g.ArcWeight(a))
			ctx.out.edgeReads++
		}
	}
	ctx.VoteToHalt()
	return s
}

// Combine keeps the shorter proposal.
func (p SSSPProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

// PRProgram is the Pregel paper's PageRank: run a fixed number of
// supersteps, each vertex dividing its rank among its neighbors.
type PRProgram struct {
	G          *graph.Graph
	Damping    float64
	Supersteps int
}

// Init gives every vertex unit rank.
func (p PRProgram) Init(_ *graph.Graph, _ uint32) float64 { return 1 }

// Compute sums incoming shares, applies damping, and re-shares.
func (p PRProgram) Compute(ctx *Context[float64], step int, v uint32, s float64, msgs []float64) float64 {
	if step > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		s = (1 - p.Damping) + p.Damping*sum
	}
	if step < p.Supersteps-1 {
		if d := ctx.Degree(v); d > 0 {
			ctx.SendToNeighbors(v, s/float64(d))
		}
	} else {
		ctx.VoteToHalt()
	}
	return s
}

// Combine sums rank shares.
func (p PRProgram) Combine(a, b float64) float64 { return a + b }
