// Package pregel implements the Pregel computation model (Malewicz et
// al., SIGMOD'10 — the paper's reference [19] and the origin of the
// vertex-centric family): bulk-synchronous supersteps in which vertices
// consume messages sent to them in the previous superstep, update state,
// send messages along edges, and vote to halt. A vertex is reactivated by
// incoming messages.
//
// Unlike GAS (gather reads neighbor state in place) the only inter-vertex
// communication is explicit messages, so the model maps onto the paper's
// behavior vocabulary as: UPDT = Compute invocations, MSG = messages
// sent, EREAD = edge traversals made while addressing messages, WORK =
// Compute time. The package tests validate result equivalence with the
// GAS implementations, extending the §3.3 model-conservation check to
// the third member of the vertex-centric family.
package pregel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gcbench/internal/graph"
	"gcbench/internal/trace"
)

// Context lets a vertex send messages during Compute.
type Context[M any] struct {
	g      *graph.Graph
	out    *outbox[M]
	halted bool
}

// SendTo queues a message for vertex dst, delivered next superstep.
func (c *Context[M]) SendTo(dst uint32, m M) {
	c.out.add(dst, m)
	c.out.messages++
}

// SendToNeighbors queues a message along every out-edge of v.
func (c *Context[M]) SendToNeighbors(v uint32, m M) {
	lo, hi := c.g.OutArcRange(v)
	for a := lo; a < hi; a++ {
		c.out.add(c.g.ArcTarget(a), m)
		c.out.messages++
		c.out.edgeReads++
	}
}

// Degree returns v's out-degree (Pregel vertices know their edges).
func (c *Context[M]) Degree(v uint32) int { return c.g.OutDegree(v) }

// VoteToHalt deactivates the vertex until a message arrives.
func (c *Context[M]) VoteToHalt() { c.halted = true }

// Program is a Pregel vertex program over state S and message M.
type Program[S, M any] interface {
	// Init returns vertex v's initial state; all vertices start active.
	Init(g *graph.Graph, v uint32) S
	// Compute processes the superstep: consume msgs, optionally send
	// messages and vote to halt, and return the new state.
	Compute(ctx *Context[M], superstep int, v uint32, s S, msgs []M) S
	// Combine merges two messages addressed to the same vertex (Pregel's
	// combiner). Message order is unspecified, so Combine must be
	// commutative and associative.
	Combine(a, b M) M
}

// outbox accumulates one worker's sends with per-destination combining.
type outbox[M any] struct {
	combine   func(a, b M) M
	msg       []M
	has       []bool
	messages  int64
	edgeReads int64
}

func (o *outbox[M]) add(dst uint32, m M) {
	if o.has[dst] {
		o.msg[dst] = o.combine(o.msg[dst], m)
	} else {
		o.msg[dst] = m
		o.has[dst] = true
	}
}

// Options configures a run.
type Options struct {
	// MaxSupersteps caps the run (0 means 100000).
	MaxSupersteps int
	// Workers is the compute parallelism (0 means GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels the run cooperatively at the next
	// superstep barrier; Run returns an error wrapping ctx.Err().
	Context context.Context
}

// Result carries the trace and final states.
type Result[S any] struct {
	Trace  *trace.RunTrace
	States []S
}

// Run executes the program until every vertex has halted with no messages
// in flight.
func Run[S, M any](g *graph.Graph, p Program[S, M], opt Options) (*Result[S], error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("pregel: nil or empty graph")
	}
	maxSteps := opt.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if workers > n {
		workers = n
	}

	state := make([]S, n)
	for v := uint32(0); int(v) < n; v++ {
		state[v] = p.Init(g, v)
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	var activeCount int64 = int64(n)

	// Combined inbox: one message slot per vertex (combiner semantics).
	inMsg := make([]M, n)
	inHas := make([]bool, n)

	outboxes := make([]*outbox[M], workers)
	for w := range outboxes {
		outboxes[w] = &outbox[M]{
			combine: p.Combine,
			msg:     make([]M, n),
			has:     make([]bool, n),
		}
	}

	tr := &trace.RunTrace{NumVertices: n, NumEdges: g.NumEdges()}
	for step := 0; step < maxSteps; step++ {
		if activeCount == 0 {
			tr.Converged = true
			break
		}
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("pregel: run stopped at superstep %d: %w", step, err)
			}
		}
		start := time.Now()

		// Compute phase: contiguous vertex ranges per worker, each with
		// its own outbox (merged afterward).
		var updates int64
		applyStart := time.Now()
		var wg sync.WaitGroup
		updatesPer := make([]int64, workers)
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				ctx := &Context[M]{g: g, out: outboxes[w]}
				var msgBuf [1]M
				for v := lo; v < hi; v++ {
					if !active[v] {
						continue
					}
					var msgs []M
					if inHas[v] {
						msgBuf[0] = inMsg[v]
						msgs = msgBuf[:1]
					}
					ctx.halted = false
					state[v] = p.Compute(ctx, step, uint32(v), state[v], msgs)
					updatesPer[w]++
					if ctx.halted {
						active[v] = false
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		applyTime := time.Since(applyStart)

		// Delivery: merge worker outboxes into the next inbox.
		for i := range inHas {
			inHas[i] = false
		}
		var messages, edgeReads int64
		for _, ob := range outboxes {
			messages += ob.messages
			edgeReads += ob.edgeReads
			ob.messages, ob.edgeReads = 0, 0
			for v := 0; v < n; v++ {
				if !ob.has[v] {
					continue
				}
				ob.has[v] = false
				if inHas[v] {
					inMsg[v] = p.Combine(inMsg[v], ob.msg[v])
				} else {
					inMsg[v] = ob.msg[v]
					inHas[v] = true
				}
			}
		}
		for w := range updatesPer {
			updates += updatesPer[w]
			updatesPer[w] = 0
		}

		// Reactivation: messages wake halted vertices.
		prevActive := activeCount
		activeCount = 0
		for v := 0; v < n; v++ {
			if inHas[v] {
				active[v] = true
			}
			if active[v] {
				activeCount++
			}
		}

		tr.Iterations = append(tr.Iterations, trace.IterationStats{
			Iteration: step,
			Active:    prevActive,
			Updates:   updates,
			EdgeReads: edgeReads,
			Messages:  messages,
			ApplyTime: applyTime,
			WallTime:  time.Since(start),
		})
	}
	return &Result[S]{Trace: tr, States: state}, nil
}
