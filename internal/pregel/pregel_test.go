package pregel

import (
	"math"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

func testGraph(t *testing.T, edges int64, alpha float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: edges, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCCMatchesGAS(t *testing.T) {
	g := testGraph(t, 2500, 2.4, 3)
	res, err := Run[uint32, uint32](g, CCProgram{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, gasLabels, err := algorithms.ConnectedComponents(g, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasLabels {
		if res.States[v] != gasLabels[v] {
			t.Fatalf("vertex %d: pregel %d, GAS %d", v, res.States[v], gasLabels[v])
		}
	}
	if !res.Trace.Converged {
		t.Fatal("did not converge")
	}
}

func TestSSSPMatchesGAS(t *testing.T) {
	g := testGraph(t, 2500, 2.2, 5)
	res, err := Run[float64, float64](g, SSSPProgram{Source: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, gasDist, err := algorithms.SingleSourceShortestPath(g, 0, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasDist {
		if res.States[v] != gasDist[v] {
			t.Fatalf("vertex %d: pregel %v, GAS %v", v, res.States[v], gasDist[v])
		}
	}
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := testGraph(t, 2000, 2.5, 7)
	const steps = 60
	res, err := Run[float64, float64](g, PRProgram{G: g, Damping: 0.85, Supersteps: steps},
		Options{MaxSupersteps: steps + 2})
	if err != nil {
		t.Fatal(err)
	}
	// GAS PageRank with a tight tolerance converges to the same fixed
	// point the Pregel fixed-superstep run approaches.
	_, gasRanks, err := algorithms.PageRank(g, algorithms.PageRankOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasRanks {
		if math.Abs(res.States[v]-gasRanks[v]) > 1e-4*(1+gasRanks[v]) {
			t.Fatalf("vertex %d: pregel %v, GAS %v", v, res.States[v], gasRanks[v])
		}
	}
}

func TestVoteToHaltAndReactivation(t *testing.T) {
	// On a path, SSSP's frontier sweeps once: each superstep exactly one
	// new vertex improves (plus the initial source announcement).
	n := 12
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, SSSPProgram{Source: 0}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if res.States[v] != float64(v) {
			t.Fatalf("dist[%d] = %v", v, res.States[v])
		}
	}
	its := res.Trace.Iterations
	// Superstep 0: all vertices compute (Pregel starts everyone active),
	// then all vote to halt except those the source's message reactivates.
	if its[0].Active != int64(n) {
		t.Fatalf("superstep 0 active = %d, want %d", its[0].Active, n)
	}
	// After the initial all-active superstep, only the frontier vertex and
	// (from superstep 2 on) its reactivated-but-unimproved predecessor
	// compute — undirected edges message both ways.
	for s := 1; s < len(its)-1; s++ {
		if its[s].Active < 1 || its[s].Active > 2 {
			t.Fatalf("superstep %d active = %d, want 1 or 2 (path frontier + rear)", s, its[s].Active)
		}
	}
}

func TestCombinerReducesDelivery(t *testing.T) {
	// A star: all leaves message the hub in superstep 0 of CC. The
	// combiner must deliver exactly one combined message (the minimum),
	// and the hub must adopt label 0.
	n := 9
	b := graph.NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(0, uint32(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[uint32, uint32](g, CCProgram{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if res.States[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, res.States[v])
		}
	}
	// Messages counted pre-combining: superstep 0 sends one per arc.
	if res.Trace.Iterations[0].Messages != g.NumArcs() {
		t.Fatalf("superstep 0 messages = %d, want %d", res.Trace.Iterations[0].Messages, g.NumArcs())
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t, 3000, 2.3, 9)
	var base []uint32
	for _, workers := range []int{1, 2, 8} {
		res, err := Run[uint32, uint32](g, CCProgram{}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.States
			continue
		}
		for v := range base {
			if res.States[v] != base[v] {
				t.Fatalf("workers=%d: vertex %d differs", workers, v)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run[uint32, uint32](nil, CCProgram{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}
