package loadtest

import (
	"context"
	"math/rand/v2"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// countingHandler answers instantly and routes by path prefix so tests
// can script status codes.
func countingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "broken", http.StatusInternalServerError)
	})
	return mux
}

func TestRunValidatesConfig(t *testing.T) {
	mix := []Op{{Name: "ok", Weight: 1, Paths: []string{"/ok"}}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no target", Config{Mix: mix}},
		{"two targets", Config{Handler: countingHandler(), BaseURL: "http://x", Mix: mix}},
		{"empty mix", Config{Handler: countingHandler()}},
		{"zero weight", Config{Handler: countingHandler(), Mix: []Op{{Name: "ok", Paths: []string{"/ok"}}}}},
		{"no paths", Config{Handler: countingHandler(), Mix: []Op{{Name: "ok", Weight: 1}}}},
		{"no name", Config{Handler: countingHandler(), Mix: []Op{{Weight: 1, Paths: []string{"/ok"}}}}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}

// TestRunDeterministicSchedule pins the driver's reproducibility
// contract in its strongest form: one worker and a request budget yield
// an identical report (down to every sampled latency count and status
// tally) across runs with the same seed.
func TestRunDeterministicSchedule(t *testing.T) {
	cfg := Config{
		Handler:     countingHandler(),
		Concurrency: 1,
		Requests:    500,
		Seed:        7,
		Mix: []Op{
			{Name: "ok", Weight: 3, Paths: []string{"/ok", "/ok?v=2"}},
			{Name: "missing", Weight: 1, Paths: []string{"/missing"}},
		},
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != 500 || b.Requests != 500 {
		t.Fatalf("request budgets not honored: %d, %d", a.Requests, b.Requests)
	}
	for name, rs := range a.Routes {
		other := b.Routes[name]
		if other == nil || rs.Count != other.Count || !reflect.DeepEqual(rs.Status, other.Status) {
			t.Errorf("route %s schedules diverge across same-seed runs: %+v vs %+v", name, rs, other)
		}
	}
	// The 3:1 weighting shows up in the realized counts (binomial noise
	// on 500 draws stays well inside ±15 points of the 375 expectation).
	if ok := a.Routes["ok"].Count; ok < 330 || ok > 420 {
		t.Errorf("weight-3 route got %d of 500 requests, want ≈375", ok)
	}
}

func TestReportStatusAccounting(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Handler:     countingHandler(),
		Concurrency: 4,
		Requests:    400,
		Mix: []Op{
			{Name: "ok", Weight: 2, Paths: []string{"/ok"}},
			{Name: "missing", Weight: 1, Paths: []string{"/missing"}},
			{Name: "boom", Weight: 1, Paths: []string{"/boom"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 400 {
		t.Fatalf("requests = %d, want 400", rep.Requests)
	}
	if rep.Routes["ok"].Status["2xx"] != rep.Routes["ok"].Count {
		t.Errorf("ok route: %+v", rep.Routes["ok"].Status)
	}
	if rep.Routes["missing"].Status["4xx"] != rep.Routes["missing"].Count {
		t.Errorf("missing route: %+v", rep.Routes["missing"].Status)
	}
	boom := rep.Routes["boom"]
	if boom.Status["5xx"] != boom.Count || rep.Count5xx != boom.Count {
		t.Errorf("5xx accounting: route %+v, report total %d", boom.Status, rep.Count5xx)
	}
	if rep.Non2xx != rep.Routes["missing"].Count+boom.Count {
		t.Errorf("non2xx = %d, want %d", rep.Non2xx, rep.Routes["missing"].Count+boom.Count)
	}
	if boom.P99Ms < boom.P50Ms || boom.MaxMs < boom.P99Ms {
		t.Errorf("percentile ordering violated: p50=%g p99=%g max=%g", boom.P50Ms, boom.P99Ms, boom.MaxMs)
	}

	// Gate semantics over the same report.
	if err := rep.Check([]Gate{{Route: "ok", MaxP99Ms: 60_000, MinCount: 1}}, false); err != nil {
		t.Errorf("passing gate failed: %v", err)
	}
	if err := rep.Check(nil, true); err == nil {
		t.Error("forbid5xx did not fail a report with 5xx responses")
	}
	if err := rep.Check([]Gate{{Route: "ok", MaxP99Ms: 1e-9}}, false); err == nil {
		t.Error("p99 ceiling of ~0 did not fail")
	}
	if err := rep.Check([]Gate{{Route: "ghost", MaxP99Ms: 1000}}, false); err == nil {
		t.Error("gate on an unmeasured route did not fail")
	}
	if err := rep.Check([]Gate{{Route: "ok", MinCount: rep.Requests + 1}}, false); err == nil {
		t.Error("unreachable MinCount did not fail")
	}
}

// TestRunDurationBound asserts a duration-bound run terminates without a
// request budget.
func TestRunDurationBound(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Handler:     countingHandler(),
		Concurrency: 2,
		Duration:    50 * time.Millisecond,
		Mix:         []Op{{Name: "ok", Weight: 1, Paths: []string{"/ok"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("duration-bound run issued no requests")
	}
	if rep.DurationSeconds <= 0 {
		t.Fatalf("elapsed %g", rep.DurationSeconds)
	}
}

// TestReservoirBoundsAndPercentiles exercises the sampling machinery
// directly: the reservoir never exceeds its cap, max is exact, and the
// quantile read matches the analytic value for a known distribution.
func TestReservoirBoundsAndPercentiles(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	st := &opState{status: map[string]int64{}}
	const cap, n = 100, 10_000
	for i := 1; i <= n; i++ {
		st.observe(float64(i), rng, cap)
	}
	if len(st.samples) != cap || st.seen != n {
		t.Fatalf("reservoir len=%d seen=%d", len(st.samples), st.seen)
	}
	if st.maxMs != n {
		t.Fatalf("max = %g, want %d (max must be exact, not sampled)", st.maxMs, n)
	}

	// Percentile over an exact ascending slice.
	sorted := make([]float64, 1000)
	for i := range sorted {
		sorted[i] = float64(i + 1)
	}
	if p := percentile(sorted, 0.50); p != 501 {
		t.Errorf("p50 = %g", p)
	}
	if p := percentile(sorted, 0.99); p != 991 {
		t.Errorf("p99 = %g", p)
	}
	if p := percentile(nil, 0.99); p != 0 {
		t.Errorf("empty percentile = %g", p)
	}
}

func TestServeMixShape(t *testing.T) {
	mix := ServeMix([]string{"PR_1e5_a2.5"})
	names := map[string]bool{}
	for _, op := range mix {
		names[op.Name] = true
		if op.Weight < 1 || len(op.Paths) == 0 {
			t.Errorf("op %s: weight=%d paths=%d", op.Name, op.Weight, len(op.Paths))
		}
		if op.Name == "behavior" && !strings.Contains(op.Paths[0], "PR_1e5_a2.5") {
			t.Errorf("behavior paths ignore the given keys: %v", op.Paths)
		}
	}
	for _, want := range []string{"predict", "runs", "behavior", "design", "best"} {
		if !names[want] {
			t.Errorf("ServeMix missing %s op", want)
		}
	}
}

// TestServeMixModels: discovered model dimensions widen the runs op with
// per-model filter paths; without models the mix is ServeMix exactly.
func TestServeMixModels(t *testing.T) {
	base := ServeMix([]string{"PR_1e5_a2.5"})
	plain := ServeMixModels([]string{"PR_1e5_a2.5"}, nil)
	if len(plain) != len(base) {
		t.Fatalf("nil models changed the mix: %d ops vs %d", len(plain), len(base))
	}
	mix := ServeMixModels([]string{"PR_1e5_a2.5"}, []string{"gas", "pregel"})
	found := map[string]bool{}
	for _, op := range mix {
		if op.Name != "runs" {
			continue
		}
		for _, p := range op.Paths {
			if strings.HasPrefix(p, "/api/runs?model=") {
				found[strings.TrimPrefix(p, "/api/runs?model=")] = true
			}
		}
	}
	for _, m := range []string{"gas", "pregel"} {
		if !found[m] {
			t.Errorf("runs op lacks a model=%s path (got %v)", m, found)
		}
	}
}
