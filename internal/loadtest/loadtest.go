// Package loadtest is a self-contained, k6-style load driver for the
// gcbench serve API: N concurrent workers replay a weighted mix of
// operations against a target — either a live base URL over TCP or an
// in-process http.Handler — and the run distills into a JSON report of
// per-route latency percentiles, status-class counts and throughput,
// with pass/fail gates (p99 ceilings, zero-5xx) for CI smoke jobs.
//
// The driver is deterministic for a given (seed, concurrency, mix):
// each worker draws its operation schedule from its own PCG stream, so
// two runs against the same build exercise the same request sequence.
// Latency percentiles are estimated from per-route reservoir samples
// (exact until a route exceeds the reservoir size, statistically sound
// beyond it), so unbounded-duration runs hold bounded memory.
package loadtest

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"
)

// Op is one weighted operation of the traffic mix.
type Op struct {
	// Name buckets the op's measurements in the report (e.g. "predict").
	Name string `json:"name"`
	// Weight is the op's relative frequency in the mix (≥ 1).
	Weight int `json:"weight"`
	// Method is the HTTP method (default GET).
	Method string `json:"method,omitempty"`
	// Paths are the op's request paths; each issue picks one uniformly,
	// so a route with parameter variety (several predict queries, many
	// behavior keys) exercises more than one cache line.
	Paths []string `json:"paths"`
	// Body is the JSON body sent with non-GET methods.
	Body string `json:"body,omitempty"`
}

// Config parameterizes a load run.
type Config struct {
	// Handler is an in-process target; exactly one of Handler and
	// BaseURL must be set.
	Handler http.Handler
	// BaseURL targets a live server over TCP (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Concurrency is the worker count (default 8).
	Concurrency int
	// Duration bounds the run's wall clock (default 10s; ignored when
	// Requests is set).
	Duration time.Duration
	// Requests, when > 0, bounds the run by total request count instead
	// of wall clock — the deterministic mode CI smoke jobs want.
	Requests int64
	// Seed derives every worker's operation schedule (default 1).
	Seed uint64
	// Timeout is the per-request client timeout for BaseURL targets
	// (default 30s).
	Timeout time.Duration
	// Mix is the weighted operation set; required.
	Mix []Op
	// ReservoirSize caps the per-route, per-worker latency sample pool
	// (default 20000).
	ReservoirSize int
}

// RouteStats is one route's distilled measurements.
type RouteStats struct {
	Count     int64            `json:"count"`
	Transport int64            `json:"transportErrors,omitempty"`
	Status    map[string]int64 `json:"statusClasses"`
	P50Ms     float64          `json:"p50Ms"`
	P95Ms     float64          `json:"p95Ms"`
	P99Ms     float64          `json:"p99Ms"`
	MaxMs     float64          `json:"maxMs"`
	RPS       float64          `json:"rps"`
}

// Report is the run's JSON artifact payload.
type Report struct {
	Target          string                 `json:"target"`
	Concurrency     int                    `json:"concurrency"`
	Seed            uint64                 `json:"seed"`
	DurationSeconds float64                `json:"durationSeconds"`
	Requests        int64                  `json:"requests"`
	Non2xx          int64                  `json:"non2xx"`
	Count5xx        int64                  `json:"count5xx"`
	Routes          map[string]*RouteStats `json:"routes"`
	// Extra carries harness-specific measurements (e.g. the sharded vs
	// single-store design-latency comparison) into the artifact.
	Extra map[string]any `json:"extra,omitempty"`
}

// Gate is one pass/fail criterion over the report.
type Gate struct {
	// Route names the RouteStats bucket the gate applies to.
	Route string
	// MaxP99Ms fails the gate when the route's p99 exceeds it.
	MaxP99Ms float64
	// MinCount fails the gate when the route saw fewer requests — a
	// guard against a mix typo silently gating an empty bucket.
	MinCount int64
}

// opState is a worker-local accumulator for one route: counts plus an
// algorithm-R latency reservoir.
type opState struct {
	count     int64
	transport int64
	status    map[string]int64
	samples   []float64 // milliseconds
	seen      int64     // total observations offered to the reservoir
	maxMs     float64
}

// Run executes the configured load and returns its report. The context
// cancels the run early (workers finish their in-flight request).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if (cfg.Handler == nil) == (cfg.BaseURL == "") {
		return nil, fmt.Errorf("loadtest: exactly one of Handler and BaseURL is required")
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("loadtest: empty operation mix")
	}
	for i, op := range cfg.Mix {
		if op.Name == "" || len(op.Paths) == 0 {
			return nil, fmt.Errorf("loadtest: mix[%d] needs a name and at least one path", i)
		}
		if op.Weight < 1 {
			return nil, fmt.Errorf("loadtest: mix[%d] (%s) weight must be ≥ 1, got %d", i, op.Name, op.Weight)
		}
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.ReservoirSize == 0 {
		cfg.ReservoirSize = 20000
	}

	// Cumulative weights for O(log n) op selection.
	cum := make([]int, len(cfg.Mix))
	total := 0
	for i, op := range cfg.Mix {
		total += op.Weight
		cum[i] = total
	}

	issue := newIssuer(cfg)
	var remaining atomic.Int64
	remaining.Store(cfg.Requests) // ≤ 0 means unbounded (duration-bound)

	deadline := time.Now().Add(cfg.Duration)
	if cfg.Requests > 0 {
		// Budget-bound runs still get a generous wall-clock backstop so a
		// hung target cannot wedge the harness.
		deadline = time.Now().Add(10 * time.Minute)
	}

	states := make([]map[string]*opState, cfg.Concurrency)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)+1))
			local := map[string]*opState{}
			states[w] = local
			for {
				if ctx.Err() != nil || time.Now().After(deadline) {
					return
				}
				if cfg.Requests > 0 && remaining.Add(-1) < 0 {
					return
				}
				// Weighted op draw, then a uniform path draw within it.
				pick := rng.IntN(total)
				oi := sort.SearchInts(cum, pick+1)
				op := cfg.Mix[oi]
				path := op.Paths[rng.IntN(len(op.Paths))]

				st := local[op.Name]
				if st == nil {
					st = &opState{status: map[string]int64{}}
					local[op.Name] = st
				}
				t0 := time.Now()
				code, err := issue(ctx, op, path)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				st.count++
				if err != nil {
					st.transport++
				} else {
					st.status[statusClass(code)]++
				}
				st.observe(ms, rng, cfg.ReservoirSize)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(begin).Seconds()

	return distill(cfg, states, elapsed), nil
}

// observe records one latency into the worker-local reservoir
// (algorithm R: exact until full, uniform replacement after).
func (st *opState) observe(ms float64, rng *rand.Rand, cap int) {
	st.seen++
	if ms > st.maxMs {
		st.maxMs = ms
	}
	if len(st.samples) < cap {
		st.samples = append(st.samples, ms)
		return
	}
	if j := rng.Int64N(st.seen); j < int64(cap) {
		st.samples[j] = ms
	}
}

// newIssuer builds the request executor for the configured target.
func newIssuer(cfg Config) func(context.Context, Op, string) (int, error) {
	if cfg.Handler != nil {
		return func(ctx context.Context, op Op, path string) (int, error) {
			r := httptest.NewRequest(method(op), path, strings.NewReader(op.Body))
			if op.Body != "" {
				r.Header.Set("Content-Type", "application/json")
			}
			w := httptest.NewRecorder()
			cfg.Handler.ServeHTTP(w, r.WithContext(ctx))
			return w.Code, nil
		}
	}
	client := &http.Client{Timeout: cfg.Timeout}
	base := strings.TrimRight(cfg.BaseURL, "/")
	return func(ctx context.Context, op Op, path string) (int, error) {
		var body io.Reader
		if op.Body != "" {
			body = strings.NewReader(op.Body)
		}
		req, err := http.NewRequestWithContext(ctx, method(op), base+path, body)
		if err != nil {
			return 0, err
		}
		if op.Body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		// Drain so the transport reuses connections — a per-request
		// handshake would measure the dialer, not the server.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode, nil
	}
}

func method(op Op) string {
	if op.Method == "" {
		return http.MethodGet
	}
	return op.Method
}

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// distill merges the worker-local accumulators into the final report.
func distill(cfg Config, states []map[string]*opState, elapsed float64) *Report {
	rep := &Report{
		Target:          cfg.BaseURL,
		Concurrency:     cfg.Concurrency,
		Seed:            cfg.Seed,
		DurationSeconds: elapsed,
		Routes:          map[string]*RouteStats{},
	}
	if rep.Target == "" {
		rep.Target = "in-process handler"
	}
	merged := map[string]*opState{}
	for _, local := range states {
		for name, st := range local {
			m := merged[name]
			if m == nil {
				m = &opState{status: map[string]int64{}}
				merged[name] = m
			}
			m.count += st.count
			m.transport += st.transport
			for k, v := range st.status {
				m.status[k] += v
			}
			m.samples = append(m.samples, st.samples...)
			if st.maxMs > m.maxMs {
				m.maxMs = st.maxMs
			}
		}
	}
	for name, m := range merged {
		sort.Float64s(m.samples)
		rs := &RouteStats{
			Count:     m.count,
			Transport: m.transport,
			Status:    m.status,
			P50Ms:     percentile(m.samples, 0.50),
			P95Ms:     percentile(m.samples, 0.95),
			P99Ms:     percentile(m.samples, 0.99),
			MaxMs:     m.maxMs,
		}
		if elapsed > 0 {
			rs.RPS = float64(m.count) / elapsed
		}
		rep.Routes[name] = rs
		rep.Requests += m.count
		rep.Non2xx += m.count - m.status["2xx"]
		rep.Count5xx += m.status["5xx"]
	}
	return rep
}

// percentile reads the q-quantile from an ascending sample slice
// (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Check evaluates the gates, returning one error describing every
// violation (nil = all pass). forbid5xx additionally fails the run when
// any response was a 5xx or a transport error — the smoke job's
// zero-tolerance criterion.
func (r *Report) Check(gates []Gate, forbid5xx bool) error {
	var fails []string
	for _, g := range gates {
		rs := r.Routes[g.Route]
		if rs == nil {
			fails = append(fails, fmt.Sprintf("route %q has no measurements", g.Route))
			continue
		}
		if g.MinCount > 0 && rs.Count < g.MinCount {
			fails = append(fails, fmt.Sprintf("route %q saw %d requests, gate needs ≥ %d", g.Route, rs.Count, g.MinCount))
		}
		if g.MaxP99Ms > 0 && rs.P99Ms > g.MaxP99Ms {
			fails = append(fails, fmt.Sprintf("route %q p99 = %.2fms exceeds gate %.2fms", g.Route, rs.P99Ms, g.MaxP99Ms))
		}
	}
	if forbid5xx {
		if r.Count5xx > 0 {
			fails = append(fails, fmt.Sprintf("%d responses were 5xx", r.Count5xx))
		}
		var transport int64
		for _, rs := range r.Routes {
			transport += rs.Transport
		}
		if transport > 0 {
			fails = append(fails, fmt.Sprintf("%d requests failed in transport", transport))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("loadtest: %s", strings.Join(fails, "; "))
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	body, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

// ServeMix is the default mixed-traffic profile against a gcbench serve
// deployment: predict-heavy reads with listing, single-record, design
// and canonical-best traffic. behaviorKeys parameterizes the
// single-record reads (pass a few real corpus keys).
func ServeMix(behaviorKeys []string) []Op {
	return ServeMixModels(behaviorKeys, nil)
}

// ServeMixModels is ServeMix with the execution-model dimension: every
// model in models (the distinct model tags the target corpus actually
// holds — discover them from /api/runs) contributes a model-filtered
// /api/runs path, so a multi-model deployment is exercised along its
// model axis without guessing at filters that would 4xx or return
// empty. Empty models is exactly ServeMix.
func ServeMixModels(behaviorKeys, models []string) []Op {
	behaviorPaths := make([]string, 0, len(behaviorKeys))
	for _, k := range behaviorKeys {
		behaviorPaths = append(behaviorPaths, "/api/behavior/"+k)
	}
	if len(behaviorPaths) == 0 {
		behaviorPaths = []string{"/api/behavior/unknown"}
	}
	runsPaths := []string{
		"/api/runs?algorithm=PR",
		"/api/runs?algorithm=CC,KC&size=1e5",
		"/api/runs?status=ok",
	}
	for _, m := range models {
		runsPaths = append(runsPaths, "/api/runs?model="+m)
	}
	return []Op{
		{Name: "predict", Weight: 5, Paths: []string{
			"/api/predict?algorithm=PR&edges=500000&alpha=2.1",
			"/api/predict?algorithm=PR&edges=1200000&alpha=1.9",
			"/api/predict?algorithm=CC&edges=800000&alpha=2.3",
			"/api/predict?algorithm=SSSP&edges=250000&alpha=2.0",
		}},
		{Name: "runs", Weight: 2, Paths: runsPaths},
		{Name: "behavior", Weight: 2, Paths: behaviorPaths},
		{Name: "design", Weight: 1, Method: http.MethodPost,
			Paths: []string{"/api/ensemble/design"}, Body: `{"n":4}`},
		{Name: "best", Weight: 1, Paths: []string{"/api/ensemble/best?n=5"}},
	}
}
