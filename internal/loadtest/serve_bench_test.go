package loadtest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gcbench/internal/corpus"
	"gcbench/internal/jobs"
	"gcbench/internal/obs"
	"gcbench/internal/serve"
	"gcbench/internal/shard"
)

// standardSnapshot loads the shipped measured corpus once per binary.
var (
	stdOnce sync.Once
	stdSnap *corpus.Snapshot
	stdErr  error
)

func standardSnapshot(t testing.TB) *corpus.Snapshot {
	t.Helper()
	stdOnce.Do(func() {
		stdSnap, stdErr = corpus.LoadFile("../../runs-standard.json")
	})
	if stdErr != nil {
		t.Fatalf("loading runs-standard.json: %v", stdErr)
	}
	return stdSnap
}

// singleServer is a single-store deployment over the standard corpus.
func singleServer(t testing.TB, mgr *jobs.Manager) *serve.Server {
	t.Helper()
	cfg := serve.Config{
		Store:    corpus.NewStore(standardSnapshot(t)),
		Samples:  50_000,
		Registry: obs.NewRegistry(),
		Jobs:     mgr,
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shardedServer is the same corpus partitioned across shards×replicas.
func shardedServer(t testing.TB, shards, replicas int, mgr *jobs.Manager) *serve.Server {
	t.Helper()
	std := standardSnapshot(t)
	records := append([]corpus.Record(nil), std.Records...)
	snap, err := corpus.NewSnapshotFromRecords(records, std.Source)
	if err != nil {
		t.Fatal(err)
	}
	c, err := shard.New(shard.Options{Shards: shards, Replicas: replicas, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Cluster:  c,
		Samples:  50_000,
		Registry: obs.NewRegistry(),
		Jobs:     mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wireServer is the same corpus partitioned across `shards` wire-
// transport shard endpoints: each shard is served over real loopback
// TCP (httptest server speaking the shard RPC protocol) through a
// RemoteShard client wrapped in the production ReplicaSet layer. The
// only difference from shardedServer is the transport, which is exactly
// what the wire-overhead ratio isolates.
func wireServer(t testing.TB, shards int, mgr *jobs.Manager) *serve.Server {
	t.Helper()
	std := standardSnapshot(t)
	records := append([]corpus.Record(nil), std.Records...)
	snap, err := corpus.NewSnapshotFromRecords(records, std.Source)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	clients := make([]shard.ShardClient, shards)
	for i := 0; i < shards; i++ {
		srv := httptest.NewServer(shard.RPCHandler(shard.NewProcessShard(i)))
		t.Cleanup(srv.Close)
		remote := shard.NewRemoteShard(srv.URL, shard.RemoteOptions{Shard: i, Registry: reg})
		rs, err := shard.NewReplicaSet(i, []shard.ShardClient{remote}, reg)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = rs
	}
	c, err := shard.New(shard.Options{Shards: shards, Clients: clients, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Cluster:  c,
		Samples:  50_000,
		Registry: obs.NewRegistry(),
		Jobs:     mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// designLatency measures uncached design-search wall time on a handler:
// each rep uses a distinct anneal seed (a distinct cache key on every
// deployment), so every rep pays the full search, and the minimum over
// reps is the machine's clean estimate.
func designLatency(t testing.TB, h http.Handler, reps int) time.Duration {
	t.Helper()
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		body := `{"n":4,"method":"anneal","seed":` + strconv.Itoa(i+1) + `}`
		r := httptest.NewRequest(http.MethodPost, "/api/ensemble/design", strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		begin := time.Now()
		h.ServeHTTP(w, r)
		elapsed := time.Since(begin)
		if w.Code != http.StatusOK {
			t.Fatalf("design rep %d: %d: %s", i, w.Code, w.Body.String())
		}
		if elapsed < best {
			best = elapsed
		}
	}
	return best
}

// TestWriteServeBenchArtifact is the CI serve-load job: it measures the
// sharded serving tier under the mixed ServeMix traffic profile (plus
// real quick-profile campaign submissions through the async jobs API),
// gates on predict p99, zero 5xx and the scatter-gather design path
// being no slower than single-store, and writes the BENCH_serve.json
// artifact the repo keeps as the serving-tier regression record.
//
// Opt-in via GCBENCH_SERVE_BENCH_ARTIFACT=<output path> because the
// latency gates are calibrated for a dedicated CI runner, not a laptop
// running a full parallel test suite.
func TestWriteServeBenchArtifact(t *testing.T) {
	out := os.Getenv("GCBENCH_SERVE_BENCH_ARTIFACT")
	if out == "" {
		t.Skip("set GCBENCH_SERVE_BENCH_ARTIFACT=<path> to run the serve load benchmark")
	}

	// Phase 1 — scatter-gather overhead: identical uncached design
	// searches on a single store and a 4-shard cluster, best of 5. The
	// fan-out only gathers pool seqs; the search itself dominates, so
	// sharding must not cost more than 25% even on a noisy runner.
	single := singleServer(t, nil)
	const shards, replicas = 4, 2
	mgr := jobs.NewManager(jobs.Config{MaxRunning: 1, QueueDepth: 2, Registry: obs.NewRegistry()})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Close(ctx); err != nil {
			t.Errorf("jobs manager close: %v", err)
		}
	})
	sharded := shardedServer(t, shards, replicas, mgr)

	singleDesign := designLatency(t, single.Handler(), 5)
	shardedDesign := designLatency(t, sharded.Handler(), 5)
	ratio := float64(shardedDesign) / float64(singleDesign)
	t.Logf("design search: single=%v sharded(%dx%d)=%v ratio=%.3f",
		singleDesign, shards, replicas, shardedDesign, ratio)

	// Phase 1b — wire-transport overhead: the same 4 shards served over
	// real loopback TCP (shard RPC protocol + JSON marshalling) instead
	// of in-process calls. The ratio against the in-process cluster is
	// the cost of the wire itself.
	wire := wireServer(t, shards, nil)
	wireDesign := designLatency(t, wire.Handler(), 5)
	wireRatio := float64(wireDesign) / float64(shardedDesign)
	t.Logf("design search: wire(%d procs)=%v wire/in-process ratio=%.3f",
		shards, wireDesign, wireRatio)

	// Phase 2 — mixed load on the sharded deployment. Campaign traffic
	// is real: quick-profile PR campaigns submitted through the jobs
	// API; one executes at a time, the rest exercise the 429 queue-full
	// backpressure path, and completions hot-publish into the cluster
	// mid-load.
	std := standardSnapshot(t)
	keys := []string{std.Records[0].Key, std.Records[len(std.Records)/2].Key}
	if std.PoolSize() > 0 {
		keys = append(keys, std.PoolRecord(0).Key)
	}
	mix := append(ServeMix(keys), Op{
		Name: "campaign", Weight: 1, Method: http.MethodPost,
		Paths: []string{"/api/campaigns"},
		Body:  `{"profile":"quick","algorithms":["PR"],"label":"loadtest"}`,
	})
	rep, err := Run(context.Background(), Config{
		Handler:     sharded.Handler(),
		Concurrency: 8,
		Requests:    4000,
		Seed:        1,
		Mix:         mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Target = "in-process sharded serve (4 shards x 2 replicas)"
	rep.Extra = map[string]any{
		"designSingleMs":      float64(singleDesign.Microseconds()) / 1000,
		"designShardedMs":     float64(shardedDesign.Microseconds()) / 1000,
		"designShardedRatio":  ratio,
		"designWireMs":        float64(wireDesign.Microseconds()) / 1000,
		"wireOverheadRatio":   wireRatio,
		"shards":              shards,
		"replicas":            replicas,
		"campaignSubmissions": rep.Routes["campaign"].Count,
	}
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d requests, predict p50=%.2fms p99=%.2fms",
		out, rep.Requests, rep.Routes["predict"].P50Ms, rep.Routes["predict"].P99Ms)

	// Gates. Predict p99 is generous for a shared runner yet far below
	// any lock-convoy or scatter-stall regression; 5xx tolerance is
	// zero (429s from campaign backpressure are 4xx by design).
	if err := rep.Check([]Gate{
		{Route: "predict", MaxP99Ms: 250, MinCount: 100},
		{Route: "runs", MinCount: 50},
		{Route: "design", MinCount: 20},
		{Route: "behavior", MinCount: 50},
		{Route: "campaign", MinCount: 1},
	}, true); err != nil {
		t.Error(err)
	}
	if ratio > 1.25 {
		t.Errorf("scatter-gather design path is %.2fx single-store (gate 1.25x): single=%v sharded=%v",
			ratio, singleDesign, shardedDesign)
	}
	// The wire gate is looser: loopback TCP + JSON on the scatter is real
	// cost, but the design search still dominates — a blown gate means a
	// serialization or retry-storm regression, not normal wire tax.
	if wireRatio > 2.5 {
		t.Errorf("wire transport is %.2fx the in-process cluster (gate 2.5x): in-process=%v wire=%v",
			wireRatio, shardedDesign, wireDesign)
	}
}
