package algorithms

import (
	"fmt"
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// lbpMaxStates bounds variable cardinality so per-edge products fit in a
// fixed-size accumulator.
const lbpMaxStates = 4

// lbpBelief is a vertex's (unnormalized) belief over its states, combined
// multiplicatively during gather.
type lbpBelief [lbpMaxStates]float64

// lbpState tracks the vertex's normalized belief and its last residual,
// which drives deactivation: LBP "exhibits a sharp drop in the number of
// active vertices over time" (§4.4).
type lbpState struct {
	Belief   lbpBelief
	Residual float64
}

// lbpProgram is synchronous sum-product Loopy Belief Propagation on a
// pairwise MRF. Messages live on arcs: msg[a] is the message sent along
// arc a = (u→v), i.e. from u to v. Gather reads the incoming message on
// the reverse arc of each out-arc (an edge read) and caches it in the
// vertex-owned inbox so scatter can divide it back out race-free; scatter
// writes this vertex's outgoing messages and signals neighbors whose
// inputs changed materially.
type lbpProgram struct {
	m     *graph.MRF
	rev   []int64
	msg   []float64 // numArcs × states, current messages
	inbox []float64 // numArcs × states, gather-time snapshot of incoming
	tol   float64
}

func (p *lbpProgram) states() int { return p.m.Card[0] }

func (p *lbpProgram) Init(_ *graph.Graph, v uint32) (lbpState, bool) {
	var s lbpState
	n := p.states()
	sum := 0.0
	for x := 0; x < n; x++ {
		s.Belief[x] = p.m.Unary[v][x]
		sum += s.Belief[x]
	}
	for x := 0; x < n; x++ {
		s.Belief[x] /= sum
	}
	s.Residual = math.Inf(1)
	return s, true
}

func (p *lbpProgram) GatherDirection() engine.Direction { return engine.Out }

// Gather reads the incoming message m_{u→v} on the reverse arc, caches it
// in v's inbox slot, and contributes it to the belief product.
func (p *lbpProgram) Gather(_ uint32, e engine.Arc, _, _ lbpState) lbpBelief {
	n := p.states()
	in := p.msg[p.rev[e.Index]*int64(n) : p.rev[e.Index]*int64(n)+int64(n)]
	copy(p.inbox[e.Index*int64(n):e.Index*int64(n)+int64(n)], in)
	var b lbpBelief
	for x := 0; x < n; x++ {
		b[x] = in[x]
	}
	for x := n; x < lbpMaxStates; x++ {
		b[x] = 1
	}
	return b
}

func (p *lbpProgram) Sum(a, b lbpBelief) lbpBelief {
	for x := 0; x < lbpMaxStates; x++ {
		a[x] *= b[x]
	}
	return a
}

func (p *lbpProgram) Apply(v uint32, self lbpState, acc lbpBelief, hasAcc bool) lbpState {
	n := p.states()
	var next lbpState
	sum := 0.0
	for x := 0; x < n; x++ {
		b := p.m.Unary[v][x]
		if hasAcc {
			b *= acc[x]
		}
		next.Belief[x] = b
		sum += b
	}
	if sum > 0 {
		for x := 0; x < n; x++ {
			next.Belief[x] /= sum
		}
	}
	res := 0.0
	for x := 0; x < n; x++ {
		res += math.Abs(next.Belief[x] - self.Belief[x])
	}
	next.Residual = res
	return next
}

func (p *lbpProgram) ScatterDirection() engine.Direction { return engine.Out }

// Scatter computes this vertex's outgoing message along arc a = (v→u):
//
//	m_{v→u}(x_u) = Σ_{x_v} φ(x_v, x_u) · ψ_v(x_v) · Π_{w≠u} m_{w→v}(x_v)
//
// using the cached inbox for the division-free product, then signals u if
// the message moved more than the tolerance.
func (p *lbpProgram) Scatter(v uint32, e engine.Arc, _, _ lbpState) bool {
	n := p.states()
	lo, hi := p.m.G.OutArcRange(v)
	// Product of all incoming messages except the one from u, times the
	// unary potential.
	var prod [lbpMaxStates]float64
	for x := 0; x < n; x++ {
		prod[x] = p.m.Unary[v][x]
	}
	for a := lo; a < hi; a++ {
		if a == e.Index {
			continue
		}
		in := p.inbox[a*int64(n) : a*int64(n)+int64(n)]
		for x := 0; x < n; x++ {
			prod[x] *= in[x]
		}
	}
	out := p.msg[e.Index*int64(n) : e.Index*int64(n)+int64(n)]
	var next [lbpMaxStates]float64
	sum := 0.0
	nu := p.m.Card[e.Other]
	for xu := 0; xu < nu; xu++ {
		var s float64
		for xv := 0; xv < n; xv++ {
			s += p.m.PairwiseFor(e.Index, v, xv, xu) * prod[xv]
		}
		next[xu] = s
		sum += s
	}
	if sum <= 0 {
		return false
	}
	change := 0.0
	for xu := 0; xu < nu; xu++ {
		next[xu] /= sum
		change += math.Abs(next[xu] - out[xu])
		out[xu] = next[xu]
	}
	return change > p.tol
}

// LBPOptions extends Options with the message-residual tolerance
// (default 1e-4).
type LBPOptions struct {
	Options
	Tolerance float64
}

// LoopyBeliefPropagation runs synchronous sum-product BP on a pairwise MRF
// whose variables share one cardinality (≤ 4). It returns per-vertex
// max-belief assignments. Summary reports "avgResidual" at convergence.
func LoopyBeliefPropagation(m *graph.MRF, opt LBPOptions) (*Output, []int, error) {
	n := m.Card[0]
	if n > lbpMaxStates {
		return nil, nil, fmt.Errorf("algorithms: LBP supports at most %d states, got %d", lbpMaxStates, n)
	}
	for v, c := range m.Card {
		if c != n {
			return nil, nil, fmt.Errorf("algorithms: LBP requires uniform cardinality (vertex %d has %d, want %d)", v, c, n)
		}
	}
	tol := opt.Tolerance
	if tol == 0 {
		tol = 1e-4
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 500
	}
	arcs := m.G.NumArcs()
	p := &lbpProgram{
		m:     m,
		rev:   m.G.ReverseArcs(),
		msg:   make([]float64, arcs*int64(n)),
		inbox: make([]float64, arcs*int64(n)),
		tol:   tol,
	}
	// Uniform initial messages.
	uniform := 1.0 / float64(n)
	for i := range p.msg {
		p.msg[i] = uniform
	}
	copy(p.inbox, p.msg)

	res, err := engine.Run[lbpState, lbpBelief](m.G, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	assign := make([]int, len(res.States))
	var resid float64
	for v, s := range res.States {
		best := 0
		for x := 1; x < n; x++ {
			if s.Belief[x] > s.Belief[best] {
				best = x
			}
		}
		assign[v] = best
		resid += s.Residual
	}
	out := &Output{
		Trace: res.Trace,
		Summary: map[string]float64{
			"avgResidual": resid / float64(len(res.States)),
		},
	}
	return out, assign, nil
}
