package algorithms

import (
	"fmt"
	"math/bits"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// adSketches is the number of Flajolet-Martin bitmasks per vertex; more
// sketches tighten the neighborhood-size estimate.
const adSketches = 4

// adState holds a vertex's FM sketches of its h-hop neighborhood plus a
// changed flag for the convergence test.
type adState struct {
	Masks   [adSketches]uint64
	Changed bool
}

// adProgram estimates the graph diameter by iterative neighborhood-
// function growth (the HyperANF/FM scheme): after h iterations each
// vertex's sketch estimates |N(v, h)|; the diameter is the h at which
// growth stops. All vertices stay active for the whole lifecycle
// ("Specially, AD has active fraction = 1.0", §4.1).
type adProgram struct{}

func (p *adProgram) Init(_ *graph.Graph, v uint32) (adState, bool) {
	var s adState
	for k := 0; k < adSketches; k++ {
		s.Masks[k] = 1 << fmBit(v, uint64(k))
	}
	s.Changed = true
	return s, true
}

// fmBit hashes v into a geometrically distributed bit position.
func fmBit(v uint32, salt uint64) uint {
	x := uint64(v)*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	// Geometric: position = trailing zeros, capped at 62.
	b := uint(bits.TrailingZeros64(x | 1<<62))
	return b
}

func (p *adProgram) GatherDirection() engine.Direction { return engine.In }

func (p *adProgram) Gather(_ uint32, _ engine.Arc, _, other adState) adState {
	other.Changed = false
	return other
}

func (p *adProgram) Sum(a, b adState) adState {
	for k := 0; k < adSketches; k++ {
		a.Masks[k] |= b.Masks[k]
	}
	return a
}

func (p *adProgram) Apply(_ uint32, self adState, acc adState, hasAcc bool) adState {
	changed := false
	if hasAcc {
		for k := 0; k < adSketches; k++ {
			merged := self.Masks[k] | acc.Masks[k]
			if merged != self.Masks[k] {
				changed = true
			}
			self.Masks[k] = merged
		}
	}
	self.Changed = changed
	return self
}

func (p *adProgram) ScatterDirection() engine.Direction { return engine.Out }

// Scatter keeps the whole graph active every iteration, as the paper
// observes for AD; convergence is decided globally in PostIteration.
func (p *adProgram) Scatter(uint32, engine.Arc, adState, adState) bool { return true }

func (p *adProgram) PostIteration(c *engine.Control[adState]) bool {
	for _, s := range c.States() {
		if s.Changed {
			// Not converged: keep the whole graph (including isolated
			// vertices) active, per the paper's constant 1.0 activity.
			c.ActivateAll()
			return false
		}
	}
	return true
}

// ApproximateDiameter estimates the longest shortest path in an undirected
// graph. Summary reports "diameter" (the estimate) and "reachEstimate"
// (the FM estimate of the largest neighborhood size).
func ApproximateDiameter(g *graph.Graph, opt Options) (*Output, int, error) {
	if g.Directed() {
		return nil, 0, fmt.Errorf("algorithms: AD requires an undirected graph")
	}
	p := &adProgram{}
	res, err := engine.Run[adState, adState](g, p, opt.engineOptions())
	if err != nil {
		return nil, 0, err
	}
	// Sketches stop changing one iteration after the last real expansion:
	// the final iteration only confirms stability.
	diameter := res.Trace.NumIterations() - 1
	if diameter < 0 {
		diameter = 0
	}
	// FM estimate of the largest h-hop neighborhood: 2^meanLowestZero/φ.
	var best float64
	for _, s := range res.States {
		var sum float64
		for k := 0; k < adSketches; k++ {
			sum += float64(bits.TrailingZeros64(^s.Masks[k]))
		}
		est := float64(uint64(1)<<uint(sum/adSketches+0.5)) / 0.77351
		if est > best {
			best = est
		}
	}
	out := &Output{
		Trace: res.Trace,
		Summary: map[string]float64{
			"diameter":      float64(diameter),
			"reachEstimate": best,
		},
	}
	return out, diameter, nil
}
