package algorithms

import (
	"fmt"
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// jacobiState holds a solution component and its last change.
type jacobiState struct {
	X, Delta float64
}

// jacobiProgram iterates x_i ← (b_i − Σ_{j≠i} a_ij·x_j) / a_ii on the
// matrix graph (edges are matrix elements, §2.2). Every component depends
// on the whole current iterate, so all vertices stay active for all
// iterations (§4.4); convergence is a global residual test in the
// PostIteration driver.
type jacobiProgram struct {
	diag []float64
	b    []float64
	tol  float64
}

func (p *jacobiProgram) Init(_ *graph.Graph, _ uint32) (jacobiState, bool) {
	return jacobiState{Delta: math.Inf(1)}, true
}

func (p *jacobiProgram) GatherDirection() engine.Direction { return engine.Out }

// Gather reads one row entry: a_ij · x_j.
func (p *jacobiProgram) Gather(_ uint32, e engine.Arc, _, other jacobiState) float64 {
	return e.Weight * other.X
}

func (p *jacobiProgram) Sum(a, b float64) float64 { return a + b }

func (p *jacobiProgram) Apply(v uint32, self jacobiState, acc float64, hasAcc bool) jacobiState {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	x := (p.b[v] - sum) / p.diag[v]
	return jacobiState{X: x, Delta: math.Abs(x - self.X)}
}

func (p *jacobiProgram) ScatterDirection() engine.Direction { return engine.In }

// Scatter signals the rows that reference this component while it still
// moves.
func (p *jacobiProgram) Scatter(_ uint32, _ engine.Arc, self, _ jacobiState) bool {
	return self.Delta > p.tol
}

func (p *jacobiProgram) PostIteration(c *engine.Control[jacobiState]) bool {
	maxDelta := 0.0
	for _, s := range c.States() {
		if s.Delta > maxDelta {
			maxDelta = s.Delta
		}
	}
	if maxDelta > p.tol {
		c.ActivateAll()
		return false
	}
	return true
}

// JacobiOptions extends Options with the convergence tolerance
// (default 1e-9 on the max component change).
type JacobiOptions struct {
	Options
	Tolerance float64
}

// JacobiSolve solves the diagonally dominant system sys by Jacobi
// iteration. Summary reports "residual" (max |A·x − b| component).
func JacobiSolve(sys *gen.MatrixSystem, opt JacobiOptions) (*Output, []float64, error) {
	g := sys.G
	if !g.Directed() || !g.Weighted() {
		return nil, nil, fmt.Errorf("algorithms: Jacobi requires a directed weighted matrix graph")
	}
	if len(sys.Diag) != g.NumVertices() || len(sys.B) != g.NumVertices() {
		return nil, nil, fmt.Errorf("algorithms: Jacobi system arrays don't match the graph")
	}
	for i, d := range sys.Diag {
		if d == 0 {
			return nil, nil, fmt.Errorf("algorithms: Jacobi diagonal entry %d is zero", i)
		}
	}
	tol := opt.Tolerance
	if tol == 0 {
		tol = 1e-9
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 10000
	}
	p := &jacobiProgram{diag: sys.Diag, b: sys.B, tol: tol}
	res, err := engine.Run[jacobiState, float64](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	x := make([]float64, len(res.States))
	for v, s := range res.States {
		x[v] = s.X
	}
	// Residual check: max |A·x − b|.
	residual := 0.0
	for i := uint32(0); int(i) < g.NumVertices(); i++ {
		sum := sys.Diag[i] * x[i]
		lo, hi := g.OutArcRange(i)
		for a := lo; a < hi; a++ {
			sum += g.ArcWeight(a) * x[g.ArcTarget(a)]
		}
		if r := math.Abs(sum - sys.B[i]); r > residual {
			residual = r
		}
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"residual": residual},
	}
	return out, x, nil
}
