package algorithms

import (
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
	"gcbench/internal/linalg"
)

// svdState holds one component of the current Lanczos vector (u for
// users, v for items) plus the previous vector needed by the three-term
// recurrence.
type svdState struct {
	X, Xprev float64
}

// svdProgram computes the top singular values of the rating matrix by
// restarted Golub-Kahan-Lanczos bidiagonalization (§2.1: "decomposes a
// matrix … using Restarted Lanczos algorithm"). Each GAS iteration is one
// half-step of the recurrence — a sparse matrix-vector product through the
// rating arcs:
//
//	phase 0 (users): u_j = A·v_j − β_{j-1}·u_{j-1}, α_j = ‖u_j‖
//	phase 1 (items): v_{j+1} = Aᵀ·u_j − α_j·v_j,   β_j = ‖v_{j+1}‖
//
// with normalization and the α/β bookkeeping done in the PostIteration
// driver. After Steps half-step pairs, singular values come from the
// bidiagonal matrix's tridiagonal Gram matrix; the run restarts from the
// converged v direction until the top singular value stabilizes. All
// vertices stay active for the whole lifecycle, as the paper observes for
// the CF algorithms other than ALS (§4.3).
type svdProgram struct {
	numUsers int
	steps    int
	maxRuns  int
	tol      float64

	phase         int // 0: users compute, 1: items compute
	alphas        []float64
	betas         []float64
	prevTop       float64
	topSV         float64
	restarts      int
	converged     bool
	needNormalize bool
}

// PreIteration normalizes the freshly seeded item vector before the first
// half-step; the three-term recurrence requires a unit v_1.
func (p *svdProgram) PreIteration(c *engine.Control[svdState]) {
	if !p.needNormalize {
		return
	}
	p.needNormalize = false
	states := c.States()
	var norm float64
	for i := p.numUsers; i < len(states); i++ {
		norm += states[i].X * states[i].X
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	inv := 1 / norm
	for i := p.numUsers; i < len(states); i++ {
		states[i].X *= inv
	}
}

func (p *svdProgram) Init(_ *graph.Graph, v uint32) (svdState, bool) {
	if int(v) < p.numUsers {
		return svdState{}, true
	}
	// Deterministic pseudo-random start vector on the item side;
	// normalized by the driver before the first user half-step — handled
	// by treating the first PostIteration normalization uniformly.
	f := initFactor(v, 1)
	return svdState{X: f[0] - 0.5}, true
}

func (p *svdProgram) GatherDirection() engine.Direction { return engine.Both }

// Gather is the matvec: rating × the counterpart's current component.
func (p *svdProgram) Gather(_ uint32, e engine.Arc, _, other svdState) float64 {
	return e.Weight * other.X
}

func (p *svdProgram) Sum(a, b float64) float64 { return a + b }

func (p *svdProgram) Apply(v uint32, self svdState, acc float64, hasAcc bool) svdState {
	isUser := int(v) < p.numUsers
	if (p.phase == 0) != isUser {
		return self // the other side's half-step
	}
	raw := 0.0
	if hasAcc {
		raw = acc
	}
	var coef float64
	if p.phase == 0 {
		// u_j = A·v_j − β_{j-1}·u_{j-1}; self.X holds u_{j-1}.
		if len(p.betas) > 0 {
			coef = p.betas[len(p.betas)-1]
		}
	} else {
		// v_{j+1} = Aᵀ·u_j − α_j·v_j; self.X holds v_j.
		coef = p.alphas[len(p.alphas)-1]
	}
	return svdState{X: raw - coef*self.X, Xprev: self.X}
}

func (p *svdProgram) ScatterDirection() engine.Direction { return engine.Both }

func (p *svdProgram) Scatter(uint32, engine.Arc, svdState, svdState) bool {
	return !p.converged
}

// PostIteration normalizes the just-computed half-vector, records α or β,
// and decides on restarts and convergence.
func (p *svdProgram) PostIteration(c *engine.Control[svdState]) bool {
	// All vertices, including unrated ones, stay active for the whole
	// lifecycle (§4.3).
	c.ActivateAll()
	states := c.States()
	lo, hi := 0, p.numUsers
	if p.phase == 1 {
		lo, hi = p.numUsers, len(states)
	}
	var norm float64
	for i := lo; i < hi; i++ {
		norm += states[i].X * states[i].X
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		inv := 1 / norm
		for i := lo; i < hi; i++ {
			states[i].X *= inv
		}
	}
	if p.phase == 0 {
		p.alphas = append(p.alphas, norm)
		p.phase = 1
		return false
	}
	p.betas = append(p.betas, norm)
	p.phase = 0

	if len(p.alphas) < p.steps && norm > 1e-12 {
		return false // keep extending the Krylov basis
	}

	// End of one Lanczos run: singular values of the lower-bidiagonal B
	// (diag α, subdiag β) via eigenvalues of the tridiagonal BᵀB.
	k := len(p.alphas)
	diag := make([]float64, k)
	off := make([]float64, k)
	for j := 0; j < k; j++ {
		diag[j] = p.alphas[j]*p.alphas[j] + p.betas[j]*p.betas[j]
		if j+1 < k {
			off[j] = p.alphas[j+1] * p.betas[j]
		}
	}
	eig, err := linalg.SymTriEigenvalues(diag, off)
	if err == nil && len(eig) > 0 {
		p.topSV = math.Sqrt(math.Max(0, eig[len(eig)-1]))
	}
	p.restarts++
	relChange := math.Abs(p.topSV-p.prevTop) / math.Max(p.topSV, 1e-12)
	p.prevTop = p.topSV
	// norm here is the final β: ~0 means the Krylov space is invariant and
	// the bidiagonal matrix's singular values are exact — stop.
	if p.restarts >= p.maxRuns || relChange < p.tol || norm <= 1e-12 {
		p.converged = true
		return true
	}
	// Restart: continue from the current item vector (which the completed
	// recurrence has rotated toward the dominant right singular
	// direction); clear the recurrence history.
	p.alphas = p.alphas[:0]
	p.betas = p.betas[:0]
	for i := range states {
		states[i].Xprev = 0
		if i < p.numUsers {
			states[i].X = 0
		}
	}
	return false
}

// SVDOptions extends Options with Lanczos parameters.
type SVDOptions struct {
	Options
	// Steps is the Krylov basis size per run (default 10).
	Steps int
	// MaxRestarts bounds the restart loop (default 8).
	MaxRestarts int
	// Tolerance is the relative top-singular-value stability threshold
	// (default 1e-4).
	Tolerance float64
}

// SingularValueDecomposition estimates the top singular value of the
// bipartite rating matrix. Summary reports "topSingularValue" and
// "restarts".
func SingularValueDecomposition(g *graph.Graph, numUsers int, opt SVDOptions) (*Output, float64, error) {
	if err := checkBipartite(g, numUsers); err != nil {
		return nil, 0, err
	}
	steps := opt.Steps
	if steps == 0 {
		steps = 10
	}
	maxRuns := opt.MaxRestarts
	if maxRuns == 0 {
		maxRuns = 8
	}
	tol := opt.Tolerance
	if tol == 0 {
		tol = 1e-4
	}
	p := &svdProgram{
		numUsers:      numUsers,
		steps:         steps,
		maxRuns:       maxRuns,
		tol:           tol,
		needNormalize: true,
	}
	res, err := engine.Run[svdState, float64](g, p, opt.engineOptions())
	if err != nil {
		return nil, 0, err
	}
	out := &Output{
		Trace: res.Trace,
		Summary: map[string]float64{
			"topSingularValue": p.topSV,
			"restarts":         float64(p.restarts),
		},
	}
	return out, p.topSV, nil
}
