package algorithms

import (
	"fmt"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// kcState tracks peeling: whether the vertex survives at the current
// level, its core number once removed, and whether it died this iteration
// (so scatter knows to notify neighbors exactly once).
type kcState struct {
	Alive bool
	Dying bool
	Core  int32
}

// kcProgram decomposes the graph into K-Cores by recursive removal: "the
// KC program recursively removes all vertices with degree d = 0, 1, 2, …"
// (§2.1). Within a level k, removals cascade until stable; the
// PostIteration driver then advances k and reactivates survivors.
type kcProgram struct {
	k int32
}

func (p *kcProgram) Init(_ *graph.Graph, _ uint32) (kcState, bool) {
	return kcState{Alive: true}, true
}

func (p *kcProgram) GatherDirection() engine.Direction { return engine.In }

// Gather counts surviving neighbors — the vertex's effective degree.
func (p *kcProgram) Gather(_ uint32, _ engine.Arc, _, other kcState) int32 {
	if other.Alive {
		return 1
	}
	return 0
}

func (p *kcProgram) Sum(a, b int32) int32 { return a + b }

func (p *kcProgram) Apply(_ uint32, self kcState, acc int32, hasAcc bool) kcState {
	if !self.Alive {
		self.Dying = false
		return self
	}
	deg := int32(0)
	if hasAcc {
		deg = acc
	}
	if deg < p.k {
		return kcState{Alive: false, Dying: true, Core: p.k - 1}
	}
	return kcState{Alive: true}
}

func (p *kcProgram) ScatterDirection() engine.Direction { return engine.Out }

// Scatter: a dying vertex notifies its neighbors so they re-check their
// effective degree ("vertices only receive data from neighbors that
// activate it").
func (p *kcProgram) Scatter(_ uint32, _ engine.Arc, self, other kcState) bool {
	return self.Dying && other.Alive
}

// PostIteration advances the peeling level once level k is stable: if no
// vertex was signaled, every remaining vertex survives level k, so k
// increments and all survivors re-check against the new threshold.
func (p *kcProgram) PostIteration(c *engine.Control[kcState]) bool {
	if c.NextActiveCount() > 0 {
		return false
	}
	states := c.States()
	any := false
	for v, s := range states {
		if s.Alive {
			c.Activate(uint32(v))
			any = true
		}
	}
	if !any {
		return true // everything peeled; core numbers final
	}
	p.k++
	return false
}

// KCoreDecomposition computes every vertex's core number (the largest k
// such that the vertex belongs to a subgraph of minimum degree k). The
// graph must be undirected. Summary reports "maxCore".
func KCoreDecomposition(g *graph.Graph, opt Options) (*Output, []int32, error) {
	if g.Directed() {
		return nil, nil, fmt.Errorf("algorithms: KC requires an undirected graph")
	}
	p := &kcProgram{k: 1}
	res, err := engine.Run[kcState, int32](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	cores := make([]int32, len(res.States))
	var maxCore int32
	for v, s := range res.States {
		cores[v] = s.Core
		if s.Core > maxCore {
			maxCore = s.Core
		}
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"maxCore": float64(maxCore)},
	}
	return out, cores, nil
}
