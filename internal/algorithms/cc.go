package algorithms

import (
	"fmt"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// ccProgram finds connected components by min-label propagation: every
// vertex starts with its own ID as its label and repeatedly adopts the
// minimum label among its neighbors ("the CC program compares the IDs of
// adjacent vertices and only updates a vertex if its ID is larger than the
// minimum value", §2.1).
type ccProgram struct{}

func (ccProgram) Init(_ *graph.Graph, v uint32) (uint32, bool) { return v, true }

func (ccProgram) GatherDirection() engine.Direction { return engine.In }

func (ccProgram) Gather(_ uint32, _ engine.Arc, _, other uint32) uint32 { return other }

func (ccProgram) Sum(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func (ccProgram) Apply(_ uint32, self, acc uint32, hasAcc bool) uint32 {
	if hasAcc && acc < self {
		return acc
	}
	return self
}

func (ccProgram) ScatterDirection() engine.Direction { return engine.Out }

// Scatter signals a neighbor whose label this vertex can still improve.
func (ccProgram) Scatter(_ uint32, _ engine.Arc, self, other uint32) bool {
	return self < other
}

// ConnectedComponents labels each vertex with its component's minimum
// vertex ID. The graph must be undirected. Summary reports "components".
func ConnectedComponents(g *graph.Graph, opt Options) (*Output, []uint32, error) {
	if g.Directed() {
		return nil, nil, fmt.Errorf("algorithms: CC requires an undirected graph")
	}
	res, err := engine.Run[uint32, uint32](g, ccProgram{}, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	distinct := make(map[uint32]struct{})
	for _, label := range res.States {
		distinct[label] = struct{}{}
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"components": float64(len(distinct))},
	}
	return out, res.States, nil
}
