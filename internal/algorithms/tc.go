package algorithms

import (
	"fmt"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// tcProgram counts triangles: "for each edge in the graph, the TC program
// counts the number of intersections of the neighbor sets on both
// endpoints" (§2.1). Adjacency must be sorted so the intersection is a
// linear merge. The computation finishes in one gather/apply pass; scatter
// sends nothing, so the frontier empties and the run converges.
type tcProgram struct {
	g *graph.Graph
}

func (p *tcProgram) Init(_ *graph.Graph, _ uint32) (int64, bool) { return 0, true }

func (p *tcProgram) GatherDirection() engine.Direction { return engine.Out }

// Gather intersects the two endpoint neighbor sets, counting each
// unordered edge once (from its lower endpoint) so every triangle is
// counted exactly three times globally — once per corner edge pair.
func (p *tcProgram) Gather(v uint32, e engine.Arc, _, _ int64) int64 {
	if v > e.Other {
		return 0
	}
	return intersectSize(p.g.OutNeighbors(v), p.g.OutNeighbors(e.Other))
}

func (p *tcProgram) Sum(a, b int64) int64 { return a + b }

func (p *tcProgram) Apply(_ uint32, _, acc int64, hasAcc bool) int64 {
	if !hasAcc {
		return 0
	}
	return acc
}

func (p *tcProgram) ScatterDirection() engine.Direction { return engine.None }

func (p *tcProgram) Scatter(uint32, engine.Arc, int64, int64) bool { return false }

// intersectSize merges two sorted neighbor lists.
func intersectSize(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// TriangleCounting returns the number of triangles in an undirected graph
// with sorted adjacency. Summary reports "triangles".
func TriangleCounting(g *graph.Graph, opt Options) (*Output, int64, error) {
	if g.Directed() {
		return nil, 0, fmt.Errorf("algorithms: TC requires an undirected graph")
	}
	if !g.AdjSorted() {
		return nil, 0, fmt.Errorf("algorithms: TC requires sorted adjacency (build with SortAdjacency)")
	}
	p := &tcProgram{g: g}
	res, err := engine.Run[int64, int64](g, p, opt.engineOptions())
	if err != nil {
		return nil, 0, err
	}
	var total int64
	for _, c := range res.States {
		total += c
	}
	// Each triangle {a,b,c} is counted once per edge (from the lower
	// endpoint): 3 times total.
	triangles := total / 3
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"triangles": float64(triangles)},
	}
	return out, triangles, nil
}
