package algorithms

import (
	"container/heap"
	"math"
	"testing"

	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// --- test graph helpers ---

func undirected(t *testing.T, n int, sorted bool, edges ...[2]uint32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false).Dedup()
	if sorted {
		b.SortAdjacency()
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func powerLawGraph(t testing.TB, edges int64, alpha float64, seed uint64, sorted bool) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumEdges: edges, Alpha: alpha, Seed: seed, SortAdjacency: sorted,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// --- serial references ---

// unionFind is the CC reference.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}
func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}
func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

func serialComponents(g *graph.Graph) int {
	uf := newUnionFind(g.NumVertices())
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(v) {
			uf.union(int(v), int(w))
		}
	}
	roots := map[int]struct{}{}
	for i := 0; i < g.NumVertices(); i++ {
		roots[uf.find(i)] = struct{}{}
	}
	return len(roots)
}

// serialCores is the KC reference: classic O(m) peeling.
func serialCores(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(uint32(v))
	}
	cores := make([]int32, n)
	removed := make([]bool, n)
	for k := 0; ; k++ {
		// Remove everything with degree < k+1 ... peel level by level.
		changed := true
		anyLeft := false
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] < k+1 {
					removed[v] = true
					cores[v] = int32(k)
					changed = true
					for _, w := range g.OutNeighbors(uint32(v)) {
						if !removed[w] {
							deg[w]--
						}
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] {
				anyLeft = true
				break
			}
		}
		if !anyLeft {
			return cores
		}
	}
}

// serialTriangles is the TC reference: enumerate ordered wedges.
func serialTriangles(g *graph.Graph) int64 {
	var count int64
	n := g.NumVertices()
	for a := uint32(0); int(a) < n; a++ {
		for _, b := range g.OutNeighbors(a) {
			if b <= a {
				continue
			}
			for _, c := range g.OutNeighbors(b) {
				if c <= b {
					continue
				}
				if g.HasEdge(a, c) {
					count++
				}
			}
		}
	}
	return count
}

// dijkstra is the SSSP reference.
type pqItem struct {
	v    uint32
	dist float64
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

func dijkstra(g *graph.Graph, src uint32) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		lo, hi := g.OutArcRange(it.v)
		for a := lo; a < hi; a++ {
			w := g.ArcTarget(a)
			d := it.dist + g.ArcWeight(a)
			if d < dist[w] {
				dist[w] = d
				heap.Push(h, pqItem{w, d})
			}
		}
	}
	return dist
}

// densePageRank is the PR reference: power iteration on the full matrix.
func densePageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for v := uint32(0); int(v) < n; v++ {
			var sum float64
			for _, u := range g.InNeighbors(v) {
				sum += rank[u] / float64(g.OutDegree(u))
			}
			next[v] = (1 - damping) + damping*sum
		}
		rank = next
	}
	return rank
}

// exactDiameter is the AD reference: BFS from every vertex.
func exactDiameter(g *graph.Graph) int {
	best := 0
	n := g.NumVertices()
	dist := make([]int, n)
	queue := make([]uint32, 0, n)
	for s := uint32(0); int(s) < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.OutNeighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > best {
						best = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
	}
	return best
}

// --- CC ---

func TestCCTwoComponents(t *testing.T) {
	g := undirected(t, 6, false, [2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{3, 4}, [2]uint32{4, 5})
	out, labels, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary["components"] != 2 {
		t.Fatalf("components = %v, want 2", out.Summary["components"])
	}
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[0] != 0 {
		t.Fatalf("component A labels: %v", labels[:3])
	}
	if labels[3] != labels[4] || labels[4] != labels[5] || labels[3] != 3 {
		t.Fatalf("component B labels: %v", labels[3:])
	}
	if !out.Trace.Converged {
		t.Fatal("CC did not converge")
	}
	// All vertices start active (paper: CC is all-active initially).
	if out.Trace.Iterations[0].Active != 6 {
		t.Fatalf("initial active = %d, want 6", out.Trace.Iterations[0].Active)
	}
}

func TestCCMatchesUnionFind(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := powerLawGraph(t, 2000, 2.0+0.25*float64(seed), seed, false)
		out, labels, err := ConnectedComponents(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := serialComponents(g)
		if int(out.Summary["components"]) != want {
			t.Fatalf("seed %d: components = %v, want %d", seed, out.Summary["components"], want)
		}
		// Same-component vertices share labels; neighbors must match.
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			for _, w := range g.OutNeighbors(v) {
				if labels[v] != labels[w] {
					t.Fatalf("neighbors %d and %d have labels %d, %d", v, w, labels[v], labels[w])
				}
			}
		}
	}
}

func TestCCRejectsDirected(t *testing.T) {
	b := graph.NewBuilder(2, true)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConnectedComponents(g, Options{}); err == nil {
		t.Fatal("directed graph accepted")
	}
}

// --- KC ---

func TestKCoreOnKnownGraph(t *testing.T) {
	// A 4-clique {0,1,2,3} with a pendant path 3-4-5: clique has core 3,
	// path vertices core 1.
	g := undirected(t, 6, false,
		[2]uint32{0, 1}, [2]uint32{0, 2}, [2]uint32{0, 3},
		[2]uint32{1, 2}, [2]uint32{1, 3}, [2]uint32{2, 3},
		[2]uint32{3, 4}, [2]uint32{4, 5})
	out, cores, err := KCoreDecomposition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 3, 3, 3, 1, 1}
	for v := range want {
		if cores[v] != want[v] {
			t.Fatalf("core[%d] = %d, want %d (all: %v)", v, cores[v], want[v], cores)
		}
	}
	if out.Summary["maxCore"] != 3 {
		t.Fatalf("maxCore = %v, want 3", out.Summary["maxCore"])
	}
}

func TestKCoreMatchesSerialPeeling(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := powerLawGraph(t, 1500, 2.2, seed+10, false)
		_, cores, err := KCoreDecomposition(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := serialCores(g)
		for v := range want {
			if cores[v] != want[v] {
				t.Fatalf("seed %d: core[%d] = %d, want %d", seed, v, cores[v], want[v])
			}
		}
	}
}

// --- TC ---

func TestTriangleCountingKnown(t *testing.T) {
	// Two triangles sharing edge 1-2: {0,1,2} and {1,2,3}.
	g := undirected(t, 4, true,
		[2]uint32{0, 1}, [2]uint32{0, 2}, [2]uint32{1, 2},
		[2]uint32{1, 3}, [2]uint32{2, 3})
	out, triangles, err := TriangleCounting(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if triangles != 2 {
		t.Fatalf("triangles = %d, want 2", triangles)
	}
	// One effective iteration: everything quiesces immediately after.
	if out.Trace.NumIterations() != 1 {
		t.Fatalf("iterations = %d, want 1", out.Trace.NumIterations())
	}
	// EREAD per iteration = 2 per edge (each arc visited once).
	if out.Trace.Iterations[0].EdgeReads != 10 {
		t.Fatalf("edge reads = %d, want 10", out.Trace.Iterations[0].EdgeReads)
	}
}

func TestTriangleCountingMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := powerLawGraph(t, 1200, 2.0, seed+20, true)
		_, triangles, err := TriangleCounting(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := serialTriangles(g); triangles != want {
			t.Fatalf("seed %d: triangles = %d, want %d", seed, triangles, want)
		}
	}
}

func TestTriangleCountingRequiresSorted(t *testing.T) {
	g := undirected(t, 3, false, [2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{0, 2})
	if _, _, err := TriangleCounting(g, Options{}); err == nil {
		t.Fatal("unsorted adjacency accepted")
	}
}

// --- SSSP ---

func TestSSSPMatchesDijkstraUnweighted(t *testing.T) {
	g := powerLawGraph(t, 3000, 2.5, 31, false)
	out, dist, err := SingleSourceShortestPath(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := dijkstra(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
	// Paper: only the source is active initially, then the frontier grows.
	if out.Trace.Iterations[0].Active != 1 {
		t.Fatalf("initial active = %d, want 1", out.Trace.Iterations[0].Active)
	}
	if len(out.Trace.Iterations) > 1 && out.Trace.Iterations[1].Active <= 0 {
		t.Fatal("frontier did not grow")
	}
}

func TestSSSPWeighted(t *testing.T) {
	b := graph.NewBuilder(4, false).Weighted()
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(0, 2, 1)
	b.AddWeightedEdge(2, 1, 1)
	b.AddWeightedEdge(1, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, dist, err := SingleSourceShortestPath(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 1, 3}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

// --- PR ---

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := powerLawGraph(t, 2000, 2.5, 41, false)
	out, ranks, err := PageRank(g, PageRankOptions{Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want := densePageRank(g, 0.85, 200)
	for v := range want {
		if math.Abs(ranks[v]-want[v]) > 1e-4*(1+want[v]) {
			t.Fatalf("rank[%d] = %v, want %v", v, ranks[v], want[v])
		}
	}
	// All vertices begin active and activity declines (paper §1).
	its := out.Trace.Iterations
	if its[0].Active != int64(g.NumVertices()) {
		t.Fatalf("initial active = %d, want all %d", its[0].Active, g.NumVertices())
	}
	last := its[len(its)-1].Active
	if last >= its[0].Active {
		t.Fatalf("activity did not decline: first %d, last %d", its[0].Active, last)
	}
}

// --- AD ---

func TestApproximateDiameterOnPath(t *testing.T) {
	n := 30
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, diameter, err := ApproximateDiameter(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FM sketches can only underestimate when hashes collide; a path's
	// sketches change every hop, so the estimate should be exact here.
	if want := exactDiameter(g); diameter != want {
		t.Fatalf("diameter = %d, want %d", diameter, want)
	}
	// Paper: AD has active fraction 1.0 for the whole lifecycle.
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(n) {
			t.Fatalf("iteration %d active = %d, want %d", it.Iteration, it.Active, n)
		}
	}
}

func TestApproximateDiameterClosePowerLaw(t *testing.T) {
	g := powerLawGraph(t, 2000, 2.2, 51, false)
	_, diameter, err := ApproximateDiameter(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := exactDiameter(g)
	// Sketches can stop growing a hop or two early when the last vertices
	// reached contribute no new bits (hash collisions) — that is the
	// "approximate" in Approximate Diameter. Accept a small underestimate.
	if diameter > want || diameter < want-2 {
		t.Fatalf("diameter = %d, want within [%d, %d]", diameter, want-2, want)
	}
}
