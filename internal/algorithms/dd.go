package algorithms

import (
	"fmt"
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// ddMaxStates bounds variable cardinality for fixed-size scratch.
const ddMaxStates = 4

// ddState is a vertex's current primal choice from its own subproblem,
// the disagreement count against its edge subproblems, and this vertex's
// contribution to the dual objective (its own subproblem minimum plus half
// of each incident edge subproblem's minimum).
type ddState struct {
	Assign   int32
	Disagree int32
	DualPart float64
}

// ddProgram solves MAP inference by projected-subgradient Dual
// Decomposition (§2.1: "solves a relaxation of difficult optimization
// problems by decomposing them into simpler sub-problems"). The MRF is
// decomposed into one subproblem per edge plus one per vertex, coupled by
// Lagrange multipliers λ_{v,e}(x_v) stored on the arcs (arc a = v→u holds
// v's duals for edge {v,u}).
//
// Each iteration:
//   - gather solves every incident edge subproblem (an edge read per arc):
//     min over (x_v, x_u) of θ_e − λ_{v,e}(x_v) − λ_{u,e}(x_u), recording
//     the minimizing x_v in arc-owned scratch;
//   - apply solves the vertex subproblem min_x θ_v(x) + Σ_e λ_{v,e}(x) and
//     counts disagreements with the edge minimizers;
//   - scatter takes the subgradient step λ_{v,e}(x) += step·(1[x = x̂_v^e]
//     − 1[x = x̂_v]) on the vertex's own duals, and signals neighbors.
//
// All vertices stay active every iteration (§4.4) and the decaying
// 1/√t step makes DD the slowest-converging algorithm in the suite, as
// the paper notes (three orders of magnitude more iterations than TC).
type ddProgram struct {
	m    *graph.MRF
	rev  []int64
	dual []float64 // numArcs × states: λ of the arc's source vertex
	// edgeMin[a] is the x_v minimizer of arc a's edge subproblem as seen
	// from the source vertex of a; written during v's gather, read during
	// v's apply and scatter (vertex-owned).
	edgeMin []int32
	step0   float64
	step    float64
	theta   [][]float64 // negative log unary: θ_v(x) = -log ψ_v(x)

	// bestDual is the best (largest) dual lower bound seen so far — by
	// weak duality it never exceeds the MAP energy.
	bestDual float64
}

func (p *ddProgram) states() int { return p.m.Card[0] }

func (p *ddProgram) Init(_ *graph.Graph, _ uint32) (ddState, bool) {
	return ddState{Assign: 0, Disagree: math.MaxInt32}, true
}

func (p *ddProgram) GatherDirection() engine.Direction { return engine.Out }

// Gather solves one edge subproblem from v's perspective and records the
// minimizing x_v. The accumulated value is the subproblem minimum — the
// edge's contribution to the dual objective.
func (p *ddProgram) Gather(v uint32, e engine.Arc, _, _ ddState) float64 {
	n := p.states()
	nu := p.m.Card[e.Other]
	myDual := p.dual[e.Index*int64(n) : e.Index*int64(n)+int64(n)]
	otherDual := p.dual[p.rev[e.Index]*int64(nu) : p.rev[e.Index]*int64(nu)+int64(nu)]
	best := math.Inf(1)
	bestXv := int32(0)
	for xv := 0; xv < n; xv++ {
		for xu := 0; xu < nu; xu++ {
			// θ_e = -log φ; duals shift the endpoint costs.
			cost := -math.Log(p.m.PairwiseFor(e.Index, v, xv, xu)) +
				myDual[xv] + otherDual[xu]
			if cost < best {
				best = cost
				bestXv = int32(xv)
			}
		}
	}
	p.edgeMin[e.Index] = bestXv
	// Each edge subproblem is shared by two endpoints; halve so the dual
	// objective counts it once.
	return best / 2
}

func (p *ddProgram) Sum(a, b float64) float64 { return a + b }

// Apply solves the vertex subproblem and counts edge disagreements.
func (p *ddProgram) Apply(v uint32, _ ddState, acc float64, hasAcc bool) ddState {
	n := p.states()
	lo, hi := p.m.G.OutArcRange(v)
	best := math.Inf(1)
	bestX := int32(0)
	for x := 0; x < n; x++ {
		cost := p.theta[v][x]
		for a := lo; a < hi; a++ {
			cost -= p.dual[a*int64(n)+int64(x)]
		}
		if cost < best {
			best = cost
			bestX = int32(x)
		}
	}
	var dis int32
	for a := lo; a < hi; a++ {
		if p.edgeMin[a] != bestX {
			dis++
		}
	}
	dual := best
	if hasAcc {
		dual += acc // the halved incident-edge subproblem minima
	}
	return ddState{Assign: bestX, Disagree: dis, DualPart: dual}
}

func (p *ddProgram) ScatterDirection() engine.Direction { return engine.Out }

// Scatter applies the subgradient step on the vertex's own duals and keeps
// the whole graph active.
func (p *ddProgram) Scatter(v uint32, e engine.Arc, self, _ ddState) bool {
	n := p.states()
	d := p.dual[e.Index*int64(n) : e.Index*int64(n)+int64(n)]
	em := p.edgeMin[e.Index]
	if em != self.Assign {
		// Push the edge minimizer up and the vertex minimizer down so the
		// two subproblems move toward agreement.
		d[em] += p.step
		d[self.Assign] -= p.step
	}
	return true
}

func (p *ddProgram) PostIteration(c *engine.Control[ddState]) bool {
	it := c.Iteration()
	p.step = p.step0 / math.Sqrt(float64(it+1))
	disagreements := 0
	dual := 0.0
	for _, s := range c.States() {
		disagreements += int(s.Disagree)
		dual += s.DualPart
	}
	if dual > p.bestDual || it == 0 {
		p.bestDual = dual
	}
	if disagreements == 0 {
		return true // primal agreement: MAP certificate
	}
	// All vertices (even isolated variables) stay active every iteration.
	c.ActivateAll()
	return false
}

// DDOptions extends Options with the subgradient schedule.
type DDOptions struct {
	Options
	// Step0 is the initial subgradient step (default 0.5); the schedule
	// is Step0/√t.
	Step0 float64
}

// DualDecomposition runs MAP inference on a pairwise MRF with uniform
// cardinality (≤ 4). It returns per-vertex assignments from the vertex
// subproblems. Summary reports "disagreements" at the final iteration and
// "energy" of the returned assignment (−log potential sum).
func DualDecomposition(m *graph.MRF, opt DDOptions) (*Output, []int, error) {
	n := m.Card[0]
	if n > ddMaxStates {
		return nil, nil, fmt.Errorf("algorithms: DD supports at most %d states, got %d", ddMaxStates, n)
	}
	for v, c := range m.Card {
		if c != n {
			return nil, nil, fmt.Errorf("algorithms: DD requires uniform cardinality (vertex %d has %d, want %d)", v, c, n)
		}
	}
	step0 := opt.Step0
	if step0 == 0 {
		step0 = 0.5
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 3000
	}
	arcs := m.G.NumArcs()
	theta := make([][]float64, m.G.NumVertices())
	for v := range theta {
		theta[v] = make([]float64, n)
		for x := 0; x < n; x++ {
			theta[v][x] = -math.Log(m.Unary[v][x])
		}
	}
	p := &ddProgram{
		m:       m,
		rev:     m.G.ReverseArcs(),
		dual:    make([]float64, arcs*int64(n)),
		edgeMin: make([]int32, arcs),
		step0:   step0,
		step:    step0,
		theta:   theta,
	}
	res, err := engine.Run[ddState, float64](m.G, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	assign := make([]int, len(res.States))
	disagreements := 0.0
	for v, s := range res.States {
		assign[v] = int(s.Assign)
		disagreements += float64(s.Disagree)
	}
	out := &Output{
		Trace: res.Trace,
		Summary: map[string]float64{
			"disagreements": disagreements,
			"energy":        mrfEnergy(m, assign),
			"bestDual":      p.bestDual,
		},
	}
	return out, assign, nil
}

// mrfEnergy returns −log of the unnormalized probability of an assignment.
func mrfEnergy(m *graph.MRF, assign []int) float64 {
	var e float64
	for v := range assign {
		e += -math.Log(m.Unary[v][assign[v]])
	}
	g := m.G
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			if g.ArcTarget(a) < u {
				continue // count each edge once
			}
			e += -math.Log(m.PairwiseFor(a, u, assign[u], assign[g.ArcTarget(a)]))
		}
	}
	return e
}
