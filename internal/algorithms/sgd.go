package algorithms

import (
	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// sgdProgram minimizes squared rating-reconstruction error by gradient
// descent (§2.1: "a gradient descent optimization method for minimizing an
// objective function that is written as a sum of differentiable
// functions"). In the synchronous GAS model each vertex accumulates its
// edge gradients in gather and steps in apply; both sides update every
// iteration, all vertices stay active, and the run stops at the paper's
// 20-iteration cap. SGD "requires the most message transferring" (Fig. 13)
// because every vertex signals every rated counterpart every iteration.
type sgdProgram struct {
	lr    float64
	reg   float64
	iters int
}

func (p *sgdProgram) Init(_ *graph.Graph, v uint32) (cfState, bool) {
	return cfState{F: initFactor(v, 0.5)}, true
}

func (p *sgdProgram) GatherDirection() engine.Direction { return engine.Both }

// Gather returns the gradient contribution of one rating:
// err·f_other where err = rating − ⟨f_self, f_other⟩.
func (p *sgdProgram) Gather(_ uint32, e engine.Arc, self, other cfState) cfFactor {
	pred := 0.0
	for i := 0; i < cfRank; i++ {
		pred += self.F[i] * other.F[i]
	}
	errTerm := e.Weight - pred
	var g cfFactor
	for i := 0; i < cfRank; i++ {
		g[i] = errTerm * other.F[i]
	}
	return g
}

func (p *sgdProgram) Sum(a, b cfFactor) cfFactor {
	for i := 0; i < cfRank; i++ {
		a[i] += b[i]
	}
	return a
}

func (p *sgdProgram) Apply(_ uint32, self cfState, acc cfFactor, hasAcc bool) cfState {
	if !hasAcc {
		return self
	}
	for i := 0; i < cfRank; i++ {
		self.F[i] += p.lr * (acc[i] - p.reg*self.F[i])
	}
	return self
}

func (p *sgdProgram) ScatterDirection() engine.Direction { return engine.Both }

func (p *sgdProgram) Scatter(uint32, engine.Arc, cfState, cfState) bool { return true }

func (p *sgdProgram) PostIteration(c *engine.Control[cfState]) bool {
	if c.Iteration() >= p.iters-1 {
		return true
	}
	// Keep even isolated vertices active for the paper's all-active
	// lifecycle (§4.3).
	c.ActivateAll()
	return false
}

// SGDOptions extends Options with the learning schedule.
type SGDOptions struct {
	Options
	// LearningRate defaults to 0.01.
	LearningRate float64
	// Regularization defaults to 0.05.
	Regularization float64
	// Iterations defaults to 20 (the paper's cap).
	Iterations int
}

// StochasticGradientDescent factorizes the rating graph by gradient
// steps. Summary reports "rmse".
func StochasticGradientDescent(g *graph.Graph, numUsers int, opt SGDOptions) (*Output, []cfFactor, error) {
	if err := checkBipartite(g, numUsers); err != nil {
		return nil, nil, err
	}
	lr := opt.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	reg := opt.Regularization
	if reg == 0 {
		reg = 0.05
	}
	iters := opt.Iterations
	if iters == 0 {
		iters = cfIterationCap
	}
	p := &sgdProgram{lr: lr, reg: reg, iters: iters}
	res, err := engine.Run[cfState, cfFactor](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	factors := make([]cfFactor, len(res.States))
	for v, s := range res.States {
		factors[v] = s.F
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"rmse": ratingRMSE(g, factors)},
	}
	return out, factors, nil
}
