// Package algorithms implements the paper's fourteen graph computations as
// GAS vertex programs (§2.1):
//
//   - Graph Analytics: Connected Components (CC), K-Core decomposition
//     (KC), Triangle Counting (TC), Single-Source Shortest Path (SSSP),
//     PageRank (PR), Approximate Diameter (AD);
//   - Clustering: K-Means (KM);
//   - Collaborative Filtering: Alternating Least Squares (ALS),
//     Non-negative Matrix Factorization (NMF), Stochastic Gradient Descent
//     (SGD), Singular Value Decomposition (SVD, restarted Lanczos);
//   - Linear solver: Jacobi;
//   - Graphical models: Loopy Belief Propagation (LBP), Dual
//     Decomposition (DD).
//
// Every algorithm returns the engine's per-iteration behavior trace, from
// which the behavior-space vectors of §5 are computed.
package algorithms

import (
	"context"
	"fmt"
	"strings"

	"gcbench/internal/engine"
	"gcbench/internal/trace"
)

// Options configures an algorithm run.
type Options struct {
	// Workers is the engine parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxIterations caps the engine; 0 means the engine default. Most
	// algorithms converge on their own; NMF and SGD self-cap at 20
	// iterations as in the paper (§3.3).
	MaxIterations int
	// Context, when non-nil, cancels the computation cooperatively at the
	// next engine iteration barrier (used by sweep campaigns for per-run
	// timeouts and campaign-wide cancellation).
	Context context.Context
	// Frontier selects the engine's active-set scheduling strategy. The
	// zero value is FrontierAuto. The behavior metrics the paper defines
	// are identical across modes; only execution speed differs.
	Frontier FrontierMode
}

// FrontierMode selects dense, sparse or adaptive active-set scheduling.
type FrontierMode = engine.FrontierMode

// Frontier scheduling modes.
const (
	FrontierAuto   = engine.FrontierAuto
	FrontierDense  = engine.FrontierDense
	FrontierSparse = engine.FrontierSparse
)

// ParseFrontierMode resolves a case-insensitive -frontier flag value.
var ParseFrontierMode = engine.ParseFrontierMode

func (o Options) engineOptions() engine.Options {
	return engine.Options{Workers: o.Workers, MaxIterations: o.MaxIterations, Context: o.Context, Frontier: o.Frontier}
}

// Output bundles a run's behavior trace with algorithm-specific summary
// statistics (e.g. number of components, triangle count, top singular
// value) for correctness checks and reporting.
type Output struct {
	Trace   *trace.RunTrace
	Summary map[string]float64
}

// Name identifies an algorithm in sweeps, reports and ensemble tables.
type Name string

// Algorithm names, using the paper's abbreviations.
const (
	CC     Name = "CC"
	KC     Name = "KC"
	TC     Name = "TC"
	SSSP   Name = "SSSP"
	PR     Name = "PR"
	AD     Name = "AD"
	KM     Name = "KM"
	ALS    Name = "ALS"
	NMF    Name = "NMF"
	SGD    Name = "SGD"
	SVD    Name = "SVD"
	Jacobi Name = "Jacobi"
	LBP    Name = "LBP"
	DD     Name = "DD"
)

// AllNames lists every algorithm in the paper's presentation order.
func AllNames() []Name {
	return []Name{CC, KC, TC, SSSP, PR, AD, KM, ALS, NMF, SGD, SVD, Jacobi, LBP, DD}
}

// Parse resolves a case-insensitive algorithm name.
func Parse(s string) (Name, error) {
	for _, n := range AllNames() {
		if strings.EqualFold(s, string(n)) {
			return n, nil
		}
	}
	return "", fmt.Errorf("algorithms: unknown algorithm %q (known: %v)", s, AllNames())
}

// Domain returns the paper's application domain of an algorithm.
func (n Name) Domain() string {
	switch n {
	case CC, KC, TC, SSSP, PR, AD:
		return "Graph Analytics"
	case KM:
		return "Clustering"
	case ALS, NMF, SGD, SVD:
		return "Collaborative Filtering"
	case Jacobi:
		return "Linear Solver"
	case LBP, DD:
		return "Graphical Model"
	default:
		return "Unknown"
	}
}

// ConstantBehavior reports whether the algorithm keeps all vertices active
// with repetitive per-iteration behavior — the property §5.6 exploits to
// shorten runs (AD, KM, NMF, SGD, SVD).
func (n Name) ConstantBehavior() bool {
	switch n {
	case AD, KM, NMF, SGD, SVD:
		return true
	}
	return false
}
