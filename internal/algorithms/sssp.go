package algorithms

import (
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// ssspProgram relaxes distances from a single source. Only the source is
// active initially; the active fraction grows rapidly as the frontier
// expands (§1). Unweighted graphs relax with unit edge length, so on the
// paper's Graph Analytics inputs this computes hop distance.
type ssspProgram struct {
	source uint32
}

func (p *ssspProgram) Init(_ *graph.Graph, v uint32) (float64, bool) {
	if v == p.source {
		return 0, true
	}
	return math.Inf(1), false
}

func (p *ssspProgram) GatherDirection() engine.Direction { return engine.In }

func (p *ssspProgram) Gather(_ uint32, e engine.Arc, _, other float64) float64 {
	return other + e.Weight
}

func (p *ssspProgram) Sum(a, b float64) float64 { return math.Min(a, b) }

func (p *ssspProgram) Apply(_ uint32, self, acc float64, hasAcc bool) float64 {
	if hasAcc && acc < self {
		return acc
	}
	return self
}

func (p *ssspProgram) ScatterDirection() engine.Direction { return engine.Out }

func (p *ssspProgram) Scatter(_ uint32, e engine.Arc, self, other float64) bool {
	return self+e.Weight < other
}

// SingleSourceShortestPath computes distances from source to every vertex
// (Inf for unreachable). Summary reports "reached" and "maxDistance".
func SingleSourceShortestPath(g *graph.Graph, source uint32, opt Options) (*Output, []float64, error) {
	res, err := engine.Run[float64, float64](g, &ssspProgram{source: source}, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	reached, maxDist := 0, 0.0
	for _, d := range res.States {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	out := &Output{
		Trace: res.Trace,
		Summary: map[string]float64{
			"reached":     float64(reached),
			"maxDistance": maxDist,
		},
	}
	return out, res.States, nil
}
