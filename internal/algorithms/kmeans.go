package algorithms

import (
	"fmt"
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
	"gcbench/internal/rng"
)

// maxK bounds the cluster count so gather accumulators stay fixed-size
// (no allocation per edge read).
const maxK = 16

// kmState is a vertex's cluster assignment plus a change flag consulted by
// scatter and the convergence driver.
type kmState struct {
	Assign  int32
	Changed bool
}

// kmVotes accumulates neighbor assignment votes, weighted by edge weight —
// the "pairwise rewards between vertices" of the paper's clustering inputs
// (§3.2).
type kmVotes [maxK]float64

// kmProgram is graph-regularized K-Means: each vertex (a 2-D data point)
// joins the cluster minimizing squared distance to the centroid minus a
// reward for agreeing with its graph neighbors. Centroids are recomputed
// each iteration in the PreIteration aggregator, exactly where GraphLab's
// K-Means puts its map-reduce step. Per the paper, all vertices stay
// active the whole lifecycle (Fig. 5); scatter messages flow to neighbors
// of vertices whose assignment changed (§2.1).
type kmProgram struct {
	g         *graph.Graph
	k         int
	lambda    float64
	centroids [][2]float64
	counts    []float64
	anyChange bool
	moved     float64
	tol       float64
}

func (p *kmProgram) Init(g *graph.Graph, v uint32) (kmState, bool) {
	// Initial assignment: nearest seed centroid.
	return kmState{Assign: p.nearest(g.Features(v), nil), Changed: true}, true
}

// nearest returns the centroid index minimizing cost for the point,
// with optional neighbor votes.
func (p *kmProgram) nearest(pt []float64, votes *kmVotes) int32 {
	best := int32(0)
	bestCost := math.Inf(1)
	for c := 0; c < p.k; c++ {
		dx := pt[0] - p.centroids[c][0]
		dy := pt[1] - p.centroids[c][1]
		cost := dx*dx + dy*dy
		if votes != nil {
			cost -= p.lambda * votes[c]
		}
		if cost < bestCost {
			bestCost = cost
			best = int32(c)
		}
	}
	return best
}

func (p *kmProgram) GatherDirection() engine.Direction { return engine.Out }

// Gather reads the neighbor's assignment through the edge — this is why
// K-Means "requires the most data transferring" (Fig. 13): every edge is
// read every iteration.
func (p *kmProgram) Gather(_ uint32, e engine.Arc, _, other kmState) kmVotes {
	var v kmVotes
	if int(other.Assign) < p.k {
		v[other.Assign] = e.Weight
	}
	return v
}

func (p *kmProgram) Sum(a, b kmVotes) kmVotes {
	for i := 0; i < p.k; i++ {
		a[i] += b[i]
	}
	return a
}

func (p *kmProgram) Apply(v uint32, self kmState, acc kmVotes, hasAcc bool) kmState {
	var votes *kmVotes
	if hasAcc {
		votes = &acc
	}
	next := p.nearest(p.g.Features(v), votes)
	return kmState{Assign: next, Changed: next != self.Assign}
}

func (p *kmProgram) ScatterDirection() engine.Direction { return engine.Out }

// Scatter: "each vertex sends messages to neighbors when the cluster
// assignment has changed" (§2.1).
func (p *kmProgram) Scatter(_ uint32, _ engine.Arc, self, _ kmState) bool {
	return self.Changed
}

// PreIteration recomputes centroids from the current assignments — the
// aggregator half of Lloyd's algorithm.
func (p *kmProgram) PreIteration(c *engine.Control[kmState]) {
	for i := range p.centroids {
		p.counts[i] = 0
	}
	sums := make([][2]float64, p.k)
	for v, s := range c.States() {
		pt := p.g.Features(uint32(v))
		sums[s.Assign][0] += pt[0]
		sums[s.Assign][1] += pt[1]
		p.counts[s.Assign]++
	}
	p.moved = 0
	for i := 0; i < p.k; i++ {
		if p.counts[i] == 0 {
			continue // empty cluster keeps its centroid
		}
		nx := sums[i][0] / p.counts[i]
		ny := sums[i][1] / p.counts[i]
		p.moved += math.Hypot(nx-p.centroids[i][0], ny-p.centroids[i][1])
		p.centroids[i] = [2]float64{nx, ny}
	}
}

// PostIteration keeps every vertex active while anything still moves
// (assignments or centroids), reproducing the paper's constant active
// fraction of 1.0 for KM.
func (p *kmProgram) PostIteration(c *engine.Control[kmState]) bool {
	p.anyChange = false
	for _, s := range c.States() {
		if s.Changed {
			p.anyChange = true
			break
		}
	}
	if p.anyChange || p.moved > p.tol {
		c.ActivateAll()
		return false
	}
	return true
}

// KMeansOptions extends Options with clustering parameters.
type KMeansOptions struct {
	Options
	// K is the cluster count (default 8, max 16).
	K int
	// Lambda is the neighbor-agreement reward weight (default 0.1).
	Lambda float64
	// Seed selects the centroid initialization.
	Seed uint64
}

// KMeans clusters the graph's 2-D vertex features into k groups with a
// graph-smoothness reward. The graph must carry 2-D features (use
// gen.GaussianPoints2D). Summary reports "inertia" (sum of squared
// distances) and "clusters" (non-empty count).
func KMeans(g *graph.Graph, opt KMeansOptions) (*Output, []int32, error) {
	if g.FeatureDim() != 2 {
		return nil, nil, fmt.Errorf("algorithms: KM requires 2-D vertex features, have dim %d", g.FeatureDim())
	}
	k := opt.K
	if k == 0 {
		k = 8
	}
	if k < 1 || k > maxK {
		return nil, nil, fmt.Errorf("algorithms: KM cluster count %d outside [1, %d]", k, maxK)
	}
	lambda := opt.Lambda
	if lambda == 0 {
		lambda = 0.1
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 2000
	}
	p := &kmProgram{
		g:      g,
		k:      k,
		lambda: lambda,
		counts: make([]float64, k),
		tol:    1e-9,
	}
	// Seed centroids from k random vertices' points.
	r := rng.New(opt.Seed ^ 0x6b6d) // "km"
	p.centroids = make([][2]float64, k)
	for i := 0; i < k; i++ {
		pt := g.Features(uint32(r.Intn(g.NumVertices())))
		p.centroids[i] = [2]float64{pt[0], pt[1]}
	}

	res, err := engine.Run[kmState, kmVotes](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	assign := make([]int32, len(res.States))
	inertia := 0.0
	used := make(map[int32]struct{})
	for v, s := range res.States {
		assign[v] = s.Assign
		used[s.Assign] = struct{}{}
		pt := g.Features(uint32(v))
		dx := pt[0] - p.centroids[s.Assign][0]
		dy := pt[1] - p.centroids[s.Assign][1]
		inertia += dx*dx + dy*dy
	}
	out := &Output{
		Trace: res.Trace,
		Summary: map[string]float64{
			"inertia":  inertia,
			"clusters": float64(len(used)),
		},
	}
	return out, assign, nil
}
