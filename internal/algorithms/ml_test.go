package algorithms

import (
	"math"
	"testing"

	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// ratingGraph builds a small bipartite rating graph for CF tests.
func ratingGraph(t testing.TB, edges int64, alpha float64, seed uint64) (*graph.Graph, int) {
	t.Helper()
	g, users, err := gen.Bipartite(gen.BipartiteConfig{NumEdges: edges, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g, users
}

// lowRankRatingGraph builds an exactly rank-2 rating matrix so the
// factorizers have a reachable optimum.
func lowRankRatingGraph(t testing.TB, users, perUser int) (*graph.Graph, int) {
	t.Helper()
	n := 2 * users
	b := graph.NewBuilder(n, true).Weighted().Dedup()
	for u := 0; u < users; u++ {
		// Rank-2 latent structure.
		u1 := 1 + 0.5*math.Sin(float64(u))
		u2 := 1 + 0.5*math.Cos(float64(2*u))
		for k := 0; k < perUser; k++ {
			item := (u*perUser + k*7) % users
			i1 := 1 + 0.5*math.Cos(float64(item))
			i2 := 1 + 0.5*math.Sin(float64(3*item))
			b.AddWeightedEdge(uint32(u), uint32(users+item), u1*i1+u2*i2)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, users
}

// initialRMSE evaluates the RMSE of the deterministic starting factors, to
// show the optimizers actually improved on it.
func initialRMSE(g *graph.Graph, scale float64) float64 {
	f := make([]cfFactor, g.NumVertices())
	for v := range f {
		f[v] = initFactor(uint32(v), scale)
	}
	return ratingRMSE(g, f)
}

// --- KM ---

func kmGraph(t testing.TB, edges int64, points int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: edges, Alpha: 2.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	pts := gen.GaussianPoints2D(g.NumVertices(), 4, 20, seed)
	if err := g.SetFeatures(2, pts); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKMeansConvergesAndClusters(t *testing.T) {
	g := kmGraph(t, 2000, 0, 3)
	out, assign, err := KMeans(g, KMeansOptions{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trace.Converged {
		t.Fatal("KM did not converge")
	}
	if out.Summary["clusters"] < 2 {
		t.Fatalf("clusters = %v, want at least 2", out.Summary["clusters"])
	}
	if len(assign) != g.NumVertices() {
		t.Fatalf("assignment length %d", len(assign))
	}
	// Paper (Fig. 5): all vertices active for the whole lifecycle.
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(g.NumVertices()) {
			t.Fatalf("iteration %d active = %d, want all %d", it.Iteration, it.Active, g.NumVertices())
		}
	}
	// EREAD should be constant across iterations (all arcs every time).
	first := out.Trace.Iterations[0].EdgeReads
	for _, it := range out.Trace.Iterations {
		if it.EdgeReads != first {
			t.Fatalf("EREAD varies: %d vs %d", it.EdgeReads, first)
		}
	}
}

// lloydReference runs plain serial Lloyd's with the same init to bound the
// inertia KMeans should reach (graph coupling perturbs it, but on a
// lambda=0 run they must match exactly).
func TestKMeansLambdaZeroMatchesLloyd(t *testing.T) {
	g := kmGraph(t, 500, 0, 7)
	n := g.NumVertices()
	const k = 3
	// Replicate the centroid seeding of KMeans.
	out, assign, err := KMeans(g, KMeansOptions{K: k, Lambda: -1e-30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Serial Lloyd's from the same starting assignment cannot produce a
	// worse inertia than what KMeans reports if both converged; instead of
	// replicating seeding, verify the fixed point property: each point is
	// assigned to its nearest final centroid.
	cent := make([][2]float64, k)
	cnt := make([]float64, k)
	for v := 0; v < n; v++ {
		pt := g.Features(uint32(v))
		cent[assign[v]][0] += pt[0]
		cent[assign[v]][1] += pt[1]
		cnt[assign[v]]++
	}
	for c := 0; c < k; c++ {
		if cnt[c] > 0 {
			cent[c][0] /= cnt[c]
			cent[c][1] /= cnt[c]
		}
	}
	for v := 0; v < n; v++ {
		pt := g.Features(uint32(v))
		best, bestD := -1, math.Inf(1)
		for c := 0; c < k; c++ {
			if cnt[c] == 0 {
				continue
			}
			dx, dy := pt[0]-cent[c][0], pt[1]-cent[c][1]
			if d := dx*dx + dy*dy; d < bestD {
				bestD, best = d, c
			}
		}
		if best != int(assign[v]) {
			// Allow ties.
			dx, dy := pt[0]-cent[assign[v]][0], pt[1]-cent[assign[v]][1]
			if dx*dx+dy*dy > bestD+1e-9 {
				t.Fatalf("vertex %d assigned to %d but %d is nearer", v, assign[v], best)
			}
		}
	}
	_ = out
}

func TestKMeansValidation(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 100, Alpha: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := KMeans(g, KMeansOptions{K: 4}); err == nil {
		t.Fatal("graph without features accepted")
	}
	g2 := kmGraph(t, 100, 0, 1)
	if _, _, err := KMeans(g2, KMeansOptions{K: 99}); err == nil {
		t.Fatal("K beyond maxK accepted")
	}
}

// --- ALS ---

func TestALSFitsLowRankMatrix(t *testing.T) {
	g, users := lowRankRatingGraph(t, 60, 12)
	out, _, err := AlternatingLeastSquares(g, users, ALSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trace.Converged {
		t.Fatal("ALS did not converge")
	}
	if rmse := out.Summary["rmse"]; rmse > 0.1 {
		t.Fatalf("ALS RMSE on rank-2 matrix = %v, want < 0.1", rmse)
	}
	// Alternation: iteration 0 activates only users.
	if a := out.Trace.Iterations[0].Active; a != int64(users) {
		t.Fatalf("iteration 0 active = %d, want %d users", a, users)
	}
}

func TestALSImprovesOnRandomRatings(t *testing.T) {
	g, users := ratingGraph(t, 3000, 2.5, 9)
	out, _, err := AlternatingLeastSquares(g, users, ALSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary["rmse"] > initialRMSE(g, 1) {
		t.Fatalf("ALS RMSE %v no better than initial %v", out.Summary["rmse"], initialRMSE(g, 1))
	}
}

func TestALSValidation(t *testing.T) {
	g, _ := ratingGraph(t, 200, 2.5, 1)
	if _, _, err := AlternatingLeastSquares(g, 0, ALSOptions{}); err == nil {
		t.Fatal("numUsers=0 accepted")
	}
	und, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 100, Alpha: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AlternatingLeastSquares(und, 5, ALSOptions{}); err == nil {
		t.Fatal("undirected unweighted graph accepted")
	}
}

// --- NMF ---

func TestNMFRunsTwentyIterationsAllActive(t *testing.T) {
	g, users := ratingGraph(t, 2000, 2.5, 11)
	out, factors, err := NonnegativeMatrixFactorization(g, users, NMFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: NMF runs exactly the 20-iteration cap, all vertices active.
	if out.Trace.NumIterations() != 20 {
		t.Fatalf("iterations = %d, want 20", out.Trace.NumIterations())
	}
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(g.NumVertices()) {
			t.Fatalf("active = %d, want all", it.Active)
		}
	}
	// Non-negativity must be preserved.
	for v, f := range factors {
		for i, x := range f {
			if x < 0 {
				t.Fatalf("factor[%d][%d] = %v negative", v, i, x)
			}
		}
	}
	if out.Summary["rmse"] > initialRMSE(g, 1) {
		t.Fatalf("NMF RMSE %v no better than initial %v", out.Summary["rmse"], initialRMSE(g, 1))
	}
}

func TestNMFReducesRMSEMonotonicallyOnAverage(t *testing.T) {
	g, users := lowRankRatingGraph(t, 50, 10)
	short, _, err := NonnegativeMatrixFactorization(g, users, NMFOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	long, _, err := NonnegativeMatrixFactorization(g, users, NMFOptions{Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if long.Summary["rmse"] > short.Summary["rmse"]+1e-9 {
		t.Fatalf("more NMF iterations worsened RMSE: %v → %v",
			short.Summary["rmse"], long.Summary["rmse"])
	}
}

// --- SGD ---

func TestSGDImprovesRMSE(t *testing.T) {
	g, users := lowRankRatingGraph(t, 60, 12)
	out, _, err := StochasticGradientDescent(g, users, SGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace.NumIterations() != 20 {
		t.Fatalf("iterations = %d, want the 20-iteration cap", out.Trace.NumIterations())
	}
	if out.Summary["rmse"] > initialRMSE(g, 0.5)*0.8 {
		t.Fatalf("SGD RMSE %v did not improve enough on initial %v",
			out.Summary["rmse"], initialRMSE(g, 0.5))
	}
	// All active, and MSG = all arcs every iteration (paper: SGD is the
	// most message-intensive algorithm).
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(g.NumVertices()) {
			t.Fatalf("active = %d, want all", it.Active)
		}
		if it.Messages != g.NumArcs()*2 {
			// Both directions scatter over every arc.
			t.Fatalf("messages = %d, want %d", it.Messages, g.NumArcs()*2)
		}
	}
}

// --- SVD ---

// denseTopSingularValue is the reference: power iteration on AᵀA.
func denseTopSingularValue(g *graph.Graph, users int) float64 {
	items := g.NumVertices() - users
	v := make([]float64, items)
	for i := range v {
		v[i] = 1
	}
	for iter := 0; iter < 500; iter++ {
		u := make([]float64, users)
		for uu := 0; uu < users; uu++ {
			lo, hi := g.OutArcRange(uint32(uu))
			for a := lo; a < hi; a++ {
				u[uu] += g.ArcWeight(a) * v[int(g.ArcTarget(a))-users]
			}
		}
		nv := make([]float64, items)
		for uu := 0; uu < users; uu++ {
			lo, hi := g.OutArcRange(uint32(uu))
			for a := lo; a < hi; a++ {
				nv[int(g.ArcTarget(a))-users] += g.ArcWeight(a) * u[uu]
			}
		}
		norm := 0.0
		for _, x := range nv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range nv {
			nv[i] /= norm
		}
		v = nv
	}
	// σ = ‖A·v‖ for the converged right singular vector v.
	u := make([]float64, users)
	for uu := 0; uu < users; uu++ {
		lo, hi := g.OutArcRange(uint32(uu))
		for a := lo; a < hi; a++ {
			u[uu] += g.ArcWeight(a) * v[int(g.ArcTarget(a))-users]
		}
	}
	norm := 0.0
	for _, x := range u {
		norm += x * x
	}
	return math.Sqrt(norm)
}

func TestSVDTopSingularValue(t *testing.T) {
	g, users := ratingGraph(t, 1500, 2.5, 13)
	out, sv, err := SingularValueDecomposition(g, users, SVDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := denseTopSingularValue(g, users)
	if math.Abs(sv-want) > 0.01*want {
		t.Fatalf("top singular value = %v, want %v (±1%%)", sv, want)
	}
	if !out.Trace.Converged {
		t.Fatal("SVD did not converge")
	}
	// All vertices active the whole lifecycle.
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(g.NumVertices()) {
			t.Fatalf("active = %d, want all", it.Active)
		}
	}
}

// --- Jacobi ---

func TestJacobiSolvesSystem(t *testing.T) {
	sys, err := gen.Matrix(gen.JacobiConfig{NumRows: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := JacobiSolve(sys, JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trace.Converged {
		t.Fatal("Jacobi did not converge")
	}
	if out.Summary["residual"] > 1e-6 {
		t.Fatalf("residual = %v, want < 1e-6", out.Summary["residual"])
	}
	// All vertices active for all iterations (paper §4.4).
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(sys.G.NumVertices()) {
			t.Fatalf("active = %d, want all", it.Active)
		}
	}
}

func TestJacobiMatchesSerial(t *testing.T) {
	sys, err := gen.Matrix(gen.JacobiConfig{NumRows: 100, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	_, x, err := JacobiSolve(sys, JacobiOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Serial Jacobi reference.
	n := sys.G.NumVertices()
	ref := make([]float64, n)
	next := make([]float64, n)
	for iter := 0; iter < 5000; iter++ {
		for i := uint32(0); int(i) < n; i++ {
			sum := 0.0
			lo, hi := sys.G.OutArcRange(i)
			for a := lo; a < hi; a++ {
				sum += sys.G.ArcWeight(a) * ref[sys.G.ArcTarget(a)]
			}
			next[i] = (sys.B[i] - sum) / sys.Diag[i]
		}
		ref, next = next, ref
	}
	for i := range ref {
		if math.Abs(x[i]-ref[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, serial %v", i, x[i], ref[i])
		}
	}
}

// --- LBP ---

func TestLBPSmoothsGrid(t *testing.T) {
	m, err := gen.Grid(gen.GridConfig{Rows: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, assign, err := LoopyBeliefPropagation(m, LBPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trace.Converged {
		t.Fatal("LBP did not converge")
	}
	if len(assign) != m.G.NumVertices() {
		t.Fatalf("assignment length %d", len(assign))
	}
	// Sharp activity drop (paper Fig. 11): the last iteration must involve
	// far fewer vertices than the first.
	its := out.Trace.Iterations
	if len(its) < 3 {
		t.Fatalf("LBP converged suspiciously fast: %d iterations", len(its))
	}
	if last := its[len(its)-1].Active; last*2 > its[0].Active {
		t.Fatalf("activity did not drop: first %d, last %d", its[0].Active, last)
	}
	// Smoothing: most vertices should agree with most neighbors.
	agree, total := 0, 0
	g := m.G
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(v) {
			total++
			if assign[v] == assign[w] {
				agree++
			}
		}
	}
	if float64(agree)/float64(total) < 0.8 {
		t.Fatalf("neighbor agreement %v, want > 0.8 after Potts smoothing", float64(agree)/float64(total))
	}
}

// serialBPExact compares LBP marginals against brute-force enumeration on
// a tiny MRF (BP is exact on trees).
func TestLBPExactOnTree(t *testing.T) {
	// Path MRF 0-1-2 with 2 states.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	card := []int{2, 2, 2}
	unary := [][]float64{{0.9, 0.1}, {0.5, 0.5}, {0.2, 0.8}}
	pair := [][]float64{{2, 1, 1, 2}, {2, 1, 1, 2}}
	m, err := graph.NewMRF(g, card, unary, pair)
	if err != nil {
		t.Fatal(err)
	}
	_, assign, err := LoopyBeliefPropagation(m, LBPOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force marginals.
	var z float64
	marg := make([][2]float64, 3)
	for x0 := 0; x0 < 2; x0++ {
		for x1 := 0; x1 < 2; x1++ {
			for x2 := 0; x2 < 2; x2++ {
				p := unary[0][x0] * unary[1][x1] * unary[2][x2] *
					pair[0][x0*2+x1] * pair[1][x1*2+x2]
				z += p
				marg[0][x0] += p
				marg[1][x1] += p
				marg[2][x2] += p
			}
		}
	}
	for v := 0; v < 3; v++ {
		want := 0
		if marg[v][1] > marg[v][0] {
			want = 1
		}
		if assign[v] != want {
			t.Fatalf("vertex %d assignment %d, want %d (marginals %v)", v, assign[v], want, marg[v])
		}
	}
}

func TestLBPValidation(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1)
	g, _ := b.Build()
	m, err := graph.NewMRF(g, []int{2, 3},
		[][]float64{{1, 1}, {1, 1, 1}}, [][]float64{{1, 1, 1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoopyBeliefPropagation(m, LBPOptions{}); err == nil {
		t.Fatal("non-uniform cardinality accepted")
	}
}

// --- DD ---

// bruteMAP enumerates all assignments of a tiny MRF.
func bruteMAP(m *graph.MRF) ([]int, float64) {
	n := m.G.NumVertices()
	k := m.Card[0]
	assign := make([]int, n)
	best := make([]int, n)
	bestE := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if e := mrfEnergy(m, assign); e < bestE {
				bestE = e
				copy(best, assign)
			}
			return
		}
		for x := 0; x < k; x++ {
			assign[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestE
}

func TestDDFindsMAPOnSmallMRF(t *testing.T) {
	m, err := gen.MRF(gen.MRFConfig{NumEdges: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.G.NumVertices() > 18 {
		t.Skipf("generated MRF too large for brute force: %d vars", m.G.NumVertices())
	}
	out, assign, err := DualDecomposition(m, DDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, wantE := bruteMAP(m)
	gotE := mrfEnergy(m, assign)
	// Subgradient DD is not guaranteed to close the duality gap, but on
	// small instances it should land at or very near the MAP energy.
	if gotE > wantE+0.05*math.Abs(wantE)+0.5 {
		t.Fatalf("DD energy %v, MAP energy %v", gotE, wantE)
	}
	_ = out
}

func TestDDAllActiveAndSlow(t *testing.T) {
	m, err := gen.MRF(gen.MRFConfig{NumEdges: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DualDecomposition(m, DDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.4: in DD all vertices are active for all iterations.
	for _, it := range out.Trace.Iterations {
		if it.Active != int64(m.G.NumVertices()) {
			t.Fatalf("active = %d, want all %d", it.Active, m.G.NumVertices())
		}
	}
}

// TestDDDualBoundImproves: the best-so-far dual bound is monotone in the
// iteration budget (the runs are deterministic, so the long run's prefix
// matches the short run), and by weak duality it never exceeds the energy
// of any primal assignment.
func TestDDDualBoundImproves(t *testing.T) {
	m, err := gen.MRF(gen.MRFConfig{NumEdges: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	short, _, err := DualDecomposition(m, DDOptions{Options: Options{MaxIterations: 3}})
	if err != nil {
		t.Fatal(err)
	}
	long, assign, err := DualDecomposition(m, DDOptions{Options: Options{MaxIterations: 300}})
	if err != nil {
		t.Fatal(err)
	}
	if long.Summary["bestDual"] < short.Summary["bestDual"]-1e-9 {
		t.Fatalf("best dual regressed with more iterations: %v → %v",
			short.Summary["bestDual"], long.Summary["bestDual"])
	}
	if primal := mrfEnergy(m, assign); long.Summary["bestDual"] > primal+1e-6 {
		t.Fatalf("weak duality violated: dual %v > primal %v", long.Summary["bestDual"], primal)
	}
}

func TestDDWeakDualityAgainstBruteForce(t *testing.T) {
	m, err := gen.MRF(gen.MRFConfig{NumEdges: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.G.NumVertices() > 18 {
		t.Skipf("MRF too large for brute force: %d vars", m.G.NumVertices())
	}
	out, _, err := DualDecomposition(m, DDOptions{Options: Options{MaxIterations: 500}})
	if err != nil {
		t.Fatal(err)
	}
	_, mapE := bruteMAP(m)
	if out.Summary["bestDual"] > mapE+1e-6 {
		t.Fatalf("dual bound %v exceeds MAP energy %v", out.Summary["bestDual"], mapE)
	}
}
