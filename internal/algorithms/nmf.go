package algorithms

import (
	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// cfIterationCap is the paper's iteration budget for the algorithms that
// do not converge on their own: "we set a maximum number of iterations
// (20) for these two algorithms [NMF and SGD]" (§3.3).
const cfIterationCap = 20

// nmfAccum carries the multiplicative-update numerator and denominator.
type nmfAccum struct {
	Num, Den cfFactor
}

// nmfProgram is Non-negative Matrix Factorization by Lee-Seung
// multiplicative updates over the observed ratings. Both sides update
// every iteration from the other side's previous factors (synchronous
// semantics make this a Jacobi-style update), keeping all vertices active
// for the entire lifecycle as the paper observes for NMF (§4.3).
type nmfProgram struct {
	iters int
}

func (p *nmfProgram) Init(_ *graph.Graph, v uint32) (cfState, bool) {
	return cfState{F: initFactor(v, 1)}, true
}

func (p *nmfProgram) GatherDirection() engine.Direction { return engine.Both }

func (p *nmfProgram) Gather(_ uint32, e engine.Arc, self, other cfState) nmfAccum {
	var acc nmfAccum
	pred := 0.0
	for i := 0; i < cfRank; i++ {
		pred += self.F[i] * other.F[i]
	}
	for i := 0; i < cfRank; i++ {
		acc.Num[i] = e.Weight * other.F[i]
		acc.Den[i] = pred * other.F[i]
	}
	return acc
}

func (p *nmfProgram) Sum(a, b nmfAccum) nmfAccum {
	for i := 0; i < cfRank; i++ {
		a.Num[i] += b.Num[i]
		a.Den[i] += b.Den[i]
	}
	return a
}

func (p *nmfProgram) Apply(_ uint32, self cfState, acc nmfAccum, hasAcc bool) cfState {
	if !hasAcc {
		return self
	}
	const eps = 1e-9
	for i := 0; i < cfRank; i++ {
		self.F[i] *= acc.Num[i] / (acc.Den[i] + eps)
	}
	return self
}

func (p *nmfProgram) ScatterDirection() engine.Direction { return engine.Both }

// Scatter signals unconditionally: the iteration budget, not quiescence,
// ends the run.
func (p *nmfProgram) Scatter(uint32, engine.Arc, cfState, cfState) bool { return true }

func (p *nmfProgram) PostIteration(c *engine.Control[cfState]) bool {
	if c.Iteration() >= p.iters-1 {
		return true
	}
	// Keep even isolated vertices active: NMF has "all vertices active for
	// entire lifecycle" (§4.3).
	c.ActivateAll()
	return false
}

// NMFOptions extends Options with the iteration budget (default 20, the
// paper's cap).
type NMFOptions struct {
	Options
	Iterations int
}

// NonnegativeMatrixFactorization factorizes the rating graph into
// non-negative rank-8 factors. Summary reports "rmse".
func NonnegativeMatrixFactorization(g *graph.Graph, numUsers int, opt NMFOptions) (*Output, []cfFactor, error) {
	if err := checkBipartite(g, numUsers); err != nil {
		return nil, nil, err
	}
	iters := opt.Iterations
	if iters == 0 {
		iters = cfIterationCap
	}
	p := &nmfProgram{iters: iters}
	res, err := engine.Run[cfState, nmfAccum](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	factors := make([]cfFactor, len(res.States))
	for v, s := range res.States {
		factors[v] = s.F
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"rmse": ratingRMSE(g, factors)},
	}
	return out, factors, nil
}
