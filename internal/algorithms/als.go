package algorithms

import (
	"fmt"
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
	"gcbench/internal/linalg"
)

// cfRank is the latent factor rank shared by the collaborative-filtering
// algorithms. Fixed at compile time so gather accumulators are plain
// arrays with no per-edge allocation.
const cfRank = 8

// cfFactor is one latent factor vector.
type cfFactor [cfRank]float64

// cfState is a CF vertex's factor and the magnitude of its last update.
type cfState struct {
	F     cfFactor
	Delta float64
}

// initFactor deterministically seeds a vertex's factor from its ID.
func initFactor(v uint32, scale float64) cfFactor {
	var f cfFactor
	x := uint64(v)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for i := range f {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		// Map to (0, scale] — strictly positive so NMF can share it.
		f[i] = scale * (float64(x>>11)/(1<<53) + 1e-3)
	}
	return f
}

// alsAccum carries the per-vertex normal equations: A = Σ f·fᵀ over rated
// counterparts, b = Σ rating·f.
type alsAccum struct {
	A [cfRank * cfRank]float64
	B cfFactor
	N float64
}

// alsProgram is Alternating Least Squares (§2.1): users and items take
// turns solving their ridge-regularized least-squares subproblems. Users
// are sources and items targets of the bipartite rating arcs, so gathering
// and scattering Both directions gives each side exactly its ratings, and
// the alternation emerges from scatter signaling the opposite side.
type alsProgram struct {
	numUsers int
	lambda   float64
	tol      float64
}

func (p *alsProgram) Init(_ *graph.Graph, v uint32) (cfState, bool) {
	// Items get random factors; users start at zero and solve first.
	if int(v) < p.numUsers {
		return cfState{}, true
	}
	return cfState{F: initFactor(v, 1)}, false
}

func (p *alsProgram) GatherDirection() engine.Direction { return engine.Both }

func (p *alsProgram) Gather(_ uint32, e engine.Arc, _, other cfState) alsAccum {
	var acc alsAccum
	for i := 0; i < cfRank; i++ {
		fi := other.F[i]
		acc.B[i] = e.Weight * fi
		row := acc.A[i*cfRank : (i+1)*cfRank]
		for j := 0; j < cfRank; j++ {
			row[j] = fi * other.F[j]
		}
	}
	acc.N = 1
	return acc
}

func (p *alsProgram) Sum(a, b alsAccum) alsAccum {
	for i := range a.A {
		a.A[i] += b.A[i]
	}
	for i := range a.B {
		a.B[i] += b.B[i]
	}
	a.N += b.N
	return a
}

func (p *alsProgram) Apply(_ uint32, self cfState, acc alsAccum, hasAcc bool) cfState {
	if !hasAcc {
		return cfState{F: self.F}
	}
	// Ridge: (A + λ·n·I) f = b, weighted-λ ALS regularization.
	a := acc.A
	for i := 0; i < cfRank; i++ {
		a[i*cfRank+i] += p.lambda * acc.N
	}
	f, err := linalg.CholeskySolve(a[:], acc.B[:])
	if err != nil {
		// Numerically degenerate system: keep the old factor.
		return cfState{F: self.F}
	}
	var next cfState
	delta := 0.0
	for i := range f {
		next.F[i] = f[i]
		if d := math.Abs(f[i] - self.F[i]); d > delta {
			delta = d
		}
	}
	next.Delta = delta
	return next
}

func (p *alsProgram) ScatterDirection() engine.Direction { return engine.Both }

// Scatter wakes the opposite side while this side's factors still move.
func (p *alsProgram) Scatter(_ uint32, _ engine.Arc, self, _ cfState) bool {
	return self.Delta > p.tol
}

// ALSOptions extends Options with factorization parameters.
type ALSOptions struct {
	Options
	// Lambda is the ridge regularization weight (default 0.05).
	Lambda float64
	// Tolerance stops the alternation when no factor coordinate moves
	// more than this (default 5e-3).
	Tolerance float64
}

// AlternatingLeastSquares factorizes the bipartite rating graph (users are
// vertices [0, numUsers), items the rest) into rank-8 latent factors.
// Summary reports "rmse" over the observed ratings.
func AlternatingLeastSquares(g *graph.Graph, numUsers int, opt ALSOptions) (*Output, []cfFactor, error) {
	if err := checkBipartite(g, numUsers); err != nil {
		return nil, nil, err
	}
	lambda := opt.Lambda
	if lambda == 0 {
		lambda = 0.05
	}
	tol := opt.Tolerance
	if tol == 0 {
		tol = 5e-3
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 500
	}
	p := &alsProgram{numUsers: numUsers, lambda: lambda, tol: tol}
	res, err := engine.Run[cfState, alsAccum](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	factors := make([]cfFactor, len(res.States))
	for v, s := range res.States {
		factors[v] = s.F
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"rmse": ratingRMSE(g, factors)},
	}
	return out, factors, nil
}

// checkBipartite validates the CF input convention.
func checkBipartite(g *graph.Graph, numUsers int) error {
	if !g.Directed() || !g.Weighted() {
		return fmt.Errorf("algorithms: CF requires a directed weighted rating graph")
	}
	if numUsers <= 0 || numUsers >= g.NumVertices() {
		return fmt.Errorf("algorithms: numUsers %d outside (0, %d)", numUsers, g.NumVertices())
	}
	return nil
}

// ratingRMSE computes the root-mean-square reconstruction error over all
// observed ratings.
func ratingRMSE(g *graph.Graph, f []cfFactor) float64 {
	var se float64
	var n int64
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			pred := 0.0
			for i := 0; i < cfRank; i++ {
				pred += f[u][i] * f[v][i]
			}
			d := pred - g.ArcWeight(a)
			se += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(se / float64(n))
}
