package algorithms

import (
	"math"

	"gcbench/internal/engine"
	"gcbench/internal/graph"
)

// prState carries a vertex's rank and the change from its last update,
// which scatter consults to decide whether neighbors must recompute.
type prState struct {
	Rank  float64
	Delta float64
}

// prProgram is GraphLab-style PageRank: all vertices start active; a
// vertex gathers the out-degree-normalized ranks of its in-neighbors,
// applies the damped update, and signals out-neighbors only while its own
// rank still moves more than the tolerance. "A vertex becomes inactive
// when its rank remains stable within a given tolerance" (§2.1).
type prProgram struct {
	g       *graph.Graph
	damping float64
	tol     float64
}

func (p *prProgram) Init(_ *graph.Graph, _ uint32) (prState, bool) {
	return prState{Rank: 1, Delta: math.Inf(1)}, true
}

func (p *prProgram) GatherDirection() engine.Direction { return engine.In }

func (p *prProgram) Gather(_ uint32, e engine.Arc, _, other prState) float64 {
	return other.Rank / float64(p.g.OutDegree(e.Other))
}

func (p *prProgram) Sum(a, b float64) float64 { return a + b }

func (p *prProgram) Apply(_ uint32, self prState, acc float64, hasAcc bool) prState {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	newRank := (1 - p.damping) + p.damping*sum
	return prState{Rank: newRank, Delta: math.Abs(newRank - self.Rank)}
}

func (p *prProgram) ScatterDirection() engine.Direction { return engine.Out }

func (p *prProgram) Scatter(_ uint32, _ engine.Arc, self, _ prState) bool {
	return self.Delta > p.tol
}

// PageRankOptions extends Options with the damping factor and stability
// tolerance (defaults 0.85 and 1e-3).
type PageRankOptions struct {
	Options
	Damping   float64
	Tolerance float64
}

// PageRank ranks vertices by the damped random-surfer model. On the
// paper's undirected Graph Analytics inputs every edge carries rank both
// ways. Summary reports "maxRank" and "sumRank".
func PageRank(g *graph.Graph, opt PageRankOptions) (*Output, []float64, error) {
	damping := opt.Damping
	if damping == 0 {
		damping = 0.85
	}
	tol := opt.Tolerance
	if tol == 0 {
		tol = 1e-3
	}
	p := &prProgram{g: g, damping: damping, tol: tol}
	res, err := engine.Run[prState, float64](g, p, opt.engineOptions())
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float64, len(res.States))
	maxRank, sum := 0.0, 0.0
	for i, s := range res.States {
		ranks[i] = s.Rank
		sum += s.Rank
		if s.Rank > maxRank {
			maxRank = s.Rank
		}
	}
	out := &Output{
		Trace:   res.Trace,
		Summary: map[string]float64{"maxRank": maxRank, "sumRank": sum},
	}
	return out, ranks, nil
}
