package algorithms

import (
	"math"
	"testing"

	"gcbench/internal/graph"
)

// Degenerate-input tests: every algorithm must handle edgeless graphs,
// single components, and minimum-size inputs without panicking and with
// sensible outputs. These are the inputs real pipelines feed a library by
// accident.

func edgelessGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	// One edge then none to the rest makes n-1 isolated vertices; fully
	// edgeless builds are also legal.
	b := graph.NewBuilder(n, false).SortAdjacency()
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCCWithIsolatedVertices(t *testing.T) {
	g := edgelessGraph(t, 10)
	out, labels, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 two-vertex component + 8 singletons.
	if out.Summary["components"] != 9 {
		t.Fatalf("components = %v, want 9", out.Summary["components"])
	}
	if labels[0] != labels[1] {
		t.Fatal("edge endpoints in different components")
	}
}

func TestKCoreWithIsolatedVertices(t *testing.T) {
	g := edgelessGraph(t, 6)
	_, cores, err := KCoreDecomposition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v < 6; v++ {
		if cores[v] != 0 {
			t.Fatalf("isolated vertex %d core %d, want 0", v, cores[v])
		}
	}
	if cores[0] != 1 || cores[1] != 1 {
		t.Fatalf("edge endpoints cores %d, %d, want 1, 1", cores[0], cores[1])
	}
}

func TestTCTriangleFree(t *testing.T) {
	g := edgelessGraph(t, 5)
	_, triangles, err := TriangleCounting(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if triangles != 0 {
		t.Fatalf("triangles = %d on a triangle-free graph", triangles)
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := edgelessGraph(t, 5)
	out, dist, err := SingleSourceShortestPath(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary["reached"] != 2 {
		t.Fatalf("reached = %v, want 2", out.Summary["reached"])
	}
	for v := 2; v < 5; v++ {
		if !math.IsInf(dist[v], 1) {
			t.Fatalf("unreachable vertex %d has distance %v", v, dist[v])
		}
	}
}

func TestPageRankIsolatedVertices(t *testing.T) {
	g := edgelessGraph(t, 4)
	_, ranks, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Isolated vertices get the teleport mass only.
	for v := 2; v < 4; v++ {
		if math.Abs(ranks[v]-0.15) > 1e-9 {
			t.Fatalf("isolated rank = %v, want 0.15", ranks[v])
		}
	}
}

func TestDiameterSingleEdge(t *testing.T) {
	g := edgelessGraph(t, 3)
	_, diameter, err := ApproximateDiameter(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if diameter != 1 {
		t.Fatalf("diameter = %d, want 1", diameter)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	g := edgelessGraph(t, 8)
	pts := make([]float64, 16) // all points at the origin
	if err := g.SetFeatures(2, pts); err != nil {
		t.Fatal(err)
	}
	out, assign, err := KMeans(g, KMeansOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("K=1 produced a second cluster")
		}
	}
	if out.Summary["inertia"] != 0 {
		t.Fatalf("inertia = %v, want 0 for identical points", out.Summary["inertia"])
	}
}

func TestCFSingleRating(t *testing.T) {
	b := graph.NewBuilder(2, true).Weighted()
	b.AddWeightedEdge(0, 1, 4.0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AlternatingLeastSquares(g, 1, ALSOptions{}); err != nil {
		t.Fatalf("ALS: %v", err)
	}
	if _, _, err := NonnegativeMatrixFactorization(g, 1, NMFOptions{}); err != nil {
		t.Fatalf("NMF: %v", err)
	}
	if _, _, err := StochasticGradientDescent(g, 1, SGDOptions{}); err != nil {
		t.Fatalf("SGD: %v", err)
	}
	if _, sv, err := SingularValueDecomposition(g, 1, SVDOptions{}); err != nil {
		t.Fatalf("SVD: %v", err)
	} else if math.Abs(sv-4.0) > 0.01 {
		// The 1×1 matrix [4] has singular value 4.
		t.Fatalf("SVD of [4] = %v, want 4", sv)
	}
}

func TestLBPTwoVertices(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.NewMRF(g, []int{2, 2},
		[][]float64{{0.9, 0.1}, {0.5, 0.5}},
		[][]float64{{3, 1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	_, assign, err := LoopyBeliefPropagation(m, LBPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Strong attraction + strong prior on 0 → both vertices pick state 0.
	if assign[0] != 0 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [0 0]", assign)
	}
}

func TestDDTwoVertices(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.NewMRF(g, []int{2, 2},
		[][]float64{{0.9, 0.1}, {0.6, 0.4}},
		[][]float64{{3, 1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	out, assign, err := DualDecomposition(m, DDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trace.Converged {
		t.Fatal("DD did not reach agreement on a 2-variable MRF")
	}
	if assign[0] != 0 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [0 0]", assign)
	}
}
