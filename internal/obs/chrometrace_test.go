package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gcbench/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticTrace builds a fully deterministic trace — fixed durations,
// no clock reads — so the export is byte-stable across runs and hosts.
func syntheticTrace() *trace.RunTrace {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return &trace.RunTrace{
		NumVertices: 100,
		NumEdges:    500,
		Converged:   true,
		Iterations: []trace.IterationStats{
			{
				Iteration: 0, Active: 100, Updates: 100, EdgeReads: 1000, Messages: 400,
				ApplyTime: ms(3), WallTime: ms(10),
				GatherWall: ms(4), ApplyWall: ms(2), ScatterWall: ms(3), BarrierTime: ms(1),
				WorkerSpans: []trace.WorkerSpan{
					{Worker: 0, Gather: ms(3), Apply: ms(2), Scatter: ms(2)},
					{Worker: 1, Gather: ms(4), Apply: ms(1), Scatter: ms(3)},
				},
			},
			{
				Iteration: 1, Active: 40, Updates: 40, EdgeReads: 400, Messages: 0,
				ApplyTime: ms(1), WallTime: ms(5),
				GatherWall: ms(2), ApplyWall: ms(1), ScatterWall: ms(1), BarrierTime: ms(1),
				WorkerSpans: []trace.WorkerSpan{
					{Worker: 0, Gather: ms(2), Apply: ms(1), Scatter: ms(1)},
					{Worker: 1}, // idle worker: no spans emitted
				},
			},
		},
	}
}

// TestChromeTraceGolden pins the export byte-for-byte: the file is the
// contract consumed by chrome://tracing and Perfetto, and determinism
// (no wall-clock in the output) is part of that contract.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticTrace()); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden (regenerate with -update if intended):\ngot:\n%s", buf.String())
	}

	// Byte-stable across repeated exports of the same trace.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, syntheticTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two exports of the same trace differ")
	}
}

// TestChromeTraceStructure validates the event stream semantically:
// valid JSON, phases nested inside their iteration, synthesized
// timestamps strictly cumulative.
func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticTrace()); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var iters, phases, workerSpans int
	iterEnd := map[int]float64{} // ts+dur per iteration index order
	for _, e := range events {
		switch e.Cat {
		case "iteration":
			iterEnd[iters] = e.Ts + e.Dur
			iters++
		case "phase":
			phases++
			// Every phase lies inside the current iteration's window.
			end := iterEnd[iters-1]
			if e.Ts+e.Dur > end+1e-9 {
				t.Errorf("phase %q [%v, %v] escapes iteration ending at %v", e.Name, e.Ts, e.Ts+e.Dur, end)
			}
		case "worker":
			workerSpans++
			if e.Tid < workerTidBase {
				t.Errorf("worker span on tid %d", e.Tid)
			}
		}
	}
	if iters != 2 {
		t.Fatalf("iteration events = %d, want 2", iters)
	}
	// 4 phases in iteration 0, 4 in iteration 1.
	if phases != 8 {
		t.Fatalf("phase events = %d, want 8", phases)
	}
	// Iteration 0: 2 workers × 3 phases = 6; iteration 1: worker 0 only = 3.
	if workerSpans != 9 {
		t.Fatalf("worker spans = %d, want 9", workerSpans)
	}
	// Iteration 1 starts exactly where iteration 0 ended.
	if iterEnd[0] != 10000 || iterEnd[1] != 15000 {
		t.Fatalf("iteration windows = %v, want cumulative 10ms/15ms in µs", iterEnd)
	}
	if err := WriteChromeTrace(&buf, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}
