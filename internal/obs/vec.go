package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// HistogramVec is a family of Histograms sharing one name and bucket
// layout, distinguished by label values — the minimal labeled-metric
// subset the serve tier's per-route × status-class RED metrics need.
// Children are created on first use and never evicted; label sets are
// expected to be low-cardinality by construction (route patterns ×
// status classes, not raw paths).
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram // key: rendered label text, e.g. `code="2xx",route="/api/runs"`
}

// With returns the child histogram for the given label values (one per
// registered label name, in order), creating it on first use. The
// returned *Histogram is cacheable by the caller; Observe on it is the
// same lock-free atomic path as an unlabeled histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.renderLabels(values)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[key]; ok {
		return h
	}
	h = &Histogram{bounds: append([]float64(nil), v.bounds...)}
	h.counts = make([]atomic.Uint64, len(v.bounds)+1)
	v.children[key] = h
	return h
}

// renderLabels produces the canonical Prometheus label text for the
// given values: names sorted at registration time, values escaped.
func (v *HistogramVec) renderLabels(values []string) string {
	return renderLabels(v.name, v.labels, values)
}

func renderLabels(name string, labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q expects %d label values, got %d", name, len(labels), len(values)))
	}
	parts := make([]string, len(values))
	for i, val := range values {
		parts[i] = labels[i] + `="` + escapeLabel(val) + `"`
	}
	return strings.Join(parts, ",")
}

// CounterVec is a family of Counters sharing one name, distinguished by
// label values — the shard tier's per-shard × RPC-kind error counts.
// Children are created on first use and never evicted; label sets are
// expected to be low-cardinality by construction (shard indices × a
// fixed operation vocabulary).
type CounterVec struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter // key: rendered label text
}

// With returns the child counter for the given label values (one per
// registered label name, in order), creating it on first use. The
// returned *Counter is cacheable by the caller; Inc/Add on it is the
// same lock-free atomic path as an unlabeled counter.
func (v *CounterVec) With(values ...string) *Counter {
	key := renderLabels(v.name, v.labels, values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; ok {
		return c
	}
	c = &Counter{}
	v.children[key] = c
	return c
}

// sortedChildren snapshots the children sorted by label text for stable
// exposition.
func (v *CounterVec) sortedChildren() (keys []string, cs []*Counter) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys = make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cs = make([]*Counter, len(keys))
	for i, k := range keys {
		cs[i] = v.children[k]
	}
	return keys, cs
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sortedChildren snapshots the children sorted by label text for stable
// exposition.
func (v *HistogramVec) sortedChildren() (keys []string, hs []*Histogram) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys = make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs = make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = v.children[k]
	}
	return keys, hs
}
