package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gcbench/internal/trace"
)

// traceEvent is one Chrome trace-event ("Trace Event Format", the JSON
// consumed by chrome://tracing and Perfetto). Field order is fixed by
// the struct so exports are byte-stable for a given trace.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread ids in the exported trace: tid 0 carries iteration spans with
// nested phase spans; worker w's busy spans go to tid workerTidBase+w.
const workerTidBase = 10

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports a run's per-iteration phase spans as a Chrome
// trace-event JSON array, openable in chrome://tracing or Perfetto.
//
// Timestamps are synthesized deterministically from the recorded
// durations (iteration k starts at the cumulative wall time of
// iterations 0..k-1, phases run back to back within it), so two exports
// of the same trace are byte-identical — absolute clock readings never
// enter the file. Worker busy spans are anchored at their phase's start;
// their duration is the worker's measured busy time, not its scheduling
// window.
func WriteChromeTrace(w io.Writer, tr *trace.RunTrace) error {
	if tr == nil {
		return fmt.Errorf("obs: nil trace")
	}
	events := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "gcbench run"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0, Args: map[string]any{"name": "engine phases"}},
	}
	workers := 0
	for _, it := range tr.Iterations {
		if len(it.WorkerSpans) > workers {
			workers = len(it.WorkerSpans)
		}
	}
	for wkr := 0; wkr < workers; wkr++ {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: workerTidBase + wkr,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", wkr)},
		})
	}

	var cursor time.Duration
	for _, it := range tr.Iterations {
		itStart := cursor
		events = append(events, traceEvent{
			Name: fmt.Sprintf("iteration %d", it.Iteration), Cat: "iteration", Ph: "X",
			Ts: us(itStart), Dur: us(it.WallTime), Pid: 1, Tid: 0,
			Args: map[string]any{
				"active":    it.Active,
				"updates":   it.Updates,
				"edgeReads": it.EdgeReads,
				"messages":  it.Messages,
			},
		})
		phases := []struct {
			name string
			dur  time.Duration
			busy func(ws trace.WorkerSpan) time.Duration
		}{
			{"gather", it.GatherWall, func(ws trace.WorkerSpan) time.Duration { return ws.Gather }},
			{"apply", it.ApplyWall, func(ws trace.WorkerSpan) time.Duration { return ws.Apply }},
			{"scatter", it.ScatterWall, func(ws trace.WorkerSpan) time.Duration { return ws.Scatter }},
			{"barrier", it.BarrierTime, nil},
		}
		t := itStart
		for _, ph := range phases {
			if ph.dur <= 0 {
				continue
			}
			events = append(events, traceEvent{
				Name: ph.name, Cat: "phase", Ph: "X",
				Ts: us(t), Dur: us(ph.dur), Pid: 1, Tid: 0,
			})
			if ph.busy != nil {
				for _, ws := range it.WorkerSpans {
					if busy := ph.busy(ws); busy > 0 {
						events = append(events, traceEvent{
							Name: ph.name, Cat: "worker", Ph: "X",
							Ts: us(t), Dur: us(busy), Pid: 1, Tid: workerTidBase + ws.Worker,
						})
					}
				}
			}
			t += ph.dur
		}
		cursor = itStart + it.WallTime
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
