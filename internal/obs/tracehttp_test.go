package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gcbench/internal/obs/otrace"
)

var updateTraceGolden = flag.Bool("update-trace-golden", false, "rewrite the span-tree Chrome export golden file")

// campaignSpanTree builds the canonical serve → job → run → iteration →
// phase tree with fixed offsets and durations, the deterministic input
// for the golden export.
func campaignSpanTree(t *testing.T, st *otrace.Store) *otrace.Trace {
	t.Helper()
	tr, root := st.StartTrace("POST /api/campaigns", "server", otrace.TraceID{}, otrace.SpanID{},
		otrace.String("route", "/api/campaigns"))
	job := root.StartChild("job j1", "job", otrace.String("jobId", "j1"), otrace.Int("specs", 2))
	for i, name := range []string{"run cc/tiny/2.5", "run pr/tiny/2.5"} {
		run := job.StartChild(name, "run", otrace.Int("attempt", 1))
		var cursor time.Duration
		for it := 0; it < 2; it++ {
			wall := time.Duration(10+it) * time.Millisecond
			iter := run.AddChild("iteration "+string(rune('0'+it)), "iteration", cursor, wall,
				otrace.Int64("active", int64(100-10*it)))
			run.AddChildUnder(iter, "gather", "phase", cursor, wall/4)
			run.AddChildUnder(iter, "apply", "phase", cursor+wall/4, wall/2)
			run.AddChildUnder(iter, "scatter", "phase", cursor+3*wall/4, wall/4)
			cursor += wall
		}
		run.End()
		_ = i
	}
	job.End()
	root.End()
	return tr
}

// TestChromeSpanExportGolden pins the Chrome export of a span tree byte
// for byte. Only offsets, durations, names, kinds and attrs enter the
// export — never span ids or wall-clock readings — so the same logical
// tree always renders identically. The input is a hand-authored
// serve → job → run → iteration → phase tree with fixed offsets.
func TestChromeSpanExportGolden(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	id := func(b byte) otrace.SpanID { return otrace.SpanID{b} }
	spans := []otrace.SpanData{
		{SpanID: id(1), Name: "POST /api/campaigns", Kind: "server", Offset: 0, Duration: ms(40),
			Status: "ok", Attrs: []otrace.Attr{otrace.String("route", "/api/campaigns"), otrace.Int("status", 202)}},
		{SpanID: id(2), Parent: id(1), Name: "job j1", Kind: "job", Offset: ms(1), Duration: ms(38),
			Status: "ok", Attrs: []otrace.Attr{otrace.String("jobId", "j1"), otrace.Int("specs", 1)}},
		{SpanID: id(3), Parent: id(2), Name: "run cc/tiny/2.5", Kind: "run", Offset: ms(2), Duration: ms(30),
			Status: "ok", Attrs: []otrace.Attr{otrace.Int("attempt", 1)}},
		{SpanID: id(4), Parent: id(3), Name: "iteration 0", Kind: "iteration", Offset: ms(2), Duration: ms(10),
			Status: "ok", Attrs: []otrace.Attr{otrace.Int64("active", 100)}},
		{SpanID: id(5), Parent: id(4), Name: "gather", Kind: "phase", Offset: ms(2), Duration: ms(3), Status: "ok"},
		{SpanID: id(6), Parent: id(4), Name: "apply", Kind: "phase", Offset: ms(5), Duration: ms(5), Status: "ok"},
		{SpanID: id(7), Parent: id(4), Name: "scatter", Kind: "phase", Offset: ms(10), Duration: ms(2), Status: "ok"},
		{SpanID: id(8), Parent: id(3), Name: "iteration 1", Kind: "iteration", Offset: ms(12), Duration: ms(8),
			Status: "ok", Attrs: []otrace.Attr{otrace.Int64("active", 60)}},
		{SpanID: id(9), Parent: id(8), Name: "gather", Kind: "phase", Offset: ms(12), Duration: ms(2), Status: "ok"},
		{SpanID: id(10), Parent: id(8), Name: "apply", Kind: "phase", Offset: ms(14), Duration: ms(6), Status: "error",
			Error: "vertex program diverged"},
	}

	var got bytes.Buffer
	if err := WriteChromeTraceSpans(&got, spans); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteChromeTraceSpans(&again, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Fatal("two exports of the same span tree differ")
	}

	golden := filepath.Join("testdata", "spantree_chrome.golden.json")
	if *updateTraceGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-trace-golden to create)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("chrome span export deviates from golden file\ngot:\n%s", got.String())
	}
}

func TestTraceRoutes(t *testing.T) {
	st := otrace.NewStore(4)
	tr := campaignSpanTree(t, st)
	mux := http.NewServeMux()
	RegisterTraceRoutes(mux, st)

	// Index lists the trace.
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("index: %d", rw.Code)
	}
	var idx struct {
		Count  int              `json:"count"`
		Traces []otrace.Summary `json:"traces"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Count != 1 || len(idx.Traces) != 1 {
		t.Fatalf("index = %+v", idx)
	}
	if got := idx.Traces[0]; got.TraceID != tr.ID() || got.Name != "POST /api/campaigns" || !got.Finished {
		t.Fatalf("summary = %+v", got)
	}

	// Span tree endpoint nests the full tree with no orphans.
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/traces/"+tr.ID().String(), nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("tree: %d %s", rw.Code, rw.Body.String())
	}
	var tree struct {
		TraceID string      `json:"traceId"`
		Spans   int         `json:"spans"`
		Tree    []*SpanNode `json:"tree"`
		Orphans []*SpanNode `json:"orphans"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &tree); err != nil {
		t.Fatal(err)
	}
	// 1 root + 1 job + 2 runs × (1 run + 2 iter + 6 phase) = 20 spans.
	if tree.TraceID != tr.ID().String() || tree.Spans != 20 {
		t.Fatalf("tree meta = %+v", tree)
	}
	if len(tree.Tree) != 1 || len(tree.Orphans) != 0 {
		t.Fatalf("tree has %d roots, %d orphans", len(tree.Tree), len(tree.Orphans))
	}
	root := tree.Tree[0]
	if root.Name != "POST /api/campaigns" || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	job := root.Children[0]
	if job.Kind != "job" || len(job.Children) != 2 {
		t.Fatalf("job node = %+v", job)
	}
	for _, run := range job.Children {
		if run.Kind != "run" || len(run.Children) != 2 {
			t.Fatalf("run node %q has %d children", run.Name, len(run.Children))
		}
		for _, iter := range run.Children {
			if iter.Kind != "iteration" || len(iter.Children) != 3 {
				t.Fatalf("iteration node %q has %d children", iter.Name, len(iter.Children))
			}
		}
	}

	// Chrome format from the endpoint parses as a trace-event array.
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/traces/"+tr.ID().String()+"?format=chrome", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("chrome: %d", rw.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(rw.Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export is empty")
	}

	// Unknown and malformed ids.
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/traces/"+otrace.NewTraceID().String(), nil))
	if rw.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/traces/zzz", nil))
	if rw.Code != http.StatusBadRequest {
		t.Fatalf("malformed id: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodDelete, "/debug/traces", nil))
	if rw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE index: %d", rw.Code)
	}
}

// TestSpanTreeOrphans: a span whose parent was dropped past the span cap
// surfaces in the orphans list instead of disappearing.
func TestSpanTreeOrphans(t *testing.T) {
	spans := []otrace.SpanData{
		{SpanID: otrace.SpanID{1}, Name: "root", Kind: "server"},
		{SpanID: otrace.SpanID{2}, Parent: otrace.SpanID{9}, Name: "lost child", Kind: "run"},
	}
	roots, orphans := BuildSpanTree(spans)
	if len(roots) != 1 || len(orphans) != 1 {
		t.Fatalf("roots=%d orphans=%d, want 1/1", len(roots), len(orphans))
	}
	if orphans[0].Name != "lost child" {
		t.Fatalf("orphan = %+v", orphans[0])
	}
	if !strings.Contains(orphans[0].Parent.String(), "09") {
		t.Fatalf("orphan parent id = %s", orphans[0].Parent)
	}
}
