package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
	h := r.Histogram("h", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x", "") != r.Counter("x", "") {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(42)
	r.Gauge("a_depth", "first").Set(1.5)
	h := r.Histogram("c_seconds", "third", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_depth first
# TYPE a_depth gauge
a_depth 1.5
# HELP b_total second
# TYPE b_total counter
b_total 42
# HELP c_seconds third
# TYPE c_seconds histogram
c_seconds_bucket{le="0.1"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 5.55
c_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Histogram("h", "", []float64{1}).Observe(3)
	s := r.Snapshot()
	if s["c_total"] != 7 || s["h_sum"] != 3 || s["h_count"] != 1 {
		t.Fatalf("snapshot = %v", s)
	}
}

// TestConcurrentMetricUpdates exercises the atomic paths under the race
// detector.
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
