package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"gcbench/internal/obs/otrace"
)

// SpanNode is one span in the nested /debug/traces/{id} tree: the
// recorded span data plus its children ordered by (offset, name) — the
// JSON shape clients walk to see where a request's time went.
type SpanNode struct {
	otrace.SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree nests a trace's flat span list into parent→child trees.
// The first return holds the root spans (normally exactly one); the
// second holds orphans — spans whose parent was dropped past the
// per-trace cap — so nothing recorded is silently hidden.
func BuildSpanTree(spans []otrace.SpanData) (roots, orphans []*SpanNode) {
	nodes := make(map[otrace.SpanID]*SpanNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &SpanNode{SpanData: spans[i]}
	}
	for _, n := range nodes {
		if n.Parent.IsZero() {
			roots = append(roots, n)
			continue
		}
		if p, ok := nodes[n.Parent]; ok {
			p.Children = append(p.Children, n)
		} else {
			orphans = append(orphans, n)
		}
	}
	sortNodes := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Offset != ns[j].Offset {
				return ns[i].Offset < ns[j].Offset
			}
			if ns[i].Name != ns[j].Name {
				return ns[i].Name < ns[j].Name
			}
			return ns[i].SpanID.String() < ns[j].SpanID.String()
		})
	}
	sortNodes(roots)
	sortNodes(orphans)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots, orphans
}

// WriteChromeTraceSpans exports a span tree as a Chrome trace-event JSON
// array (the same format WriteChromeTrace emits for engine runs), with
// one virtual thread per span kind so a request's serve / job / run /
// iteration / phase layers stack visually in Perfetto.
//
// The export is deterministic for a given span tree: events carry only
// relative offsets and durations (never absolute clock readings or span
// ids), are ordered by (offset, name), and attribute maps JSON-encode
// with sorted keys. Two exports of the same quiesced trace are
// byte-identical — the property the golden test pins.
func WriteChromeTraceSpans(w io.Writer, spans []otrace.SpanData) error {
	// Stable kind → tid mapping: known kinds get fixed rows in layer
	// order, unknown kinds one shared overflow row.
	kindTid := map[string]int{
		"server": 0, "job": 1, "run": 2, "iteration": 3, "phase": 4, "": 5,
	}
	const otherTid = 6
	events := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "gcbench request"}},
	}
	usedTid := map[int]string{}
	for _, s := range spans {
		tid, ok := kindTid[s.Kind]
		if !ok {
			tid = otherTid
		}
		name := s.Kind
		if name == "" {
			name = "internal"
		}
		if tid == otherTid {
			name = "other"
		}
		usedTid[tid] = name
	}
	tids := make([]int, 0, len(usedTid))
	for tid := range usedTid {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": usedTid[tid]},
		})
	}

	ordered := append([]otrace.SpanData(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Offset != ordered[j].Offset {
			return ordered[i].Offset < ordered[j].Offset
		}
		if ordered[i].Duration != ordered[j].Duration {
			return ordered[i].Duration > ordered[j].Duration
		}
		return ordered[i].Name < ordered[j].Name
	})
	for _, s := range ordered {
		tid, ok := kindTid[s.Kind]
		if !ok {
			tid = otherTid
		}
		args := map[string]any{}
		if s.Status != "" {
			args["status"] = s.Status
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if len(args) == 0 {
			args = nil
		}
		cat := s.Kind
		if cat == "" {
			cat = "internal"
		}
		events = append(events, traceEvent{
			Name: s.Name, Cat: cat, Ph: "X",
			Ts: us(s.Offset), Dur: us(s.Duration), Pid: 1, Tid: tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}

// RegisterTraceRoutes serves the trace store on mux:
//
//	GET /debug/traces          recent-trace index, newest first
//	GET /debug/traces/{id}     one trace's full span tree as JSON;
//	                           ?format=chrome renders the Chrome
//	                           trace-event export instead
func RegisterTraceRoutes(mux *http.ServeMux, store *otrace.Store) {
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		body, err := json.MarshalIndent(v, "", " ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		_, _ = w.Write(append(body, '\n'))
	}
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		list := store.List()
		started, evicted := store.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(list),
			"started": started,
			"evicted": evicted,
			"traces":  list,
		})
	})
	mux.HandleFunc("/debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id, err := otrace.ParseTraceID(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tr, ok := store.Get(id)
		if !ok {
			http.Error(w, fmt.Sprintf("no retained trace %s (the tail sampler evicts boring traces first)", id), http.StatusNotFound)
			return
		}
		spans := tr.Spans()
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = WriteChromeTraceSpans(w, spans)
			return
		}
		roots, orphans := BuildSpanTree(spans)
		payload := map[string]any{
			"traceId": tr.ID(),
			"start":   tr.Start().UTC().Format(time.RFC3339Nano),
			"spans":   len(spans),
			"dropped": tr.Dropped(),
			"tree":    roots,
		}
		if len(orphans) > 0 {
			payload["orphans"] = orphans
		}
		writeJSON(w, http.StatusOK, payload)
	})
}
