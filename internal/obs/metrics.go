// Package obs is gcbench's observability layer: a dependency-free
// metrics registry with Prometheus text-format exposition and expvar
// bridging, an opt-in HTTP server (/metrics, /statusz, /healthz,
// /debug/pprof), and Chrome trace-event export of engine phase spans.
//
// The registry deliberately implements the minimal subset of the
// Prometheus data model the benchmark harness needs — label-free
// counters, gauges and fixed-bucket histograms — so the engine hot path
// pays one atomic add per metric update and the module keeps zero
// third-party dependencies.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 metric. The zero value
// is unusable; obtain counters from a Registry.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by d. Negative deltas are ignored —
// counters are monotone by contract, and a monotone scrape is what the
// HTTP-surface tests assert.
func (c *Counter) Add(d float64) {
	if d < 0 || math.IsNaN(d) {
		return
	}
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets
// (cumulative on exposition, Prometheus-style) and tracks their sum.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implied
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution from the bucket counts, interpolating linearly within
// the containing bucket — the same estimate Prometheus's
// histogram_quantile() computes. The second return is false when the
// histogram is empty. Observations above the last finite bound clamp
// the estimate to that bound (the +Inf bucket has no width to
// interpolate over), so tail quantiles are lower bounds, not exact.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	total := h.total.Load()
	if total == 0 || math.IsNaN(q) {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac, true
		}
		cum += c
	}
	// The rank lands in the +Inf bucket: clamp to the last finite bound.
	if len(h.bounds) == 0 {
		return 0, false
	}
	return h.bounds[len(h.bounds)-1], true
}

// metricKind tags a registered metric for TYPE exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindHistogramVec
	kindCounterVec
)

type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	hv   *HistogramVec
	cv   *CounterVec
}

// Registry holds named metrics and renders them in Prometheus text
// format. All methods are safe for concurrent use; metric constructors
// are get-or-create, so independent packages can reference the same
// metric by name.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// defaultRegistry is the process-wide registry the engine and sweep
// runner publish into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it with
// the given help text if absent.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it
// with the given upper-bound buckets if absent. bounds must be sorted
// ascending; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return m.h
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.metrics[name] = &metric{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

// CounterVec returns the labeled counter family registered under name,
// creating it with the given label names if absent. See CounterVec.With.
func (r *Registry) CounterVec(name, help string, labels []string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindCounterVec {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return m.cv
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: counter vec %q needs at least one label", name))
	}
	cv := &CounterVec{
		name:     name,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*Counter),
	}
	r.metrics[name] = &metric{name: name, help: help, kind: kindCounterVec, cv: cv}
	return cv
}

// HistogramVec returns the labeled histogram family registered under
// name, creating it with the given label names and bucket bounds if
// absent. Children share the bounds; see HistogramVec.With.
func (r *Registry) HistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindHistogramVec {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return m.hv
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: histogram vec %q needs at least one label", name))
	}
	hv := &HistogramVec{
		name:     name,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*Histogram),
	}
	r.metrics[name] = &metric{name: name, help: help, kind: kindHistogramVec, hv: hv}
	return hv
}

// formatValue renders a float the way Prometheus clients do: integral
// values without an exponent, the rest in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by metric name so scrapes
// are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", m.name, m.name, formatValue(m.c.Value()))
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatValue(m.g.Value()))
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", m.name); err != nil {
				return err
			}
			var cum uint64
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatValue(b), cum); err != nil {
					return err
				}
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, cum, m.name, formatValue(m.h.Sum()), m.name, m.h.Count())
		case kindCounterVec:
			if _, err = fmt.Fprintf(w, "# TYPE %s counter\n", m.name); err != nil {
				return err
			}
			keys, cs := m.cv.sortedChildren()
			for i, c := range cs {
				if _, err = fmt.Fprintf(w, "%s{%s} %s\n", m.name, keys[i], formatValue(c.Value())); err != nil {
					return err
				}
			}
		case kindHistogramVec:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", m.name); err != nil {
				return err
			}
			keys, hs := m.hv.sortedChildren()
			for ci, h := range hs {
				labels := keys[ci]
				var cum uint64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					if _, err = fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", m.name, labels, formatValue(b), cum); err != nil {
						return err
					}
				}
				cum += h.counts[len(h.bounds)].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n%s_sum{%s} %s\n%s_count{%s} %d\n",
					m.name, labels, cum, m.name, labels, formatValue(h.Sum()), m.name, labels, h.Count()); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the current value of every scalar metric plus
// histogram sums/counts, keyed by name — the expvar bridge payload.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.metrics))
	for name, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			out[name] = m.c.Value()
		case kindGauge:
			out[name] = m.g.Value()
		case kindHistogram:
			out[name+"_sum"] = m.h.Sum()
			out[name+"_count"] = float64(m.h.Count())
		case kindCounterVec:
			keys, cs := m.cv.sortedChildren()
			for i, c := range cs {
				out[name+"{"+keys[i]+"}"] = c.Value()
			}
		case kindHistogramVec:
			keys, hs := m.hv.sortedChildren()
			for i, h := range hs {
				out[name+"{"+keys[i]+"}_sum"] = h.Sum()
				out[name+"{"+keys[i]+"}_count"] = float64(h.Count())
			}
		}
	}
	return out
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// expvarOnce guards the process-global expvar namespace, which panics on
// duplicate Publish.
var expvarOnce sync.Once

// PublishExpvar exposes the default registry under the "gcbench" expvar
// variable (visible at /debug/vars alongside the runtime's memstats).
// Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("gcbench", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}
