package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "test").Add(3)
	srv, err := StartServer("127.0.0.1:0", ServerOptions{
		Registry: reg,
		Status:   func() any { return map[string]int{"answer": 42} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := get(t, srv.URL()+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body := get(t, srv.URL()+"/metrics")
	if code != 200 || !strings.Contains(body, "test_requests_total 3") {
		t.Fatalf("/metrics: %d %q", code, body)
	}

	code, body = get(t, srv.URL()+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz: %d", code)
	}
	var status map[string]int
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if status["answer"] != 42 {
		t.Fatalf("/statusz = %v", status)
	}

	if code, _ := get(t, srv.URL()+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, body := get(t, srv.URL()+"/debug/vars"); code != 200 || !strings.Contains(body, "gcbench") {
		t.Fatalf("/debug/vars: %d (gcbench expvar bridge missing)", code)
	}
}

func TestServerNilStatus(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/statusz")
	if code != 200 || !strings.Contains(body, "idle") {
		t.Fatalf("/statusz without status source: %d %q", code, body)
	}
}

// TestRegisterRoutesOnCallerMux covers the factored route registration:
// an embedding server (e.g. internal/serve) mounts the observability
// surface on its own mux alongside its API routes.
func TestRegisterRoutesOnCallerMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("embed_requests_total", "test").Add(7)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/thing", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	RegisterRoutes(mux, ServerOptions{
		Registry: reg,
		Status:   func() any { return map[string]int{"embedded": 1} },
	})

	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, body := get(t, srv.URL+"/metrics"); code != 200 || !strings.Contains(body, "embed_requests_total 7") {
		t.Fatalf("/metrics on caller mux: %d %q", code, body)
	}
	if code, body := get(t, srv.URL+"/statusz"); code != 200 || !strings.Contains(body, "embedded") {
		t.Fatalf("/statusz on caller mux: %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz on caller mux: %d", code)
	}
	// The caller's own routes coexist with the observability surface.
	if code, _ := get(t, srv.URL+"/api/thing"); code != http.StatusTeapot {
		t.Fatalf("/api/thing: %d", code)
	}
}
