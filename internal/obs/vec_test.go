package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("req_seconds", "Request latency.", []string{"route", "code"}, []float64{0.1, 1})
	hv.With("/api/runs", "2xx").Observe(0.05)
	hv.With("/api/runs", "2xx").Observe(0.5)
	hv.With("/api/predict", "5xx").Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{route="/api/runs",code="2xx",le="0.1"} 1`,
		`req_seconds_bucket{route="/api/runs",code="2xx",le="1"} 2`,
		`req_seconds_bucket{route="/api/runs",code="2xx",le="+Inf"} 2`,
		`req_seconds_count{route="/api/runs",code="2xx"} 2`,
		`req_seconds_bucket{route="/api/predict",code="5xx",le="+Inf"} 1`,
		`req_seconds_sum{route="/api/predict",code="5xx"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Same labels → same child; wrong arity panics.
	if hv.With("/api/runs", "2xx") != hv.With("/api/runs", "2xx") {
		t.Error("With is not stable for identical label values")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong label arity did not panic")
			}
		}()
		hv.With("only-one")
	}()
}

func TestHistogramVecLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("m", "", []string{"l"}, []float64{1})
	hv.With("a\"b\\c\nd").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `m_bucket{l="a\"b\\c\nd",le="1"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped exposition missing %q in:\n%s", want, b.String())
	}
}

// TestHistogramVecConcurrentScrape hammers Observe on labeled children —
// including first-use child creation — against concurrent Prometheus
// exposition. Run under -race this pins the lock discipline of the vec
// (RWMutex on the child map, lock-free atomics inside each child); the
// scrape-side assertion is that cumulative bucket counts are monotone
// within every single scrape.
func TestHistogramVecConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("hammer_seconds", "h", []string{"route", "code"}, []float64{0.001, 0.01, 0.1, 1})
	routes := []string{"/a", "/b", "/c", "/d"}
	codes := []string{"2xx", "4xx", "5xx"}

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				route := routes[(w+i)%len(routes)]
				code := codes[i%len(codes)]
				hv.With(route, code).Observe(float64(i%100) / 500.0)
			}
		}(w)
	}
	scrapeDone := make(chan error, 1)
	go func() {
		<-start
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				scrapeDone <- err
				return
			}
			if err := checkMonotoneBuckets(b.String()); err != nil {
				scrapeDone <- err
				return
			}
		}
		scrapeDone <- nil
	}()
	close(start)
	wg.Wait()
	if err := <-scrapeDone; err != nil {
		t.Fatal(err)
	}

	// Quiesced: every observation is accounted for exactly once.
	var total uint64
	for _, route := range routes {
		for _, code := range codes {
			total += hv.With(route, code).Count()
		}
	}
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("total observations = %d, want %d", total, want)
	}
}

// checkMonotoneBuckets asserts cumulative bucket counts never decrease
// within one labeled series of one scrape.
func checkMonotoneBuckets(exposition string) error {
	last := map[string]uint64{} // series key (labels minus le) → last cum
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "hammer_seconds_bucket{") {
			continue
		}
		open := strings.Index(line, "{")
		close := strings.Index(line, "}")
		labels := line[open+1 : close]
		le := ""
		var parts []string
		for _, kv := range strings.Split(labels, ",") {
			if strings.HasPrefix(kv, "le=") {
				le = kv
				continue
			}
			parts = append(parts, kv)
		}
		if le == "" {
			return fmt.Errorf("bucket line without le: %s", line)
		}
		key := strings.Join(parts, ",")
		var cum uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(line[close+1:]), "%d", &cum); err != nil {
			return fmt.Errorf("parsing %q: %w", line, err)
		}
		if cum < last[key] {
			return fmt.Errorf("series %s: cumulative count went backwards (%d after %d)", key, cum, last[key])
		}
		last[key] = cum
	}
	return nil
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4, 8})
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram reported a quantile")
	}
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	p50, ok := h.Quantile(0.5)
	if !ok || p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v (ok=%v), want within first bucket (0,1]", p50, ok)
	}
	// Add 100 observations in (4,8]: p75 must land in that bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(4 + 4*float64(i)/100)
	}
	p75, ok := h.Quantile(0.75)
	if !ok || p75 < 4 || p75 > 8 {
		t.Fatalf("p75 = %v (ok=%v), want in (4,8]", p75, ok)
	}
	// Monotone in q.
	p25, _ := h.Quantile(0.25)
	p99, _ := h.Quantile(0.99)
	if !(p25 <= p50 && p50 <= p75 && p75 <= p99) {
		t.Fatalf("quantiles not monotone: p25=%v p50=%v p75=%v p99=%v", p25, p50, p75, p99)
	}
	// Observations beyond the last bound clamp to it.
	h2 := r.Histogram("q2", "", []float64{1})
	h2.Observe(100)
	if v, ok := h2.Quantile(0.99); !ok || v != 1 {
		t.Fatalf("overflow quantile = %v (ok=%v), want clamp to 1", v, ok)
	}
}
