package otrace

import (
	"sort"
	"sync"
	"time"
)

// Store is the bounded in-process trace repository behind
// /debug/traces. Every started trace is tracked immediately (so a
// long-running campaign's trace is inspectable mid-flight); when the
// store is over capacity, the oldest *boring* finished trace is evicted
// first — tail-based sampling. A trace is protected from boring-first
// eviction when any of:
//
//   - a span in it failed (Status "error"),
//   - the HTTP layer marked it explicitly (429s and 5xx responses),
//   - its root duration landed in the slowest decile of recent roots.
//
// Protected traces are only evicted when no boring finished trace
// remains, and in-flight traces (root not yet ended) outlive both, so
// an async job's spans always have somewhere to land.
type Store struct {
	capacity int
	maxSpans int

	mu     sync.Mutex
	traces map[TraceID]*Trace
	order  []TraceID // insertion order, oldest first

	// durs is a sliding window of recent root durations, the slowest-
	// decile reference. Fixed size, overwritten circularly.
	durs  []time.Duration
	durAt int
	durN  int

	started int64
	evicted int64
}

// DefaultCapacity bounds retained traces when Config.Capacity is 0.
const DefaultCapacity = 512

// DefaultMaxSpans bounds spans per trace when Config.MaxSpans is 0: a
// campaign over hundreds of runs with per-iteration children must not
// hold the process hostage.
const DefaultMaxSpans = 4096

// slowWindow is how many recent root durations the slowest-decile
// estimate looks back over.
const slowWindow = 256

// NewStore returns a Store retaining up to capacity traces
// (DefaultCapacity if <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		maxSpans: DefaultMaxSpans,
		traces:   make(map[TraceID]*Trace),
		durs:     make([]time.Duration, slowWindow),
	}
}

// SetMaxSpans overrides the per-trace span cap (testing and tight
// deployments).
func (st *Store) SetMaxSpans(n int) {
	if n > 0 {
		st.mu.Lock()
		st.maxSpans = n
		st.mu.Unlock()
	}
}

// StartTrace opens a new trace and its root span. tid selects the
// propagated trace id (zero = generate one); parent is the remote
// parent span id from an incoming traceparent (zero = locally rooted).
// The returned span's End() finalizes the tail-sampling decision.
//
// Nil stores start nothing: both return values are nil and every
// downstream Span call no-ops, so callers need no store-presence
// branches.
func (st *Store) StartTrace(name, kind string, tid TraceID, parent SpanID, attrs ...Attr) (*Trace, *Span) {
	if st == nil {
		return nil, nil
	}
	if tid.IsZero() {
		tid = NewTraceID()
	}
	st.mu.Lock()
	maxSpans := st.maxSpans
	st.mu.Unlock()
	tr := &Trace{id: tid, start: time.Now(), store: st, maxSpans: maxSpans}
	sp := newSpan(tr, SpanID{}, name, kind, attrs)
	sp.data.RemoteParent = parent

	st.mu.Lock()
	st.started++
	if _, ok := st.traces[tid]; ok {
		// A trace id replayed by a client collides; the newer trace wins
		// and the older one is dropped from the index.
		st.removeLocked(tid)
	}
	st.traces[tid] = tr
	st.order = append(st.order, tid)
	st.evictLocked()
	st.mu.Unlock()
	return tr, sp
}

// rootEnd records the root duration for the slow-decile reference and
// flags slow traces as protected. Called by Span.End on root spans.
func (t *Trace) rootEnd(root SpanData) {
	st := t.store
	if st == nil {
		return
	}
	st.mu.Lock()
	threshold, have := st.slowThresholdLocked()
	st.durs[st.durAt] = root.Duration
	st.durAt = (st.durAt + 1) % len(st.durs)
	if st.durN < len(st.durs) {
		st.durN++
	}
	st.mu.Unlock()

	t.mu.Lock()
	t.rootEnded = true
	if have && root.Duration >= threshold {
		t.protected = true
	}
	if root.Status == StatusError {
		t.protected = true
	}
	t.mu.Unlock()
}

// slowThresholdLocked returns the p90 of the recent root durations.
// Callers hold st.mu. have is false until enough samples accumulated
// for a decile to mean anything.
func (st *Store) slowThresholdLocked() (time.Duration, bool) {
	if st.durN < 10 {
		return 0, false
	}
	window := make([]time.Duration, st.durN)
	copy(window, st.durs[:st.durN])
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[(st.durN*9)/10], true
}

// evictLocked enforces the capacity bound: oldest boring finished trace
// first, then oldest protected finished trace, then (only if everything
// is still in flight) the oldest trace outright.
func (st *Store) evictLocked() {
	for len(st.order) > st.capacity {
		victim := TraceID{}
		// Pass 1: oldest finished, unprotected.
		for _, id := range st.order {
			tr := st.traces[id]
			tr.mu.Lock()
			ok := tr.rootEnded && !tr.protected
			tr.mu.Unlock()
			if ok {
				victim = id
				break
			}
		}
		// Pass 2: oldest finished, protected.
		if victim.IsZero() {
			for _, id := range st.order {
				tr := st.traces[id]
				tr.mu.Lock()
				ok := tr.rootEnded
				tr.mu.Unlock()
				if ok {
					victim = id
					break
				}
			}
		}
		// Pass 3: everything in flight — drop the oldest.
		if victim.IsZero() {
			victim = st.order[0]
		}
		st.removeLocked(victim)
		st.evicted++
	}
}

// removeLocked deletes one trace from the map and order slice.
func (st *Store) removeLocked(id TraceID) {
	if _, ok := st.traces[id]; !ok {
		return
	}
	delete(st.traces, id)
	for i, o := range st.order {
		if o == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// Get returns the trace with the given id, if retained.
func (st *Store) Get(id TraceID) (*Trace, bool) {
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tr, ok := st.traces[id]
	return tr, ok
}

// Summary is one row of the /debug/traces index.
type Summary struct {
	TraceID TraceID   `json:"traceId"`
	Name    string    `json:"name"`
	Kind    string    `json:"kind,omitempty"`
	Start   time.Time `json:"start"`
	// DurationMs is the root span's duration (0 while in flight).
	DurationMs float64 `json:"durationMs"`
	Status     string  `json:"status,omitempty"`
	Spans      int     `json:"spans"`
	Dropped    int     `json:"dropped,omitempty"`
	// Finished is false while the root span is still open.
	Finished bool `json:"finished"`
	// Protected marks traces the tail sampler will evict last (errors,
	// marked 429s/5xx, slowest decile).
	Protected bool `json:"protected,omitempty"`
}

// List returns a summary of every retained trace, newest first.
func (st *Store) List() []Summary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	ids := append([]TraceID(nil), st.order...)
	trs := make([]*Trace, len(ids))
	for i, id := range ids {
		trs[i] = st.traces[id]
	}
	st.mu.Unlock()

	out := make([]Summary, 0, len(trs))
	for i := len(trs) - 1; i >= 0; i-- {
		tr := trs[i]
		s := Summary{TraceID: tr.id, Start: tr.start}
		tr.mu.Lock()
		s.Spans = len(tr.spans)
		s.Dropped = tr.dropped
		s.Finished = tr.rootEnded
		s.Protected = tr.protected
		for _, sp := range tr.spans {
			if sp.Parent.IsZero() {
				// The root span: only present once it has ended.
				s.Name, s.Kind = sp.Name, sp.Kind
				s.DurationMs = float64(sp.Duration) / float64(time.Millisecond)
				s.Status = sp.Status
				break
			}
			if s.Name == "" {
				// In-flight trace: fall back to the earliest finished span.
				s.Name, s.Kind = sp.Name, sp.Kind
			}
		}
		tr.mu.Unlock()
		out = append(out, s)
	}
	return out
}

// Len returns the number of retained traces.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.traces)
}

// Stats reports lifetime counters: traces started and traces evicted by
// the tail sampler.
func (st *Store) Stats() (started, evicted int64) {
	if st == nil {
		return 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.started, st.evicted
}
