package otrace

import (
	"fmt"
	"testing"
	"time"
)

// endTrace starts and immediately finishes a trace, optionally failing
// its root.
func endTrace(st *Store, name string, fail bool) TraceID {
	tr, root := st.StartTrace(name, "server", TraceID{}, SpanID{})
	if fail {
		root.Fail("boom")
	}
	root.End()
	return tr.ID()
}

func TestStoreEvictsBoringFirst(t *testing.T) {
	st := NewStore(4)
	bad := endTrace(st, "bad", true)
	var boring []TraceID
	for i := 0; i < 10; i++ {
		boring = append(boring, endTrace(st, fmt.Sprintf("ok-%d", i), false))
	}
	if st.Len() != 4 {
		t.Fatalf("store len = %d, want capacity 4", st.Len())
	}
	if _, ok := st.Get(bad); !ok {
		t.Fatal("error trace evicted while boring traces remained")
	}
	// The earliest boring traces must be gone.
	if _, ok := st.Get(boring[0]); ok {
		t.Fatal("oldest boring trace survived past capacity")
	}
	started, evicted := st.Stats()
	if started != 11 || evicted != 7 {
		t.Fatalf("stats = (%d started, %d evicted), want (11, 7)", started, evicted)
	}
}

func TestStoreProtectsMarked(t *testing.T) {
	st := NewStore(3)
	tr, root := st.StartTrace("ratelimited", "server", TraceID{}, SpanID{})
	tr.Mark() // the HTTP layer marks 429s
	root.End()
	for i := 0; i < 10; i++ {
		endTrace(st, "ok", false)
	}
	if _, ok := st.Get(tr.ID()); !ok {
		t.Fatal("marked trace evicted while boring traces remained")
	}
}

func TestStoreKeepsInFlightTraces(t *testing.T) {
	st := NewStore(2)
	trLive, _ := st.StartTrace("live", "server", TraceID{}, SpanID{}) // root never ends
	for i := 0; i < 6; i++ {
		endTrace(st, "ok", false)
	}
	if _, ok := st.Get(trLive.ID()); !ok {
		t.Fatal("in-flight trace evicted while finished traces remained")
	}
}

func TestStoreSlowDecileProtection(t *testing.T) {
	st := NewStore(64)
	// Prime the duration window with fast roots.
	for i := 0; i < 32; i++ {
		endTrace(st, "fast", false)
	}
	// One slow root: far beyond the p90 of the ~instant priming roots.
	tr, root := st.StartTrace("slow", "server", TraceID{}, SpanID{})
	root.data.Start = root.data.Start.Add(-500 * time.Millisecond) // backdate instead of sleeping
	root.End()
	slowID := tr.ID()
	got, ok := st.Get(slowID)
	if !ok {
		t.Fatal("slow trace missing")
	}
	got.mu.Lock()
	protected := got.protected
	got.mu.Unlock()
	if !protected {
		t.Fatal("slowest-decile trace not protected")
	}
	// Flood with fast traces: the slow one must survive capacity pressure.
	for i := 0; i < 200; i++ {
		endTrace(st, "fast", false)
	}
	if _, ok := st.Get(slowID); !ok {
		t.Fatal("slowest-decile trace evicted while boring traces remained")
	}
}

func TestStoreListNewestFirst(t *testing.T) {
	st := NewStore(8)
	a := endTrace(st, "a", false)
	b := endTrace(st, "b", true)
	ls := st.List()
	if len(ls) != 2 {
		t.Fatalf("list = %d entries, want 2", len(ls))
	}
	if ls[0].TraceID != b || ls[1].TraceID != a {
		t.Fatalf("order = [%s %s], want newest first", ls[0].Name, ls[1].Name)
	}
	if !ls[0].Finished || ls[0].Status != StatusError || !ls[0].Protected {
		t.Fatalf("summary of failed trace = %+v", ls[0])
	}
	if ls[1].Name != "a" || ls[1].Spans != 1 {
		t.Fatalf("summary = %+v", ls[1])
	}
}

func TestStoreTraceIDCollisionReplaces(t *testing.T) {
	st := NewStore(8)
	tid := NewTraceID()
	_, r1 := st.StartTrace("first", "server", tid, SpanID{})
	r1.End()
	tr2, r2 := st.StartTrace("second", "server", tid, SpanID{})
	r2.End()
	if st.Len() != 1 {
		t.Fatalf("store len = %d, want 1 after id collision", st.Len())
	}
	got, _ := st.Get(tid)
	if got != tr2 {
		t.Fatal("collision must keep the newer trace")
	}
}
