package otrace

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	h := Traceparent(tid, sid, true)
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	gotT, gotS, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if gotT != tid || gotS != sid || !sampled {
		t.Fatalf("round trip: got (%s, %s, %v), want (%s, %s, true)", gotT, gotS, sampled, tid, sid)
	}
	if _, _, sampled, err = ParseTraceparent(Traceparent(tid, sid, false)); err != nil || sampled {
		t.Fatalf("unsampled round trip: sampled=%v err=%v", sampled, err)
	}
}

func TestTraceparentW3CExample(t *testing.T) {
	h := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tid, sid, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %s", tid)
	}
	if sid.String() != "b7ad6b7169203331" {
		t.Errorf("span id = %s", sid)
	}
	if !sampled {
		t.Error("sampled flag not parsed")
	}
}

func TestTraceparentRejects(t *testing.T) {
	for _, h := range []string{
		"",
		"00-123-456-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff
		"0g-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"00x0af7651916cd43dd8448eb211c80319cxb7ad6b7169203331x01",
	} {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", h)
		}
	}
	// A future version with trailing fields is accepted.
	if _, _, _, err := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-future"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", 1)
	sp.Fail("boom")
	sp.End()
	if got := sp.StartChild("child", "x"); got != nil {
		t.Fatalf("nil.StartChild = %v, want nil", got)
	}
	if id := sp.AddChild("c", "phase", 0, 0); !id.IsZero() {
		t.Fatalf("nil.AddChild = %s, want zero", id)
	}
	if sp.Traceparent() != "" {
		t.Fatal("nil span renders a traceparent")
	}
	ctx, child := StartSpan(context.Background(), "x", "y")
	if child != nil || FromContext(ctx) != nil {
		t.Fatal("StartSpan without a trace must be a no-op")
	}
	var st *Store
	tr, root := st.StartTrace("x", "server", TraceID{}, SpanID{})
	if tr != nil || root != nil {
		t.Fatal("nil store started a trace")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	st := NewStore(8)
	tr, root := st.StartTrace("POST /api/campaigns", "server", TraceID{}, SpanID{})
	ctx := ContextWithSpan(context.Background(), root)

	ctx, job := StartSpan(ctx, "job j1", "job", String("jobId", "j1"))
	_, run := StartSpan(ctx, "run cc/small", "run")
	iter := run.AddChild("iteration 0", "iteration", 0, 100)
	run.AddChildUnder(iter, "gather", "phase", 0, 40)
	run.AddChildUnder(iter, "apply", "phase", 40, 60)
	run.End()
	job.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	byID := map[SpanID]SpanData{}
	var rootCount int
	for _, s := range spans {
		byID[s.SpanID] = s
		if s.Parent.IsZero() {
			rootCount++
		}
	}
	if rootCount != 1 {
		t.Fatalf("tree has %d roots, want 1", rootCount)
	}
	for _, s := range spans {
		if s.Parent.IsZero() {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %q is an orphan (parent %s missing)", s.Name, s.Parent)
		}
	}
	// Chain: phase → iteration → run → job → root.
	names := func(id SpanID) []string {
		var path []string
		for !id.IsZero() {
			s := byID[id]
			path = append(path, s.Name)
			id = s.Parent
		}
		return path
	}
	for _, s := range spans {
		if s.Name == "gather" {
			got := strings.Join(names(s.SpanID), " < ")
			want := "gather < iteration 0 < run cc/small < job j1 < POST /api/campaigns"
			if got != want {
				t.Fatalf("ancestry = %q, want %q", got, want)
			}
		}
	}
}

func TestSpanEndIdempotentAndStatus(t *testing.T) {
	st := NewStore(8)
	tr, root := st.StartTrace("r", "server", TraceID{}, SpanID{})
	child := root.StartChild("c", "")
	child.Fail("kaput")
	child.End()
	child.End() // second End must not duplicate
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var saw bool
	for _, s := range spans {
		if s.Name == "c" {
			saw = true
			if s.Status != StatusError || s.Error != "kaput" {
				t.Fatalf("failed span = %+v", s)
			}
		}
		if s.Name == "r" && s.Status != StatusOK {
			t.Fatalf("root status = %q, want ok", s.Status)
		}
	}
	if !saw {
		t.Fatal("child span missing")
	}
}

func TestRemoteParentPreserved(t *testing.T) {
	st := NewStore(8)
	remote := NewSpanID()
	tid := NewTraceID()
	tr, root := st.StartTrace("r", "server", tid, remote)
	root.End()
	if tr.ID() != tid {
		t.Fatalf("trace id = %s, want propagated %s", tr.ID(), tid)
	}
	spans := tr.Spans()
	if spans[0].RemoteParent != remote {
		t.Fatalf("remote parent = %s, want %s", spans[0].RemoteParent, remote)
	}
	if !spans[0].Parent.IsZero() {
		t.Fatal("root span must have no local parent")
	}
}

func TestSpanCapDrops(t *testing.T) {
	st := NewStore(4)
	st.SetMaxSpans(3)
	tr, root := st.StartTrace("r", "server", TraceID{}, SpanID{})
	for i := 0; i < 10; i++ {
		root.AddChild("c", "phase", 0, 1)
	}
	root.End()
	if n := len(tr.Spans()); n != 3 {
		t.Fatalf("spans = %d, want cap 3", n)
	}
	// 10 children + root = 11 attempted, 3 kept.
	if d := tr.Dropped(); d != 8 {
		t.Fatalf("dropped = %d, want 8", d)
	}
}
