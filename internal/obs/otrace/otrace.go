// Package otrace is gcbench's request-scoped tracing layer: a
// dependency-free implementation of just enough distributed-tracing
// machinery to explain one request end to end — W3C traceparent
// propagation, context-scoped spans that survive async boundaries (the
// 202-accepted campaign job keeps appending spans to its originating
// trace after the HTTP response is gone), and a bounded in-process
// store with tail-based sampling (see store.go).
//
// The design mirrors the repo's obs philosophy: the hot path pays
// nothing when no trace is attached. Every Span method is nil-safe, so
// instrumented code writes
//
//	ctx, sp := otrace.StartSpan(ctx, "run", ...)
//	defer sp.End()
//
// unconditionally; without a trace in ctx that is two pointer checks
// and no allocation. The engine itself is never instrumented — its
// per-iteration phase walls are already measured in trace.RunTrace, and
// the sweep layer attaches them as synthesized child spans after the
// run, at zero extra clock reads (AddChild with explicit offsets).
package otrace

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// TraceID is a 16-byte W3C trace id (non-zero for valid traces).
type TraceID [16]byte

// SpanID is an 8-byte W3C span id (non-zero for valid spans).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText makes ids JSON-encode as their hex form.
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// MarshalText makes ids JSON-encode as their hex form.
func (s SpanID) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the 32-hex-digit form.
func (t *TraceID) UnmarshalText(b []byte) error {
	id, err := ParseTraceID(string(b))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// UnmarshalText parses the 16-hex-digit form.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("otrace: span id must be 16 hex digits, got %d", len(b))
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// ParseTraceID parses a 32-hex-digit trace id.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("otrace: trace id must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("otrace: trace id: %w", err)
	}
	return t, nil
}

// NewTraceID returns a random non-zero trace id (math/rand/v2's global
// ChaCha8 stream — uniqueness, not unpredictability, is the contract).
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}

// FlagSampled is the W3C trace-flags bit requesting recording.
const FlagSampled = 0x01

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-spanid-flags, e.g.
// "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").
// Unknown future versions are accepted per spec as long as the prefix
// parses; all-zero ids are rejected.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, sampled bool, err error) {
	if len(h) < 55 {
		return tid, parent, false, fmt.Errorf("otrace: traceparent too short (%d bytes)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, parent, false, fmt.Errorf("otrace: malformed traceparent %q", h)
	}
	var version [1]byte
	if _, err = hex.Decode(version[:], []byte(h[0:2])); err != nil {
		return tid, parent, false, fmt.Errorf("otrace: traceparent version: %w", err)
	}
	if version[0] == 0xff {
		return tid, parent, false, fmt.Errorf("otrace: traceparent version ff is invalid")
	}
	if version[0] == 0 && len(h) != 55 {
		return tid, parent, false, fmt.Errorf("otrace: version-00 traceparent must be 55 bytes, got %d", len(h))
	}
	if tid, err = ParseTraceID(h[3:35]); err != nil {
		return tid, parent, false, err
	}
	if _, err = hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return tid, parent, false, fmt.Errorf("otrace: traceparent span id: %w", err)
	}
	var flags [1]byte
	if _, err = hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return tid, parent, false, fmt.Errorf("otrace: traceparent flags: %w", err)
	}
	if tid.IsZero() {
		return tid, parent, false, fmt.Errorf("otrace: traceparent trace id is all zeros")
	}
	if parent.IsZero() {
		return tid, parent, false, fmt.Errorf("otrace: traceparent span id is all zeros")
	}
	return tid, parent, flags[0]&FlagSampled != 0, nil
}

// Traceparent renders a version-00 traceparent header.
func Traceparent(t TraceID, s SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + t.String() + "-" + s.String() + "-" + flags
}

// Attr is one key/value annotation on a span. Values should be
// JSON-encodable scalars.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// String, Int, Float and Bool build Attrs without making callers spell
// out the struct.
func String(k, v string) Attr      { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr     { return Attr{Key: k, Value: v} }
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: v}
}
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span status values.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// SpanData is one finished span as stored and exported. Offsets are
// relative to the trace's root start, so a span tree is a
// self-contained, clock-free description of where the time went.
type SpanData struct {
	SpanID SpanID `json:"spanId"`
	// Parent is the parent span's id (all zeros for the root), always a
	// span recorded in the same trace — the tree has no local orphans.
	Parent SpanID `json:"parentSpanId,omitzero"`
	// RemoteParent is the upstream span id parsed from an incoming
	// traceparent header (root spans only); it preserves the W3C chain
	// without dangling references inside the local tree.
	RemoteParent SpanID `json:"remoteParentSpanId,omitzero"`
	Name         string `json:"name"`
	// Kind classifies the span: "server", "job", "run", "iteration",
	// "phase", or "" for generic internal spans.
	Kind string `json:"kind,omitempty"`
	// Start is the absolute wall-clock start (informational; the
	// deterministic exports never use it).
	Start time.Time `json:"start"`
	// Offset is the span's start relative to the trace start.
	Offset time.Duration `json:"offsetNs"`
	// Duration is the span's elapsed time.
	Duration time.Duration `json:"durationNs"`
	Status   string        `json:"status,omitempty"`
	Error    string        `json:"error,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Trace collects the spans of one trace id. Spans may keep arriving
// after the root span ends (async campaign jobs); the trace remains
// live as long as the store retains it.
type Trace struct {
	id    TraceID
	start time.Time
	store *Store

	mu        sync.Mutex
	spans     []SpanData
	dropped   int
	maxSpans  int
	rootEnded bool
	protected bool // error/slow/marked — never evicted before boring traces
}

// ID returns the trace id.
func (t *Trace) ID() TraceID { return t.id }

// Start returns the trace's epoch: the root span's start time, which
// anchors every span offset.
func (t *Trace) Start() time.Time { return t.start }

// Spans returns a snapshot of the spans recorded so far, ordered by
// (offset, name, span id) so repeated reads of a quiesced trace are
// deterministic even though spans finish out of order.
func (t *Trace) Spans() []SpanData {
	t.mu.Lock()
	out := append([]SpanData(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].SpanID.String() < out[j].SpanID.String()
	})
	return out
}

// Dropped returns how many spans were discarded past the per-trace cap.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Mark protects the trace from boring-first eviction regardless of its
// root outcome — the HTTP layer marks 429s and errors explicitly.
func (t *Trace) Mark() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.protected = true
	t.mu.Unlock()
}

// add appends one finished span, honoring the per-trace span cap.
func (t *Trace) add(d SpanData) {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, d)
	}
	if d.Status == StatusError {
		t.protected = true
	}
	t.mu.Unlock()
}

// Span is a live, mutable span handle. All methods are safe on a nil
// receiver — the no-trace fast path.
type Span struct {
	tr     *Trace
	parent SpanID

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// newSpan starts a span on tr now.
func newSpan(tr *Trace, parent SpanID, name, kind string, attrs []Attr) *Span {
	now := time.Now()
	return &Span{
		tr:     tr,
		parent: parent,
		data: SpanData{
			SpanID: NewSpanID(),
			Parent: parent,
			Name:   name,
			Kind:   kind,
			Start:  now,
			Offset: now.Sub(tr.start),
			Attrs:  attrs,
		},
	}
}

// TraceID returns the owning trace's id (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SpanID returns the span's id (zero for nil spans).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.data.SpanID
}

// Traceparent renders the propagation header for requests this span
// makes downstream ("" for nil spans).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return Traceparent(s.tr.id, s.data.SpanID, true)
}

// SetAttr sets (or overwrites) one attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.data.Attrs {
		if s.data.Attrs[i].Key == key {
			s.data.Attrs[i].Value = value
			return
		}
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// Fail records an error status with the given message.
func (s *Span) Fail(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Status = StatusError
	s.data.Error = msg
	s.mu.Unlock()
}

// End finishes the span and commits it to the trace. Idempotent; the
// first call wins. Ending the trace's root span offers the trace to
// the store's tail sampler.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	if s.data.Status == "" {
		s.data.Status = StatusOK
	}
	d := s.data
	s.mu.Unlock()
	s.tr.add(d)
	if d.Parent.IsZero() {
		s.tr.rootEnd(d)
	}
}

// StartChild opens a child span under s ("nil begets nil": tracing
// stays off down the call tree when it is off at the top).
func (s *Span) StartChild(name, kind string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.tr, s.data.SpanID, name, kind, attrs)
}

// AddChild attaches an already-measured span under s with an explicit
// offset (relative to this span's start) and duration — the
// no-extra-clock-reads path used to graft engine iteration phases,
// whose walls trace.IterationStats already recorded, onto the tree.
// Returns the synthesized span's id so callers can nest further
// children beneath it.
func (s *Span) AddChild(name, kind string, offset, duration time.Duration, attrs ...Attr) SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.addChildUnder(s.data.SpanID, name, kind, offset, duration, attrs)
}

// AddChildUnder is AddChild with an explicit parent id from an earlier
// AddChild, for building synthesized subtrees.
func (s *Span) AddChildUnder(parent SpanID, name, kind string, offset, duration time.Duration, attrs ...Attr) SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.addChildUnder(parent, name, kind, offset, duration, attrs)
}

func (s *Span) addChildUnder(parent SpanID, name, kind string, offset, duration time.Duration, attrs []Attr) SpanID {
	id := NewSpanID()
	s.tr.add(SpanData{
		SpanID:   id,
		Parent:   parent,
		Name:     name,
		Kind:     kind,
		Start:    s.data.Start.Add(offset),
		Offset:   s.data.Offset + offset,
		Duration: duration,
		Status:   StatusOK,
		Attrs:    attrs,
	})
	return id
}

// ctxKey is the context key for span propagation.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the span in ctx and returns the derived
// context plus the new span. Without a span in ctx it returns ctx
// unchanged and a nil span — the zero-cost uninstrumented path.
func StartSpan(ctx context.Context, name, kind string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name, kind, attrs...)
	return ContextWithSpan(ctx, sp), sp
}
