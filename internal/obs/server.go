package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"gcbench/internal/obs/otrace"
)

// ServerOptions configures StartServer.
type ServerOptions struct {
	// Registry backs /metrics; nil means Default().
	Registry *Registry
	// Status, when non-nil, provides the /statusz payload. The returned
	// value is JSON-encoded on every request, so it should be a cheap
	// snapshot, not a live structure.
	Status func() any
	// Ready, when non-nil, backs /readyz: it reports whether the service
	// is ready to serve plus a JSON diagnostic detail (may be nil).
	// Readiness is deliberately separate from /healthz liveness — a
	// process can be alive (don't restart it) while still warming up
	// (don't route traffic to it), e.g. a shard tier before every shard
	// has published its first corpus version. Nil means "ready as soon as
	// the process serves HTTP", preserving the old conflated behavior.
	Ready func() (bool, any)
	// Traces, when non-nil, additionally serves the request-trace store
	// at /debug/traces and /debug/traces/{id}.
	Traces *otrace.Store
}

// Server is a running observability HTTP server. It serves:
//
//	/metrics       Prometheus text-format metric exposition
//	/statusz       live JSON status (campaign progress when attached)
//	/healthz       liveness probe ("ok")
//	/readyz        readiness probe (503 until ServerOptions.Ready says yes)
//	/debug/pprof/  the standard net/http/pprof profile handlers
//	/debug/vars    expvar (runtime memstats + the gcbench metric bridge)
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// RegisterRoutes registers the observability endpoints — /metrics,
// /statusz, /healthz, /readyz, /debug/vars and /debug/pprof/* — on a
// caller-supplied mux, so servers that add their own routes (the sweep
// campaign's -listen surface, the `gcbench serve` API) share one route
// implementation instead of duplicating it.
func RegisterRoutes(mux *http.ServeMux, opts ServerOptions) {
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	PublishExpvar()

	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		ready, detail := true, any(nil)
		if opts.Ready != nil {
			ready, detail = opts.Ready()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		payload := map[string]any{"ready": ready}
		if detail != nil {
			payload["detail"] = detail
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var payload any = map[string]string{"status": "idle"}
		if opts.Status != nil {
			payload = opts.Status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(payload)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if opts.Traces != nil {
		RegisterTraceRoutes(mux, opts.Traces)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartServer listens on addr (host:port; ":0" picks a free port) and
// serves the observability endpoints until Close. It returns once the
// listener is bound, so Addr is immediately usable.
func StartServer(addr string, opts ServerOptions) (*Server, error) {
	mux := http.NewServeMux()
	RegisterRoutes(mux, opts)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately. In-flight pprof profile captures
// are cut off rather than awaited — campaign shutdown must not block on
// a 30-second CPU profile.
func (s *Server) Close() error { return s.srv.Close() }
