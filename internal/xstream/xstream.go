// Package xstream implements an edge-centric execution model in the style
// of X-Stream (Roy et al., SOSP'13), the alternative computation model the
// paper's §3.3 discusses: "there are also other computation models used in
// current graph-processing systems (edge-centric model and graph-centric
// model), but the basic behavior of graph computation is conserved —
// transferring information through edges, performing computation on an
// independent unit, and activations."
//
// Instead of iterating active vertices over their adjacency (CSR), each
// iteration streams the entire unordered edge list: edges whose source is
// active emit updates toward their targets, updates are merged per target,
// and targets apply them — becoming active when they change. The same five
// behavior quantities are measured, so this package lets the conservation
// claim be checked quantitatively (see the package tests, which run
// CC/PR/SSSP under both models and compare results and activation
// behavior).
package xstream

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gcbench/internal/graph"
	"gcbench/internal/trace"
)

// Edge is one streamed edge.
type Edge struct {
	Src, Dst uint32
	Weight   float64
}

// Program is an edge-centric vertex program over state S and update U.
type Program[S, U any] interface {
	// Init returns vertex v's initial state and activity.
	Init(g *graph.Graph, v uint32) (S, bool)
	// ScatterEdge runs for every streamed edge whose source is active,
	// reading the source state and optionally emitting an update toward
	// the target.
	ScatterEdge(e Edge, src S) (U, bool)
	// Merge combines two updates destined for the same target (must be
	// commutative and associative).
	Merge(a, b U) U
	// Apply folds the merged update into the target's state, reporting
	// whether the vertex changed (and so is active next iteration).
	Apply(v uint32, s S, u U) (S, bool)
}

// Options configures a run.
type Options struct {
	// MaxIterations caps the run; 0 means 100000.
	MaxIterations int
	// Workers is the apply-phase parallelism; 0 means GOMAXPROCS. The
	// stream phase is sequential, as in a single streaming partition.
	Workers int
	// Context, when non-nil, cancels the run cooperatively at the next
	// iteration barrier; Run returns an error wrapping ctx.Err().
	Context context.Context
}

// Result carries the trace and final states.
type Result[S any] struct {
	Trace  *trace.RunTrace
	States []S
}

// Run executes the program to quiescence.
func Run[S, U any](g *graph.Graph, p Program[S, U], opt Options) (*Result[S], error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("xstream: nil or empty graph")
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 100000
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := g.NumVertices()
	// Materialize the flat edge stream: every arc once, in CSR storage
	// order (an arbitrary but fixed order, as a streaming engine sees it).
	edges := make([]Edge, 0, g.NumArcs())
	for u := uint32(0); int(u) < n; u++ {
		lo, hi := g.OutArcRange(u)
		for a := lo; a < hi; a++ {
			edges = append(edges, Edge{Src: u, Dst: g.ArcTarget(a), Weight: g.ArcWeight(a)})
		}
	}

	state := make([]S, n)
	active := make([]bool, n)
	nextActive := make([]bool, n)
	acc := make([]U, n)
	has := make([]bool, n)

	var activeCount int64
	for v := uint32(0); int(v) < n; v++ {
		s, a := p.Init(g, v)
		state[v] = s
		active[v] = a
		if a {
			activeCount++
		}
	}

	tr := &trace.RunTrace{NumVertices: n, NumEdges: g.NumEdges()}
	for iter := 0; iter < maxIter; iter++ {
		if activeCount == 0 {
			tr.Converged = true
			break
		}
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("xstream: run stopped at iteration %d: %w", iter, err)
			}
		}
		start := time.Now()

		// Stream phase: scan every edge, scatter from active sources.
		var reads, msgs int64
		for i := range edges {
			e := &edges[i]
			if !active[e.Src] {
				continue
			}
			reads++ // one source-state read through an edge
			u, ok := p.ScatterEdge(*e, state[e.Src])
			if !ok {
				continue
			}
			msgs++
			if has[e.Dst] {
				acc[e.Dst] = p.Merge(acc[e.Dst], u)
			} else {
				acc[e.Dst] = u
				has[e.Dst] = true
			}
		}

		// Apply phase: fold updates, decide next activity.
		applyStart := time.Now()
		var updates, nextCount int64
		for v := uint32(0); int(v) < n; v++ {
			if !has[v] {
				continue
			}
			has[v] = false
			var changed bool
			state[v], changed = p.Apply(v, state[v], acc[v])
			updates++
			if changed {
				nextActive[v] = true
				nextCount++
			}
		}
		applyTime := time.Since(applyStart)

		tr.Iterations = append(tr.Iterations, trace.IterationStats{
			Iteration: iter,
			Active:    activeCount,
			Updates:   updates,
			EdgeReads: reads,
			Messages:  msgs,
			ApplyTime: applyTime,
			WallTime:  time.Since(start),
		})

		active, nextActive = nextActive, active
		for v := range nextActive {
			nextActive[v] = false
		}
		activeCount = nextCount
	}
	return &Result[S]{Trace: tr, States: state}, nil
}
