package xstream

import (
	"math"

	"gcbench/internal/graph"
)

// Edge-centric formulations of three of the study's algorithms, used to
// verify the §3.3 conservation claim against the GAS implementations.

// CCProgram is min-label propagation, edge-centric: active sources push
// their label along out-edges; targets adopt smaller labels.
type CCProgram struct{}

// Init starts every vertex active with its own ID as label.
func (CCProgram) Init(_ *graph.Graph, v uint32) (uint32, bool) { return v, true }

// ScatterEdge pushes the source's label.
func (CCProgram) ScatterEdge(_ Edge, src uint32) (uint32, bool) { return src, true }

// Merge keeps the smaller label.
func (CCProgram) Merge(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Apply adopts an improving label.
func (CCProgram) Apply(_ uint32, s, u uint32) (uint32, bool) {
	if u < s {
		return u, true
	}
	return s, false
}

// SSSPProgram relaxes distances edge-centrically.
type SSSPProgram struct {
	Source uint32
}

// Init activates only the source.
func (p SSSPProgram) Init(_ *graph.Graph, v uint32) (float64, bool) {
	if v == p.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// ScatterEdge proposes a relaxed distance.
func (p SSSPProgram) ScatterEdge(e Edge, src float64) (float64, bool) {
	return src + e.Weight, true
}

// Merge keeps the shorter proposal.
func (p SSSPProgram) Merge(a, b float64) float64 { return math.Min(a, b) }

// Apply adopts an improving distance.
func (p SSSPProgram) Apply(_ uint32, s, u float64) (float64, bool) {
	if u < s {
		return u, true
	}
	return s, false
}

// PRState carries accumulated rank and the still-unpropagated delta.
type PRState struct {
	Rank  float64
	Delta float64
}

// PRProgram is delta-PageRank, the standard edge-centric formulation:
// updates carry rank *increments* instead of totals, so inactive
// (converged) vertices need not re-send their contribution. It converges
// to the same fixed point r = 0.15 + 0.85·M·r as the GAS pull version.
type PRProgram struct {
	G         *graph.Graph
	Damping   float64
	Tolerance float64
}

// Init seeds every vertex with the teleport mass as unpropagated delta.
func (p PRProgram) Init(_ *graph.Graph, _ uint32) (PRState, bool) {
	base := 1 - p.Damping
	return PRState{Rank: base, Delta: base}, true
}

// ScatterEdge forwards the damped share of the source's delta.
func (p PRProgram) ScatterEdge(e Edge, src PRState) (float64, bool) {
	d := p.G.OutDegree(e.Src)
	if d == 0 {
		return 0, false
	}
	return p.Damping * src.Delta / float64(d), true
}

// Merge sums incoming increments.
func (p PRProgram) Merge(a, b float64) float64 { return a + b }

// Apply folds the increment and stays active while it is material.
func (p PRProgram) Apply(_ uint32, s PRState, u float64) (PRState, bool) {
	next := PRState{Rank: s.Rank + u, Delta: u}
	return next, math.Abs(u) > p.Tolerance
}
