package xstream

import (
	"math"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

func testGraph(t *testing.T, edges int64, alpha float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: edges, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// --- conservation of results across computation models (§3.3) ---

func TestCCMatchesGASExactly(t *testing.T) {
	g := testGraph(t, 2000, 2.3, 5)
	res, err := Run[uint32, uint32](g, CCProgram{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, gasLabels, err := algorithms.ConnectedComponents(g, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasLabels {
		if res.States[v] != gasLabels[v] {
			t.Fatalf("vertex %d: edge-centric label %d, GAS label %d",
				v, res.States[v], gasLabels[v])
		}
	}
	if !res.Trace.Converged {
		t.Fatal("edge-centric CC did not converge")
	}
}

func TestSSSPMatchesGASExactly(t *testing.T) {
	g := testGraph(t, 2000, 2.5, 7)
	res, err := Run[float64, float64](g, SSSPProgram{Source: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, gasDist, err := algorithms.SingleSourceShortestPath(g, 0, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasDist {
		if res.States[v] != gasDist[v] {
			t.Fatalf("vertex %d: edge-centric dist %v, GAS %v", v, res.States[v], gasDist[v])
		}
	}
}

func TestPRMatchesGASWithinTolerance(t *testing.T) {
	g := testGraph(t, 2000, 2.3, 9)
	p := PRProgram{G: g, Damping: 0.85, Tolerance: 1e-10}
	res, err := Run[PRState, float64](g, p, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	_, gasRanks, err := algorithms.PageRank(g, algorithms.PageRankOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasRanks {
		if math.Abs(res.States[v].Rank-gasRanks[v]) > 1e-5*(1+gasRanks[v]) {
			t.Fatalf("vertex %d: edge-centric rank %v, GAS %v", v, res.States[v].Rank, gasRanks[v])
		}
	}
}

// --- conservation of *behavior*, not just results ---

func TestActivationBehaviorConserved(t *testing.T) {
	// §3.3: "the basic behavior of graph computation is conserved --
	// transferring information through edges, performing computation on
	// an independent unit, and activations." SSSP's frontier growth must
	// look the same under both models: same initial activity, same growth
	// trend, comparable iteration count.
	g := testGraph(t, 3000, 2.2, 11)
	res, err := Run[float64, float64](g, SSSPProgram{Source: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gasOut, _, err := algorithms.SingleSourceShortestPath(g, 0, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ec := res.Trace
	gas := gasOut.Trace
	if ec.Iterations[0].Active != 1 || gas.Iterations[0].Active != 1 {
		t.Fatal("both models must start from one active vertex")
	}
	// Same propagation depth up to the trailing quiescent pass.
	if d := ec.NumIterations() - gas.NumIterations(); d < -1 || d > 1 {
		t.Fatalf("iteration counts diverge: edge-centric %d, GAS %d",
			ec.NumIterations(), gas.NumIterations())
	}
	// Peak activity within 10% of each other (the frontier is the same;
	// only the activation bookkeeping differs).
	peakEC, peakGAS := int64(0), int64(0)
	for _, it := range ec.Iterations {
		if it.Active > peakEC {
			peakEC = it.Active
		}
	}
	for _, it := range gas.Iterations {
		if it.Active > peakGAS {
			peakGAS = it.Active
		}
	}
	lo, hi := float64(peakGAS)*0.9, float64(peakGAS)*1.1
	if f := float64(peakEC); f < lo || f > hi {
		t.Fatalf("peak activity diverges: edge-centric %d, GAS %d", peakEC, peakGAS)
	}
}

func TestEdgeReadsCountOnlyActiveSources(t *testing.T) {
	// Path 0-1-2-3: SSSP from 0. Iteration 0 has one active vertex with
	// 1 undirected arc... vertex 0 has out-arc to 1 only, so 1 read.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, SSSPProgram{Source: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	it0 := res.Trace.Iterations[0]
	if it0.EdgeReads != 1 || it0.Messages != 1 || it0.Updates != 1 {
		t.Fatalf("iteration 0 counters: %+v", it0)
	}
	// Iteration 1: vertex 1 active with arcs to 0 and 2 → 2 reads,
	// 2 messages, but only vertex 2 improves → next active 1.
	it1 := res.Trace.Iterations[1]
	if it1.EdgeReads != 2 || it1.Messages != 2 {
		t.Fatalf("iteration 1 counters: %+v", it1)
	}
	if res.States[3] != 3 {
		t.Fatalf("dist[3] = %v, want 3", res.States[3])
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run[uint32, uint32](nil, CCProgram{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestMaxIterationsCap(t *testing.T) {
	g := testGraph(t, 500, 2.5, 13)
	p := PRProgram{G: g, Damping: 0.85, Tolerance: 0} // never converges
	res, err := Run[PRState, float64](g, p, Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Converged || res.Trace.NumIterations() != 4 {
		t.Fatalf("cap not honored: %d iterations, converged=%t",
			res.Trace.NumIterations(), res.Trace.Converged)
	}
}

func BenchmarkEdgeCentricCC(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 100000, Alpha: 2.2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run[uint32, uint32](g, CCProgram{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
