// Package graphcentric implements the "think like a graph" execution
// model (Tian et al., VLDB'14), the third computation model the paper's
// §3.3 lists alongside vertex-centric GAS and edge-centric streaming.
//
// The graph is split into partitions; within one superstep each partition
// propagates information through its *internal* edges to a local fixed
// point (a sequential worklist), and only boundary-edge propagations wait
// for the global barrier. For distance-like computations this collapses
// many vertex-centric iterations into few supersteps while producing
// identical results — which the package tests verify against the GAS
// implementations, completing the §3.3 claim that "the basic behavior of
// graph computation is conserved" across all three models.
//
// The model here covers the propagation family (CC, SSSP and relatives):
// programs define how a state improves across an edge and which of two
// states is better.
package graphcentric

import (
	"context"
	"fmt"
	"time"

	"gcbench/internal/graph"
	"gcbench/internal/trace"
)

// Edge is one directed propagation step.
type Edge struct {
	Src, Dst uint32
	Weight   float64
}

// Program is a monotone propagation program over state S: states only
// ever improve (per Better), so local fixed points are globally safe.
type Program[S any] interface {
	// Init returns vertex v's initial state and activity.
	Init(g *graph.Graph, v uint32) (S, bool)
	// Propagate computes the state the target would adopt via this edge.
	Propagate(e Edge, src S) S
	// Better reports whether a strictly improves on b.
	Better(a, b S) bool
}

// Options configures a run.
type Options struct {
	// Partitions is the number of contiguous vertex partitions
	// (0 means 8).
	Partitions int
	// MaxSupersteps caps the run (0 means 100000).
	MaxSupersteps int
	// Context, when non-nil, cancels the run cooperatively at the next
	// superstep barrier; Run returns an error wrapping ctx.Err().
	Context context.Context
}

// Result carries the per-superstep trace and final states. Trace fields
// map onto the shared vocabulary: Active = vertices active at superstep
// start, Updates = state improvements applied (internal and boundary),
// EdgeReads = propagations evaluated, Messages = boundary propagations
// that crossed partitions.
type Result[S any] struct {
	Trace  *trace.RunTrace
	States []S
}

// Run executes the program to global quiescence.
func Run[S any](g *graph.Graph, p Program[S], opt Options) (*Result[S], error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("graphcentric: nil or empty graph")
	}
	parts := opt.Partitions
	if parts <= 0 {
		parts = 8
	}
	n := g.NumVertices()
	if parts > n {
		parts = n
	}
	maxSteps := opt.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 100000
	}

	partOf := func(v uint32) int { return int(v) * parts / n }

	state := make([]S, n)
	active := make([]bool, n)
	var activeCount int64
	for v := uint32(0); int(v) < n; v++ {
		s, a := p.Init(g, v)
		state[v] = s
		active[v] = a
		if a {
			activeCount++
		}
	}

	tr := &trace.RunTrace{NumVertices: n, NumEdges: g.NumEdges()}
	nextActive := make([]bool, n)
	queue := make([]uint32, 0, n)

	for step := 0; step < maxSteps; step++ {
		if activeCount == 0 {
			tr.Converged = true
			break
		}
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("graphcentric: run stopped at superstep %d: %w", step, err)
			}
		}
		start := time.Now()
		var reads, updates, messages int64

		applyStart := time.Now()
		// Each partition drains its active vertices to a local fixed
		// point; boundary improvements are applied immediately to the
		// target state (monotone, so safe) but only *activate* the target
		// in the next superstep.
		for part := 0; part < parts; part++ {
			queue = queue[:0]
			for v := uint32(0); int(v) < n; v++ {
				if active[v] && partOf(v) == part {
					queue = append(queue, v)
				}
			}
			inQueue := map[uint32]bool{}
			for _, v := range queue {
				inQueue[v] = true
			}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				inQueue[u] = false
				lo, hi := g.OutArcRange(u)
				for a := lo; a < hi; a++ {
					v := g.ArcTarget(a)
					reads++
					cand := p.Propagate(Edge{Src: u, Dst: v, Weight: g.ArcWeight(a)}, state[u])
					if !p.Better(cand, state[v]) {
						continue
					}
					state[v] = cand
					updates++
					if partOf(v) == part {
						// Internal improvement: keep draining locally.
						if !inQueue[v] {
							queue = append(queue, v)
							inQueue[v] = true
						}
					} else {
						// Boundary improvement: a message to another
						// partition, visible next superstep.
						messages++
						nextActive[v] = true
					}
				}
			}
		}
		applyTime := time.Since(applyStart)

		tr.Iterations = append(tr.Iterations, trace.IterationStats{
			Iteration: step,
			Active:    activeCount,
			Updates:   updates,
			EdgeReads: reads,
			Messages:  messages,
			ApplyTime: applyTime,
			WallTime:  time.Since(start),
		})

		activeCount = 0
		for v := range nextActive {
			active[v] = nextActive[v]
			if active[v] {
				activeCount++
			}
			nextActive[v] = false
		}
	}
	return &Result[S]{Trace: tr, States: state}, nil
}

// CCProgram is graph-centric min-label propagation.
type CCProgram struct{}

// Init starts every vertex active with its own ID.
func (CCProgram) Init(_ *graph.Graph, v uint32) (uint32, bool) { return v, true }

// Propagate forwards the source label.
func (CCProgram) Propagate(_ Edge, src uint32) uint32 { return src }

// Better prefers smaller labels.
func (CCProgram) Better(a, b uint32) bool { return a < b }

// SSSPProgram is graph-centric distance relaxation.
type SSSPProgram struct {
	Source uint32
	// Inf is the initial distance (math.Inf(1)).
	Inf float64
}

// Init activates only the source.
func (p SSSPProgram) Init(_ *graph.Graph, v uint32) (float64, bool) {
	if v == p.Source {
		return 0, true
	}
	return p.Inf, false
}

// Propagate relaxes across the edge.
func (p SSSPProgram) Propagate(e Edge, src float64) float64 { return src + e.Weight }

// Better prefers shorter distances.
func (p SSSPProgram) Better(a, b float64) bool { return a < b }
