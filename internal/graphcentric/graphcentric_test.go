package graphcentric

import (
	"math"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

func testGraph(t *testing.T, edges int64, alpha float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: edges, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCCMatchesGAS(t *testing.T) {
	g := testGraph(t, 3000, 2.3, 5)
	res, err := Run[uint32](g, CCProgram{}, Options{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, gasLabels, err := algorithms.ConnectedComponents(g, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasLabels {
		if res.States[v] != gasLabels[v] {
			t.Fatalf("vertex %d: graph-centric %d, GAS %d", v, res.States[v], gasLabels[v])
		}
	}
	if !res.Trace.Converged {
		t.Fatal("did not converge")
	}
}

func TestSSSPMatchesGAS(t *testing.T) {
	g := testGraph(t, 3000, 2.5, 7)
	res, err := Run[float64](g, SSSPProgram{Source: 0, Inf: math.Inf(1)}, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, gasDist, err := algorithms.SingleSourceShortestPath(g, 0, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasDist {
		if res.States[v] != gasDist[v] {
			t.Fatalf("vertex %d: graph-centric %v, GAS %v", v, res.States[v], gasDist[v])
		}
	}
}

// TestFewerSupersteps checks the model's defining property (and the
// Giraph++ motivation): local fixed points collapse many vertex-centric
// iterations into few supersteps.
func TestFewerSupersteps(t *testing.T) {
	// A long path maximizes the contrast: vertex-centric CC needs ~n
	// iterations, graph-centric needs ~partitions supersteps.
	n := 256
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[uint32](g, CCProgram{}, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	gasOut, _, err := algorithms.ConnectedComponents(g, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gc := res.Trace.NumIterations()
	gas := gasOut.Trace.NumIterations()
	if gc >= gas/4 {
		t.Fatalf("graph-centric used %d supersteps vs %d GAS iterations; expected ≥4x fewer", gc, gas)
	}
	// With 4 partitions on a path, labels cross 3 boundaries: ≤5 steps.
	if gc > 5 {
		t.Fatalf("supersteps = %d, want ≤5 with 4 partitions", gc)
	}
}

func TestBoundaryMessagesOnlyAcrossPartitions(t *testing.T) {
	// Single partition: everything is internal, so zero messages and one
	// superstep (plus none after quiescence).
	g := testGraph(t, 1000, 2.5, 9)
	res, err := Run[uint32](g, CCProgram{}, Options{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumIterations() != 1 {
		t.Fatalf("single partition took %d supersteps, want 1", res.Trace.NumIterations())
	}
	if res.Trace.Iterations[0].Messages != 0 {
		t.Fatalf("single partition produced %d boundary messages", res.Trace.Iterations[0].Messages)
	}
}

func TestPartitionCountInsensitivity(t *testing.T) {
	// Results must be identical for any partitioning (monotone programs).
	g := testGraph(t, 2000, 2.2, 11)
	var base []uint32
	for _, parts := range []int{1, 2, 7, 32} {
		res, err := Run[uint32](g, CCProgram{}, Options{Partitions: parts})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.States
			continue
		}
		for v := range base {
			if res.States[v] != base[v] {
				t.Fatalf("partitions=%d: vertex %d label differs", parts, v)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run[uint32](nil, CCProgram{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}
