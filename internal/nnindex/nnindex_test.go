package nnindex

import (
	"math"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

func randomPoints(n int, r *rng.Source) []behavior.Vector {
	pts := make([]behavior.Vector, n)
	for i := range pts {
		for d := 0; d < behavior.Dims; d++ {
			pts[i][d] = r.Float64()
		}
	}
	return pts
}

// checkAgainstOracle asserts Index.Nearest == NearestLinear for every
// query: same index, bit-identical squared distance.
func checkAgainstOracle(t *testing.T, ix *Index, pts []behavior.Vector, queries []behavior.Vector, label string) {
	t.Helper()
	for qi, q := range queries {
		wantI, wantD := NearestLinear(pts, q)
		gotI, gotD := ix.Nearest(q)
		if gotI != wantI || gotD != wantD {
			t.Fatalf("%s query %d: indexed = (%d, %v), linear = (%d, %v)",
				label, qi, gotI, gotD, wantI, wantD)
		}
	}
}

// TestNearestMatchesLinearRandom is the satellite property test: for
// randomized pools up to n=500, the indexed NN result equals the
// linear-scan NN for every query — index, distance, and tie-breaking.
func TestNearestMatchesLinearRandom(t *testing.T) {
	sizes := []int{1, 2, 3, 7, 8, 9, 16, 33, 100, 251, 500}
	for _, n := range sizes {
		for seed := uint64(1); seed <= 5; seed++ {
			r := rng.New(seed*1000 + uint64(n))
			pts := randomPoints(n, r)
			ix := Build(pts)
			// Random queries plus every point itself (exact hits) and
			// slight perturbations (near-ties at leaf boundaries).
			queries := randomPoints(200, r)
			queries = append(queries, pts...)
			for _, p := range pts {
				p[0] += 1e-9
				queries = append(queries, p)
			}
			checkAgainstOracle(t, ix, pts, queries, "random")
		}
	}
}

// TestNearestTieBreaking plants exact duplicate points so multiple
// indices share the minimum distance; both paths must return the
// smallest index.
func TestNearestTieBreaking(t *testing.T) {
	r := rng.New(42)
	base := randomPoints(60, r)
	// Duplicate a third of the points at scattered positions, including
	// duplicates of the same point (three-way ties).
	pts := append([]behavior.Vector(nil), base...)
	for i := 0; i < 20; i++ {
		pts = append(pts, base[i*3%len(base)])
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, base[7])
	}
	ix := Build(pts)
	queries := append(randomPoints(300, r), pts...)
	checkAgainstOracle(t, ix, pts, queries, "ties")

	// Symmetric ties without duplicates: query equidistant from two
	// points (coordinates chosen exactly representable so the two
	// distances are bit-equal). The smaller index must win.
	sym := []behavior.Vector{{0.75, 0.5, 0.5, 0.5}, {0.25, 0.5, 0.5, 0.5}}
	ixs := Build(sym)
	q := behavior.Vector{0.5, 0.5, 0.5, 0.5}
	wantI, wantD := NearestLinear(sym, q)
	gotI, gotD := ixs.Nearest(q)
	if wantI != 0 {
		t.Fatalf("oracle broke its own tie rule: %d", wantI)
	}
	if gotI != wantI || gotD != wantD {
		t.Fatalf("symmetric tie: indexed (%d, %v), linear (%d, %v)", gotI, gotD, wantI, wantD)
	}
}

// TestNearestExhaustiveSmallN checks every pool size 0..2·leafSize+3
// (covering the leaf/internal transition) against a dense grid of
// queries, with coordinates drawn from a tiny value set to force heavy
// tie and boundary collisions.
func TestNearestExhaustiveSmallN(t *testing.T) {
	vals := []float64{0, 0.25, 0.5, 0.75, 1}
	r := rng.New(7)
	for n := 0; n <= 2*leafSize+3; n++ {
		for trial := 0; trial < 30; trial++ {
			pts := make([]behavior.Vector, n)
			for i := range pts {
				for d := 0; d < behavior.Dims; d++ {
					pts[i][d] = vals[r.Intn(len(vals))]
				}
			}
			ix := Build(pts)
			if ix.Len() != n {
				t.Fatalf("Len = %d, want %d", ix.Len(), n)
			}
			// Queries: all grid corners of the value set on two axes plus
			// random points and the points themselves.
			var queries []behavior.Vector
			for _, a := range vals {
				for _, b := range vals {
					queries = append(queries, behavior.Vector{a, b, 0.5, 0.5})
				}
			}
			queries = append(queries, randomPoints(50, r)...)
			queries = append(queries, pts...)
			checkAgainstOracle(t, ix, pts, queries, "exhaustive")
		}
	}
}

// TestEmptyIndex: no points means no neighbor.
func TestEmptyIndex(t *testing.T) {
	for _, pts := range [][]behavior.Vector{nil, {}} {
		ix := Build(pts)
		i, d := ix.Nearest(behavior.Vector{0.5, 0.5, 0.5, 0.5})
		if i != -1 || !math.IsInf(d, 1) {
			t.Fatalf("empty index Nearest = (%d, %v), want (-1, +Inf)", i, d)
		}
	}
}

// TestBuildCopiesPoints: mutating the caller's slice after Build must
// not change query results.
func TestBuildCopiesPoints(t *testing.T) {
	r := rng.New(11)
	pts := randomPoints(64, r)
	orig := append([]behavior.Vector(nil), pts...)
	ix := Build(pts)
	for i := range pts {
		pts[i] = behavior.Vector{9, 9, 9, 9}
	}
	checkAgainstOracle(t, ix, orig, randomPoints(100, r), "copied")
}

// TestDegeneratePools: all-identical points and collinear points stress
// zero-range axis selection and splitting.
func TestDegeneratePools(t *testing.T) {
	same := make([]behavior.Vector, 40)
	for i := range same {
		same[i] = behavior.Vector{0.3, 0.3, 0.3, 0.3}
	}
	ix := Build(same)
	q := behavior.Vector{0.9, 0.1, 0.5, 0.5}
	if i, _ := ix.Nearest(q); i != 0 {
		t.Fatalf("identical-point pool: nearest = %d, want 0", i)
	}

	line := make([]behavior.Vector, 50)
	for i := range line {
		line[i] = behavior.Vector{float64(i) / 49, 0.5, 0.5, 0.5}
	}
	ixl := Build(line)
	r := rng.New(13)
	checkAgainstOracle(t, ixl, line, randomPoints(200, r), "collinear")
}

func BenchmarkNearestIndexed(b *testing.B) {
	r := rng.New(99)
	pts := randomPoints(500, r)
	ix := Build(pts)
	queries := randomPoints(1024, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Nearest(queries[i&1023])
	}
}

func BenchmarkNearestLinear(b *testing.B) {
	r := rng.New(99)
	pts := randomPoints(500, r)
	queries := randomPoints(1024, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NearestLinear(pts, queries[i&1023])
	}
}
