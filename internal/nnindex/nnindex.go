// Package nnindex provides an exact nearest-neighbor index over behavior
// vectors: a k-d tree whose queries return bit-identical results to a
// linear scan — the same nearest index, the same squared distance, the
// same tie-breaking — in O(log n) expected time instead of O(n).
//
// Exactness is the point. The index serves hot query paths (the §7
// behavior predictor, incremental coverage maintenance) whose results
// must be provably interchangeable with the brute-force implementations
// they replace, so NearestLinear is retained as the differential-test
// oracle and the tree is engineered to agree with it on every input:
//
//   - Distances are accumulated by Dist2 in dimension order on both
//     paths, so the two computations produce the same float64s.
//   - Ties on distance resolve to the smallest point index on both
//     paths. The tree compares (dist², index) at every visit, and only
//     prunes a subtree when the splitting plane is strictly farther
//     than the current best — a plane exactly at the best distance is
//     descended, so an equal-distance smaller-index point can never be
//     skipped.
//   - Plane pruning compares fl((q[axis]-split)²) against the best
//     dist². For any point p beyond the plane the computed Dist2(q, p)
//     is ≥ the computed plane term (floating-point summation of
//     non-negative terms never rounds below any single term, and
//     rounding is monotone), so strict pruning never discards a
//     candidate the linear scan would have chosen.
package nnindex

import (
	"math"
	"sort"

	"gcbench/internal/behavior"
)

// Dist2 returns the squared Euclidean distance between two behavior
// vectors, accumulated in dimension order (the same order
// behavior.Distance uses before its square root), so index and oracle
// compare identical float64 values.
func Dist2(a, b behavior.Vector) float64 {
	var s float64
	for d := 0; d < behavior.Dims; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// NearestLinear is the brute-force oracle: it scans points in index
// order and returns the index of the nearest point to q and the squared
// distance, breaking distance ties toward the smaller index. An empty
// slice yields (-1, +Inf).
func NearestLinear(points []behavior.Vector, q behavior.Vector) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i := range points {
		// Strict < keeps the first (smallest-index) point among ties.
		if d := Dist2(points[i], q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// leafSize is the subtree size below which the tree stores a flat run
// of points and queries scan it directly; below ~8 points the scan is
// cheaper than further branching.
const leafSize = 8

// node is one k-d tree node. Leaves hold a contiguous range of the
// order permutation; internal nodes hold a splitting plane and children.
type node struct {
	axis  int8
	split float64
	// left/right index into Index.nodes; -1 marks a leaf.
	left, right int32
	// lo/hi bound the leaf's range in Index.order.
	lo, hi int32
}

// Index is an immutable k-d tree over a point set. Build once, query
// from any number of goroutines concurrently.
type Index struct {
	pts   []behavior.Vector
	order []int32
	nodes []node
	root  int32
}

// Build constructs the index. The points are copied, so later mutation
// of the caller's slice does not corrupt queries. A nil or empty slice
// yields an index whose Nearest returns (-1, +Inf).
func Build(points []behavior.Vector) *Index {
	ix := &Index{
		pts:   append([]behavior.Vector(nil), points...),
		order: make([]int32, len(points)),
		root:  -1,
	}
	for i := range ix.order {
		ix.order[i] = int32(i)
	}
	if len(points) > 0 {
		ix.root = ix.build(0, int32(len(points)))
	}
	return ix
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// build lays out the subtree over order[lo:hi] and returns its node id.
func (ix *Index) build(lo, hi int32) int32 {
	if hi-lo <= leafSize {
		ix.nodes = append(ix.nodes, node{left: -1, right: -1, lo: lo, hi: hi})
		return int32(len(ix.nodes) - 1)
	}
	// Split the widest-spread axis: better balance than round-robin on
	// the anisotropic point sets predict's feature embeddings produce.
	axis := 0
	bestRange := -1.0
	for d := 0; d < behavior.Dims; d++ {
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, i := range ix.order[lo:hi] {
			v := ix.pts[i][d]
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if r := maxV - minV; r > bestRange {
			bestRange, axis = r, d
		}
	}
	sub := ix.order[lo:hi]
	// Sort by (coordinate, index) for a deterministic layout independent
	// of input permutation history.
	sort.Slice(sub, func(a, b int) bool {
		ca, cb := ix.pts[sub[a]][axis], ix.pts[sub[b]][axis]
		if ca != cb {
			return ca < cb
		}
		return sub[a] < sub[b]
	})
	mid := (lo + hi) / 2
	// Left gets coordinates ≤ split, right gets ≥ split; points equal to
	// the split value may land on either side, which pruning tolerates.
	n := node{axis: int8(axis), split: ix.pts[ix.order[mid]][axis]}
	id := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, n)
	l := ix.build(lo, mid)
	r := ix.build(mid, hi)
	ix.nodes[id].left = l
	ix.nodes[id].right = r
	return id
}

// Nearest returns the index of the nearest point to q and the squared
// distance — bit-identical to NearestLinear on the same point set,
// including tie-breaking toward the smaller index.
func (ix *Index) Nearest(q behavior.Vector) (int, float64) {
	best, bestD := -1, math.Inf(1)
	if ix.root >= 0 {
		ix.search(ix.root, q, &best, &bestD)
	}
	return best, bestD
}

func (ix *Index) search(id int32, q behavior.Vector, best *int, bestD *float64) {
	n := &ix.nodes[id]
	if n.left < 0 {
		for _, i := range ix.order[n.lo:n.hi] {
			d := Dist2(ix.pts[i], q)
			// The traversal visits points out of index order, so ties
			// must compare indices explicitly to match the oracle.
			if d < *bestD || (d == *bestD && int(i) < *best) {
				*best, *bestD = int(i), d
			}
		}
		return
	}
	near, far := n.left, n.right
	if q[n.axis] >= n.split {
		near, far = far, near
	}
	ix.search(near, q, best, bestD)
	// Descend the far side unless the splitting plane is strictly
	// farther than the best: an equal-distance point beyond the plane
	// could still win its tie on index.
	diff := q[n.axis] - n.split
	if diff*diff <= *bestD {
		ix.search(far, q, best, bestD)
	}
}
