package model

import (
	"context"

	"gcbench/internal/algorithms"
)

// gasModel is the default execution model: the paper's GAS vertex
// programs (internal/engine), which implement all fourteen study
// algorithms. Metric mapping: UPDT = apply invocations, EREAD = gather/
// scatter edge traversals, MSG = scatter signals, WORK = apply time.
type gasModel struct{}

func (gasModel) Name() Name { return GAS }

func (gasModel) Supports(alg algorithms.Name) bool {
	for _, a := range algorithms.AllNames() {
		if a == alg {
			return true
		}
	}
	return false
}

func (gasModel) Run(ctx context.Context, w Workload, alg algorithms.Name, opt Options) (*Result, error) {
	aopt := algorithms.Options{
		Workers:       opt.Workers,
		MaxIterations: opt.MaxIterations,
		Context:       runContext(ctx, opt),
		Frontier:      opt.Frontier,
	}
	var out *algorithms.Output
	var err error
	switch alg {
	case algorithms.CC, algorithms.KC, algorithms.TC, algorithms.SSSP,
		algorithms.PR, algorithms.AD, algorithms.KM:
		g, gerr := needGraph(GAS, w)
		if gerr != nil {
			return nil, gerr
		}
		switch alg {
		case algorithms.CC:
			out, _, err = algorithms.ConnectedComponents(g, aopt)
		case algorithms.KC:
			out, _, err = algorithms.KCoreDecomposition(g, aopt)
		case algorithms.TC:
			out, _, err = algorithms.TriangleCounting(g, aopt)
		case algorithms.SSSP:
			out, _, err = algorithms.SingleSourceShortestPath(g, MaxDegreeVertex(g), aopt)
		case algorithms.PR:
			out, _, err = algorithms.PageRank(g, algorithms.PageRankOptions{Options: aopt})
		case algorithms.AD:
			out, _, err = algorithms.ApproximateDiameter(g, aopt)
		case algorithms.KM:
			kmOpt := algorithms.KMeansOptions{Options: aopt, Seed: opt.Seed}
			if kmOpt.MaxIterations == 0 {
				kmOpt.MaxIterations = 1000
			}
			out, _, err = algorithms.KMeans(g, kmOpt)
		}

	case algorithms.ALS, algorithms.NMF, algorithms.SGD, algorithms.SVD:
		if w.Ratings == nil {
			return nil, unsupported(GAS, alg)
		}
		switch alg {
		case algorithms.ALS:
			out, _, err = algorithms.AlternatingLeastSquares(w.Ratings, w.Users, algorithms.ALSOptions{Options: aopt})
		case algorithms.NMF:
			out, _, err = algorithms.NonnegativeMatrixFactorization(w.Ratings, w.Users, algorithms.NMFOptions{Options: aopt})
		case algorithms.SGD:
			out, _, err = algorithms.StochasticGradientDescent(w.Ratings, w.Users, algorithms.SGDOptions{Options: aopt})
		case algorithms.SVD:
			out, _, err = algorithms.SingularValueDecomposition(w.Ratings, w.Users, algorithms.SVDOptions{Options: aopt})
		}

	case algorithms.Jacobi:
		if w.System == nil {
			return nil, unsupported(GAS, alg)
		}
		out, _, err = algorithms.JacobiSolve(w.System, algorithms.JacobiOptions{Options: aopt})

	case algorithms.LBP:
		if w.MRF == nil {
			return nil, unsupported(GAS, alg)
		}
		out, _, err = algorithms.LoopyBeliefPropagation(w.MRF, algorithms.LBPOptions{Options: aopt})

	case algorithms.DD:
		if w.MRF == nil {
			return nil, unsupported(GAS, alg)
		}
		out, _, err = algorithms.DualDecomposition(w.MRF, algorithms.DDOptions{Options: aopt})

	default:
		return nil, unsupported(GAS, alg)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Trace: out.Trace, Summary: out.Summary}, nil
}
