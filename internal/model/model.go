// Package model makes the execution model a first-class campaign axis:
// the four engines the repo carries — GAS vertex programs, Pregel
// bulk-synchronous message passing, X-Stream edge-centric streaming, and
// graph-centric partition-local fixed points — run behind one interface,
// so a sweep Spec can name its engine the same way it names its
// algorithm, and the behavior corpus can hold runs from all four side by
// side.
//
// The paper's §3.3 claims the basic behavior of graph computation is
// conserved across computation models: "transferring information through
// edges, performing computation on an independent unit, and activations".
// Every model here reports the same per-iteration trace vocabulary
// (trace.IterationStats), so behavior.FromTrace applies unchanged; what
// differs per model is which concrete event each counter measures. The
// mapping is documented in the behavior package (see behavior.Run.Model)
// and pinned by the cross-model invariance suite.
package model

import (
	"context"
	"fmt"
	"strings"

	"gcbench/internal/algorithms"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
	"gcbench/internal/trace"
)

// Name identifies an execution model in sweeps, corpus records and the
// serving API.
type Name string

// Execution model names. GAS is the default: specs and corpus records
// written before the model axis existed carry no model field and are
// read as GAS.
const (
	GAS          Name = "gas"
	Pregel       Name = "pregel"
	XStream      Name = "xstream"
	GraphCentric Name = "graphcentric"
)

// AllNames lists every execution model, GAS first.
func AllNames() []Name {
	return []Name{GAS, Pregel, XStream, GraphCentric}
}

// Parse resolves a case-insensitive execution model name. The empty
// string resolves to GAS (the pre-model-axis default).
func Parse(s string) (Name, error) {
	if s == "" {
		return GAS, nil
	}
	for _, n := range AllNames() {
		if strings.EqualFold(s, string(n)) {
			return n, nil
		}
	}
	return "", fmt.Errorf("model: unknown execution model %q (known: %v)", s, AllNames())
}

// Canonical maps the stored form of a model tag to its effective name:
// the empty string (records and specs that predate the model axis) is
// GAS. It does not validate unknown names — use Parse for that.
func Canonical(s string) Name {
	if s == "" {
		return GAS
	}
	return Name(strings.ToLower(s))
}

// Tag returns the stored (wire/JSON) form of a model name: empty for
// GAS, so specs, runs and corpus records under the default model stay
// byte-identical to their pre-model-axis encoding.
func Tag(n Name) string {
	if Canonical(string(n)) == GAS {
		return ""
	}
	return string(n)
}

// Options configures one model run. It mirrors algorithms.Options with
// the extra fields the non-GAS engines and seeded algorithms need.
type Options struct {
	// Workers is the engine parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxIterations caps the run; 0 means the engine default.
	MaxIterations int
	// Context, when non-nil, cancels the computation cooperatively at
	// the next iteration/superstep barrier.
	Context context.Context
	// Frontier selects the GAS engine's active-set scheduling strategy
	// (ignored by the other models, which have no frontier scheduler).
	Frontier algorithms.FrontierMode
	// Seed feeds the seeded algorithms (KM initialization).
	Seed uint64
}

// Workload carries the pre-built inputs a model run consumes. Exactly
// the fields the algorithm's domain needs are set; the rest stay nil.
// Building (and caching) workloads is the caller's concern — models
// never generate graphs, so one generated graph is shared across every
// model that sweeps it.
type Workload struct {
	// Graph is the Graph Analytics / Clustering power-law graph
	// (undirected, sorted adjacency, 2-D features attached).
	Graph *graph.Graph
	// Ratings and Users are the Collaborative Filtering bipartite
	// rating graph and its user count.
	Ratings *graph.Graph
	Users   int
	// System is the Jacobi linear system.
	System *gen.MatrixSystem
	// MRF is the LBP grid or DD Markov random field.
	MRF *graph.MRF
}

// Result is one model run: the per-iteration behavior trace (the same
// vocabulary for every model, so behavior.FromTrace applies unchanged)
// plus algorithm-specific summary statistics used by the cross-model
// result-equivalence checks.
type Result struct {
	Trace   *trace.RunTrace
	Summary map[string]float64
}

// Model is one execution model: it runs a supported algorithm over a
// pre-built workload and reports the run's behavior trace. Implementations
// are stateless and safe for concurrent use.
type Model interface {
	// Name returns the model's canonical name.
	Name() Name
	// Supports reports whether the model implements alg.
	Supports(alg algorithms.Name) bool
	// Run executes alg over w. ctx (when non-nil) cancels cooperatively
	// at the model's iteration barrier; opt.Context, if also set, is
	// superseded by ctx.
	Run(ctx context.Context, w Workload, alg algorithms.Name, opt Options) (*Result, error)
}

// ForName returns the implementation of a model name.
func ForName(n Name) (Model, error) {
	switch Canonical(string(n)) {
	case GAS:
		return gasModel{}, nil
	case Pregel:
		return pregelModel{}, nil
	case XStream:
		return xstreamModel{}, nil
	case GraphCentric:
		return graphCentricModel{}, nil
	}
	return nil, fmt.Errorf("model: unknown execution model %q (known: %v)", n, AllNames())
}

// Supported returns the algorithms a model implements, in the paper's
// presentation order.
func Supported(n Name) ([]algorithms.Name, error) {
	m, err := ForName(n)
	if err != nil {
		return nil, err
	}
	var algs []algorithms.Name
	for _, a := range algorithms.AllNames() {
		if m.Supports(a) {
			algs = append(algs, a)
		}
	}
	return algs, nil
}

// Supporting returns the models that implement alg, GAS first.
func Supporting(alg algorithms.Name) []Name {
	var ms []Name
	for _, n := range AllNames() {
		m, err := ForName(n)
		if err == nil && m.Supports(alg) {
			ms = append(ms, n)
		}
	}
	return ms
}

// runContext resolves the effective context of a run.
func runContext(ctx context.Context, opt Options) context.Context {
	if ctx != nil {
		return ctx
	}
	if opt.Context != nil {
		return opt.Context
	}
	return context.Background()
}

// MaxDegreeVertex picks the SSSP source every model shares: the
// highest-degree vertex, so the frontier expansion the paper describes
// is visible on every graph (a random isolated source would trivialize
// the run) and cross-model results are comparable.
func MaxDegreeVertex(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), -1
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// unsupported is the uniform error for a model/algorithm mismatch.
func unsupported(m Name, alg algorithms.Name) error {
	return fmt.Errorf("model: %s does not implement %s", m, alg)
}

// needGraph guards workloads that must carry the GA graph.
func needGraph(m Name, w Workload) (*graph.Graph, error) {
	if w.Graph == nil {
		return nil, fmt.Errorf("model: %s run requires a graph workload", m)
	}
	return w.Graph, nil
}
