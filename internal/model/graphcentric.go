package model

import (
	"context"
	"math"

	"gcbench/internal/algorithms"
	"gcbench/internal/graphcentric"
)

// graphCentricModel runs the "think like a graph" engine
// (internal/graphcentric): partition-local fixed points between global
// barriers. Metric mapping: UPDT = state improvements applied, EREAD =
// propagations evaluated, MSG = boundary propagations that crossed
// partitions (zero under a single partition), WORK = superstep drain
// time. It covers the monotone propagation family only.
type graphCentricModel struct{}

func (graphCentricModel) Name() Name { return GraphCentric }

func (graphCentricModel) Supports(alg algorithms.Name) bool {
	switch alg {
	case algorithms.CC, algorithms.SSSP:
		return true
	}
	return false
}

func (graphCentricModel) Run(ctx context.Context, w Workload, alg algorithms.Name, opt Options) (*Result, error) {
	g, err := needGraph(GraphCentric, w)
	if err != nil {
		return nil, err
	}
	gopt := graphcentric.Options{
		MaxSupersteps: opt.MaxIterations,
		Context:       runContext(ctx, opt),
	}
	switch alg {
	case algorithms.CC:
		res, err := graphcentric.Run[uint32](g, graphcentric.CCProgram{}, gopt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: componentsSummary(res.States)}, nil
	case algorithms.SSSP:
		src := MaxDegreeVertex(g)
		p := graphcentric.SSSPProgram{Source: src, Inf: math.Inf(1)}
		res, err := graphcentric.Run[float64](g, p, gopt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: distanceSummary(res.States)}, nil
	}
	return nil, unsupported(GraphCentric, alg)
}
