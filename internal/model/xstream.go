package model

import (
	"context"

	"gcbench/internal/algorithms"
	"gcbench/internal/xstream"
)

// xstreamPRTolerance is the delta threshold below which a vertex stops
// re-propagating rank increments — the edge-centric analogue of the GAS
// PageRank stability tolerance (default 1e-3). It is tighter because a
// delta-PR increment bounds the *remaining* mass a vertex will ever
// forward, not its final rank error.
const xstreamPRTolerance = 1e-6

// xstreamModel runs the edge-centric streaming engine (internal/xstream).
// Metric mapping: EREAD = streamed edges scanned from active sources (the
// whole edge list passes per iteration), MSG = updates emitted toward
// targets, UPDT = apply-phase folds, WORK = apply time.
type xstreamModel struct{}

func (xstreamModel) Name() Name { return XStream }

func (xstreamModel) Supports(alg algorithms.Name) bool {
	switch alg {
	case algorithms.CC, algorithms.SSSP, algorithms.PR:
		return true
	}
	return false
}

func (xstreamModel) Run(ctx context.Context, w Workload, alg algorithms.Name, opt Options) (*Result, error) {
	g, err := needGraph(XStream, w)
	if err != nil {
		return nil, err
	}
	xopt := xstream.Options{
		MaxIterations: opt.MaxIterations,
		Workers:       opt.Workers,
		Context:       runContext(ctx, opt),
	}
	switch alg {
	case algorithms.CC:
		res, err := xstream.Run[uint32, uint32](g, xstream.CCProgram{}, xopt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: componentsSummary(res.States)}, nil
	case algorithms.SSSP:
		src := MaxDegreeVertex(g)
		res, err := xstream.Run[float64, float64](g, xstream.SSSPProgram{Source: src}, xopt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: distanceSummary(res.States)}, nil
	case algorithms.PR:
		p := xstream.PRProgram{G: g, Damping: 0.85, Tolerance: xstreamPRTolerance}
		res, err := xstream.Run[xstream.PRState, float64](g, p, xopt)
		if err != nil {
			return nil, err
		}
		ranks := make([]float64, len(res.States))
		for i, s := range res.States {
			ranks[i] = s.Rank
		}
		return &Result{Trace: res.Trace, Summary: rankSummary(ranks)}, nil
	}
	return nil, unsupported(XStream, alg)
}
