package model

import (
	"context"

	"gcbench/internal/algorithms"
	"gcbench/internal/pregel"
)

// pregelPRSupersteps is the fixed superstep budget of the Pregel paper's
// PageRank formulation when the caller sets no cap. At damping 0.85 the
// rank error after 60 supersteps is below 1e-4 relative, comfortably
// inside the GAS default tolerance.
const pregelPRSupersteps = 60

// pregelModel runs the Pregel BSP engine (internal/pregel). Metric
// mapping: UPDT = Compute invocations, MSG = messages sent, EREAD = edge
// traversals made while addressing messages, WORK = Compute time.
type pregelModel struct{}

func (pregelModel) Name() Name { return Pregel }

func (pregelModel) Supports(alg algorithms.Name) bool {
	switch alg {
	case algorithms.CC, algorithms.SSSP, algorithms.PR:
		return true
	}
	return false
}

func (pregelModel) Run(ctx context.Context, w Workload, alg algorithms.Name, opt Options) (*Result, error) {
	g, err := needGraph(Pregel, w)
	if err != nil {
		return nil, err
	}
	popt := pregel.Options{
		MaxSupersteps: opt.MaxIterations,
		Workers:       opt.Workers,
		Context:       runContext(ctx, opt),
	}
	switch alg {
	case algorithms.CC:
		res, err := pregel.Run[uint32, uint32](g, pregel.CCProgram{}, popt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: componentsSummary(res.States)}, nil
	case algorithms.SSSP:
		src := MaxDegreeVertex(g)
		res, err := pregel.Run[float64, float64](g, pregel.SSSPProgram{Source: src}, popt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: distanceSummary(res.States)}, nil
	case algorithms.PR:
		steps := opt.MaxIterations
		if steps <= 0 {
			steps = pregelPRSupersteps
		}
		p := pregel.PRProgram{G: g, Damping: 0.85, Supersteps: steps}
		res, err := pregel.Run[float64, float64](g, p, popt)
		if err != nil {
			return nil, err
		}
		return &Result{Trace: res.Trace, Summary: rankSummary(res.States)}, nil
	}
	return nil, unsupported(Pregel, alg)
}
