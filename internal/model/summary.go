package model

import "math"

// Summary builders shared by the non-GAS adapters. Each mirrors the
// Summary map the corresponding GAS algorithm reports, so cross-model
// result equivalence can be asserted on the same keys.

// componentsSummary mirrors ConnectedComponents: "components".
func componentsSummary(labels []uint32) map[string]float64 {
	distinct := make(map[uint32]struct{}, len(labels))
	for _, l := range labels {
		distinct[l] = struct{}{}
	}
	return map[string]float64{"components": float64(len(distinct))}
}

// distanceSummary mirrors SingleSourceShortestPath: "reached" and
// "maxDistance" over the finite distances.
func distanceSummary(dist []float64) map[string]float64 {
	reached, maxDist := 0, 0.0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return map[string]float64{
		"reached":     float64(reached),
		"maxDistance": maxDist,
	}
}

// rankSummary mirrors PageRank: "maxRank" and "sumRank".
func rankSummary(ranks []float64) map[string]float64 {
	maxRank, sum := 0.0, 0.0
	for _, r := range ranks {
		sum += r
		if r > maxRank {
			maxRank = r
		}
	}
	return map[string]float64{"maxRank": maxRank, "sumRank": sum}
}
