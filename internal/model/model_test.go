package model

import (
	"context"
	"math"
	"strings"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 4000, Alpha: 2.1, Seed: 7})
	if err != nil {
		t.Fatalf("generating graph: %v", err)
	}
	return g
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Name
	}{
		{"", GAS},
		{"gas", GAS},
		{"GAS", GAS},
		{"Pregel", Pregel},
		{"xstream", XStream},
		{"GraphCentric", GraphCentric},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := Parse("giraph"); err == nil {
		t.Fatal("Parse(giraph) succeeded")
	} else {
		// The error must teach the valid names, mirroring algorithms.Parse.
		for _, n := range AllNames() {
			if !strings.Contains(err.Error(), string(n)) {
				t.Errorf("Parse error %q does not list %s", err, n)
			}
		}
	}
}

func TestTagRoundTrip(t *testing.T) {
	if Tag(GAS) != "" {
		t.Errorf("Tag(GAS) = %q, want empty (pre-model-axis encoding)", Tag(GAS))
	}
	if Tag("") != "" {
		t.Errorf("Tag(\"\") = %q, want empty", Tag(""))
	}
	for _, n := range AllNames() {
		if Canonical(Tag(n)) != n {
			t.Errorf("Canonical(Tag(%s)) = %s", n, Canonical(Tag(n)))
		}
	}
}

func TestSupportsMatrix(t *testing.T) {
	for _, n := range AllNames() {
		m, err := ForName(n)
		if err != nil {
			t.Fatalf("ForName(%s): %v", n, err)
		}
		if m.Name() != n {
			t.Errorf("ForName(%s).Name() = %s", n, m.Name())
		}
		algs, err := Supported(n)
		if err != nil {
			t.Fatalf("Supported(%s): %v", n, err)
		}
		if n == GAS && len(algs) != len(algorithms.AllNames()) {
			t.Errorf("GAS supports %d algorithms, want all %d", len(algs), len(algorithms.AllNames()))
		}
		if n != GAS && len(algs) == 0 {
			t.Errorf("%s supports no algorithms", n)
		}
	}
	// Every multi-model algorithm includes GAS, so cross-model result
	// equivalence always has the paper's engine as its oracle.
	for _, a := range algorithms.AllNames() {
		ms := Supporting(a)
		if len(ms) == 0 || ms[0] != GAS {
			t.Errorf("Supporting(%s) = %v, want GAS first", a, ms)
		}
	}
}

// TestCrossModelResultEquivalence runs every algorithm that ≥2 models
// implement under each of them on one fixed graph and asserts the
// results agree: exact for the discrete outcomes (CC components, SSSP
// reachability), tolerance-bounded for PR ranks (each model has its own
// convergence criterion). This is §3.3's conservation claim made
// executable.
func TestCrossModelResultEquivalence(t *testing.T) {
	g := testGraph(t)
	w := Workload{Graph: g}
	type check struct {
		key string
		tol float64 // 0 = exact
	}
	checks := map[algorithms.Name][]check{
		algorithms.CC:   {{key: "components"}},
		algorithms.SSSP: {{key: "reached"}, {key: "maxDistance"}},
		algorithms.PR:   {{key: "sumRank", tol: 1e-3}, {key: "maxRank", tol: 1e-2}},
	}
	for alg, cs := range checks {
		models := Supporting(alg)
		if len(models) < 2 {
			t.Fatalf("%s is supported by %v, want ≥2 models", alg, models)
		}
		results := map[Name]*Result{}
		for _, n := range models {
			m, err := ForName(n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(context.Background(), w, alg, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", n, alg, err)
			}
			results[n] = res
		}
		oracle := results[GAS]
		for _, n := range models[1:] {
			for _, c := range cs {
				want, got := oracle.Summary[c.key], results[n].Summary[c.key]
				if c.tol == 0 && want != got {
					t.Errorf("%s/%s %s = %v, GAS %v", n, alg, c.key, got, want)
				}
				if c.tol > 0 && math.Abs(got-want) > c.tol*math.Max(math.Abs(want), 1) {
					t.Errorf("%s/%s %s = %v, GAS %v (tol %v)", n, alg, c.key, got, want, c.tol)
				}
			}
		}
	}
}

// TestMetricMappingInvariants pins the per-model metric mapping
// documented on behavior.Run.Model: what each trace counter measures
// under each model.
func TestMetricMappingInvariants(t *testing.T) {
	g := testGraph(t)
	w := Workload{Graph: g}

	t.Run("pregel", func(t *testing.T) {
		// UPDT = Compute invocations: exactly one per vertex active at
		// superstep start, so Updates == Active in every superstep.
		m, _ := ForName(Pregel)
		res, err := m.Run(context.Background(), w, algorithms.CC, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range res.Trace.Iterations {
			if it.Updates != it.Active {
				t.Errorf("superstep %d: Updates = %d, Active = %d (Compute must run once per active vertex)",
					it.Iteration, it.Updates, it.Active)
			}
			if it.Messages > it.EdgeReads {
				t.Errorf("superstep %d: Messages %d > EdgeReads %d (a combined message costs its edge sends)",
					it.Iteration, it.Messages, it.EdgeReads)
			}
		}
	})

	t.Run("xstream", func(t *testing.T) {
		// EREAD = streamed edges scanned from active sources. CC starts
		// all-active, so iteration 0 scans the entire arc list.
		m, _ := ForName(XStream)
		res, err := m.Run(context.Background(), w, algorithms.CC, Options{})
		if err != nil {
			t.Fatal(err)
		}
		its := res.Trace.Iterations
		if len(its) == 0 {
			t.Fatal("no iterations")
		}
		if its[0].EdgeReads != g.NumArcs() {
			t.Errorf("iteration 0 EdgeReads = %d, want the full arc list %d", its[0].EdgeReads, g.NumArcs())
		}
		for _, it := range its {
			if it.Messages > it.EdgeReads {
				t.Errorf("iteration %d: Messages %d > EdgeReads %d (updates are emitted by scans)",
					it.Iteration, it.Messages, it.EdgeReads)
			}
			if it.Updates > it.Messages && it.Messages > 0 {
				t.Errorf("iteration %d: Updates %d > Messages %d (folds merge emitted updates)",
					it.Iteration, it.Updates, it.Messages)
			}
		}
	})

	t.Run("graphcentric", func(t *testing.T) {
		// MSG = boundary crossings only: a strict subset of the
		// propagations evaluated, and nonzero on a graph whose components
		// span the default 8 contiguous partitions.
		m, _ := ForName(GraphCentric)
		res, err := m.Run(context.Background(), w, algorithms.CC, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var messages, reads int64
		for _, it := range res.Trace.Iterations {
			if it.Messages > it.EdgeReads {
				t.Errorf("superstep %d: Messages %d > EdgeReads %d (crossings are evaluated propagations)",
					it.Iteration, it.Messages, it.EdgeReads)
			}
			messages += it.Messages
			reads += it.EdgeReads
		}
		if messages == 0 {
			t.Error("no boundary crossings on a multi-partition power-law graph")
		}
		if messages >= reads {
			t.Errorf("boundary crossings %d ≥ propagations %d; partition-local work must dominate", messages, reads)
		}
	})

	t.Run("every model reports the shared vocabulary", func(t *testing.T) {
		for _, n := range AllNames() {
			m, _ := ForName(n)
			res, err := m.Run(context.Background(), w, algorithms.CC, Options{})
			if err != nil {
				t.Fatalf("%s: %v", n, err)
			}
			tr := res.Trace
			if tr == nil || len(tr.Iterations) == 0 {
				t.Fatalf("%s: empty trace", n)
			}
			if tr.NumEdges != g.NumEdges() || tr.NumVertices != g.NumVertices() {
				t.Errorf("%s: trace scale %d/%d, want %d/%d",
					n, tr.NumVertices, tr.NumEdges, g.NumVertices(), g.NumEdges())
			}
			if !tr.Converged {
				t.Errorf("%s: CC did not converge", n)
			}
			if tr.MeanUpdates() <= 0 || tr.MeanEdgeReads() <= 0 {
				t.Errorf("%s: degenerate counters (UPDT %v, EREAD %v)",
					n, tr.MeanUpdates(), tr.MeanEdgeReads())
			}
		}
	})
}

// TestRunCancellation: every model must honor context cancellation at
// its iteration barrier with the engine's error convention.
func TestRunCancellation(t *testing.T) {
	g := testGraph(t)
	w := Workload{Graph: g}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, n := range AllNames() {
		m, _ := ForName(n)
		_, err := m.Run(ctx, w, algorithms.CC, Options{})
		if err == nil {
			t.Errorf("%s: run with cancelled context succeeded", n)
			continue
		}
		if !strings.Contains(err.Error(), "stopped") {
			t.Errorf("%s: error %q does not follow the 'run stopped at' convention", n, err)
		}
	}
}

func TestUnsupportedAlgorithm(t *testing.T) {
	g := testGraph(t)
	w := Workload{Graph: g}
	for _, n := range []Name{Pregel, XStream, GraphCentric} {
		m, _ := ForName(n)
		if m.Supports(algorithms.ALS) {
			t.Fatalf("%s claims to support ALS", n)
		}
		if _, err := m.Run(context.Background(), w, algorithms.ALS, Options{}); err == nil {
			t.Errorf("%s: ALS run succeeded", n)
		}
	}
	// A graph model without a graph workload must fail, not panic.
	for _, n := range AllNames() {
		m, _ := ForName(n)
		if _, err := m.Run(context.Background(), Workload{}, algorithms.CC, Options{}); err == nil {
			t.Errorf("%s: CC without a graph succeeded", n)
		}
	}
}
