// Package behavior defines the paper's graph-computation behavior space
// (§5.1): Behavior(GC) = <UPDT, WORK, EREAD, MSG>, a 4-dimensional vector
// per graph computation, where each component is the per-iteration average
// divided by the number of edges (per-edge behavior, §3.4) and then
// max-normalized to ≤ 1.0 across the run collection.
package behavior

import (
	"fmt"
	"math"

	"gcbench/internal/trace"
)

// Dims is the dimensionality of the behavior space.
const Dims = 4

// Dimension indices into a Vector.
const (
	UPDT = iota
	WORK
	EREAD
	MSG
)

// DimNames lists the dimension labels in index order.
var DimNames = [Dims]string{"UPDT", "WORK", "EREAD", "MSG"}

// Vector is a point in the behavior space.
type Vector [Dims]float64

// Distance returns the Euclidean distance between two behavior vectors —
// the d(·,·) of the spread and coverage definitions.
func Distance(a, b Vector) float64 {
	var s float64
	for i := 0; i < Dims; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// RunStatus classifies the outcome of one campaign run. Only StatusOK
// runs carry a behavior vector; the other statuses exist so a resilient
// campaign can account for every spec it was asked to execute.
type RunStatus string

// Campaign run outcomes.
const (
	// StatusOK is a successfully measured run.
	StatusOK RunStatus = "ok"
	// StatusFailed is a run whose every attempt returned an error or
	// panicked.
	StatusFailed RunStatus = "failed"
	// StatusTimeout is a run whose last attempt exceeded its per-run
	// wall-clock budget.
	StatusTimeout RunStatus = "timeout"
	// StatusCancelled is a run stopped (or never started) because the
	// campaign context was cancelled.
	StatusCancelled RunStatus = "cancelled"
	// StatusSkipped is a run restored from a checkpoint journal instead of
	// being re-executed (resume).
	StatusSkipped RunStatus = "skipped"
)

// ModelGAS is the effective execution model of runs that carry no model
// tag: everything measured before the model axis existed ran on the GAS
// engine.
const ModelGAS = "gas"

// EffectiveModel maps a run's stored model tag to its effective
// execution model: the empty string (pre-model-axis runs) is GAS.
func EffectiveModel(s string) string {
	if s == "" {
		return ModelGAS
	}
	return s
}

// Run is one graph computation: the <algorithm, graph size, degree
// distribution> tuple of §5.1 plus its measured raw behavior, tagged
// with the execution model that produced it.
type Run struct {
	// Algorithm is the paper abbreviation (CC, KC, …).
	Algorithm string `json:"algorithm"`
	// Model is the execution model that ran the computation, empty for
	// the default GAS engine (so pre-model-axis corpora are unchanged on
	// disk and GAS runs keep encoding byte-identically).
	//
	// Every model reports the same per-iteration trace vocabulary, so
	// the four behavior dimensions always exist; what each counts is
	// model-specific (§3.3: the behavior is conserved, the mechanism
	// differs):
	//
	//	model        | UPDT                  | EREAD                    | MSG                       | WORK
	//	-------------|-----------------------|--------------------------|---------------------------|--------------------
	//	gas          | apply invocations     | gather/scatter traversals| scatter signals           | apply time
	//	pregel       | Compute invocations   | per-edge message sends   | messages sent (combined)  | Compute time
	//	xstream      | apply-phase folds     | streamed edges scanned   | updates emitted to targets| apply time
	//	graphcentric | state improvements    | propagations evaluated   | boundary crossings        | partition drain time
	//
	// The cross-model invariance suite (internal/model tests) pins this
	// mapping; the claims tests assert the resulting behavior-space
	// separation.
	Model string `json:"model,omitempty"`
	// Domain is the application domain.
	Domain string `json:"domain"`
	// NumEdges is the graph scale parameter (Table 2's nedges, or nrows
	// recorded as edges for the solver workloads).
	NumEdges int64 `json:"numEdges"`
	// Alpha is the degree-distribution exponent (0 when not applicable).
	Alpha float64 `json:"alpha"`
	// SizeLabel is the human-readable scale (e.g. "1e5").
	SizeLabel string `json:"sizeLabel"`

	// Iterations is the run length.
	Iterations int `json:"iterations"`
	// Converged reports whether the run ended by its own criterion.
	Converged bool `json:"converged"`
	// ActiveFraction is the per-iteration activity series.
	ActiveFraction []float64 `json:"activeFraction"`

	// Raw holds the pre-normalization per-edge metric means:
	// updates/iter/edge, apply-seconds/iter/edge, reads/iter/edge,
	// messages/iter/edge.
	Raw Vector `json:"raw"`
}

// ID renders the run's identifying tuple. Non-GAS runs append their
// execution model so the same computation under two models never shares
// an ID; GAS runs render exactly as before the model axis existed.
func (r *Run) ID() string {
	var id string
	if r.Alpha == 0 {
		id = fmt.Sprintf("<%s, %s>", r.Algorithm, r.SizeLabel)
	} else {
		id = fmt.Sprintf("<%s, %s, %.2f>", r.Algorithm, r.SizeLabel, r.Alpha)
	}
	if m := EffectiveModel(r.Model); m != ModelGAS {
		id = id[:len(id)-1] + ", " + m + ">"
	}
	return id
}

// FromTrace extracts the raw per-edge behavior vector from a run trace.
func FromTrace(t *trace.RunTrace) Vector {
	edges := float64(t.NumEdges)
	if edges <= 0 {
		return Vector{}
	}
	return Vector{
		UPDT:  t.MeanUpdates() / edges,
		WORK:  t.MeanApplySeconds() / edges,
		EREAD: t.MeanEdgeReads() / edges,
		MSG:   t.MeanMessages() / edges,
	}
}

// Space is a normalized collection of runs: every dimension is scaled by
// the collection-wide maximum so all coordinates lie in [0, 1], making
// distances comparable across dimensions ("we also normalize these metrics
// to make it less than 1.0 for highlighting the relative difference",
// §3.4).
type Space struct {
	Runs   []*Run
	Points []Vector
	// Max holds the per-dimension raw maxima used for normalization.
	Max Vector
}

// NewSpace normalizes a run collection into a behavior space.
func NewSpace(runs []*Run) (*Space, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("behavior: empty run collection")
	}
	s := &Space{Runs: runs, Points: make([]Vector, len(runs))}
	for _, r := range runs {
		for d := 0; d < Dims; d++ {
			if math.IsNaN(r.Raw[d]) || math.IsInf(r.Raw[d], 0) || r.Raw[d] < 0 {
				return nil, fmt.Errorf("behavior: run %s has invalid %s = %v",
					r.ID(), DimNames[d], r.Raw[d])
			}
			if r.Raw[d] > s.Max[d] {
				s.Max[d] = r.Raw[d]
			}
		}
	}
	for i, r := range runs {
		for d := 0; d < Dims; d++ {
			if s.Max[d] > 0 {
				s.Points[i][d] = r.Raw[d] / s.Max[d]
			}
		}
	}
	return s, nil
}

// Point returns the normalized behavior vector of run i.
func (s *Space) Point(i int) Vector { return s.Points[i] }

// Len returns the number of runs.
func (s *Space) Len() int { return len(s.Runs) }

// Filter returns the indices of runs matching pred.
func (s *Space) Filter(pred func(*Run) bool) []int {
	var idx []int
	for i, r := range s.Runs {
		if pred(r) {
			idx = append(idx, i)
		}
	}
	return idx
}

// ByAlgorithm groups run indices by algorithm name.
func (s *Space) ByAlgorithm() map[string][]int {
	m := make(map[string][]int)
	for i, r := range s.Runs {
		m[r.Algorithm] = append(m[r.Algorithm], i)
	}
	return m
}

// ByGraph groups run indices by the (SizeLabel, Alpha) graph-structure
// key, the grouping of the single-graph ensembles (§5.3).
func (s *Space) ByGraph() map[string][]int {
	m := make(map[string][]int)
	for i, r := range s.Runs {
		key := fmt.Sprintf("%s/α=%.2f", r.SizeLabel, r.Alpha)
		m[key] = append(m[key], i)
	}
	return m
}

// RangeRatio returns, per dimension, max/min over strictly positive raw
// values — the "1000-fold variation" headline of contribution (1).
func RangeRatio(runs []*Run) Vector {
	var out Vector
	for d := 0; d < Dims; d++ {
		minV, maxV := math.Inf(1), 0.0
		for _, r := range runs {
			v := r.Raw[d]
			if v <= 0 {
				continue
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if maxV > 0 && !math.IsInf(minV, 1) {
			out[d] = maxV / minV
		}
	}
	return out
}
