package behavior

import (
	"math"
	"testing"
	"time"

	"gcbench/internal/trace"
)

func runWith(alg string, raw Vector) *Run {
	return &Run{Algorithm: alg, SizeLabel: "1e4", Alpha: 2.5, Raw: raw}
}

func TestDistance(t *testing.T) {
	a := Vector{0, 0, 0, 0}
	b := Vector{1, 1, 1, 1}
	if d := Distance(a, b); math.Abs(d-2) > 1e-12 {
		t.Fatalf("distance = %v, want 2", d)
	}
	if Distance(a, a) != 0 {
		t.Fatal("self distance not 0")
	}
	if Distance(a, b) != Distance(b, a) {
		t.Fatal("distance not symmetric")
	}
}

func TestFromTrace(t *testing.T) {
	tr := &trace.RunTrace{
		NumVertices: 10,
		NumEdges:    100,
		Iterations: []trace.IterationStats{
			{Active: 10, Updates: 10, EdgeReads: 200, Messages: 50, ApplyTime: time.Millisecond},
			{Active: 5, Updates: 6, EdgeReads: 100, Messages: 30, ApplyTime: 3 * time.Millisecond},
		},
	}
	v := FromTrace(tr)
	if math.Abs(v[UPDT]-0.08) > 1e-12 {
		t.Fatalf("UPDT = %v, want 0.08", v[UPDT])
	}
	if math.Abs(v[EREAD]-1.5) > 1e-12 {
		t.Fatalf("EREAD = %v, want 1.5", v[EREAD])
	}
	if math.Abs(v[MSG]-0.4) > 1e-12 {
		t.Fatalf("MSG = %v, want 0.4", v[MSG])
	}
	if math.Abs(v[WORK]-0.002/100) > 1e-15 {
		t.Fatalf("WORK = %v, want 2e-5", v[WORK])
	}
	// Empty trace → zero vector, no NaN.
	if z := FromTrace(&trace.RunTrace{NumEdges: 100}); z != (Vector{}) {
		t.Fatalf("empty trace vector = %v", z)
	}
}

// TestFromTraceIgnoresPhaseSpans asserts the observability contract of
// the engine's span instrumentation: the behavior vector — WORK
// included — is a function of the counters and ApplyTime only, so
// populating the phase-span fields must not move any dimension.
func TestFromTraceIgnoresPhaseSpans(t *testing.T) {
	bare := &trace.RunTrace{
		NumVertices: 10,
		NumEdges:    100,
		Iterations: []trace.IterationStats{
			{Active: 10, Updates: 10, EdgeReads: 200, Messages: 50, ApplyTime: time.Millisecond},
			{Active: 5, Updates: 6, EdgeReads: 100, Messages: 30, ApplyTime: 3 * time.Millisecond},
		},
	}
	spanned := &trace.RunTrace{NumVertices: 10, NumEdges: 100}
	for _, it := range bare.Iterations {
		it.WallTime = 10 * time.Millisecond
		it.GatherWall = 4 * time.Millisecond
		it.ApplyWall = 3 * time.Millisecond
		it.ScatterWall = 2 * time.Millisecond
		it.BarrierTime = time.Millisecond
		it.WorkerSpans = []trace.WorkerSpan{{Worker: 0, Gather: time.Millisecond, Apply: it.ApplyTime, Scatter: time.Millisecond}}
		spanned.Iterations = append(spanned.Iterations, it)
	}
	if a, b := FromTrace(bare), FromTrace(spanned); a != b {
		t.Fatalf("phase spans changed the behavior vector: %v vs %v", a, b)
	}
}

func TestNewSpaceNormalizes(t *testing.T) {
	runs := []*Run{
		runWith("A", Vector{2, 4, 8, 1}),
		runWith("B", Vector{1, 2, 2, 0.5}),
	}
	s, err := NewSpace(runs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Max != (Vector{2, 4, 8, 1}) {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Point(0) != (Vector{1, 1, 1, 1}) {
		t.Fatalf("point 0 = %v, want all ones", s.Point(0))
	}
	if s.Point(1) != (Vector{0.5, 0.5, 0.25, 0.5}) {
		t.Fatalf("point 1 = %v", s.Point(1))
	}
}

func TestNewSpaceZeroDimension(t *testing.T) {
	// A dimension that is zero everywhere must normalize to zero, not NaN.
	runs := []*Run{
		runWith("A", Vector{1, 0, 2, 0}),
		runWith("B", Vector{2, 0, 1, 0}),
	}
	s, err := NewSpace(runs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if s.Point(i)[WORK] != 0 || s.Point(i)[MSG] != 0 {
			t.Fatalf("zero dimension leaked: %v", s.Point(i))
		}
	}
}

func TestNewSpaceErrors(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Fatal("empty collection accepted")
	}
	bad := []*Run{runWith("A", Vector{math.NaN(), 0, 0, 0})}
	if _, err := NewSpace(bad); err == nil {
		t.Fatal("NaN accepted")
	}
	neg := []*Run{runWith("A", Vector{-1, 0, 0, 0})}
	if _, err := NewSpace(neg); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestGroupings(t *testing.T) {
	runs := []*Run{
		{Algorithm: "CC", SizeLabel: "1e4", Alpha: 2.0, Raw: Vector{1, 1, 1, 1}},
		{Algorithm: "CC", SizeLabel: "1e5", Alpha: 2.0, Raw: Vector{1, 1, 1, 1}},
		{Algorithm: "PR", SizeLabel: "1e4", Alpha: 2.0, Raw: Vector{1, 1, 1, 1}},
	}
	s, err := NewSpace(runs)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := s.ByAlgorithm()
	if len(byAlg["CC"]) != 2 || len(byAlg["PR"]) != 1 {
		t.Fatalf("ByAlgorithm = %v", byAlg)
	}
	byGraph := s.ByGraph()
	if len(byGraph["1e4/α=2.00"]) != 2 {
		t.Fatalf("ByGraph = %v", byGraph)
	}
	idx := s.Filter(func(r *Run) bool { return r.Algorithm == "PR" })
	if len(idx) != 1 || idx[0] != 2 {
		t.Fatalf("Filter = %v", idx)
	}
}

func TestRunID(t *testing.T) {
	r := &Run{Algorithm: "ALS", SizeLabel: "1e5", Alpha: 3.0}
	if r.ID() != "<ALS, 1e5, 3.00>" {
		t.Fatalf("ID = %q", r.ID())
	}
	j := &Run{Algorithm: "Jacobi", SizeLabel: "5000"}
	if j.ID() != "<Jacobi, 5000>" {
		t.Fatalf("ID = %q", j.ID())
	}
}

func TestRangeRatio(t *testing.T) {
	runs := []*Run{
		runWith("A", Vector{0.001, 1, 0, 2}),
		runWith("B", Vector{1, 1, 0, 0.002}),
	}
	rr := RangeRatio(runs)
	if math.Abs(rr[UPDT]-1000) > 1e-9 {
		t.Fatalf("UPDT ratio = %v, want 1000", rr[UPDT])
	}
	if rr[WORK] != 1 {
		t.Fatalf("WORK ratio = %v, want 1", rr[WORK])
	}
	if rr[EREAD] != 0 {
		t.Fatalf("EREAD ratio = %v, want 0 (all zero)", rr[EREAD])
	}
	if math.Abs(rr[MSG]-1000) > 1e-9 {
		t.Fatalf("MSG ratio = %v, want 1000", rr[MSG])
	}
}
