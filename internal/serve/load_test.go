package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeLoadSmoke is the CI load-smoke: a real listening server over
// the shipped standard corpus, a burst of mixed concurrent traffic, and
// two assertions — zero 5xx responses, and p99 latency under a bound
// generous enough for a loaded CI machine yet tight enough to catch a
// lost-wakeup or lock-convoy regression.
func TestServeLoadSmoke(t *testing.T) {
	s := newTestServer(t, nil)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const (
		clients     = 8
		perClient   = 20
		p99Bound    = 5 * time.Second
		totalBudget = 60 * time.Second
	)
	base := s.URL()
	client := &http.Client{Timeout: totalBudget}

	// A mixed request schedule: listings, point lookups, predictions,
	// and a handful of distinct design searches that exercise cache,
	// coalescing, and the worker pool together.
	do := func(i int) (*http.Response, error) {
		switch i % 5 {
		case 0:
			return client.Get(base + "/api/runs?algorithm=PR,CC")
		case 1:
			return client.Get(base + "/api/behavior/PR_1e5_a2.5")
		case 2:
			return client.Get(base + "/api/predict?algorithm=CC&edges=250000&alpha=2.5")
		case 3:
			return client.Get(base + fmt.Sprintf("/api/ensemble/best?n=%d", 3+i%4))
		default:
			body := fmt.Sprintf(`{"n": %d, "method": "exchange"}`, 2+i%4)
			return client.Post(base+"/api/ensemble/design", "application/json", strings.NewReader(body))
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		server5xx int
		failures  []string
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				begin := time.Now()
				resp, err := do(c*perClient + i)
				elapsed := time.Since(begin)
				mu.Lock()
				if err != nil {
					failures = append(failures, err.Error())
				} else {
					latencies = append(latencies, elapsed)
					if resp.StatusCode >= 500 {
						server5xx++
					}
				}
				mu.Unlock()
				if err == nil {
					discardBody(resp)
				}
			}
		}(c)
	}
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d transport failures, first: %s", len(failures), failures[0])
	}
	if server5xx > 0 {
		t.Fatalf("%d responses with 5xx status under load", server5xx)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100-1]
	t.Logf("requests=%d p50=%v p99=%v searches=%d",
		len(latencies), latencies[len(latencies)/2], p99, s.Searches())
	if p99 > p99Bound {
		t.Fatalf("p99 latency %v exceeds %v", p99, p99Bound)
	}
}
