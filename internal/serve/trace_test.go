package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcbench/internal/jobs"
	"gcbench/internal/obs"
	"gcbench/internal/obs/otrace"
)

// traceTree is the /debug/traces/{id} payload shape the tests walk.
type traceTree struct {
	TraceID string          `json:"traceId"`
	Spans   int             `json:"spans"`
	Tree    []*obs.SpanNode `json:"tree"`
	Orphans []*obs.SpanNode `json:"orphans"`
	Dropped int             `json:"dropped"`
}

func getTraceTree(t *testing.T, s *Server, traceID string) traceTree {
	t.Helper()
	w := get(t, s, "/debug/traces/"+traceID)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d: %s", traceID, w.Code, w.Body.String())
	}
	var tree traceTree
	if err := json.Unmarshal(w.Body.Bytes(), &tree); err != nil {
		t.Fatalf("decoding trace tree: %v", err)
	}
	return tree
}

// TestRequestTracing covers the synchronous half of the middleware: root
// span per request, inbound W3C traceparent joined, traceparent echoed in
// the response, cache disposition recorded, and the trace queryable at
// /debug/traces/{id}.
func TestRequestTracing(t *testing.T) {
	store := otrace.NewStore(64)
	s := newTestServer(t, func(cfg *Config) { cfg.Traces = store })

	// A request with an inbound traceparent joins that trace.
	const wantTID = "0af7651916cd43dd8448eb211c80319c"
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/api/corpus", nil)
	r.Header.Set("traceparent", "00-"+wantTID+"-b7ad6b7169203331-01")
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /api/corpus = %d", w.Code)
	}
	tp := w.Header().Get("traceparent")
	tid, _, _, err := otrace.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if tid.String() != wantTID {
		t.Fatalf("response trace id = %s, want %s (inbound traceparent ignored)", tid, wantTID)
	}
	tree := getTraceTree(t, s, wantTID)
	if len(tree.Tree) != 1 || len(tree.Orphans) != 0 {
		t.Fatalf("trace has %d roots, %d orphans", len(tree.Tree), len(tree.Orphans))
	}
	root := tree.Tree[0]
	if root.Name != "GET /api/corpus" || root.Kind != "server" {
		t.Fatalf("root span = %q kind %q", root.Name, root.Kind)
	}
	if root.RemoteParent.IsZero() {
		t.Fatal("root span lost its remote parent span id")
	}

	// Without an inbound header a fresh trace id is generated, and a
	// design request records its cache disposition on the root span.
	design := func() *httptest.ResponseRecorder {
		return postDesign(t, s, `{"n":3,"metric":"spread","method":"greedy"}`)
	}
	w1 := design()
	if w1.Code != http.StatusOK {
		t.Fatalf("design = %d: %s", w1.Code, w1.Body.String())
	}
	w2 := design()
	tid2, _, _, err := otrace.ParseTraceparent(w2.Header().Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	tree = getTraceTree(t, s, tid2.String())
	root = tree.Tree[0]
	attrs := map[string]any{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["cache"] != "hit" {
		t.Fatalf("second design root span cache attr = %v, want hit (attrs: %v)", attrs["cache"], attrs)
	}
	if attrs["status"] != float64(http.StatusOK) {
		t.Fatalf("root span status attr = %v", attrs["status"])
	}

	// The first (miss) design trace carries the ensemble-search child.
	tid1, _, _, _ := otrace.ParseTraceparent(w1.Header().Get("traceparent"))
	tree = getTraceTree(t, s, tid1.String())
	if len(tree.Tree[0].Children) != 1 || tree.Tree[0].Children[0].Name != "ensemble search" {
		t.Fatalf("miss design trace children = %+v", tree.Tree[0].Children)
	}
}

// TestTracingResponseInvariance: enabling tracing must not change a
// single response byte. The traced server may add response headers
// (traceparent) but every body — listing, design, error envelope — is
// bit-identical to the untraced server's.
func TestTracingResponseInvariance(t *testing.T) {
	plain := newTestServer(t, nil)
	traced := newTestServer(t, func(cfg *Config) { cfg.Traces = otrace.NewStore(16) })

	paths := []string{
		"/api/corpus",
		"/api/runs?algorithm=PR",
		"/api/predict", // error envelope (missing params)
		"/api/nope",    // 404 envelope
	}
	for _, p := range paths {
		a, b := get(t, plain, p), get(t, traced, p)
		if a.Code != b.Code || a.Body.String() != b.Body.String() {
			t.Fatalf("%s diverges with tracing on: %d vs %d\n--- untraced:\n%s--- traced:\n%s",
				p, a.Code, b.Code, a.Body.String(), b.Body.String())
		}
	}
	body := `{"n":3,"metric":"spread","method":"greedy"}`
	a, b := postDesign(t, plain, body), postDesign(t, traced, body)
	if a.Code != b.Code || a.Body.String() != b.Body.String() {
		t.Fatalf("design response diverges with tracing on")
	}
	if b.Header().Get("traceparent") == "" {
		t.Fatal("traced server omitted the traceparent response header")
	}
	if a.Header().Get("traceparent") != "" {
		t.Fatal("untraced server emitted a traceparent header")
	}
}

// TestJobsBoundarySpanTree is the async-boundary test the tracing design
// hinges on: a campaign submitted over HTTP answers 202 and its root
// span ends, yet the job, per-run, iteration and phase spans recorded
// afterwards land in the same trace, child→parent linked with no
// orphans.
func TestJobsBoundarySpanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) sweep campaign")
	}
	store := otrace.NewStore(64)
	s, mgr := newJobsServer(t, jobs.Config{}, func(cfg *Config) { cfg.Traces = store })

	w := postCampaign(t, s, `{"profile":"quick","algorithms":["PR"],"label":"trace-smoke"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /api/campaigns = %d: %s", w.Code, w.Body.String())
	}
	tid, _, _, err := otrace.ParseTraceparent(w.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("202 response carries no traceparent: %v", err)
	}
	jobID := decodeJob(t, w).ID
	job, ok := mgr.Get(jobID)
	if !ok {
		t.Fatalf("job %s not tracked", jobID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	state, err := job.Wait(ctx)
	if err != nil || state != jobs.StateOK {
		t.Fatalf("job ended %q, err %v", state, err)
	}

	tree := getTraceTree(t, s, tid.String())
	if len(tree.Tree) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(tree.Tree))
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("span tree has %d orphans — async boundary broke parent links", len(tree.Orphans))
	}
	root := tree.Tree[0]
	if root.Name != "POST /api/campaigns" || root.Kind != "server" {
		t.Fatalf("root = %q kind %q", root.Name, root.Kind)
	}
	var jobNode *obs.SpanNode
	for _, c := range root.Children {
		if c.Kind == "job" {
			jobNode = c
		}
	}
	if jobNode == nil {
		t.Fatalf("202 root span has no job child; children: %+v", root.Children)
	}
	if jobNode.Name != "job "+jobID {
		t.Fatalf("job span name = %q", jobNode.Name)
	}
	if len(jobNode.Children) == 0 {
		t.Fatal("job span has no run children")
	}
	iterations, phases := 0, 0
	for _, run := range jobNode.Children {
		if run.Kind != "run" || !strings.HasPrefix(run.Name, "run ") {
			t.Fatalf("job child = %q kind %q, want a run span", run.Name, run.Kind)
		}
		for _, iter := range run.Children {
			if iter.Kind != "iteration" {
				t.Fatalf("run child kind = %q, want iteration", iter.Kind)
			}
			iterations++
			for _, ph := range iter.Children {
				if ph.Kind != "phase" {
					t.Fatalf("iteration child kind = %q, want phase", ph.Kind)
				}
				phases++
			}
		}
	}
	if tree.Dropped == 0 && (iterations == 0 || phases == 0) {
		t.Fatalf("no engine spans grafted: %d iterations, %d phases", iterations, phases)
	}

	// The Chrome export of the full cross-boundary trace parses.
	wc := get(t, s, "/debug/traces/"+tid.String()+"?format=chrome")
	if wc.Code != http.StatusOK {
		t.Fatalf("chrome export = %d", wc.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(wc.Body.Bytes(), &events); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
}
