package serve

import (
	"net/http"
	"sort"
	"strings"
)

// apiRoute records one registered API pattern for the wrong-method
// fallback: net/http's ServeMux would answer a wrong-method hit with a
// bare text 405, so the server keeps its own table and renders the same
// structured JSON error envelope (plus an accurate Allow header) that
// every other API failure uses.
type apiRoute struct {
	method  string
	pattern string   // the registered pattern verbatim — the metrics route label
	segs    []string // pattern path segments; "{...}" matches any one segment
}

// api registers a method-qualified pattern on the mux and records it in
// the fallback table.
func (s *Server) api(mux *http.ServeMux, method, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(method+" "+pattern, h)
	s.routes = append(s.routes, apiRoute{
		method:  method,
		pattern: pattern,
		segs:    strings.Split(strings.Trim(pattern, "/"), "/"),
	})
}

// matches reports whether the route's pattern matches the request path
// segments ({wildcard} segments match anything non-empty).
func (r apiRoute) matches(segs []string) bool {
	if len(segs) != len(r.segs) {
		return false
	}
	for i, p := range r.segs {
		if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
			if segs[i] == "" {
				return false
			}
			continue
		}
		if p != segs[i] {
			return false
		}
	}
	return true
}

// handleAPIFallback answers every /api/* request the method-qualified
// patterns did not: 405 + Allow for a known path hit with the wrong
// method, 404 for an unknown path — both as JSON error envelopes.
func (s *Server) handleAPIFallback(w http.ResponseWriter, r *http.Request) {
	segs := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	allowed := map[string]bool{}
	for _, rt := range s.routes {
		if rt.matches(segs) {
			allowed[rt.method] = true
			if rt.method == http.MethodGet {
				// The mux serves HEAD through GET handlers; advertise it.
				allowed[http.MethodHead] = true
			}
		}
	}
	if len(allowed) == 0 {
		writeError(w, http.StatusNotFound, "not_found", "no API route matches %s", r.URL.Path)
		return
	}
	methods := make([]string, 0, len(allowed))
	for m := range allowed {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	w.Header().Set("Allow", strings.Join(methods, ", "))
	writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		"%s does not allow %s (allowed: %s)", r.URL.Path, r.Method, strings.Join(methods, ", "))
}

// isEventStream reports whether the request is a long-lived NDJSON job
// event stream, which must not inherit the per-request deadline.
func isEventStream(r *http.Request) bool {
	return r.Method == http.MethodGet &&
		strings.HasPrefix(r.URL.Path, "/api/jobs/") &&
		strings.HasSuffix(r.URL.Path, "/events")
}
