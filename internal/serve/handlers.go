package serve

import (
	"net/http"
	"strconv"
	"strings"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/predict"
)

// runSummary is the per-run payload of /api/runs and ensemble member
// lists. Raw is the measured per-edge vector; Behavior is the
// max-normalized point in the full corpus space (coordinates in [0,1]).
type runSummary struct {
	Key        string           `json:"key"`
	ID         string           `json:"id,omitempty"`
	Algorithm  string           `json:"algorithm"`
	Domain     string           `json:"domain,omitempty"`
	SizeLabel  string           `json:"sizeLabel"`
	Alpha      float64          `json:"alpha,omitempty"`
	NumEdges   int64            `json:"numEdges,omitempty"`
	Iterations int              `json:"iterations,omitempty"`
	Converged  bool             `json:"converged,omitempty"`
	Status     string           `json:"status"`
	Error      string           `json:"error,omitempty"`
	Raw        *behavior.Vector `json:"raw,omitempty"`
	Behavior   *behavior.Vector `json:"behavior,omitempty"`
}

func summarize(snap *corpus.Snapshot, recIdx int) runSummary {
	rec := &snap.Records[recIdx]
	out := runSummary{
		Key:       rec.Key,
		Algorithm: rec.Algorithm,
		SizeLabel: rec.SizeLabel,
		Alpha:     rec.Alpha,
		Status:    string(rec.Status),
		Error:     rec.Err,
	}
	if rec.Run != nil {
		out.ID = rec.Run.ID()
		out.Domain = rec.Run.Domain
		out.NumEdges = rec.Run.NumEdges
		out.Iterations = rec.Run.Iterations
		out.Converged = rec.Run.Converged
		raw := rec.Run.Raw
		out.Raw = &raw
		if si := snap.SpaceIndexOf(recIdx); si >= 0 {
			pt := snap.Space.Point(si)
			out.Behavior = &pt
		}
	}
	return out
}

// parseFilter reads the shared algorithm/size/alpha/status query
// parameters (repeatable and comma-splittable).
func parseFilter(r *http.Request) (corpus.Filter, error) {
	var f corpus.Filter
	q := r.URL.Query()
	f.Algorithms = splitParams(q["algorithm"])
	f.Sizes = splitParams(q["size"])
	for _, a := range splitParams(q["alpha"]) {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return f, errInvalidf("alpha %q is not a number", a)
		}
		f.Alphas = append(f.Alphas, v)
	}
	for _, st := range splitParams(q["status"]) {
		switch behavior.RunStatus(st) {
		case behavior.StatusOK, behavior.StatusFailed, behavior.StatusTimeout,
			behavior.StatusCancelled, behavior.StatusSkipped:
			f.Statuses = append(f.Statuses, behavior.RunStatus(st))
		default:
			return f, errInvalidf("unknown status %q", st)
		}
	}
	return f, nil
}

// splitParams flattens repeated query parameters and comma lists.
func splitParams(vals []string) []string {
	var out []string
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// handleRuns serves GET /api/runs: the filtered corpus listing in stable
// load order.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	f, err := parseFilter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	idx := snap.Select(f)
	runs := make([]runSummary, 0, len(idx))
	for _, i := range idx {
		runs = append(runs, summarize(snap, i))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"count":         len(runs),
		"runs":          runs,
	})
}

// behaviorDetail extends runSummary with the full activity series and
// the pool-normalized point used by ensemble design.
type behaviorDetail struct {
	runSummary
	ActiveFraction []float64        `json:"activeFraction,omitempty"`
	PoolBehavior   *behavior.Vector `json:"poolBehavior,omitempty"`
}

// handleBehavior serves GET /api/behavior/{key}: one run's complete
// record.
func (s *Server) handleBehavior(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	key := r.PathValue("key")
	i, ok := snap.Lookup(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no corpus record with key %q", key)
		return
	}
	det := behaviorDetail{runSummary: summarize(snap, i)}
	rec := &snap.Records[i]
	if rec.Run != nil {
		det.ActiveFraction = rec.Run.ActiveFraction
		for pi := 0; pi < snap.PoolSize(); pi++ {
			if snap.PoolRecord(pi).Key == key {
				pt := snap.Pool.Point(pi)
				det.PoolBehavior = &pt
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"run":           det,
	})
}

// handlePredict serves GET /api/predict: §7 behavior interpolation for
// an <algorithm, edges, alpha> query.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	q := r.URL.Query()
	algName, err := algorithms.Parse(q.Get("algorithm"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	edges, err := strconv.ParseInt(q.Get("edges"), 10, 64)
	if err != nil || edges <= 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "edges must be a positive integer, got %q", q.Get("edges"))
		return
	}
	alpha := 0.0
	if a := q.Get("alpha"); a != "" {
		alpha, err = strconv.ParseFloat(a, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", "alpha %q is not a number", a)
			return
		}
	}
	p, err := snap.Predictor()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "no_corpus", "%v", err)
		return
	}
	pred, err := p.Predict(predict.Query{Algorithm: string(algName), NumEdges: edges, Alpha: alpha})
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"query": map[string]any{
			"algorithm": string(algName), "edges": edges, "alpha": alpha,
		},
		"raw":        pred.Raw,
		"iterations": pred.Iterations,
		"support":    pred.Support,
	})
}

// handleCorpusInfo serves GET /api/corpus: snapshot metadata.
func (s *Server) handleCorpusInfo(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	byStatus := map[string]int{}
	for i := range snap.Records {
		byStatus[string(snap.Records[i].Status)]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"source":        snap.Source,
		"loadedAt":      snap.LoadedAt,
		"records":       len(snap.Records),
		"okRuns":        snap.OKCount(),
		"poolSize":      snap.PoolSize(),
		"byStatus":      byStatus,
	})
}

// handleReload serves POST /api/corpus/reload: re-reads the snapshot's
// source file and atomically publishes the new version. Running requests
// keep their old snapshot; the response reports the new version.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload_failed", "%v", err)
		return
	}
	// Design cache keys embed the corpus version, so stale entries can
	// never serve a new-version request; purge simply returns the memory.
	s.cache.Purge()
	s.mReloads.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"source":        snap.Source,
		"records":       len(snap.Records),
		"okRuns":        snap.OKCount(),
		"poolSize":      snap.PoolSize(),
	})
}
