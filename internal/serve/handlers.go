package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/model"
	"gcbench/internal/predict"
	"gcbench/internal/shard"
)

// runSummary is the per-run payload of /api/runs and ensemble member
// lists. Raw is the measured per-edge vector; Behavior is the
// max-normalized point in the full corpus space (coordinates in [0,1]).
type runSummary struct {
	Key       string `json:"key"`
	ID        string `json:"id,omitempty"`
	Algorithm string `json:"algorithm"`
	// Model is the execution model tag, omitted for GAS runs so
	// pre-model-axis corpora render byte-identically.
	Model      string           `json:"model,omitempty"`
	Domain     string           `json:"domain,omitempty"`
	SizeLabel  string           `json:"sizeLabel"`
	Alpha      float64          `json:"alpha,omitempty"`
	NumEdges   int64            `json:"numEdges,omitempty"`
	Iterations int              `json:"iterations,omitempty"`
	Converged  bool             `json:"converged,omitempty"`
	Status     string           `json:"status"`
	Error      string           `json:"error,omitempty"`
	Raw        *behavior.Vector `json:"raw,omitempty"`
	Behavior   *behavior.Vector `json:"behavior,omitempty"`
}

func summarize(snap *corpus.Snapshot, recIdx int) runSummary {
	rec := &snap.Records[recIdx]
	out := runSummary{
		Key:       rec.Key,
		Algorithm: rec.Algorithm,
		Model:     rec.Model,
		SizeLabel: rec.SizeLabel,
		Alpha:     rec.Alpha,
		Status:    string(rec.Status),
		Error:     rec.Err,
	}
	if rec.Run != nil {
		out.ID = rec.Run.ID()
		out.Domain = rec.Run.Domain
		out.NumEdges = rec.Run.NumEdges
		out.Iterations = rec.Run.Iterations
		out.Converged = rec.Run.Converged
		raw := rec.Run.Raw
		out.Raw = &raw
		if si := snap.SpaceIndexOf(recIdx); si >= 0 {
			pt := snap.Space.Point(si)
			out.Behavior = &pt
		}
	}
	return out
}

// parseFilter reads the shared algorithm/size/alpha/status/model query
// parameters (repeatable and comma-splittable).
func parseFilter(r *http.Request) (corpus.Filter, error) {
	var f corpus.Filter
	q := r.URL.Query()
	f.Algorithms = splitParams(q["algorithm"])
	f.Sizes = splitParams(q["size"])
	for _, m := range splitParams(q["model"]) {
		n, err := model.Parse(m)
		if err != nil {
			return f, errInvalidf("%v", err)
		}
		f.Models = append(f.Models, string(n))
	}
	for _, a := range splitParams(q["alpha"]) {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return f, errInvalidf("alpha %q is not a number", a)
		}
		f.Alphas = append(f.Alphas, v)
	}
	for _, st := range splitParams(q["status"]) {
		switch behavior.RunStatus(st) {
		case behavior.StatusOK, behavior.StatusFailed, behavior.StatusTimeout,
			behavior.StatusCancelled, behavior.StatusSkipped:
			f.Statuses = append(f.Statuses, behavior.RunStatus(st))
		default:
			return f, errInvalidf("unknown status %q", st)
		}
	}
	return f, nil
}

// splitParams flattens repeated query parameters and comma lists.
func splitParams(vals []string) []string {
	var out []string
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// currentCorpus loads the request's corpus state — store snapshot, or
// the cluster's merged view — answering 503 itself when nothing is
// published yet (a cluster before its initial Load; /readyz reports the
// same condition to the load balancer).
func (s *Server) currentCorpus(w http.ResponseWriter) (*corpus.Snapshot, *shard.View, bool) {
	snap, view := s.corpusView()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no_corpus", "no corpus published yet; check /readyz")
		return nil, nil, false
	}
	return snap, view, true
}

// handleRuns serves GET /api/runs: the filtered corpus listing in stable
// load order. In cluster mode the listing is a scatter-gather: each
// shard selects over its own partition and the merge restores canonical
// sequence order, so the body is byte-identical to a single-store scan.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	snap, view, ok := s.currentCorpus(w)
	if !ok {
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	var idx []int
	if view != nil {
		if idx, err = s.cluster.Scatter(r.Context(), f, false); err != nil {
			writeError(w, http.StatusServiceUnavailable, "shard_unavailable", "%v", err)
			return
		}
		idx = clampSeqs(idx, len(snap.Records))
	} else {
		idx = snap.Select(f)
	}
	runs := make([]runSummary, 0, len(idx))
	for _, i := range idx {
		runs = append(runs, summarize(snap, i))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"count":         len(runs),
		"runs":          runs,
	})
}

// behaviorDetail extends runSummary with the full activity series and
// the pool-normalized point used by ensemble design.
type behaviorDetail struct {
	runSummary
	ActiveFraction []float64        `json:"activeFraction,omitempty"`
	PoolBehavior   *behavior.Vector `json:"poolBehavior,omitempty"`
}

// clampSeqs drops sequence numbers beyond the view's merged snapshot: a
// shard may already be serving a publish newer than the view a request
// loaded, and those records become visible with the next view. Seqs are
// ascending, so the stale tail is a suffix.
func clampSeqs(seqs []int, n int) []int {
	for len(seqs) > 0 && seqs[len(seqs)-1] >= n {
		seqs = seqs[:len(seqs)-1]
	}
	return seqs
}

// handleBehavior serves GET /api/behavior/{key}: one run's complete
// record.
//
// In cluster mode the read routes to the key's owning shard (any
// replica answers from its own immutable partition snapshot), and the
// rendered record fragment is cached keyed by (key, owner shard
// version, normalization epoch): a hot-publish to a different shard
// that leaves the corpus maxima unchanged cannot alter this record's
// bytes, so the cached fragment keeps serving across it — only the
// envelope's corpusVersion is rendered fresh.
func (s *Server) handleBehavior(w http.ResponseWriter, r *http.Request) {
	snap, view, ok := s.currentCorpus(w)
	if !ok {
		return
	}
	key := r.PathValue("key")
	if view != nil {
		s.serveBehaviorSharded(w, r, snap, view, key)
		return
	}
	i, ok := snap.Lookup(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no corpus record with key %q", key)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"run":           behaviorDetailOf(snap, view, i),
	})
}

// behaviorDetailOf assembles the full record payload. With a view, the
// pool index comes from the view's precomputed seq→pool mapping instead
// of a pool scan — same result, no linear search per request.
func behaviorDetailOf(snap *corpus.Snapshot, view *shard.View, i int) behaviorDetail {
	det := behaviorDetail{runSummary: summarize(snap, i)}
	rec := &snap.Records[i]
	if rec.Run == nil {
		return det
	}
	det.ActiveFraction = rec.Run.ActiveFraction
	if view != nil {
		if pi := view.PoolIndexOfSeq(i); pi >= 0 {
			pt := snap.Pool.Point(pi)
			det.PoolBehavior = &pt
		}
		return det
	}
	for pi := 0; pi < snap.PoolSize(); pi++ {
		if snap.PoolRecord(pi).Key == rec.Key {
			pt := snap.Pool.Point(pi)
			det.PoolBehavior = &pt
			break
		}
	}
	return det
}

// serveBehaviorSharded is the cluster read path for one record: fragment
// cache → owner-shard routed read → render from the consistent view.
func (s *Server) serveBehaviorSharded(w http.ResponseWriter, r *http.Request, snap *corpus.Snapshot, view *shard.View, key string) {
	owner := s.cluster.Owner(key)
	fragKey := fmt.Sprintf("bfrag|%s|s%d.v%d|ne%d", key, owner, view.VV[owner], view.NormEpoch)
	if frag, ok := s.cache.Get(fragKey); ok {
		s.mCacheHit.Inc()
		reqInfoFrom(r.Context()).setCache("hit")
		writeJSON(w, http.StatusOK, map[string]any{
			"corpusVersion": snap.Version,
			"run":           json.RawMessage(frag),
		})
		return
	}
	resp, err := s.cluster.Get(r.Context(), key)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "shard_unavailable", "%v", err)
		return
	}
	i, known := snap.Lookup(key)
	if !resp.Found || !known {
		// Either truly absent, or just appended and not yet in this
		// request's view — identical to a single-store reader holding the
		// pre-append snapshot.
		writeError(w, http.StatusNotFound, "not_found", "no corpus record with key %q", key)
		return
	}
	s.mCacheMiss.Inc()
	det := behaviorDetailOf(snap, view, i)
	frag, err := json.Marshal(det)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding_failed", "encoding record: %v", err)
		return
	}
	s.cache.Put(fragKey, frag)
	reqInfoFrom(r.Context()).setCache("miss")
	// The envelope re-indents the compact fragment, so the bytes equal a
	// direct struct marshal — cached and uncached responses, cluster and
	// single-store, all render identically.
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"run":           json.RawMessage(frag),
	})
}

// handlePredict serves GET /api/predict: §7 behavior interpolation for
// an <algorithm, edges, alpha> query. The predictor interpolates over
// the whole corpus, so in cluster mode it is built from the merged view
// — the same insertion-order float summation as a single store, keeping
// predictions bit-identical across shard counts.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	snap, _, okc := s.currentCorpus(w)
	if !okc {
		return
	}
	q := r.URL.Query()
	algName, err := algorithms.Parse(q.Get("algorithm"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	edges, err := strconv.ParseInt(q.Get("edges"), 10, 64)
	if err != nil || edges <= 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "edges must be a positive integer, got %q", q.Get("edges"))
		return
	}
	alpha := 0.0
	if a := q.Get("alpha"); a != "" {
		alpha, err = strconv.ParseFloat(a, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", "alpha %q is not a number", a)
			return
		}
	}
	// An explicit model restricts interpolation to that model's runs
	// (prediction never mixes engines); absent, the pre-model-axis
	// whole-corpus predictor answers, so existing queries against
	// GAS-only corpora keep their exact bytes.
	var p *predict.Predictor
	query := map[string]any{
		"algorithm": string(algName), "edges": edges, "alpha": alpha,
	}
	if m := q.Get("model"); m != "" {
		mName, merr := model.Parse(m)
		if merr != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", "%v", merr)
			return
		}
		query["model"] = string(mName)
		p, err = snap.PredictorFor(string(mName))
	} else {
		p, err = snap.Predictor()
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "no_corpus", "%v", err)
		return
	}
	pred, err := p.Predict(predict.Query{Algorithm: string(algName), NumEdges: edges, Alpha: alpha})
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"query":         query,
		"raw":           pred.Raw,
		"iterations":    pred.Iterations,
		"support":       pred.Support,
	})
}

// handleCorpusInfo serves GET /api/corpus: snapshot metadata, plus the
// shard tier's version vector in cluster mode.
func (s *Server) handleCorpusInfo(w http.ResponseWriter, r *http.Request) {
	snap, view, ok := s.currentCorpus(w)
	if !ok {
		return
	}
	byStatus := map[string]int{}
	for i := range snap.Records {
		byStatus[string(snap.Records[i].Status)]++
	}
	payload := map[string]any{
		"corpusVersion": snap.Version,
		"source":        snap.Source,
		"loadedAt":      snap.LoadedAt,
		"records":       len(snap.Records),
		"okRuns":        snap.OKCount(),
		"poolSize":      snap.PoolSize(),
		"byStatus":      byStatus,
	}
	if view != nil {
		payload["shards"] = map[string]any{
			"count":         s.cluster.Shards(),
			"replicas":      s.cluster.Replicas(),
			"versionVector": view.VVString(),
			"normEpoch":     view.NormEpoch,
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleReload serves POST /api/corpus/reload: re-reads the snapshot's
// source file and atomically publishes the new version. Running requests
// keep their old snapshot; the response reports the new version. In
// cluster mode the reload repartitions and republishes every shard.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var snap *corpus.Snapshot
	if s.cluster != nil {
		view, err := s.cluster.Reload(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, "reload_failed", "%v", err)
			return
		}
		snap = view.Merged
	} else {
		var err error
		if snap, err = s.store.Reload(); err != nil {
			writeError(w, http.StatusInternalServerError, "reload_failed", "%v", err)
			return
		}
	}
	// A reload advances every shard (or the store's scalar version), so
	// no cache entry stays addressable; purge simply returns the memory.
	s.cache.Purge()
	s.mReloads.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"corpusVersion": snap.Version,
		"source":        snap.Source,
		"records":       len(snap.Records),
		"okRuns":        snap.OKCount(),
		"poolSize":      snap.PoolSize(),
	})
}
