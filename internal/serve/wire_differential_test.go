package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"gcbench/internal/corpus"
	"gcbench/internal/obs"
	"gcbench/internal/shard"
)

// The wire differential needs shard replicas that are REAL separate OS
// processes — the deployment shape `gcbench serve -shard-spawn` runs —
// not goroutines pretending. The test binary re-execs itself: when
// these env vars are set, TestMain serves one shard replica over the
// wire protocol instead of running tests, exactly what a `gcbench
// shard-serve` process does.
const (
	shardProcAddrEnv = "GCBENCH_SHARD_PROC_ADDR"
	shardProcIDEnv   = "GCBENCH_SHARD_PROC_SHARD"
)

func TestMain(m *testing.M) {
	if addr := os.Getenv(shardProcAddrEnv); addr != "" {
		runShardProc(addr)
	}
	os.Exit(m.Run())
}

// runShardProc is the re-exec'd child's entire life: serve one fresh
// (version-0) shard replica on the pinned address until killed.
func runShardProc(addr string) {
	id, err := strconv.Atoi(os.Getenv(shardProcIDEnv))
	if err != nil {
		os.Exit(3)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		os.Exit(3)
	}
	srv := &http.Server{Handler: shard.RPCHandler(shard.NewProcessShard(id))}
	_ = srv.Serve(ln)
	os.Exit(0)
}

// spawnShardProc re-execs the test binary as one shard replica process.
func spawnShardProc(spec shard.ProcSpec) (func() error, func(), error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		shardProcAddrEnv+"="+spec.Addr,
		shardProcIDEnv+"="+strconv.Itoa(spec.Shard))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	return cmd.Wait, func() { _ = cmd.Process.Kill() }, nil
}

// freeTestPorts reserves n loopback addresses for shard processes.
func freeTestPorts(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// wireCluster spins up `shards` real shard processes over TCP under a
// supervisor, builds a Cluster over RemoteShard clients (each wrapped
// in a single-member ReplicaSet, the production aggregation layer),
// loads the standard corpus copy, and wires crash-recovery: a restart
// triggers Cluster.Rehydrate, and every completed restore is announced
// on the returned channel.
func wireCluster(t *testing.T, shards int) (*shard.Cluster, *shard.Supervisor, <-chan shard.ProcSpec) {
	t.Helper()
	addrs := freeTestPorts(t, shards)
	specs := make([]shard.ProcSpec, shards)
	clients := make([]shard.ShardClient, shards)
	reg := obs.NewRegistry()
	for i := range specs {
		specs[i] = shard.ProcSpec{Shard: i, Replica: 0, Addr: addrs[i]}
		remote := shard.NewRemoteShard(addrs[i], shard.RemoteOptions{
			Shard: i, Retries: 4, RetryBackoff: 10 * time.Millisecond, Registry: reg,
		})
		rs, err := shard.NewReplicaSet(i, []shard.ShardClient{remote}, reg)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = rs
	}
	sup, err := shard.NewSupervisor(specs, shard.SupervisorOptions{
		Spawn:          spawnShardProc,
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		RestartBackoff: 25 * time.Millisecond,
		StartTimeout:   10 * time.Second,
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)

	c, err := shard.New(shard.Options{Shards: shards, Clients: clients, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	standardStore(t)
	records := append([]corpus.Record(nil), stdSnap.Records...)
	snap, err := corpus.NewSnapshotFromRecords(records, stdSnap.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	restored := make(chan shard.ProcSpec, 16)
	sup.SetOnRestore(func(ctx context.Context, spec shard.ProcSpec) error {
		if _, err := c.Rehydrate(ctx, spec.Shard); err != nil {
			return err
		}
		restored <- spec
		return nil
	})
	return c, sup, restored
}

// vvAdvancedOnly asserts the version vector moved monotonically: no
// component regressed (the epoch-fence invariant the VV-keyed caches
// depend on). With moved non-nil, exactly those components advanced;
// with moved nil, at least one did (an append publishes only the shards
// that received entries, which ones depending on key hashing).
func vvAdvancedOnly(t *testing.T, phase string, before, after []uint64, moved map[int]bool) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("%s: VV length changed %d → %d", phase, len(before), len(after))
	}
	any := false
	for i := range after {
		switch {
		case after[i] < before[i]:
			t.Errorf("%s: VV[%d] REGRESSED %d → %d — stale cache bodies are now addressable", phase, i, before[i], after[i])
		case after[i] > before[i]:
			any = true
			if moved != nil && !moved[i] {
				t.Errorf("%s: VV[%d] advanced %d → %d but shard %d was not touched", phase, i, before[i], after[i], i)
			}
		case after[i] == before[i] && moved != nil && moved[i]:
			t.Errorf("%s: VV[%d] did not advance but shard %d was republished", phase, i, i)
		}
	}
	if !any {
		t.Errorf("%s: no VV component advanced", phase)
	}
}

// TestDifferentialWireProcesses extends the PR 8 differential guarantee
// to the wire: the same request set answered by a single-store server
// and by a cluster of 4 separate shard OS processes over TCP produces
// byte-identical JSON — initially, after a hot publish, and (the
// correctness heart of this PR) after one shard process is killed and
// restart-rehydrated mid-campaign. Throughout, the version vector never
// regresses and the cluster epoch (corpusVersion, embedded in every
// body) never moves on restart.
func TestDifferentialWireProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real shard processes")
	}
	single := newTestServer(t, nil)
	cluster, sup, restored := wireCluster(t, 4)
	wire, err := New(Config{Cluster: cluster, Samples: 50_000, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	calls := differentialCalls(t)

	assertIdentical(t, "wire initial", single, wire, "cluster(4 procs)", calls)
	vv0 := append([]uint64(nil), cluster.View().VV...)
	epoch0 := cluster.View().Epoch()

	// Hot publish across the wire: both deployments append the same runs
	// through the jobs publish sink; bodies must re-converge and every
	// shard's version must advance in lockstep (uniform fence).
	runs := dominatedRuns(t, 3)
	for _, s := range []*Server{single, wire} {
		if _, err := s.publishRuns("wire-diff-job", runs); err != nil {
			t.Fatal(err)
		}
	}
	assertIdentical(t, "wire after publish", single, wire, "cluster(4 procs)", calls)
	vv1 := append([]uint64(nil), cluster.View().VV...)
	vvAdvancedOnly(t, "publish", vv0, vv1, nil)
	if got := cluster.View().Epoch(); got != epoch0+1 {
		t.Fatalf("epoch after publish = %d, want %d", got, epoch0+1)
	}

	// Kill one shard process mid-campaign. The supervisor restarts it on
	// the same port, rehydrates it from the merged view (including the
	// hot-published runs — no restart amnesia), and only that shard's VV
	// component moves, strictly upward.
	const victim = 2
	if err := sup.Kill(victim, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case spec := <-restored:
		if spec.Shard != victim {
			t.Fatalf("restored shard %d, want %d", spec.Shard, victim)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shard never restored after kill")
	}
	vv2 := append([]uint64(nil), cluster.View().VV...)
	vvAdvancedOnly(t, "restart", vv1, vv2, map[int]bool{victim: true})
	if vv2[victim] <= vv1[victim] {
		t.Fatalf("restarted shard %d 's version %d did not pass pre-crash %d", victim, vv2[victim], vv1[victim])
	}
	if got := cluster.View().Epoch(); got != epoch0+1 {
		t.Fatalf("restart moved the cluster epoch %d → %d; corpusVersion must be restart-invariant", epoch0+1, got)
	}

	// The whole request set — including the hot-published records owned
	// by the restarted shard — still answers byte-identically to the
	// single store.
	post := append(calls, apiCall{
		name:   "appended behavior after restart",
		method: http.MethodGet,
		path:   "/api/behavior/" + corpus.KeyOf("PR", "7e1", 2.05),
	})
	assertIdentical(t, "wire after restart", single, wire, "cluster(4 procs)", post)

	// Readiness reflects the restored fleet.
	if ready, _ := wire.readiness(); !ready {
		t.Error("cluster not ready after restore")
	}
}

// TestReplicaFailoverUnderLoad proves a dead replica costs capacity,
// not correctness: with 2 wire replicas per shard (in-process httptest
// endpoints — the transport is real HTTP, only the processes are
// shared) and concurrent readers hammering the API, killing one replica
// of one shard mid-stream leaves every read answering 200 with
// single-store-identical bodies, while /readyz flips to degraded until
// the replica returns. Run under -race: the failover rotation, the
// Down-count aggregation and the readers all share the ReplicaSet.
func TestReplicaFailoverUnderLoad(t *testing.T) {
	const shards, replicas = 2, 2
	reg := obs.NewRegistry()
	clients := make([]shard.ShardClient, shards)
	// killable[s][r] closes replica r of shard s.
	killable := make([][]*httptest.Server, shards)
	for s := 0; s < shards; s++ {
		local := shard.NewLocalShard(s, 1, corpus.PoolMember)
		var reps []shard.ShardClient
		for r := 0; r < replicas; r++ {
			// Both replica endpoints front the same LocalShard so their
			// contents agree, as real replicas' do after a fenced publish.
			srv := httptest.NewServer(shard.RPCHandler(local))
			t.Cleanup(srv.Close)
			killable[s] = append(killable[s], srv)
			reps = append(reps, shard.NewRemoteShard(srv.URL, shard.RemoteOptions{
				Shard: s, Retries: -1, RetryBackoff: time.Millisecond, Registry: reg,
			}))
		}
		rs, err := shard.NewReplicaSet(s, reps, reg)
		if err != nil {
			t.Fatal(err)
		}
		clients[s] = rs
	}
	cluster, err := shard.New(shard.Options{Shards: shards, Replicas: replicas, Clients: clients, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	standardStore(t)
	records := append([]corpus.Record(nil), stdSnap.Records...)
	snap, err := corpus.NewSnapshotFromRecords(records, stdSnap.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	single := newTestServer(t, nil)
	srv, err := New(Config{Cluster: cluster, Samples: 50_000, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if ready, _ := srv.readiness(); !ready {
		t.Fatal("cluster not ready with all replicas up")
	}

	readCalls := []apiCall{
		{name: "runs", method: http.MethodGet, path: "/api/runs?algorithm=PR"},
		{name: "behavior", method: http.MethodGet, path: "/api/behavior/" + stdSnap.Records[0].Key},
		{name: "predict", method: http.MethodGet, path: "/api/predict?algorithm=PR&edges=500000&alpha=2.1"},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := readCalls[(w+i)%len(readCalls)]
				if rec := c.issue(t, srv); rec.Code != http.StatusOK {
					t.Errorf("during replica outage: %s returned %d: %s", c.name, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}

	// Kill one replica of shard 1 mid-stream.
	killable[1][0].Close()
	time.Sleep(50 * time.Millisecond) // let readers cross the outage
	close(stop)
	wg.Wait()

	// Reads survive, bodies stay identical, readiness reports degraded.
	assertIdentical(t, "one replica down", single, srv, "cluster(2x2 wire)", differentialCalls(t))
	ready, detail := srv.readiness()
	if ready {
		t.Errorf("readyz still green with a replica down: %v", detail)
	}
}
