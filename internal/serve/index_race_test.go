package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/ensemble"
	"gcbench/internal/predict"
)

// This file is the ISSUE's race-enabled index-consistency test: while
// Store.Append publishes renormalized corpus versions (each appended run
// raises behavior maxima, rescaling every older vector and rebuilding
// the per-snapshot predictor index), concurrent /api/predict and
// coverage design queries must never observe a mixed old/new view.
// Stale is fine — a response may carry an already-superseded
// corpusVersion — but every value in a response must be derivable from
// exactly the snapshot of the version it claims. The check is exact:
// JSON float64 round-trips losslessly in Go, so oracle comparisons use
// ==, and any torn index read shows up as a bit difference.

// appendRun fabricates a graph-varying run whose Raw maxima exceed all
// previous ones, forcing Append's rebuild to rescale the whole space.
func appendRun(v int) *behavior.Run {
	grow := 2.0 + float64(v)
	return &behavior.Run{
		Algorithm: "PR", Domain: "Graph Analytics",
		NumEdges: int64(1_000_000 + v*7919), Alpha: 2 + float64(v)/100,
		SizeLabel: fmt.Sprintf("race%d", v), Iterations: 10 + v, Converged: true,
		Raw: behavior.Vector{grow, grow / 10, grow * 2, grow / 3},
	}
}

func TestIndexConsistencyAcrossAppendRace(t *testing.T) {
	const (
		appends        = 6
		predictClients = 4
		designClients  = 2
		samples        = 20_000
	)
	s := newTestServer(t, func(cfg *Config) {
		cfg.Samples = samples
	})

	// Version → immutable snapshot, recorded by the appender as each
	// publication returns. Version 1 is the initial snapshot.
	var snapMu sync.Mutex
	snapshots := map[int64]*corpus.Snapshot{1: s.store.Snapshot()}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for v := 0; v < appends; v++ {
			snap, err := s.store.Append([]*behavior.Run{appendRun(v)}, "race-test")
			if err != nil {
				t.Errorf("append %d: %v", v, err)
				return
			}
			snapMu.Lock()
			snapshots[snap.Version] = snap
			snapMu.Unlock()
			// Give clients a beat on each version so responses genuinely
			// span several publications.
			time.Sleep(5 * time.Millisecond)
		}
	}()

	type predictResp struct {
		CorpusVersion int64     `json:"corpusVersion"`
		Raw           []float64 `json:"raw"`
		Iterations    float64   `json:"iterations"`
		Support       int       `json:"support"`
	}
	var respMu sync.Mutex
	var predictions []predictResp
	var designs []designResponse
	var designBodies [][]byte

	const predictPath = "/api/predict?algorithm=PR&edges=500000&alpha=2.5"
	for c := 0; c < predictClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				w := get(t, s, predictPath)
				if w.Code != http.StatusOK {
					t.Errorf("predict: status %d: %s", w.Code, w.Body.String())
					return
				}
				var pr predictResp
				if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				respMu.Lock()
				predictions = append(predictions, pr)
				respMu.Unlock()
			}
		}()
	}

	for c := 0; c < designClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				w := postDesign(t, s, `{"n": 2, "metric": "coverage"}`)
				if w.Code != http.StatusOK {
					t.Errorf("design: status %d: %s", w.Code, w.Body.String())
					return
				}
				var dr designResponse
				if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
					t.Errorf("design: %v", err)
					return
				}
				respMu.Lock()
				designs = append(designs, dr)
				designBodies = append(designBodies, append([]byte(nil), w.Body.Bytes()...))
				respMu.Unlock()
			}
		}()
	}
	wg.Wait()

	// ---- Oracles, evaluated after the dust settles ----------------

	// Every predict response must equal the prediction its version's
	// snapshot computes — bit-for-bit.
	seenVersions := map[int64]bool{}
	for i, pr := range predictions {
		snap := snapshots[pr.CorpusVersion]
		if snap == nil {
			t.Fatalf("prediction %d: unknown corpusVersion %d", i, pr.CorpusVersion)
		}
		seenVersions[pr.CorpusVersion] = true
		p, err := snap.Predictor()
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Predict(predict.Query{Algorithm: "PR", NumEdges: 500000, Alpha: 2.5})
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Raw) != behavior.Dims {
			t.Fatalf("prediction %d: raw has %d dims", i, len(pr.Raw))
		}
		for d := 0; d < behavior.Dims; d++ {
			if pr.Raw[d] != want.Raw[d] {
				t.Fatalf("prediction %d (v%d) dim %d: got %v, oracle %v — torn predictor view",
					i, pr.CorpusVersion, d, pr.Raw[d], want.Raw[d])
			}
		}
		if pr.Iterations != want.Iterations || pr.Support != want.Support {
			t.Fatalf("prediction %d (v%d): iters/support %v/%d, oracle %v/%d",
				i, pr.CorpusVersion, pr.Iterations, pr.Support, want.Iterations, want.Support)
		}
	}

	// Every design response must match a from-scratch rerun of the same
	// deterministic search against its version's snapshot: same members,
	// same normalized behavior vectors, same score.
	est, err := ensemble.NewCoverageEstimator(samples, 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	type oracle struct {
		keys  []string
		score float64
	}
	oracles := map[int64]*oracle{}
	for i, dr := range designs {
		snap := snapshots[dr.CorpusVersion]
		if snap == nil {
			t.Fatalf("design %d: unknown corpusVersion %d", i, dr.CorpusVersion)
		}
		orc := oracles[dr.CorpusVersion]
		if orc == nil {
			poolIdx := snap.PoolSelect(corpus.Filter{})
			sets, err := ensemble.BestCoverageGreedyCtx(context.Background(), est, snap.Pool.Points, poolIdx, 2)
			if err != nil {
				t.Fatal(err)
			}
			pts := make([]behavior.Vector, len(sets[2]))
			keys := make([]string, len(sets[2]))
			for j, pi := range sets[2] {
				pts[j] = snap.Pool.Points[pi]
				keys[j] = snap.PoolRecord(pi).Key
			}
			orc = &oracle{keys: keys, score: est.Coverage(pts)}
			oracles[dr.CorpusVersion] = orc
		}
		if dr.Score != orc.score || len(dr.Members) != len(orc.keys) {
			t.Fatalf("design %d (v%d): score %v members %d, oracle %v/%d",
				i, dr.CorpusVersion, dr.Score, len(dr.Members), orc.score, len(orc.keys))
		}
		for j, m := range dr.Members {
			if m.Key != orc.keys[j] {
				t.Fatalf("design %d (v%d) member %d: key %q, oracle %q",
					i, dr.CorpusVersion, j, m.Key, orc.keys[j])
			}
			// The member's normalized behavior must come from THIS
			// version's space — a vector normalized under a different
			// version's maxima is exactly the torn state this test exists
			// to catch.
			ri, ok := snap.Lookup(m.Key)
			if !ok {
				t.Fatalf("design %d: member %q missing from v%d", i, m.Key, dr.CorpusVersion)
			}
			si := snap.SpaceIndexOf(ri)
			wantPt := snap.Space.Point(si)
			if m.Behavior == nil || *m.Behavior != wantPt {
				t.Fatalf("design %d (v%d) member %q: behavior %v, oracle %v — mixed-version normalization",
					i, dr.CorpusVersion, m.Key, m.Behavior, wantPt)
			}
		}
	}

	// The race must actually have crossed version bumps: with six
	// appends and clients running throughout, responses should span
	// multiple versions.
	if len(seenVersions) < 2 && len(predictions) > 10 {
		t.Logf("note: predict responses all saw one version (%d responses) — race window too narrow on this machine", len(predictions))
	}
	t.Logf("validated %d predictions across %d versions, %d designs", len(predictions), len(seenVersions), len(designs))
}
