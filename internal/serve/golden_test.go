package serve

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the serve API golden files")

// TestGoldenResponses pins the deterministic API responses over the
// shipped standard corpus (runs-standard.json): a corpus regression, a
// search regression, or an accidental wire-format change all surface as
// a golden diff. Regenerate deliberately with:
//
//	go test ./internal/serve/ -run TestGoldenResponses -update
func TestGoldenResponses(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name, path string
	}{
		// Greedy max-spread is fully deterministic: stable pool order,
		// first-argmax tie-breaks.
		{"best_spread_n5.json", "/api/ensemble/best?n=5"},
		// The corpus listing in stable load order, filtered to one
		// algorithm to keep the file reviewable.
		{"runs_pr.json", "/api/runs?algorithm=PR"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := get(t, s, c.path)
			if w.Code != http.StatusOK {
				t.Fatalf("GET %s: status = %d: %s", c.path, w.Code, w.Body.String())
			}
			goldenPath := filepath.Join("testdata", c.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, w.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(w.Body.Bytes(), want) {
				t.Errorf("GET %s diverged from %s;\nre-run with -update if the change is intended.\ngot:\n%s",
					c.path, goldenPath, clip(w.Body.Bytes(), 2000))
			}
		})
	}
}

// clip truncates b for readable failure output.
func clip(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return append(append([]byte{}, b[:n]...), []byte("…")...)
}
