package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"gcbench/internal/corpus"
	"gcbench/internal/obs"
	"gcbench/internal/shard"
)

// decodeJSON unmarshals a recorded response body into v.
func decodeJSON(t testing.TB, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, w.Body.String())
	}
}

// TestReadyzGatesOnShardPublish asserts the liveness/readiness split: a
// cluster server is alive (healthz 200) but not ready (readyz 503, API
// 503) until every shard has published a first corpus version.
func TestReadyzGatesOnShardPublish(t *testing.T) {
	standardStore(t)
	c, err := shard.New(shard.Options{Shards: 3, Replicas: 2, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: c, Samples: 50_000, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d before load; liveness must not depend on readiness", w.Code)
	}
	w := get(t, s, "/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d before any shard published, want 503: %s", w.Code, w.Body.String())
	}
	var probe struct {
		Ready  bool `json:"ready"`
		Detail struct {
			Shards []shard.InfoResponse `json:"shards"`
		} `json:"detail"`
	}
	decodeJSON(t, w, &probe)
	if probe.Ready || len(probe.Detail.Shards) != 3 {
		t.Fatalf("probe payload: ready=%v shards=%d", probe.Ready, len(probe.Detail.Shards))
	}
	for _, info := range probe.Detail.Shards {
		if info.Version != 0 {
			t.Errorf("shard %d reports version %d before publish", info.Shard, info.Version)
		}
	}
	// API reads are refused coherently while unready.
	if w := get(t, s, "/api/runs"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/api/runs = %d on unready cluster, want 503", w.Code)
	}

	records := append([]corpus.Record(nil), stdSnap.Records...)
	snap, err := corpus.NewSnapshotFromRecords(records, stdSnap.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}

	w = get(t, s, "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("/readyz = %d after load, want 200: %s", w.Code, w.Body.String())
	}
	decodeJSON(t, w, &probe)
	for _, info := range probe.Detail.Shards {
		if info.Version != 1 || info.Replicas != 2 {
			t.Errorf("shard %d: version=%d replicas=%d after load", info.Shard, info.Version, info.Replicas)
		}
	}
	if w := get(t, s, "/api/runs"); w.Code != http.StatusOK {
		t.Fatalf("/api/runs = %d after load, want 200", w.Code)
	}

	// Single-store servers are ready as soon as they exist.
	if w := get(t, newTestServer(t, nil), "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("single-store /readyz = %d, want 200", w.Code)
	}
}

// TestRetryAfterJitterBounds asserts the anti-thundering-herd contract:
// every rendered Retry-After is an integer in [base, 2*base], and the
// values actually vary (a constant would re-synchronize the herd).
func TestRetryAfterJitterBounds(t *testing.T) {
	for _, base := range []int{1, 5} {
		seen := map[int]bool{}
		for i := 0; i < 256; i++ {
			v, err := strconv.Atoi(retryAfterJitter(base))
			if err != nil {
				t.Fatalf("base %d: non-integer Retry-After: %v", base, err)
			}
			if v < base || v > 2*base {
				t.Fatalf("base %d: Retry-After %d outside [%d, %d]", base, v, base, 2*base)
			}
			seen[v] = true
		}
		// 256 draws over base+1 ≥ 2 values: all-identical is ~2^-256.
		if len(seen) < 2 {
			t.Errorf("base %d: 256 jittered values were all identical (%v)", base, seen)
		}
	}
}

// TestBehaviorFragmentSurvivesOtherShardPublish asserts the cache
// satellite: a record fragment cached from shard A keeps serving across
// a hot publish that touches only other shards (same normalization),
// instead of the old wholesale purge.
func TestBehaviorFragmentSurvivesOtherShardPublish(t *testing.T) {
	s := clusterOverStandard(t, 4, 1)
	c := s.cluster

	runs := dominatedRuns(t, 2)
	// Pick a corpus key on a shard that owns none of the appended runs'
	// keys (keys are append-stable, so ownership is computable up front).
	owners := map[int]bool{}
	for _, r := range runs {
		owners[c.Owner(corpus.KeyOf(r.Algorithm, r.SizeLabel, r.Alpha))] = true
	}
	view := c.View()
	var key string
	for i := range view.Merged.Records {
		if !owners[c.Owner(view.Merged.Records[i].Key)] {
			key = view.Merged.Records[i].Key
			break
		}
	}
	if key == "" {
		t.Skip("every shard owns an appended run; cannot isolate an untouched shard")
	}

	first := get(t, s, "/api/behavior/"+key)
	if first.Code != http.StatusOK {
		t.Fatalf("first read: %d: %s", first.Code, first.Body.String())
	}
	entries := s.cache.Len()

	if _, err := c.Append(context.Background(), runs, "cache-test"); err != nil {
		t.Fatal(err)
	}

	second := get(t, s, "/api/behavior/"+key)
	if second.Code != http.StatusOK {
		t.Fatalf("read after publish: %d: %s", second.Code, second.Body.String())
	}
	if got := s.cache.Len(); got != entries {
		t.Errorf("cache grew %d → %d on re-read: fragment was not served from cache across the publish", entries, got)
	}
	// The fragment is identical; only the envelope's corpusVersion moved.
	if first.Body.String() == second.Body.String() {
		t.Error("corpusVersion did not advance across the publish")
	}
}
