package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentDesignCoalescing is the ISSUE's race-enabled
// concurrency test: ~50 clients hammer /api/ensemble/design with a
// handful of unique requests; the server must execute each unique
// search exactly once (singleflight + cache), and every response for
// the same request must be byte-identical.
func TestConcurrentDesignCoalescing(t *testing.T) {
	s := newTestServer(t, nil)
	// Hold each search in its worker slot long enough that the 50
	// clients genuinely overlap in flight.
	s.searchDelay = 50 * time.Millisecond

	const (
		clients = 50
		unique  = 5
	)
	bodyFor := func(i int) string {
		return fmt.Sprintf(`{"n": %d}`, 2+i%unique)
	}

	type result struct {
		idx    int
		status int
		body   []byte
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/api/ensemble/design", strings.NewReader(bodyFor(i)))
			s.Handler().ServeHTTP(w, r)
			results[i] = result{idx: i, status: w.Code, body: w.Body.Bytes()}
		}(i)
	}
	wg.Wait()

	canonical := make(map[int][]byte)
	for _, res := range results {
		if res.status != http.StatusOK {
			t.Fatalf("client %d: status = %d: %s", res.idx, res.status, res.body)
		}
		n := 2 + res.idx%unique
		if prev, ok := canonical[n]; ok {
			if !bytes.Equal(prev, res.body) {
				t.Errorf("client %d: body for n=%d differs from earlier response", res.idx, n)
			}
		} else {
			canonical[n] = res.body
		}
	}
	if got := s.Searches(); got != unique {
		t.Errorf("searches = %d, want %d (coalescing/cache failed)", got, unique)
	}
}

// TestQueueSaturationSheds: with one worker and a one-deep queue,
// concurrent distinct design requests overflow the admission queue and
// are shed with 429 + Retry-After while admitted requests still succeed.
func TestQueueSaturationSheds(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
	})
	s.searchDelay = 300 * time.Millisecond

	const clients = 6 // capacity is workers+queue = 2, so ≥4 must shed
	statuses := make([]int, clients)
	retryAfter := make([]string, clients)
	codes := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			body := fmt.Sprintf(`{"n": %d}`, 2+i) // distinct keys: no coalescing
			r := httptest.NewRequest(http.MethodPost, "/api/ensemble/design", strings.NewReader(body))
			s.Handler().ServeHTTP(w, r)
			statuses[i] = w.Code
			retryAfter[i] = w.Header().Get("Retry-After")
			if w.Code != http.StatusOK {
				var e apiError
				_ = json.Unmarshal(w.Body.Bytes(), &e)
				codes[i] = e.Error.Code
			}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i := range statuses {
		switch statuses[i] {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("client %d: 429 without Retry-After", i)
			}
			if codes[i] != "saturated" {
				t.Errorf("client %d: 429 code = %q, want saturated", i, codes[i])
			}
		default:
			t.Errorf("client %d: unexpected status %d", i, statuses[i])
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok = %d shed = %d: want both admission and shedding", ok, shed)
	}
	if got := s.pool.Pending(); got != 0 {
		t.Errorf("pending = %d after drain, want 0", got)
	}
	// The shed requests never reached a worker slot.
	if got := s.Searches(); got != int64(ok) {
		t.Errorf("searches = %d, want %d (one per admitted request)", got, ok)
	}
}

// TestDeadlineExceededReturnsPromptly: a design request whose search
// outlives the per-request deadline aborts within one search step,
// returns a structured 503, and leaves the server consistent for the
// next request.
func TestDeadlineExceededReturnsPromptly(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.RequestTimeout = 50 * time.Millisecond
	})
	s.searchDelay = 10 * time.Second // far beyond the deadline; honors ctx

	start := time.Now()
	w := postDesign(t, s, `{"n": 3}`)
	elapsed := time.Since(start)
	if w.Code != http.StatusServiceUnavailable || decodeError(t, w) != "deadline_exceeded" {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("deadline 503 without Retry-After")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline response took %v, want prompt abort", elapsed)
	}

	// The failed search was not cached; with the delay removed the same
	// request now completes.
	s.searchDelay = 0
	w2 := postDesign(t, s, `{"n": 3}`)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "miss" {
		t.Fatalf("after deadline: %d X-Cache=%q", w2.Code, w2.Header().Get("X-Cache"))
	}
}

// TestGracefulShutdownDrains: Shutdown completes only after in-flight
// design searches finish, and those requests get full 200 responses.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, nil)
	s.searchDelay = 200 * time.Millisecond
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		status int
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(s.URL()+"/api/ensemble/design", "application/json",
			strings.NewReader(`{"n": 3}`))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer discardBody(resp)
		done <- outcome{status: resp.StatusCode}
	}()

	// Let the request reach its worker slot, then drain.
	time.Sleep(80 * time.Millisecond)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", out.err)
	}
	if out.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d during drain", out.status)
	}
}
