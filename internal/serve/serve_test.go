package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcbench/internal/corpus"
	"gcbench/internal/obs"
)

// standardSnapshot loads the shipped measured corpus once per test
// binary; each test gets its own Store (and thus its own version
// counter) over the shared immutable snapshot.
var (
	stdOnce sync.Once
	stdSnap *corpus.Snapshot
	stdErr  error
)

func standardStore(t testing.TB) *corpus.Store {
	t.Helper()
	stdOnce.Do(func() {
		stdSnap, stdErr = corpus.LoadFile("../../runs-standard.json")
	})
	if stdErr != nil {
		t.Fatalf("loading runs-standard.json: %v", stdErr)
	}
	return corpus.NewStore(stdSnap)
}

// newTestServer builds a Server over the standard corpus with small,
// fast defaults; mutate overrides the config before construction.
func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Store:    standardStore(t),
		Samples:  50_000, // small MC pool: coverage tests stay fast, still deterministic
		Registry: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get issues a GET against the server's handler and returns the
// recorded response.
func get(t testing.TB, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// postDesign issues a POST /api/ensemble/design with the given JSON body.
func postDesign(t testing.TB, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/api/ensemble/design", strings.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	s.Handler().ServeHTTP(w, r)
	return w
}

// decodeError asserts a structured error body and returns its code.
func decodeError(t testing.TB, w *httptest.ResponseRecorder) string {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not structured JSON: %v\n%s", err, w.Body.String())
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("error body missing code/message: %s", w.Body.String())
	}
	return e.Error.Code
}

func TestRunsFiltering(t *testing.T) {
	s := newTestServer(t, nil)
	w := get(t, s, "/api/runs?algorithm=PR")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		CorpusVersion int64 `json:"corpusVersion"`
		Count         int   `json:"count"`
		Runs          []struct {
			Key       string `json:"key"`
			Algorithm string `json:"algorithm"`
			Status    string `json:"status"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CorpusVersion != 1 || resp.Count == 0 || len(resp.Runs) != resp.Count {
		t.Fatalf("corpusVersion=%d count=%d len=%d", resp.CorpusVersion, resp.Count, len(resp.Runs))
	}
	for _, r := range resp.Runs {
		if r.Algorithm != "PR" {
			t.Errorf("algorithm filter leaked %s (%s)", r.Algorithm, r.Key)
		}
		if r.Status != "ok" {
			t.Errorf("corpus-file run %s has status %s", r.Key, r.Status)
		}
	}

	// Comma lists and repeats compose.
	w = get(t, s, "/api/runs?algorithm=PR,CC&size=1e5")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	// Unknown status is a structured 400, not a silent empty result.
	w = get(t, s, "/api/runs?status=exploded")
	if w.Code != http.StatusBadRequest || decodeError(t, w) != "invalid_request" {
		t.Fatalf("bad status filter: %d %s", w.Code, w.Body.String())
	}
}

func TestBehaviorLookup(t *testing.T) {
	s := newTestServer(t, nil)
	w := get(t, s, "/api/behavior/PR_1e5_a2.5")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Run struct {
			Key            string    `json:"key"`
			Behavior       []float64 `json:"behavior"`
			PoolBehavior   []float64 `json:"poolBehavior"`
			ActiveFraction []float64 `json:"activeFraction"`
		} `json:"run"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Run.Key != "PR_1e5_a2.5" || len(resp.Run.Behavior) != 4 ||
		len(resp.Run.PoolBehavior) != 4 || len(resp.Run.ActiveFraction) == 0 {
		t.Fatalf("incomplete behavior record: %+v", resp.Run)
	}

	w = get(t, s, "/api/behavior/NOPE_1e5")
	if w.Code != http.StatusNotFound || decodeError(t, w) != "not_found" {
		t.Fatalf("missing key: %d %s", w.Code, w.Body.String())
	}
}

func TestPredictEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	w := get(t, s, "/api/predict?algorithm=PR&edges=500000&alpha=2.5")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Raw        []float64 `json:"raw"`
		Iterations float64   `json:"iterations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Raw) != 4 || resp.Iterations <= 0 {
		t.Fatalf("prediction = %+v", resp)
	}

	for _, bad := range []string{
		"/api/predict?algorithm=NOPE&edges=1000",
		"/api/predict?algorithm=PR&edges=-5",
		"/api/predict?algorithm=PR&edges=1000&alpha=zebra",
	} {
		w := get(t, s, bad)
		if w.Code != http.StatusBadRequest || decodeError(t, w) != "invalid_request" {
			t.Errorf("%s: %d %s", bad, w.Code, w.Body.String())
		}
	}
}

// TestDesignValidation maps every malformed design request to a 400 with
// a structured error body (satellite: API error contract).
func TestDesignValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name, body, wantCode string
	}{
		{"zero n", `{"n": 0}`, "invalid_request"},
		{"negative n", `{"n": -3}`, "invalid_request"},
		{"bad metric", `{"n": 5, "metric": "sparkle"}`, "invalid_request"},
		{"bad method", `{"n": 5, "method": "oracle"}`, "invalid_request"},
		{"beam+coverage", `{"n": 5, "metric": "coverage", "method": "beam"}`, "invalid_request"},
		{"anneal spread n=1", `{"n": 1, "metric": "spread", "method": "anneal"}`, "invalid_request"},
		{"negative steps", `{"n": 5, "method": "anneal", "steps": -1}`, "invalid_request"},
		{"unknown algorithm", `{"n": 2, "pool": {"algorithms": ["NOPE"]}}`, "invalid_request"},
		{"unknown field", `{"n": 5, "shape": "round"}`, "invalid_request"},
		{"not json", `n=5`, "invalid_request"},
		{"empty pool", `{"n": 2, "pool": {"sizes": ["1e99"]}}`, "empty_pool"},
		{"n exceeds pool", `{"n": 10000}`, "invalid_request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := postDesign(t, s, c.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", w.Code, w.Body.String())
			}
			if code := decodeError(t, w); code != c.wantCode {
				t.Fatalf("code = %s, want %s: %s", code, c.wantCode, w.Body.String())
			}
		})
	}
	if n := s.Searches(); n != 0 {
		t.Errorf("invalid requests triggered %d searches", n)
	}
}

func TestDesignMethodsAndMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []string{
		`{"n": 3}`,
		`{"n": 3, "method": "exchange"}`,
		`{"n": 3, "method": "anneal", "steps": 500}`,
		`{"n": 3, "method": "beam"}`,
		`{"n": 3, "metric": "coverage"}`,
		`{"n": 3, "metric": "coverage", "method": "exchange"}`,
		`{"n": 3, "metric": "coverage", "method": "anneal", "steps": 200}`,
		`{"n": 2, "pool": {"algorithms": ["PR", "CC"], "sizes": ["1e5"]}}`,
	}
	for _, body := range cases {
		w := postDesign(t, s, body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", body, w.Code, w.Body.String())
		}
		var resp designResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		if len(resp.Members) != resp.N || resp.Score < 0 || resp.PoolSize < resp.N {
			t.Fatalf("%s: n=%d members=%d score=%g pool=%d",
				body, resp.N, len(resp.Members), resp.Score, resp.PoolSize)
		}
		for _, m := range resp.Members {
			if m.Key == "" || m.Behavior == nil {
				t.Fatalf("%s: incomplete member %+v", body, m)
			}
		}
	}
}

// TestDesignCanonicalization: requests differing only in field order,
// pool duplication, case, or defaulted fields share one cache entry.
func TestDesignCanonicalization(t *testing.T) {
	s := newTestServer(t, nil)
	variants := []string{
		`{"n": 4, "metric": "spread", "method": "greedy", "pool": {"algorithms": ["PR", "CC"]}}`,
		`{"pool": {"algorithms": ["CC", "PR", "PR"]}, "n": 4}`,
		`{"n": 4, "metric": "SPREAD", "method": "Greedy", "pool": {"algorithms": ["cc", "pr"]}}`,
		`{"n": 4, "seed": 7, "pool": {"algorithms": ["PR", "CC"]}}`, // seed ignored off-anneal
	}
	var first []byte
	for i, body := range variants {
		w := postDesign(t, s, body)
		if w.Code != http.StatusOK {
			t.Fatalf("variant %d: status = %d: %s", i, w.Code, w.Body.String())
		}
		if i == 0 {
			first = w.Body.Bytes()
			if got := w.Header().Get("X-Cache"); got != "miss" {
				t.Errorf("variant 0 X-Cache = %q, want miss", got)
			}
			continue
		}
		if !bytes.Equal(w.Body.Bytes(), first) {
			t.Errorf("variant %d body differs from canonical", i)
		}
		if got := w.Header().Get("X-Cache"); got != "hit" {
			t.Errorf("variant %d X-Cache = %q, want hit", i, got)
		}
	}
	if n := s.Searches(); n != 1 {
		t.Errorf("searches = %d, want 1 (canonicalization failed)", n)
	}
}

func TestBestEndpointSharesCacheWithDesign(t *testing.T) {
	s := newTestServer(t, nil)
	w := get(t, s, "/api/ensemble/best?n=5")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	// The equivalent POST is a cache hit: same canonical identity.
	w2 := postDesign(t, s, `{"n": 5}`)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("POST after best: %d X-Cache=%q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("best and design bodies differ for the same identity")
	}
	if w3 := get(t, s, "/api/ensemble/best?n=zebra"); w3.Code != http.StatusBadRequest {
		t.Errorf("bad n: status = %d", w3.Code)
	}
}

func TestCorpusInfoAndReload(t *testing.T) {
	s := newTestServer(t, nil)
	w := get(t, s, "/api/corpus")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var info struct {
		CorpusVersion int64 `json:"corpusVersion"`
		Records       int   `json:"records"`
		OKRuns        int   `json:"okRuns"`
		PoolSize      int   `json:"poolSize"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.CorpusVersion != 1 || info.Records == 0 || info.PoolSize == 0 {
		t.Fatalf("info = %+v", info)
	}

	// Prime the design cache, then reload: version bumps and the cache
	// is purged (the old version's entries can never be served again).
	if w := postDesign(t, s, `{"n": 3}`); w.Code != http.StatusOK {
		t.Fatalf("design: %d", w.Code)
	}
	if s.cache.Len() == 0 {
		t.Fatal("design did not populate the cache")
	}
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/api/corpus/reload", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rw.Code, rw.Body.String())
	}
	var rl struct {
		CorpusVersion int64 `json:"corpusVersion"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &rl); err != nil {
		t.Fatal(err)
	}
	if rl.CorpusVersion != 2 {
		t.Errorf("reloaded version = %d, want 2", rl.CorpusVersion)
	}
	if s.cache.Len() != 0 {
		t.Error("reload did not purge the design cache")
	}
	// Same request now misses (new corpus version) and re-searches.
	w2 := postDesign(t, s, `{"n": 3}`)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "miss" {
		t.Errorf("post-reload design: %d X-Cache=%q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if n := s.Searches(); n != 2 {
		t.Errorf("searches = %d, want 2 (one per corpus version)", n)
	}
}

func TestObservabilitySurface(t *testing.T) {
	s := newTestServer(t, nil)
	postDesign(t, s, `{"n": 3}`)

	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, metric := range []string{
		"gcbench_serve_requests_total",
		"gcbench_serve_request_seconds",
		"gcbench_serve_searches_total",
		"gcbench_serve_cache_misses_total",
		"gcbench_serve_queue_depth",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	w = get(t, s, "/statusz")
	if w.Code != http.StatusOK {
		t.Fatalf("/statusz: %d", w.Code)
	}
	var st struct {
		Service  string `json:"service"`
		Searches int64  `json:"searches"`
		PoolSize int    `json:"poolSize"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Service != "gcbench-serve" || st.Searches != 1 || st.PoolSize == 0 {
		t.Errorf("statusz = %+v", st)
	}

	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("/healthz: %d", w.Code)
	}
}

// TestCachedDesignSpeedup is the ISSUE's headline latency claim: a
// cached design is served at least 10× faster than the cold search that
// produced it. The cold request runs a real coverage search (estimator
// build + greedy MC evaluation); the warm request is an LRU lookup.
func TestCachedDesignSpeedup(t *testing.T) {
	s := newTestServer(t, nil)
	const body = `{"n": 6, "metric": "coverage"}`

	coldStart := time.Now()
	w := postDesign(t, s, body)
	cold := time.Since(coldStart)
	if w.Code != http.StatusOK {
		t.Fatalf("cold: %d %s", w.Code, w.Body.String())
	}

	// Best warm latency over a few tries, to keep scheduler noise out of
	// the ratio; correctness (byte-identity) is asserted on each.
	warm := time.Hour
	for i := 0; i < 5; i++ {
		start := time.Now()
		w2 := postDesign(t, s, body)
		if d := time.Since(start); d < warm {
			warm = d
		}
		if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "hit" {
			t.Fatalf("warm %d: %d X-Cache=%q", i, w2.Code, w2.Header().Get("X-Cache"))
		}
		if !bytes.Equal(w2.Body.Bytes(), w.Body.Bytes()) {
			t.Fatal("warm body is not byte-identical to cold body")
		}
	}
	if cold < 10*warm {
		t.Errorf("cached design not ≥10× faster: cold=%v warm=%v", cold, warm)
	}
	t.Logf("cold=%v warm=%v (%.0f×)", cold, warm, float64(cold)/float64(warm))
}

// BenchmarkDesignCold measures the full search path (cache purged every
// iteration); BenchmarkDesignWarm measures the cache-hit path. Their
// ratio is the speedup the LRU buys.
func BenchmarkDesignCold(b *testing.B) {
	s := newTestServer(b, nil)
	const body = `{"n": 4}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Purge()
		w := postDesign(b, s, body)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d", w.Code)
		}
	}
}

func BenchmarkDesignWarm(b *testing.B) {
	s := newTestServer(b, nil)
	const body = `{"n": 4}`
	if w := postDesign(b, s, body); w.Code != http.StatusOK {
		b.Fatalf("prime: %d", w.Code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := postDesign(b, s, body)
		if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "hit" {
			b.Fatalf("status = %d X-Cache=%q", w.Code, w.Header().Get("X-Cache"))
		}
	}
}

// discardBody drains and closes a real HTTP response body.
func discardBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
