package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/jobs"
	"gcbench/internal/obs"
	"gcbench/internal/sweep"
)

// newJobsServer builds a Server with the async campaign API enabled.
// The manager's Execute defaults to the real sweep runner unless the
// mutate hook installs a test seam.
func newJobsServer(t testing.TB, jcfg jobs.Config, mutate func(*Config)) (*Server, *jobs.Manager) {
	t.Helper()
	if jcfg.Registry == nil {
		jcfg.Registry = obs.NewRegistry()
	}
	mgr := jobs.NewManager(jcfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	s := newTestServer(t, func(cfg *Config) {
		cfg.Jobs = mgr
		if mutate != nil {
			mutate(cfg)
		}
	})
	return s, mgr
}

func postCampaign(t testing.TB, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/api/campaigns", strings.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	s.Handler().ServeHTTP(w, r)
	return w
}

func decodeJob(t testing.TB, w *httptest.ResponseRecorder) jobs.Status {
	t.Helper()
	var resp struct {
		Job jobs.Status `json:"job"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding job envelope: %v\n%s", err, w.Body.String())
	}
	return resp.Job
}

// TestCampaignJobE2E drives the full async-campaign pipeline over a real
// HTTP server: submit a small PR campaign, follow its NDJSON event
// stream to completion, and verify the completed runs were hot-published
// into the live corpus — visible to /api/runs and usable by
// /api/ensemble/design without a restart, with the behavior space still
// max-normalized.
func TestCampaignJobE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) sweep campaign")
	}
	s, _ := newJobsServer(t, jobs.Config{}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := s.store.Snapshot()
	beforeRuns := before.OKCount()

	resp, err := http.Post(ts.URL+"/api/campaigns", "application/json",
		strings.NewReader(`{"profile":"quick","algorithms":["PR"],"label":"e2e"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := func() (map[string]any, error) {
		defer resp.Body.Close()
		var m map[string]any
		return m, json.NewDecoder(resp.Body).Decode(&m)
	}()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /api/campaigns = %d: %v", resp.StatusCode, body)
	}
	jobID := body["job"].(map[string]any)["id"].(string)

	// Follow the event stream to the terminal state.
	stream, err := http.Get(ts.URL + "/api/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("event stream Content-Type = %q", ct)
	}
	var progressEvents, publishedVersion int
	var terminal string
	sc := bufio.NewScanner(stream.Body)
	deadline := time.After(2 * time.Minute)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
stream:
	for {
		select {
		case line, open := <-lines:
			if !open {
				break stream
			}
			var e jobs.Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("non-JSON NDJSON line %q: %v", line, err)
			}
			switch e.Type {
			case "progress":
				progressEvents++
			case "published":
				publishedVersion = int(e.CorpusVersion)
			case "state":
				if e.State.Terminal() {
					terminal = string(e.State)
				}
			}
		case <-deadline:
			t.Fatal("event stream did not terminate within 2 minutes")
		}
	}
	if terminal != "ok" {
		t.Fatalf("campaign finished %q, want ok", terminal)
	}
	if progressEvents == 0 {
		t.Fatal("stream delivered no progress events")
	}
	if publishedVersion != int(before.Version)+1 {
		t.Fatalf("published corpus version %d, want %d", publishedVersion, before.Version+1)
	}

	// The corpus grew in place: more ok runs, new version, and the
	// max-normalization invariant still holds for every point.
	after := s.store.Snapshot()
	if after.Version != before.Version+1 {
		t.Fatalf("store version %d, want %d", after.Version, before.Version+1)
	}
	if after.OKCount() <= beforeRuns {
		t.Fatalf("ok runs %d after publish, want > %d", after.OKCount(), beforeRuns)
	}
	for _, space := range []*behavior.Space{after.Space, after.Pool} {
		for i, p := range space.Points {
			for d := 0; d < behavior.Dims; d++ {
				if p[d] > 1.0 {
					t.Fatalf("renormalization violated: point %d dim %d = %v > 1", i, d, p[d])
				}
			}
		}
	}

	// /api/runs reflects the new corpus without restart...
	var runsResp struct {
		CorpusVersion int64 `json:"corpusVersion"`
		Count         int   `json:"count"`
	}
	rr, err := http.Get(ts.URL + "/api/runs")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(rr.Body).Decode(&runsResp)
	rr.Body.Close()
	if runsResp.CorpusVersion != after.Version || runsResp.Count != len(after.Records) {
		t.Fatalf("/api/runs sees version %d count %d, want %d/%d",
			runsResp.CorpusVersion, runsResp.Count, after.Version, len(after.Records))
	}

	// ...and so does ensemble design.
	dr, err := http.Post(ts.URL+"/api/ensemble/design", "application/json",
		strings.NewReader(`{"metric":"spread","n":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var design struct {
		CorpusVersion int64 `json:"corpusVersion"`
	}
	json.NewDecoder(dr.Body).Decode(&design)
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK || design.CorpusVersion != after.Version {
		t.Fatalf("design after publish: status %d corpusVersion %d, want 200/%d",
			dr.StatusCode, design.CorpusVersion, after.Version)
	}

	// The job survives as queryable history.
	var jobResp struct {
		Job jobs.Status `json:"job"`
	}
	jr, _ := http.Get(ts.URL + "/api/jobs/" + jobID)
	json.NewDecoder(jr.Body).Decode(&jobResp)
	jr.Body.Close()
	if jobResp.Job.State != jobs.StateOK || jobResp.Job.CorpusVersion != after.Version {
		t.Fatalf("final job status: %+v", jobResp.Job)
	}
}

// blockingExecute parks campaigns until release is closed, honouring the
// jobs context like the real runner.
func blockingExecute(release <-chan struct{}) jobs.ExecuteFunc {
	return func(ctx context.Context, specs []sweep.Spec, cfg sweep.Config) (*sweep.CampaignResult, error) {
		select {
		case <-release:
			res := &sweep.CampaignResult{Completed: len(specs)}
			for _, sp := range specs {
				res.Results = append(res.Results, sweep.RunResult{Spec: sp, Status: behavior.StatusOK})
			}
			return res, nil
		case <-ctx.Done():
			return &sweep.CampaignResult{Cancelled: len(specs)}, ctx.Err()
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{}, nil)
	for _, tc := range []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"prfile":"quick"}`},
		{"bad profile", `{"profile":"gigantic"}`},
		{"bad algorithm", `{"algorithms":["PAGERANKZ"]}`},
		{"empty plan", `{"profile":"quick","algorithms":["PR"],"sizes":["1e9"]}`},
		{"negative retries", `{"retries":-1}`},
	} {
		w := postCampaign(t, s, tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if code := decodeError(t, w); code != "invalid_request" {
			t.Errorf("%s: error code %q", tc.name, code)
		}
	}
}

func TestCampaignQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, _ := newJobsServer(t, jobs.Config{
		MaxRunning: 1, QueueDepth: 1, Execute: blockingExecute(release),
	}, nil)

	body := `{"profile":"quick","algorithms":["PR"]}`
	if w := postCampaign(t, s, body); w.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", w.Code, w.Body.String())
	}
	if w := postCampaign(t, s, body); w.Code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", w.Code, w.Body.String())
	}
	w := postCampaign(t, s, body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429 (%s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if code := decodeError(t, w); code != "queue_full" {
		t.Errorf("error code %q, want queue_full", code)
	}
}

func TestJobEndpointsUnknownID(t *testing.T) {
	s, _ := newJobsServer(t, jobs.Config{}, nil)
	if w := get(t, s, "/api/jobs/j999"); w.Code != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d", w.Code)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/api/jobs/j999", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d", w.Code)
	}
}

func TestJobCancelViaHTTP(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, mgr := newJobsServer(t, jobs.Config{
		MaxRunning: 1, Execute: blockingExecute(release),
	}, nil)

	running := decodeJob(t, postCampaign(t, s, `{"profile":"quick","algorithms":["PR"]}`))
	queued := decodeJob(t, postCampaign(t, s, `{"profile":"quick","algorithms":["CC"]}`))
	if queued.QueuePosition != 1 {
		t.Fatalf("second job queue position %d, want 1", queued.QueuePosition)
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/api/jobs/"+queued.ID, nil))
	if w.Code != http.StatusAccepted {
		t.Fatalf("DELETE queued job: %d %s", w.Code, w.Body.String())
	}
	j, _ := mgr.Get(queued.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := j.Wait(ctx); err != nil || st != jobs.StateCancelled {
		t.Fatalf("queued job after DELETE: state %s err %v", st, err)
	}

	// A second DELETE conflicts.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/api/jobs/"+queued.ID, nil))
	if w.Code != http.StatusConflict {
		t.Fatalf("second DELETE: %d, want 409", w.Code)
	}
	if code := decodeError(t, w); code != "already_terminal" {
		t.Errorf("error code %q", code)
	}
	_ = running
}

// TestJobEventsHeartbeatAndDisconnect exercises the NDJSON stream over a
// real connection: an idle running job produces heartbeat lines, and a
// client disconnect detaches the watcher promptly.
func TestJobEventsHeartbeatAndDisconnect(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, mgr := newJobsServer(t, jobs.Config{Execute: blockingExecute(release)}, func(cfg *Config) {
		cfg.JobsHeartbeat = 20 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := decodeJob(t, postCampaign(t, s, `{"profile":"quick","algorithms":["PR"]}`))
	job, _ := mgr.Get(st.ID)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	heartbeats := 0
	for sc.Scan() && heartbeats < 2 {
		var e jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Type == "heartbeat" {
			heartbeats++
		}
	}
	if heartbeats < 2 {
		t.Fatalf("saw %d heartbeats before stream ended", heartbeats)
	}

	// Disconnect: the server-side watcher must detach.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for job.Watchers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d watchers still attached after client disconnect", job.Watchers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobEventsStreamEndsOnCompletion verifies the NDJSON response
// terminates by itself once the job reaches a terminal state.
func TestJobEventsStreamEndsOnCompletion(t *testing.T) {
	release := make(chan struct{})
	s, _ := newJobsServer(t, jobs.Config{Execute: blockingExecute(release)}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := decodeJob(t, postCampaign(t, s, `{"profile":"quick","algorithms":["PR"]}`))
	resp, err := http.Get(ts.URL + "/api/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(release) // let the campaign finish while the stream is attached

	done := make(chan string, 1)
	go func() {
		var last string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			last = sc.Text()
		}
		done <- last
	}()
	select {
	case last := <-done:
		var e jobs.Event
		if err := json.Unmarshal([]byte(last), &e); err != nil {
			t.Fatalf("last line %q: %v", last, err)
		}
		if e.Type != "state" || !e.State.Terminal() {
			t.Fatalf("stream ended on %+v, want terminal state event", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate after job completion")
	}
}

func TestStatuszCountsJobs(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, mgr := newJobsServer(t, jobs.Config{MaxRunning: 1, Execute: blockingExecute(release)}, nil)
	first := decodeJob(t, postCampaign(t, s, `{"profile":"quick","algorithms":["PR"]}`))
	postCampaign(t, s, `{"profile":"quick","algorithms":["CC"]}`)

	// Submission returns before the manager's goroutine flips the first
	// job to running; wait for the transition before sampling /statusz.
	j, _ := mgr.Get(first.ID)
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != jobs.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}

	w := get(t, s, "/statusz")
	var st map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	jobsAny, ok := st["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("statusz has no jobs section: %s", w.Body.String())
	}
	if fmt.Sprint(jobsAny["running"]) != "1" || fmt.Sprint(jobsAny["queued"]) != "1" {
		t.Fatalf("statusz jobs = %v, want 1 running / 1 queued", jobsAny)
	}
}
