package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/jobs"
	"gcbench/internal/model"
	"gcbench/internal/obs/otrace"
	"gcbench/internal/sweep"
)

// campaignRequest is the POST /api/campaigns body: a campaign plan
// (profile × optional restrictions) plus the resilient-runner knobs.
type campaignRequest struct {
	// Profile scales the plan: "quick", "standard" (default) or "large".
	Profile string `json:"profile"`
	// Seed selects the campaign's graph streams (default 42, the CLI's).
	Seed uint64 `json:"seed"`
	// Label is echoed in job status listings.
	Label string `json:"label"`
	// Algorithms/Sizes/Alphas restrict the plan to matching specs
	// (empty = no restriction), so a client can submit a one-algorithm
	// smoke campaign without paying for the full Table 2 grid.
	Algorithms []string  `json:"algorithms"`
	Sizes      []string  `json:"sizes"`
	Alphas     []float64 `json:"alphas"`
	// Models expands the plan across execution models (empty = GAS only,
	// the pre-model-axis behavior). Each model contributes the plan
	// restricted to the algorithms it implements.
	Models []string `json:"models"`
	// Parallel/Workers are the sweep.Config parallelism knobs (0 = auto).
	Parallel int `json:"parallel"`
	Workers  int `json:"workers"`
	// TimeoutSeconds is the per-run wall-clock budget (0 = unlimited).
	TimeoutSeconds float64 `json:"timeoutSeconds"`
	// Retries is the extra-attempt budget per failed or timed-out run.
	Retries int `json:"retries"`
}

// buildSpecs validates the request and materializes its campaign plan.
func (req *campaignRequest) buildSpecs() ([]sweep.Spec, error) {
	if req.Profile == "" {
		req.Profile = string(sweep.ProfileStandard)
	}
	if req.Seed == 0 {
		req.Seed = 42
	}
	if req.TimeoutSeconds < 0 {
		return nil, errInvalidf("timeoutSeconds must be ≥ 0, got %g", req.TimeoutSeconds)
	}
	if req.Retries < 0 {
		return nil, errInvalidf("retries must be ≥ 0, got %d", req.Retries)
	}
	for i, a := range req.Algorithms {
		name, err := algorithms.Parse(a)
		if err != nil {
			return nil, errInvalidf("algorithms: %v", err)
		}
		req.Algorithms[i] = string(name)
	}
	models := make([]model.Name, 0, len(req.Models))
	for i, m := range req.Models {
		name, err := model.Parse(m)
		if err != nil {
			return nil, errInvalidf("models: %v", err)
		}
		req.Models[i] = string(name)
		models = append(models, name)
	}
	plan, err := sweep.BuildPlanModels(sweep.Profile(req.Profile), req.Seed, models)
	if err != nil {
		return nil, errInvalidf("%v", err)
	}
	specs := plan[:0]
	for _, s := range plan {
		if len(req.Algorithms) > 0 && !containsStr(req.Algorithms, string(s.Algorithm)) {
			continue
		}
		if len(req.Sizes) > 0 && !containsStr(req.Sizes, s.SizeLabel) {
			continue
		}
		if len(req.Alphas) > 0 && !containsAlpha(req.Alphas, s.Alpha) {
			continue
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return nil, errInvalidf("no campaign specs match the given algorithm/size/alpha/model restrictions")
	}
	return specs, nil
}

func containsStr(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

func containsAlpha(set []float64, v float64) bool {
	for _, a := range set {
		if a == v || (v-a) < 1e-9 && (a-v) < 1e-9 {
			return true
		}
	}
	return false
}

// handleSubmitCampaign serves POST /api/campaigns: validated spec →
// queued job, 202 with the job's status, or 429 when the manager's
// queue is full (backpressure, mirroring the design worker pool).
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "decoding body: %v", err)
		return
	}
	specs, err := req.buildSpecs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	label := req.Label
	if label == "" {
		label = fmt.Sprintf("campaign profile=%s seed=%d (%d specs)", req.Profile, req.Seed, len(specs))
	}
	job, err := s.cfg.Jobs.Submit(jobs.Request{
		Specs: specs,
		Label: label,
		Span:  otrace.FromContext(r.Context()),
		Config: sweep.Config{
			Parallel: req.Parallel,
			Workers:  req.Workers,
			Timeout:  time.Duration(req.TimeoutSeconds * float64(time.Second)),
			Retries:  req.Retries,
		},
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterJitter(5))
		writeError(w, http.StatusTooManyRequests, "queue_full",
			"campaign queue is full; retry later or cancel a queued job")
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "job manager is shutting down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": s.cfg.Jobs.StatusOf(job)})
}

// handleJobs serves GET /api/jobs: every tracked job in submission order.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	list := s.cfg.Jobs.List()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "jobs": list})
}

// jobByID resolves the {id} path value, writing the 404 envelope itself.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	job, ok := s.cfg.Jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job with id %q (finished jobs are eventually GC'd)", id)
	}
	return job, ok
}

// handleJob serves GET /api/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": s.cfg.Jobs.StatusOf(job)})
}

// handleJobCancel serves DELETE /api/jobs/{id}: cooperative cancellation.
// Queued jobs are terminal immediately; running ones stop at their next
// engine iteration barriers and finalize asynchronously — poll the job
// (or watch its events) for the terminal state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	if job.State().Terminal() {
		writeError(w, http.StatusConflict, "already_terminal",
			"job %s already finished with state %q", job.ID(), job.State())
		return
	}
	if err := s.cfg.Jobs.Cancel(job.ID()); err != nil {
		writeError(w, http.StatusInternalServerError, "cancel_failed", "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": s.cfg.Jobs.StatusOf(job)})
}

// handleJobEvents serves GET /api/jobs/{id}/events: the job's progress
// stream as NDJSON — one JSON event per line, past events replayed
// first, then live ones as they happen, with heartbeat lines every
// JobsHeartbeat of silence so intermediaries keep the connection open.
// The stream ends after the terminal state event, or when the client
// disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	writeEvent := func(e jobs.Event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		_ = rc.Flush()
		return true
	}

	heartbeat := time.NewTicker(s.cfg.JobsHeartbeat)
	defer heartbeat.Stop()
	events := job.Watch(r.Context())
	for {
		select {
		case e, open := <-events:
			if !open {
				return
			}
			if !writeEvent(e) {
				return
			}
			heartbeat.Reset(s.cfg.JobsHeartbeat)
		case <-heartbeat.C:
			if !writeEvent(jobs.Event{Type: "heartbeat", JobID: job.ID(), Time: time.Now().UTC()}) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// publishRuns is the jobs.Manager publish sink: append the completed
// job's measured runs to the live corpus (which renormalizes the
// behavior space corpus-wide, preserving the ≤ 1.0 max-normalization
// invariant).
//
// Single-store mode purges the design cache — keys embed the scalar
// corpus version, so the purge is a memory release, not a correctness
// requirement. Cluster mode deliberately does not purge: the append
// republishes only the shards that own the new records, cache keys
// embed the shard version vector (designs) or the owning shard's
// version plus the normalization epoch (record fragments), so entries
// built from unchanged shards keep serving and superseded keys age out
// of the LRU.
func (s *Server) publishRuns(jobID string, runs []*behavior.Run) (int64, error) {
	if s.cluster != nil {
		view, err := s.cluster.Append(context.Background(), runs, "job "+jobID)
		if err != nil {
			return 0, err
		}
		s.mPublishes.Inc()
		return view.Epoch(), nil
	}
	snap, err := s.store.Append(runs, "job "+jobID)
	if err != nil {
		return 0, err
	}
	s.cache.Purge()
	s.mPublishes.Inc()
	return snap.Version, nil
}
