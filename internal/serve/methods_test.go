package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"gcbench/internal/jobs"
	"gcbench/internal/obs"
)

// TestGoldenMethodFallback pins the wrong-method and unknown-path
// behavior of every /api/* route: each case's status line, Allow header
// and JSON error envelope are compared against a golden file, so a
// routing change that silently downgrades the envelopes to net/http's
// bare text errors (or loses an Allow method) surfaces as a diff.
// Regenerate deliberately with:
//
//	go test ./internal/serve/ -run TestGoldenMethodFallback -update
func TestGoldenMethodFallback(t *testing.T) {
	mgr := jobs.NewManager(jobs.Config{Registry: obs.NewRegistry()})
	s := newTestServer(t, func(cfg *Config) { cfg.Jobs = mgr })
	cases := []struct {
		method, path string
	}{
		{http.MethodPut, "/api/runs"},
		{http.MethodDelete, "/api/ensemble/design"},
		{http.MethodGet, "/api/corpus/reload"},
		{http.MethodPost, "/api/behavior/somekey"},
		{http.MethodGet, "/api/campaigns"},
		{http.MethodPut, "/api/jobs"},
		{http.MethodPost, "/api/jobs/j1"},
		{http.MethodPost, "/api/jobs/j1/events"},
		{http.MethodGet, "/api/nope"},
		{http.MethodPost, "/api/jobs/j1/nope"},
	}
	var got bytes.Buffer
	for _, c := range cases {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(c.method, c.path, nil))
		fmt.Fprintf(&got, "%s %s -> %d", c.method, c.path, w.Code)
		if allow := w.Header().Get("Allow"); allow != "" {
			fmt.Fprintf(&got, " Allow: %s", allow)
		}
		fmt.Fprintf(&got, "\n%s\n", w.Body.String())

		// Every fallback response must carry the structured envelope.
		if ct := w.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s %s: Content-Type %q", c.method, c.path, ct)
		}
		decodeError(t, w)
	}

	goldenPath := filepath.Join("testdata", "method_fallback.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("method fallback diverged from %s;\nre-run with -update if the change is intended.\ngot:\n%s",
			goldenPath, got.Bytes())
	}
}

// TestMethodFallbackWithoutJobs ensures the job routes are genuinely
// absent (404, not 405) when the server runs without a job manager.
func TestMethodFallbackWithoutJobs(t *testing.T) {
	s := newTestServer(t, nil)
	for _, path := range []string{"/api/campaigns", "/api/jobs", "/api/jobs/j1"} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusNotFound {
			t.Errorf("GET %s without -jobs: status %d, want 404", path, w.Code)
		}
		if code := decodeError(t, w); code != "not_found" {
			t.Errorf("GET %s: error code %q", path, code)
		}
	}
}
