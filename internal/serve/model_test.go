package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"gcbench/internal/algorithms"
	"gcbench/internal/corpus"
	"gcbench/internal/model"
	"gcbench/internal/obs"
	"gcbench/internal/sweep"
)

var (
	mixedOnce sync.Once
	mixedSnap *corpus.Snapshot
	mixedErr  error
)

// mixedModelStore sweeps one tiny campaign under all four execution
// models and serves the resulting mixed corpus. Built once per test
// binary — the runs are deterministic (fixed specs, fixed seed).
func mixedModelStore(t testing.TB) *corpus.Store {
	t.Helper()
	mixedOnce.Do(func() {
		var specs []sweep.Spec
		for _, alg := range []algorithms.Name{algorithms.CC, algorithms.SSSP, algorithms.PR} {
			base := sweep.Spec{
				Algorithm: alg, NumEdges: 400, Alpha: 2.2, SizeLabel: "4e2", Seed: 5,
			}
			for _, n := range model.AllNames() {
				impl, err := model.ForName(n)
				if err != nil {
					mixedErr = err
					return
				}
				if !impl.Supports(alg) {
					continue
				}
				s := base
				s.Model = model.Name(model.Tag(n))
				specs = append(specs, s)
			}
		}
		res, err := sweep.ExecuteCampaign(context.Background(), specs, sweep.Config{Parallel: 2, Workers: 1})
		if err != nil {
			mixedErr = err
			return
		}
		mixedSnap, mixedErr = corpus.NewSnapshotFromRuns(res.Runs, "mixed-model-test")
	})
	if mixedErr != nil {
		t.Fatalf("building mixed-model corpus: %v", mixedErr)
	}
	return corpus.NewStore(mixedSnap)
}

// newMixedServer serves the mixed four-model corpus.
func newMixedServer(t testing.TB) *Server {
	t.Helper()
	s, err := New(Config{
		Store:    mixedModelStore(t),
		Samples:  50_000,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunsModelFilter(t *testing.T) {
	s := newMixedServer(t)
	var resp struct {
		Count int `json:"count"`
		Runs  []struct {
			Key   string `json:"key"`
			Model string `json:"model"`
		} `json:"runs"`
	}

	// Every model appears in the mixed corpus and filters exactly.
	for _, m := range []string{"gas", "pregel", "xstream", "graphcentric"} {
		w := get(t, s, "/api/runs?model="+m)
		if w.Code != http.StatusOK {
			t.Fatalf("model=%s: status %d: %s", m, w.Code, w.Body.String())
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Count == 0 {
			t.Fatalf("model=%s matched no runs", m)
		}
		for _, r := range resp.Runs {
			eff := r.Model
			if eff == "" {
				eff = "gas"
			}
			if eff != m {
				t.Errorf("model=%s leaked run %s (model %q)", m, r.Key, r.Model)
			}
		}
	}

	// Comma lists compose like the other filters.
	w := get(t, s, "/api/runs?model=pregel,xstream&algorithm=CC")
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 {
		t.Fatalf("pregel,xstream CC count = %d, want 2", resp.Count)
	}

	// Unknown model names are a structured 400, mirroring status.
	w = get(t, s, "/api/runs?model=giraph")
	if w.Code != http.StatusBadRequest || decodeError(t, w) != "invalid_request" {
		t.Fatalf("unknown model: %d %s", w.Code, w.Body.String())
	}
}

// TestRunsModelFilterOnGASCorpus: on a pre-model-axis corpus the gas
// filter selects everything and the others select nothing — with 200s,
// not errors, so model-matrix tooling can probe any deployment.
func TestRunsModelFilterOnGASCorpus(t *testing.T) {
	s := newTestServer(t, nil)
	all := get(t, s, "/api/runs")
	gas := get(t, s, "/api/runs?model=gas")
	if gas.Code != http.StatusOK {
		t.Fatalf("model=gas: %d", gas.Code)
	}
	var allResp, gasResp struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(all.Body.Bytes(), &allResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gas.Body.Bytes(), &gasResp); err != nil {
		t.Fatal(err)
	}
	if gasResp.Count != allResp.Count || gasResp.Count == 0 {
		t.Fatalf("model=gas count %d, unfiltered %d", gasResp.Count, allResp.Count)
	}
	w := get(t, s, "/api/runs?model=pregel")
	var resp struct {
		Count int `json:"count"`
	}
	if w.Code != http.StatusOK {
		t.Fatalf("model=pregel on GAS corpus: %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 0 {
		t.Fatalf("pregel matched %d runs on a GAS-only corpus", resp.Count)
	}
}

func TestPredictModelParam(t *testing.T) {
	s := newMixedServer(t)
	type predResp struct {
		Raw   []float64      `json:"raw"`
		Query map[string]any `json:"query"`
	}
	decode := func(path string) predResp {
		w := get(t, s, path)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, w.Code, w.Body.String())
		}
		var r predResp
		if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	gas := decode("/api/predict?algorithm=CC&edges=300&alpha=2.2&model=gas")
	pre := decode("/api/predict?algorithm=CC&edges=300&alpha=2.2&model=pregel")
	if gas.Query["model"] != "gas" || pre.Query["model"] != "pregel" {
		t.Fatalf("query echo lacks the model: %v / %v", gas.Query, pre.Query)
	}
	same := true
	for d := range gas.Raw {
		if gas.Raw[d] != pre.Raw[d] {
			same = false
		}
	}
	if same {
		t.Error("gas and pregel predictions identical; per-model restriction not applied")
	}
	// Bad model → 400; a model with no runs in this corpus → 503 no_corpus.
	w := get(t, s, "/api/predict?algorithm=CC&edges=300&model=giraph")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad model: %d", w.Code)
	}
	s2 := newTestServer(t, nil) // GAS-only corpus
	w = get(t, s2, "/api/predict?algorithm=PR&edges=1000&alpha=2.1&model=xstream")
	if w.Code != http.StatusServiceUnavailable || decodeError(t, w) != "no_corpus" {
		t.Fatalf("predict for absent model: %d %s", w.Code, w.Body.String())
	}
}

// TestPredictWithoutModelUnchanged: the no-model predict body on a
// GAS-only corpus must not mention models at all (byte-compat with
// pre-model-axis clients is pinned by the golden tests; this guards the
// query echo specifically).
func TestPredictWithoutModelUnchanged(t *testing.T) {
	s := newTestServer(t, nil)
	w := get(t, s, "/api/predict?algorithm=PR&edges=500000&alpha=2.5")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if bytes.Contains(w.Body.Bytes(), []byte("model")) {
		t.Fatalf("no-model predict response mentions model: %s", w.Body.String())
	}
}

// TestDesignOverMixedCorpus is the acceptance criterion: ensemble design
// over a four-model corpus selects records from at least two distinct
// models — the behavior space genuinely spans engines, and the pool
// model restriction narrows it.
func TestDesignOverMixedCorpus(t *testing.T) {
	s := newMixedServer(t)
	w := postDesign(t, s, `{"n":6}`)
	if w.Code != http.StatusOK {
		t.Fatalf("design over mixed corpus: %d %s", w.Code, w.Body.String())
	}
	var resp struct {
		Members []struct {
			Key   string `json:"key"`
			Model string `json:"model"`
		} `json:"members"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Members) != 6 {
		t.Fatalf("design returned %d members, want 6", len(resp.Members))
	}
	models := map[string]bool{}
	for _, m := range resp.Members {
		eff := m.Model
		if eff == "" {
			eff = "gas"
		}
		models[eff] = true
	}
	if len(models) < 2 {
		t.Fatalf("design selected a single model %v; the mixed space adds no diversity", models)
	}

	// Restricting the pool to one model yields only that model.
	w = postDesign(t, s, `{"n":2,"pool":{"models":["pregel"]}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("pregel-pool design: %d %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Members {
		if m.Model != "pregel" {
			t.Errorf("pregel-restricted design selected %s (model %q)", m.Key, m.Model)
		}
	}

	// Distinct model pools must not collide in the design cache.
	wGas := postDesign(t, s, `{"n":2,"pool":{"models":["gas"]}}`)
	wPre := postDesign(t, s, `{"n":2,"pool":{"models":["pregel"]}}`)
	if bytes.Equal(wGas.Body.Bytes(), wPre.Body.Bytes()) {
		t.Fatal("gas-pool and pregel-pool designs returned identical bodies (cache key ignores models)")
	}
	// Unknown pool model is a structured 400.
	w = postDesign(t, s, `{"n":2,"pool":{"models":["giraph"]}}`)
	if w.Code != http.StatusBadRequest || decodeError(t, w) != "invalid_request" {
		t.Fatalf("bad pool model: %d %s", w.Code, w.Body.String())
	}
}

// TestCampaignModelsValidation: POST /api/campaigns accepts a models
// list and rejects unknown names before queueing anything.
func TestCampaignModelsValidation(t *testing.T) {
	req := campaignRequest{Profile: "quick", Models: []string{"pregel", "giraph"}}
	if _, err := req.buildSpecs(); err == nil {
		t.Fatal("unknown campaign model accepted")
	}
	req = campaignRequest{Profile: "quick", Algorithms: []string{"PR"}, Models: []string{"pregel", "xstream"}}
	specs, err := req.buildSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no specs for a PR pregel+xstream campaign")
	}
	for _, s := range specs {
		if m := s.EffectiveModel(); m != model.Pregel && m != model.XStream {
			t.Errorf("spec %s has model %s", s.ID(), m)
		}
	}
	// graphcentric does not implement PR: the combination is an explicit
	// no-match error, not an empty campaign.
	req = campaignRequest{Profile: "quick", Algorithms: []string{"PR"}, Models: []string{"graphcentric"}}
	if _, err := req.buildSpecs(); err == nil {
		t.Fatal("PR×graphcentric campaign accepted despite matching nothing")
	}
}
