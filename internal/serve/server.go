// Package serve is the ensemble-design-as-a-service layer: a JSON HTTP
// API over an atomically hot-reloadable behavior corpus
// (internal/corpus), engineered for concurrent load.
//
//	GET  /api/runs             filterable corpus listing
//	GET  /api/behavior/{key}   one run's full behavior record
//	POST /api/ensemble/design  design an ensemble under pool restrictions
//	GET  /api/ensemble/best    canonical best ensemble for (n, metric)
//	GET  /api/predict          §7 behavior interpolation
//	GET  /api/corpus           corpus snapshot metadata
//	POST /api/corpus/reload    hot-swap the corpus from its source file
//
// plus the shared observability surface (/metrics, /statusz, /healthz,
// /debug/pprof/*, /debug/vars) registered via obs.RegisterRoutes.
//
// Concurrency engineering, in request order: an LRU response cache keyed
// by canonicalized request (byte-identical replays), singleflight
// coalescing of identical in-flight design searches, a bounded worker
// pool whose admission queue sheds excess load with 429 + Retry-After,
// and per-request deadlines plumbed as context.Context into the ensemble
// search loops so an expired request aborts within one search step. The
// 10^6-sample Monte-Carlo coverage estimator is built once, lazily, and
// shared by every request. Shutdown drains in-flight requests.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gcbench/internal/corpus"
	"gcbench/internal/ensemble"
	"gcbench/internal/jobs"
	"gcbench/internal/obs"
	"gcbench/internal/obs/otrace"
	"gcbench/internal/shard"
)

// Config parameterizes a Server.
type Config struct {
	// Store supplies corpus snapshots. Exactly one of Store and Cluster
	// must be set.
	Store *corpus.Store
	// Cluster, when non-nil, serves the API from the sharded, replicated
	// corpus tier instead of a single store: listings and design
	// candidate selection scatter-gather across the shards, single-record
	// reads route to the key's owning shard, and completed campaign runs
	// hot-publish to only the shards that own them. Responses are
	// bit-identical to the Store path for any shard/replica count — the
	// cluster's merged view is rebuilt through the same internal/corpus
	// constructors (see internal/shard).
	Cluster *shard.Cluster
	// Samples sizes the shared Monte-Carlo coverage estimator
	// (default ensemble.DefaultSamples, the paper's 10^6).
	Samples int
	// SampleSeed seeds the estimator (default 0x5eed, matching the
	// figures pipeline so served scores agree with `gcbench figures`).
	SampleSeed uint64
	// Workers bounds concurrent ensemble searches (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds design requests waiting for a worker before the
	// server sheds load with 429 (default 64).
	QueueDepth int
	// RequestTimeout is the per-request deadline plumbed into search
	// loops (default 30s).
	RequestTimeout time.Duration
	// CacheSize bounds the design-response LRU (default 256 entries).
	CacheSize int
	// Registry receives the gcbench_serve_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Jobs, when non-nil, enables the asynchronous campaign API
	// (POST /api/campaigns, GET /api/jobs[/{id}[/events]],
	// DELETE /api/jobs/{id}) over this manager. The server installs
	// itself as the manager's publish sink: a completed job's runs are
	// appended to Store (renormalized corpus-wide) and the design cache
	// is purged, so new runs are servable without a restart.
	Jobs *jobs.Manager
	// JobsHeartbeat is the NDJSON event-stream keepalive interval
	// (default 15s).
	JobsHeartbeat time.Duration
	// Traces, when non-nil, enables request-scoped tracing: every request
	// parses/generates a W3C traceparent, opens a root span in this store,
	// and the span context propagates through singleflight, the worker
	// pool, the jobs manager and the sweep runner. The store is also
	// served at /debug/traces. Nil keeps the request path exactly as
	// untraced — behavior must be bit-identical either way.
	Traces *otrace.Store
	// AccessLog, when non-nil, receives one structured "wide event" per
	// request: trace id, route, status, cache disposition, queue wait,
	// bytes and duration on a single line.
	AccessLog *slog.Logger
}

// Server is the ensemble-design API server. Construct with New; the
// zero value is not usable.
type Server struct {
	cfg     Config
	store   *corpus.Store
	cluster *shard.Cluster
	reg     *obs.Registry

	covOnce sync.Once
	cov     *ensemble.CoverageEstimator
	covErr  error

	cache  *lruCache
	flight *flightGroup
	pool   *workPool

	handler http.Handler
	start   time.Time
	routes  []apiRoute

	mu      sync.Mutex
	httpSrv *http.Server
	ln      net.Listener

	draining atomic.Bool

	// searches counts underlying ensemble searches executed (not
	// coalesced, not cached) — the concurrency tests' ground truth.
	searches atomic.Int64
	// searchDelay is a test hook: extra latency inside the worker slot,
	// honoring cancellation, to make queue saturation reproducible.
	searchDelay time.Duration

	mRequests  *obs.Counter
	mLatency   *obs.Histogram
	mRouteLat  *obs.HistogramVec
	mDesignLat *obs.Histogram
	mCacheHit  *obs.Counter
	mCacheMiss *obs.Counter
	mCoalesced *obs.Counter
	mShed      *obs.Counter
	mErrors    *obs.Counter
	mSearches  *obs.Counter
	mReloads   *obs.Counter
	mPublishes *obs.Counter
}

// latencyBuckets spans sub-millisecond cache hits to multi-second cold
// coverage searches.
var latencyBuckets = []float64{.0005, .001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60}

// routeLatencyBuckets additionally resolves the microsecond regime —
// 5µs to 500µs — where cache hits and trivial GETs actually land; one
// coarse 500µs bucket would flatten a 10× cache-hit regression into
// nothing. The upper tail still covers cold coverage searches.
var routeLatencyBuckets = []float64{
	5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	.001, .005, .025, .1, .5, 1, 5, 30,
}

// New builds a Server from cfg, applying defaults. The coverage
// estimator is not built here — the first coverage-metric request pays
// that cost once, and spread-only deployments never do.
func New(cfg Config) (*Server, error) {
	if (cfg.Store == nil) == (cfg.Cluster == nil) {
		return nil, fmt.Errorf("serve: exactly one of Config.Store and Config.Cluster is required")
	}
	if cfg.Samples == 0 {
		cfg.Samples = ensemble.DefaultSamples
	}
	if cfg.SampleSeed == 0 {
		cfg.SampleSeed = 0x5eed
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.JobsHeartbeat == 0 {
		cfg.JobsHeartbeat = 15 * time.Second
	}
	reg := cfg.Registry
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		cluster: cfg.Cluster,
		reg:     reg,
		cache:   newLRUCache(cfg.CacheSize),
		flight:  newFlightGroup(),
		pool:    newWorkPool(cfg.Workers, cfg.QueueDepth, reg),
		start:   time.Now(),

		mRequests: reg.Counter("gcbench_serve_requests_total", "API requests served."),
		mLatency: reg.Histogram("gcbench_serve_request_seconds",
			"API request latency in seconds.", latencyBuckets),
		mRouteLat: reg.HistogramVec("gcbench_serve_route_seconds",
			"Request latency in seconds by route pattern and status class.",
			[]string{"route", "code"}, routeLatencyBuckets),
		mDesignLat: reg.Histogram("gcbench_serve_design_seconds",
			"Underlying ensemble-search latency in seconds (cache misses only).", latencyBuckets),
		mCacheHit:  reg.Counter("gcbench_serve_cache_hits_total", "Design responses served from the LRU cache."),
		mCacheMiss: reg.Counter("gcbench_serve_cache_misses_total", "Design requests that missed the LRU cache."),
		mCoalesced: reg.Counter("gcbench_serve_coalesced_total", "Design requests coalesced onto an identical in-flight search."),
		mShed:      reg.Counter("gcbench_serve_shed_total", "Design requests shed with 429 because the queue was full."),
		mErrors:    reg.Counter("gcbench_serve_errors_total", "API responses with a 5xx status."),
		mSearches:  reg.Counter("gcbench_serve_searches_total", "Underlying ensemble searches executed."),
		mReloads:   reg.Counter("gcbench_serve_corpus_reloads_total", "Corpus hot-reloads."),
		mPublishes: reg.Counter("gcbench_serve_job_publishes_total", "Completed jobs whose runs were appended to the live corpus."),
	}

	mux := http.NewServeMux()
	s.api(mux, http.MethodGet, "/api/runs", s.handleRuns)
	s.api(mux, http.MethodGet, "/api/behavior/{key}", s.handleBehavior)
	s.api(mux, http.MethodPost, "/api/ensemble/design", s.handleDesign)
	s.api(mux, http.MethodGet, "/api/ensemble/best", s.handleBest)
	s.api(mux, http.MethodGet, "/api/predict", s.handlePredict)
	s.api(mux, http.MethodGet, "/api/corpus", s.handleCorpusInfo)
	s.api(mux, http.MethodPost, "/api/corpus/reload", s.handleReload)
	if cfg.Jobs != nil {
		s.api(mux, http.MethodPost, "/api/campaigns", s.handleSubmitCampaign)
		s.api(mux, http.MethodGet, "/api/jobs", s.handleJobs)
		s.api(mux, http.MethodGet, "/api/jobs/{id}", s.handleJob)
		s.api(mux, http.MethodDelete, "/api/jobs/{id}", s.handleJobCancel)
		s.api(mux, http.MethodGet, "/api/jobs/{id}/events", s.handleJobEvents)
		cfg.Jobs.SetPublish(s.publishRuns)
	}
	// Anything else under /api/ is either a wrong-method hit on a real
	// route (405 + Allow) or an unknown path (404), both with the same
	// structured JSON error envelope as every other API failure.
	mux.HandleFunc("/api/", s.handleAPIFallback)
	obs.RegisterRoutes(mux, obs.ServerOptions{
		Registry: reg,
		Status:   func() any { return s.Status() },
		Ready:    s.readiness,
		Traces:   cfg.Traces,
	})
	s.handler = s.instrument(mux)
	return s, nil
}

// corpusView returns the server's current global corpus state: the
// store's snapshot with a nil view in single-store mode, or the shard
// cluster's merged snapshot plus the view it belongs to. Handlers load
// it once and use it for the whole request, so a concurrent publish
// never gives one request two corpus versions. A nil snapshot means
// nothing is published yet (a cluster before Load).
func (s *Server) corpusView() (*corpus.Snapshot, *shard.View) {
	if s.cluster != nil {
		v := s.cluster.View()
		if v == nil {
			return nil, nil
		}
		return v.Merged, v
	}
	return s.store.Snapshot(), nil
}

// versionTag renders the corpus identity that prefixes every cache key:
// the single store's scalar version, or the cluster's full shard
// version vector — so a publish to one shard leaves cache entries built
// from every unchanged shard's data addressable, while any entry whose
// inputs could have changed gets a fresh key.
func (s *Server) versionTag(snap *corpus.Snapshot, view *shard.View) string {
	if view != nil {
		return "vv" + view.VVString()
	}
	return fmt.Sprintf("v%d", snap.Version)
}

// readiness backs /readyz. A single-store server is ready once its
// store has a snapshot; a cluster server is ready only when every shard
// has published at least one corpus version — before that, scattered
// queries would fail on the unpublished shards, so the probe keeps
// traffic away instead of letting it 5xx.
func (s *Server) readiness() (bool, any) {
	if s.cluster != nil {
		ready, infos := s.cluster.Ready(context.Background())
		return ready, map[string]any{"shards": infos}
	}
	snap := s.store.Snapshot()
	if snap == nil {
		return false, nil
	}
	return true, map[string]any{"corpusVersion": snap.Version}
}

// estimator returns the shared coverage estimator, building it on first
// use (one Monte-Carlo sample pool for the whole process lifetime).
func (s *Server) estimator() (*ensemble.CoverageEstimator, error) {
	s.covOnce.Do(func() {
		s.cov, s.covErr = ensemble.NewCoverageEstimator(s.cfg.Samples, s.cfg.SampleSeed)
	})
	return s.cov, s.covErr
}

// Handler returns the server's full HTTP handler (API + observability
// routes), usable with httptest or a caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// statusRecorder captures the response status and byte count for
// metrics, the access log and the root span.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush for the NDJSON event streams.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps the mux with request accounting, the per-request
// deadline every downstream search loop inherits, and — when tracing is
// enabled — the request's root span plus one wide-event access-log line.
// Job event streams are exempt from the deadline: they live until the
// job ends or the client disconnects, not until an arbitrary timeout.
//
// Tracing and logging only ever observe the request; with Traces and
// AccessLog nil the handler chain behaves bit-identically to the
// uninstrumented server.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if !isEventStream(r) {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		route := s.routeLabel(r)
		var (
			ri   *reqInfo
			tr   *otrace.Trace
			root *otrace.Span
		)
		if s.cfg.Traces != nil || s.cfg.AccessLog != nil {
			ctx, ri = withReqInfo(ctx)
		}
		if s.cfg.Traces != nil {
			// Honor an inbound W3C traceparent so the request joins its
			// caller's trace; a missing or malformed header starts a fresh
			// one. The remote parent id is recorded on the root span without
			// pretending the remote span is locally known.
			tid, parent, _, err := otrace.ParseTraceparent(r.Header.Get("traceparent"))
			if err != nil {
				tid, parent = otrace.TraceID{}, otrace.SpanID{}
			}
			tr, root = s.cfg.Traces.StartTrace(r.Method+" "+route, "server", tid, parent,
				otrace.String("route", route),
				otrace.String("method", r.Method),
				otrace.String("path", r.URL.Path))
			ctx = otrace.ContextWithSpan(ctx, root)
			// Echo the request's trace identity so clients can fetch
			// /debug/traces/{trace-id} for exactly this request.
			w.Header().Set("traceparent", root.Traceparent())
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		dur := time.Since(begin)

		s.mRequests.Inc()
		s.mLatency.Observe(dur.Seconds())
		s.mRouteLat.With(route, statusClass(rec.status)).Observe(dur.Seconds())
		if rec.status >= 500 {
			s.mErrors.Inc()
		}

		cacheTag := ri.cacheTag()
		var queueWait time.Duration
		if ri != nil {
			queueWait = time.Duration(ri.queueWait.Load())
		}
		if root != nil {
			root.SetAttr("status", rec.status)
			root.SetAttr("bytes", rec.bytes)
			if cacheTag != "" {
				root.SetAttr("cache", cacheTag)
			}
			if queueWait > 0 {
				root.SetAttr("queueWaitMs", float64(queueWait.Microseconds())/1000)
			}
			if rec.status >= 500 {
				root.Fail(fmt.Sprintf("HTTP %d", rec.status))
			} else if rec.status == http.StatusTooManyRequests {
				// Shed requests are exactly the traces worth keeping when
				// debugging saturation; protect them from tail eviction.
				root.SetAttr("shed", true)
				tr.Mark()
			}
			root.End()
		}
		if s.cfg.AccessLog != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", dur),
				slog.String("remote", r.RemoteAddr),
			}
			if root != nil {
				attrs = append(attrs, slog.String("trace_id", root.TraceID().String()))
			}
			if cacheTag != "" {
				attrs = append(attrs, slog.String("cache", cacheTag))
			}
			if queueWait > 0 {
				attrs = append(attrs, slog.Duration("queue_wait", queueWait))
			}
			s.cfg.AccessLog.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
		}
	})
}

// Status is the /statusz payload: a cheap point-in-time snapshot of the
// serving state.
func (s *Server) Status() map[string]any {
	snap, view := s.corpusView()
	st := map[string]any{
		"service":       "gcbench-serve",
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"draining":      s.draining.Load(),
		"cacheEntries":  s.cache.Len(),
		"designPending": s.pool.Pending(),
		"workers":       s.cfg.Workers,
		"queueDepth":    s.cfg.QueueDepth,
		"searches":      s.searches.Load(),
	}
	if snap != nil {
		st["corpusVersion"] = snap.Version
		st["corpusSource"] = snap.Source
		st["records"] = len(snap.Records)
		st["okRuns"] = snap.OKCount()
		st["poolSize"] = snap.PoolSize()
	}
	if s.cluster != nil {
		sh := map[string]any{
			"count":    s.cluster.Shards(),
			"replicas": s.cluster.Replicas(),
		}
		if view != nil {
			sh["versionVector"] = view.VVString()
			sh["normEpoch"] = view.NormEpoch
		}
		st["shards"] = sh
	}
	if s.cfg.Jobs != nil {
		byState := map[jobs.State]int{}
		for _, js := range s.cfg.Jobs.List() {
			byState[js.State]++
		}
		st["jobs"] = byState
	}
	return st
}

// Start binds addr (":0" picks a free port) and serves until Shutdown.
// It returns once the listener is bound, so Addr is immediately usable.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.ln, s.httpSrv = ln, srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops accepting connections and drains in-flight requests —
// including design searches holding worker slots — until they finish or
// ctx expires. Safe to call without a prior Start (no-op).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Close stops the server immediately without draining.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Searches returns how many underlying ensemble searches have executed —
// exposed for tests asserting singleflight and cache behavior.
func (s *Server) Searches() int64 { return s.searches.Load() }

// apiError is the structured error body every non-2xx API response
// carries.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError emits a structured JSON error with the given status.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: apiErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeJSON emits v as indented JSON (indented so golden files and curl
// output stay human-readable).
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding_failed", "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

// jsonSafe clamps NaN/Inf to JSON-encodable values (coverage is +Inf in
// the degenerate all-samples-on-members case; JSON has no Inf literal).
func jsonSafe(f float64) float64 {
	switch {
	case math.IsNaN(f):
		return 0
	case math.IsInf(f, 1):
		return math.MaxFloat64
	case math.IsInf(f, -1):
		return -math.MaxFloat64
	}
	return f
}
