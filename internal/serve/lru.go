package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity, mutex-guarded LRU cache from canonical
// request keys to marshaled response bodies. Values are the exact bytes
// written to the wire, so cache hits are byte-identical to the original
// response — a property the golden and concurrency tests assert.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key, promoting the entry to
// most-recently-used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least-recently-used entry when
// over capacity.
func (c *lruCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	el := c.ll.PushFront(&lruEntry{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (used on corpus reload; stale keys would age
// out anyway — their keys embed the corpus version — but purging returns
// the memory immediately).
func (c *lruCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}
