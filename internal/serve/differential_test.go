package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/obs"
	"gcbench/internal/shard"
)

// clusterOverStandard builds a serve.Server whose corpus is the standard
// snapshot partitioned across a shards×replicas cluster. The cluster
// gets its own record copy — NewSnapshotFromRecords assigns keys in
// place, and the differential tests publish to the three deployments
// independently.
func clusterOverStandard(t testing.TB, shards, replicas int) *Server {
	t.Helper()
	standardStore(t) // ensure stdSnap is loaded
	records := append([]corpus.Record(nil), stdSnap.Records...)
	snap, err := corpus.NewSnapshotFromRecords(records, stdSnap.Source)
	if err != nil {
		t.Fatal(err)
	}
	c, err := shard.New(shard.Options{Shards: shards, Replicas: replicas, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: c, Samples: 50_000, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// apiCall is one replayable request of the differential set.
type apiCall struct {
	name   string
	method string
	path   string
	body   string
}

func (c apiCall) issue(t testing.TB, s *Server) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	var r *http.Request
	if c.method == http.MethodPost && c.body != "" {
		r = httptest.NewRequest(c.method, c.path, strings.NewReader(c.body))
		r.Header.Set("Content-Type", "application/json")
	} else {
		r = httptest.NewRequest(c.method, c.path, nil)
	}
	s.Handler().ServeHTTP(w, r)
	return w
}

// differentialCalls is the request set the harness replays against every
// deployment shape: every read endpoint the bit-identity guarantee
// covers, across filters, methods and metrics.
func differentialCalls(t testing.TB) []apiCall {
	t.Helper()
	standardStore(t)
	calls := []apiCall{
		{name: "runs all", method: http.MethodGet, path: "/api/runs"},
		{name: "runs alg", method: http.MethodGet, path: "/api/runs?algorithm=PR"},
		{name: "runs multi", method: http.MethodGet, path: "/api/runs?algorithm=PR,CC&size=1e5"},
		{name: "runs status", method: http.MethodGet, path: "/api/runs?status=ok"},
		{name: "runs model gas", method: http.MethodGet, path: "/api/runs?model=gas"},
		{name: "runs model empty", method: http.MethodGet, path: "/api/runs?model=pregel"},
		{name: "predict", method: http.MethodGet, path: "/api/predict?algorithm=PR&edges=500000&alpha=2.1"},
		{name: "predict model", method: http.MethodGet, path: "/api/predict?algorithm=PR&edges=500000&alpha=2.1&model=gas"},
		{name: "predict 2", method: http.MethodGet, path: "/api/predict?algorithm=CC&edges=123456&alpha=1.9"},
		{name: "best spread", method: http.MethodGet, path: "/api/ensemble/best?n=5"},
		{name: "best coverage", method: http.MethodGet, path: "/api/ensemble/best?n=4&metric=coverage"},
		{name: "design greedy", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":3}`},
		{name: "design coverage", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":3,"metric":"coverage"}`},
		{name: "design exchange", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":4,"method":"exchange"}`},
		{name: "design anneal", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":4,"method":"anneal","seed":7}`},
		{name: "design beam", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":3,"method":"beam"}`},
		{name: "design pooled", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":2,"pool":{"algorithms":["PR","CC"]}}`},
		{name: "design model pool", method: http.MethodPost, path: "/api/ensemble/design", body: `{"n":2,"pool":{"models":["gas"]}}`},
	}
	// Single-record reads: a spread of record keys plus the first pool
	// member (which carries a poolBehavior fragment). Each is requested
	// twice so the cluster's fragment-cache hit path is byte-compared too.
	keys := []string{stdSnap.Records[0].Key, stdSnap.Records[len(stdSnap.Records)/2].Key}
	if stdSnap.PoolSize() > 0 {
		keys = append(keys, stdSnap.PoolRecord(0).Key)
	}
	for _, k := range keys {
		for pass := 1; pass <= 2; pass++ {
			calls = append(calls, apiCall{
				name:   fmt.Sprintf("behavior %s pass %d", k, pass),
				method: http.MethodGet,
				path:   "/api/behavior/" + k,
			})
		}
	}
	return calls
}

// assertIdentical replays every call against the reference and candidate
// servers and requires byte-identical bodies.
func assertIdentical(t *testing.T, phase string, ref, cand *Server, candName string, calls []apiCall) {
	t.Helper()
	for _, c := range calls {
		wr, wc := c.issue(t, ref), c.issue(t, cand)
		if wr.Code != http.StatusOK {
			t.Fatalf("%s: %s: reference status %d: %s", phase, c.name, wr.Code, wr.Body.String())
		}
		if wc.Code != wr.Code {
			t.Errorf("%s: %s: %s status %d, reference %d", phase, c.name, candName, wc.Code, wr.Code)
			continue
		}
		if !bytes.Equal(wr.Body.Bytes(), wc.Body.Bytes()) {
			t.Errorf("%s: %s: %s body diverges from single-store\nreference: %s\n%s: %s",
				phase, c.name, candName, firstDiff(wr.Body.Bytes(), wc.Body.Bytes()), candName, wc.Body.String()[:min(400, wc.Body.Len())])
		}
	}
}

// firstDiff renders the context around the first differing byte.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(0, i-80)
			return fmt.Sprintf("first divergence at byte %d: ...%s...", i, a[lo:min(len(a), i+80)])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d bytes", len(a), len(b))
}

// dominatedRuns builds a deterministic batch of appendable measured runs
// whose raw vectors stay strictly inside the corpus maxima, so a publish
// moves the version vector without moving the normalization regime.
func dominatedRuns(t testing.TB, n int) []*behavior.Run {
	t.Helper()
	standardStore(t)
	runs := make([]*behavior.Run, 0, n)
	for i := 0; i < n; i++ {
		var raw behavior.Vector
		for d := range raw {
			raw[d] = stdSnap.Pool.Max[d] * (0.05 + 0.01*float64(i))
		}
		runs = append(runs, &behavior.Run{
			Algorithm: "PR", Domain: "diff-test", SizeLabel: fmt.Sprintf("7e%d", i+1),
			Alpha: 2.05, NumEdges: int64(1000 * (i + 1)), Iterations: 4, Converged: true,
			ActiveFraction: []float64{1, 0.6, 0.3, 0.1},
			Raw:            raw,
		})
	}
	// One model-tagged run rides along: the append path, record keying and
	// model-filtered reads must behave identically across deployments.
	var raw behavior.Vector
	for d := range raw {
		raw[d] = stdSnap.Pool.Max[d] * 0.04
	}
	runs = append(runs, &behavior.Run{
		Algorithm: "PR", Model: "pregel", Domain: "diff-test", SizeLabel: "7m",
		Alpha: 2.05, NumEdges: 9000, Iterations: 4, Converged: true,
		ActiveFraction: []float64{1, 0.6, 0.3, 0.1},
		Raw:            raw,
	})
	return runs
}

// TestDifferentialShardedServe is the PR's central guarantee: the same
// request set answered by a single-store server, a 1-shard cluster and a
// 4-shard × 2-replica cluster produces byte-identical JSON — before a
// hot publish, while concurrent readers race one, and after it settles.
func TestDifferentialShardedServe(t *testing.T) {
	single := newTestServer(t, nil)
	one := clusterOverStandard(t, 1, 1)
	four := clusterOverStandard(t, 4, 2)
	calls := differentialCalls(t)

	assertIdentical(t, "initial", single, one, "cluster(1x1)", calls)
	assertIdentical(t, "initial", single, four, "cluster(4x2)", calls)

	// Hot publish under concurrent reads: hammer the 4-shard cluster's
	// read endpoints while the same run batch is appended to all three
	// deployments through the jobs publish sink. The race detector
	// validates the lock-free read path; every in-flight response must
	// still be a complete, consistent snapshot answer (HTTP 200).
	readCalls := []apiCall{
		{name: "runs", method: http.MethodGet, path: "/api/runs?algorithm=PR"},
		{name: "behavior", method: http.MethodGet, path: "/api/behavior/" + stdSnap.Records[0].Key},
		{name: "predict", method: http.MethodGet, path: "/api/predict?algorithm=PR&edges=500000&alpha=2.1"},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := readCalls[(w+i)%len(readCalls)]
				if rec := c.issue(t, four); rec.Code != http.StatusOK {
					t.Errorf("during publish: %s returned %d: %s", c.name, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	runs := dominatedRuns(t, 3)
	for _, s := range []*Server{single, one, four} {
		if _, err := s.publishRuns("diff-job", runs); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Settled: replay the full set again; the appended records are now
	// part of every deployment's corpus and the answers must re-converge
	// byte for byte (corpusVersion advanced identically to 2 everywhere).
	assertIdentical(t, "after publish", single, one, "cluster(1x1)", calls)
	assertIdentical(t, "after publish", single, four, "cluster(4x2)", calls)

	// The appended records themselves serve identically, via their owning
	// shards.
	post := []apiCall{
		{
			name:   "appended behavior",
			method: http.MethodGet,
			path:   "/api/behavior/" + corpus.KeyOf("PR", "7e1", 2.05),
		},
		{
			name:   "appended model behavior",
			method: http.MethodGet,
			path:   "/api/behavior/" + corpus.KeyOfModel("pregel", "PR", "7m", 2.05),
		},
		{name: "appended model runs", method: http.MethodGet, path: "/api/runs?model=pregel"},
		{name: "appended model predict", method: http.MethodGet, path: "/api/predict?algorithm=PR&edges=9000&alpha=2.05&model=pregel"},
	}
	assertIdentical(t, "after publish", single, four, "cluster(4x2)", post)
}
