package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/ensemble"
	"gcbench/internal/model"
	"gcbench/internal/obs/otrace"
)

// errInvalid tags client mistakes so the HTTP layer maps them to 400
// with a structured body instead of a 500.
type errInvalid struct{ msg string }

func (e errInvalid) Error() string { return e.msg }

func errInvalidf(format string, args ...any) error {
	return errInvalid{msg: fmt.Sprintf(format, args...)}
}

// designRequest is the POST /api/ensemble/design body.
type designRequest struct {
	// N is the ensemble size to design.
	N int `json:"n"`
	// Metric is "spread" (default) or "coverage".
	Metric string `json:"metric"`
	// Method is "greedy" (default), "exchange", "anneal" or "beam".
	Method string `json:"method"`
	// Pool restricts the candidate pool (empty = the full §5.2 pool).
	Pool designPool `json:"pool"`
	// Seed selects the annealing proposal stream (default 1; ignored by
	// deterministic methods).
	Seed uint64 `json:"seed"`
	// Steps overrides the annealing step budget (0 = method default;
	// ignored by other methods).
	Steps int `json:"steps"`
}

// designPool mirrors the paper's §5.2–5.4 pool restrictions, extended
// with the execution-model axis (empty = design across all models).
type designPool struct {
	Algorithms []string  `json:"algorithms"`
	Sizes      []string  `json:"sizes"`
	Alphas     []float64 `json:"alphas"`
	Models     []string  `json:"models"`
}

// normalize validates the request, applies defaults, and sorts/dedups
// the pool restrictions so equivalent requests canonicalize identically.
func (req *designRequest) normalize() error {
	if req.N < 1 {
		return errInvalidf("n must be ≥ 1, got %d", req.N)
	}
	req.Metric = strings.ToLower(strings.TrimSpace(req.Metric))
	if req.Metric == "" {
		req.Metric = "spread"
	}
	if req.Metric != "spread" && req.Metric != "coverage" {
		return errInvalidf("metric must be \"spread\" or \"coverage\", got %q", req.Metric)
	}
	req.Method = strings.ToLower(strings.TrimSpace(req.Method))
	if req.Method == "" {
		req.Method = "greedy"
	}
	switch req.Method {
	case "greedy", "exchange", "anneal", "beam":
	default:
		return errInvalidf("method must be one of greedy, exchange, anneal, beam; got %q", req.Method)
	}
	if req.Method == "beam" && req.Metric == "coverage" {
		return errInvalidf("method \"beam\" supports metric \"spread\" only (coverage scoring of every beam partial is a full Monte-Carlo pass)")
	}
	if req.Method == "anneal" && req.Metric == "spread" && req.N < 2 {
		return errInvalidf("annealed spread needs n ≥ 2, got %d", req.N)
	}
	if req.Method != "anneal" {
		// Seed and Steps only influence annealing; zero them so the
		// canonical cache key treats them as absent.
		req.Seed, req.Steps = 0, 0
	} else if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Steps < 0 {
		return errInvalidf("steps must be ≥ 0, got %d", req.Steps)
	}
	for i, a := range req.Pool.Algorithms {
		name, err := algorithms.Parse(a)
		if err != nil {
			return errInvalidf("pool.algorithms: %v", err)
		}
		req.Pool.Algorithms[i] = string(name)
	}
	req.Pool.Algorithms = dedupStrings(req.Pool.Algorithms)
	for i, sz := range req.Pool.Sizes {
		req.Pool.Sizes[i] = strings.TrimSpace(sz)
	}
	req.Pool.Sizes = dedupStrings(req.Pool.Sizes)
	sort.Float64s(req.Pool.Alphas)
	for i, m := range req.Pool.Models {
		name, err := model.Parse(strings.TrimSpace(m))
		if err != nil {
			return errInvalidf("pool.models: %v", err)
		}
		req.Pool.Models[i] = string(name)
	}
	req.Pool.Models = dedupStrings(req.Pool.Models)
	return nil
}

func dedupStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// cacheKey renders the canonical request identity. The corpus version
// tag prefixes the key — the store's scalar version, or the cluster's
// shard version vector — so a publish naturally invalidates every
// cached design whose inputs could have changed without racing
// in-flight requests on the old snapshot.
func (req *designRequest) cacheKey(versionTag string) string {
	alphas := make([]string, len(req.Pool.Alphas))
	for i, a := range req.Pool.Alphas {
		alphas[i] = strconv.FormatFloat(a, 'g', -1, 64)
	}
	return fmt.Sprintf("%s|metric=%s|method=%s|n=%d|seed=%d|steps=%d|algs=%s|sizes=%s|alphas=%s|models=%s",
		versionTag, req.Metric, req.Method, req.N, req.Seed, req.Steps,
		strings.Join(req.Pool.Algorithms, ","),
		strings.Join(req.Pool.Sizes, ","),
		strings.Join(alphas, ","),
		strings.Join(req.Pool.Models, ","))
}

func (req *designRequest) filter() corpus.Filter {
	return corpus.Filter{
		Algorithms: req.Pool.Algorithms,
		Sizes:      req.Pool.Sizes,
		Alphas:     req.Pool.Alphas,
		Models:     req.Pool.Models,
	}
}

// designResponse is the (cached) design result body.
type designResponse struct {
	CorpusVersion int64        `json:"corpusVersion"`
	N             int          `json:"n"`
	Metric        string       `json:"metric"`
	Method        string       `json:"method"`
	PoolSize      int          `json:"poolSize"`
	Score         float64      `json:"score"`
	Members       []runSummary `json:"members"`
}

// handleDesign serves POST /api/ensemble/design.
func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	var req designRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "decoding body: %v", err)
		return
	}
	s.serveDesign(w, r, &req)
}

// handleBest serves GET /api/ensemble/best: the canonical best ensemble
// of size n under a metric over the unrestricted pool — a design request
// with defaults, sharing the same cache and worker pool.
func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := designRequest{N: 10, Metric: q.Get("metric"), Method: q.Get("method")}
	if nStr := q.Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", "n %q is not an integer", nStr)
			return
		}
		req.N = n
	}
	s.serveDesign(w, r, &req)
}

// serveDesign is the shared cache → singleflight → worker-pool → search
// path behind both design endpoints. In cluster mode the candidate pool
// is assembled by scatter-gather — each shard contributes the matching
// pool members from its own partition, and the merge maps them back to
// the merged view's pool indices — before the search finalizes with the
// same scorers the single-store path uses.
func (s *Server) serveDesign(w http.ResponseWriter, r *http.Request, req *designRequest) {
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	snap, view, ok := s.currentCorpus(w)
	if !ok {
		return
	}
	var poolIdx []int
	if view != nil {
		seqs, err := s.cluster.Scatter(r.Context(), req.filter(), true)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "shard_unavailable", "%v", err)
			return
		}
		for _, seq := range clampSeqs(seqs, len(snap.Records)) {
			if pi := view.PoolIndexOfSeq(seq); pi >= 0 {
				poolIdx = append(poolIdx, pi)
			}
		}
	} else {
		poolIdx = snap.PoolSelect(req.filter())
	}
	if len(poolIdx) == 0 {
		writeError(w, http.StatusBadRequest, "empty_pool",
			"no measured graph-varying runs match the pool restriction")
		return
	}
	if req.N > len(poolIdx) {
		writeError(w, http.StatusBadRequest, "invalid_request",
			"n = %d exceeds the restricted pool's %d runs", req.N, len(poolIdx))
		return
	}

	key := req.cacheKey(s.versionTag(snap, view))
	if body, ok := s.cache.Get(key); ok {
		s.mCacheHit.Inc()
		reqInfoFrom(r.Context()).setCache("hit")
		s.writeDesignBody(w, body, "hit")
		return
	}
	s.mCacheMiss.Inc()

	ctx := r.Context()
	body, err, coalesced := s.flight.Do(ctx, key, func() ([]byte, error) {
		// Re-check the cache as the flight leader: a request that missed
		// the cache but reached the flight group just after the previous
		// leader unregistered would otherwise repeat the search. The
		// previous leader cached its result before unregistering, so this
		// read observes it.
		if body, ok := s.cache.Get(key); ok {
			return body, nil
		}
		return s.runDesign(ctx, snap, req, poolIdx, key)
	})
	if coalesced {
		s.mCoalesced.Inc()
	}
	if err != nil {
		s.writeDesignError(w, err)
		return
	}
	tag := "miss"
	if coalesced {
		tag = "coalesced"
	}
	reqInfoFrom(ctx).setCache(tag)
	s.writeDesignBody(w, body, tag)
}

func (s *Server) writeDesignBody(w http.ResponseWriter, body []byte, cacheTag string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Cache", cacheTag)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// retryAfterJitter renders a Retry-After value drawn uniformly from
// [base, 2*base] whole seconds. A constant Retry-After re-synchronizes
// every client a shed burst turned away, so the same thundering herd
// arrives again one constant interval later; the jitter spreads the
// retries across a window as wide as the base delay.
func retryAfterJitter(base int) string {
	return strconv.Itoa(base + rand.IntN(base+1))
}

func (s *Server) writeDesignError(w http.ResponseWriter, err error) {
	var inv errInvalid
	switch {
	case errors.Is(err, errSaturated):
		s.mShed.Inc()
		w.Header().Set("Retry-After", retryAfterJitter(1))
		writeError(w, http.StatusTooManyRequests, "saturated",
			"design queue is full; retry shortly")
	case errors.Is(err, context.DeadlineExceeded):
		// Jittered for the same herd-desynchronization reason as the 429
		// sites: every request sharing the expired deadline fails within
		// the same instant, and a constant hint would march them all back
		// in lockstep.
		w.Header().Set("Retry-After", retryAfterJitter(1))
		writeError(w, http.StatusServiceUnavailable, "deadline_exceeded",
			"design search exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		// The client has gone; the status is best-effort bookkeeping.
		writeError(w, http.StatusServiceUnavailable, "cancelled", "request cancelled")
	case errors.As(err, &inv):
		writeError(w, http.StatusBadRequest, "invalid_request", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "search_failed", "%v", err)
	}
}

// runDesign executes one underlying ensemble search inside a bounded
// worker slot and caches the marshaled response before returning, so a
// request arriving after singleflight unregisters the key still finds
// the result.
func (s *Server) runDesign(ctx context.Context, snap *corpus.Snapshot, req *designRequest, poolIdx []int, key string) (_ []byte, err error) {
	// The search span covers queue wait plus the search itself. With
	// tracing off (no span in ctx) StartSpan returns a nil span whose
	// methods no-op, so the untraced path is unchanged.
	ctx, sp := otrace.StartSpan(ctx, "ensemble search", "search",
		otrace.String("metric", req.Metric),
		otrace.String("method", req.Method),
		otrace.Int("n", req.N),
		otrace.Int("pool", len(poolIdx)))
	defer func() {
		if err != nil {
			sp.Fail(err.Error())
		}
		sp.End()
	}()
	if err := s.pool.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.pool.release()
	s.searches.Add(1)
	s.mSearches.Inc()
	begin := time.Now()
	defer func() { s.mDesignLat.Observe(time.Since(begin).Seconds()) }()

	if s.searchDelay > 0 {
		select {
		case <-time.After(s.searchDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	members, score, err := s.search(ctx, snap, req, poolIdx)
	if err != nil {
		return nil, err
	}

	resp := designResponse{
		CorpusVersion: snap.Version,
		N:             req.N,
		Metric:        req.Metric,
		Method:        req.Method,
		PoolSize:      len(poolIdx),
		Score:         jsonSafe(score),
	}
	resp.Members = make([]runSummary, 0, len(members))
	for _, pi := range members {
		rec := snap.PoolRecord(pi)
		if i, ok := snap.Lookup(rec.Key); ok {
			resp.Members = append(resp.Members, summarize(snap, i))
		}
	}
	body, err := json.MarshalIndent(resp, "", " ")
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	return body, nil
}

// search runs the requested method/metric combination over the
// restricted pool, honoring ctx, and returns the chosen pool indices
// plus the ensemble's score under the requested metric.
func (s *Server) search(ctx context.Context, snap *corpus.Snapshot, req *designRequest, poolIdx []int) ([]int, float64, error) {
	pts := snap.Pool.Points
	var members []int
	switch req.Metric {
	case "spread":
		var err error
		switch req.Method {
		case "greedy":
			sets, e := ensemble.BestSpreadGreedyCtx(ctx, pts, poolIdx, req.N)
			if e != nil {
				return nil, 0, e
			}
			members = sets[req.N]
		case "exchange":
			sets, e := ensemble.BestSpreadGreedyCtx(ctx, pts, poolIdx, req.N)
			if e != nil {
				return nil, 0, e
			}
			members, err = ensemble.ImproveSpreadExchangeCtx(ctx, pts, sets[req.N], poolIdx)
			if err != nil {
				return nil, 0, err
			}
		case "anneal":
			members, _, err = ensemble.AnnealSpreadCtx(ctx, pts, poolIdx, ensemble.AnnealOptions{
				Size: req.N, Steps: req.Steps, Seed: req.Seed,
			})
			if err != nil {
				return nil, 0, err
			}
		case "beam":
			tops, e := ensemble.TopEnsemblesCtx(ctx, ensemble.MetricSpread, pts, poolIdx, ensemble.TopKOptions{
				Size: req.N, K: 1,
			})
			if e != nil {
				return nil, 0, e
			}
			if len(tops) == 0 {
				return nil, 0, fmt.Errorf("beam search returned no ensemble")
			}
			members = tops[0].Members
		}
		return members, ensemble.SpreadOf(pts, members), nil

	case "coverage":
		cov, err := s.estimator()
		if err != nil {
			return nil, 0, err
		}
		switch req.Method {
		case "greedy":
			sets, e := ensemble.BestCoverageGreedyCtx(ctx, cov, pts, poolIdx, req.N)
			if e != nil {
				return nil, 0, e
			}
			members = sets[req.N]
		case "exchange":
			sets, e := ensemble.BestCoverageGreedyCtx(ctx, cov, pts, poolIdx, req.N)
			if e != nil {
				return nil, 0, e
			}
			members, err = ensemble.ImproveCoverageExchangeCtx(ctx, cov, pts, sets[req.N], poolIdx)
			if err != nil {
				return nil, 0, err
			}
		case "anneal":
			members, _, err = ensemble.AnnealCoverageCtx(ctx, cov, pts, poolIdx, ensemble.AnnealOptions{
				Size: req.N, Steps: req.Steps, Seed: req.Seed,
			})
			if err != nil {
				return nil, 0, err
			}
		}
		memberPts := make([]behavior.Vector, len(members))
		for i, m := range members {
			memberPts[i] = pts[m]
		}
		return members, cov.Coverage(memberPts), nil
	}
	return nil, 0, errInvalidf("unknown metric %q", req.Metric)
}
