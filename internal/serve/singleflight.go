package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller (the leader) runs fn, every concurrent
// duplicate waits for the leader's result. A minimal, dependency-free
// take on the x/sync singleflight pattern, specialized to byte payloads
// and context-aware waiting: a follower whose context expires stops
// waiting without cancelling the leader.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do executes fn once per concurrent set of callers sharing key.
// coalesced reports whether this caller waited on another's execution.
// The leader runs fn synchronously under its own context; followers
// select between the leader's completion and their own ctx.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, err error, coalesced bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	// Unregister before signalling completion: any caller arriving after
	// the delete re-reads the result cache (populated by fn before it
	// returns), so no search runs twice for a key that already finished.
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
