package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"gcbench/internal/obs"
)

// errSaturated is returned by workPool.acquire when the design queue is
// at capacity; the HTTP layer maps it to 429 + Retry-After. Shedding at
// admission keeps goroutine count and queue latency bounded no matter
// how hard clients push.
var errSaturated = errors.New("serve: design queue saturated")

// workPool bounds concurrent ensemble searches (the CPU-heavy part of
// the API) to a fixed worker count with a bounded admission queue.
// Requests beyond workers+queue are shed immediately rather than piling
// up goroutines behind the semaphore.
type workPool struct {
	sem      chan struct{}
	pending  atomic.Int64 // requests holding or waiting for a slot
	capacity int64        // workers + queue depth
	depth    *obs.Gauge
	inflight *obs.Gauge
}

func newWorkPool(workers, queueDepth int, reg *obs.Registry) *workPool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &workPool{
		sem:      make(chan struct{}, workers),
		capacity: int64(workers + queueDepth),
		depth: reg.Gauge("gcbench_serve_queue_depth",
			"Design requests holding or waiting for a search worker slot."),
		inflight: reg.Gauge("gcbench_serve_inflight_searches",
			"Ensemble searches currently executing."),
	}
}

// acquire admits the caller to the pool, blocking until a worker slot
// frees or ctx expires. Returns errSaturated without blocking when
// admission would exceed the pool's bounded queue.
func (p *workPool) acquire(ctx context.Context) error {
	if n := p.pending.Add(1); n > p.capacity {
		p.pending.Add(-1)
		return errSaturated
	}
	p.depth.Set(float64(p.pending.Load()))
	// Fast path: a free worker slot costs no clock read. Only a blocked
	// admission measures its queue wait for the request's wide event.
	select {
	case p.sem <- struct{}{}:
		p.inflight.Add(1)
		return nil
	default:
	}
	begin := time.Now()
	select {
	case p.sem <- struct{}{}:
		reqInfoFrom(ctx).addQueueWait(time.Since(begin))
		p.inflight.Add(1)
		return nil
	case <-ctx.Done():
		reqInfoFrom(ctx).addQueueWait(time.Since(begin))
		p.pending.Add(-1)
		p.depth.Set(float64(p.pending.Load()))
		return ctx.Err()
	}
}

// release returns the caller's worker slot.
func (p *workPool) release() {
	<-p.sem
	p.inflight.Add(-1)
	p.pending.Add(-1)
	p.depth.Set(float64(p.pending.Load()))
}

// Pending returns the number of admitted design requests (running plus
// queued) — the /statusz payload's live load signal.
func (p *workPool) Pending() int64 { return p.pending.Load() }
