package serve

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// reqInfo accumulates per-request facts the middleware cannot observe
// itself — cache disposition, worker-queue wait — so the wide-event
// access log and root span report them without threading return values
// through every handler. Handlers write, the middleware reads after
// ServeHTTP returns; queueWait is atomic because the singleflight leader
// may run on a different goroutine than the request that reads it.
type reqInfo struct {
	cache     atomic.Value // string: "hit" | "miss" | "coalesced"
	queueWait atomic.Int64 // nanoseconds spent waiting for a worker slot
}

func (ri *reqInfo) setCache(tag string) {
	if ri != nil {
		ri.cache.Store(tag)
	}
}

func (ri *reqInfo) cacheTag() string {
	if ri == nil {
		return ""
	}
	if v, ok := ri.cache.Load().(string); ok {
		return v
	}
	return ""
}

func (ri *reqInfo) addQueueWait(d time.Duration) {
	if ri != nil && d > 0 {
		ri.queueWait.Add(int64(d))
	}
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context) (context.Context, *reqInfo) {
	ri := &reqInfo{}
	return context.WithValue(ctx, reqInfoKey{}, ri), ri
}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// routeLabel maps a request to a bounded-cardinality route label: the
// registered API pattern when one matches (regardless of method, so 405s
// label with the route they hit), a fixed name for the observability
// surface, and "other" for everything else — never the raw path, which
// would let clients mint unbounded label values.
func (s *Server) routeLabel(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/api/") || path == "/api" {
		segs := strings.Split(strings.Trim(path, "/"), "/")
		for _, rt := range s.routes {
			if rt.matches(segs) {
				return rt.pattern
			}
		}
		return "/api/unknown"
	}
	switch path {
	case "/metrics", "/statusz", "/healthz", "/readyz":
		return path
	}
	if strings.HasPrefix(path, "/debug/") {
		return "/debug"
	}
	return "other"
}

// statusClass renders an HTTP status as its Prometheus-friendly class
// ("2xx", "4xx", ...), keeping the route histogram's code label at five
// values instead of one per status.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	case status >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}
