package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// Property: spread is invariant under member permutation.
func TestSpreadPermutationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		pts := make([]behavior.Vector, n)
		for i := range pts {
			for d := 0; d < behavior.Dims; d++ {
				pts[i][d] = r.Float64()
			}
		}
		s1 := Spread(pts)
		perm := r.Perm(n)
		shuffled := make([]behavior.Vector, n)
		for i, p := range perm {
			shuffled[i] = pts[p]
		}
		return math.Abs(s1-Spread(shuffled)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: uniformly scaling all coordinates scales spread linearly.
func TestSpreadScales(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		scale := 0.1 + r.Float64()
		a := make([]behavior.Vector, n)
		b := make([]behavior.Vector, n)
		for i := range a {
			for d := 0; d < behavior.Dims; d++ {
				a[i][d] = r.Float64()
				b[i][d] = a[i][d] * scale
			}
		}
		return math.Abs(Spread(b)-scale*Spread(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the behavior-space distance satisfies the metric axioms on
// random triples (symmetry, identity, triangle inequality).
func TestDistanceMetricAxioms(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var a, b, c behavior.Vector
		for d := 0; d < behavior.Dims; d++ {
			a[d], b[d], c[d] = r.Float64(), r.Float64(), r.Float64()
		}
		if behavior.Distance(a, a) != 0 {
			return false
		}
		if behavior.Distance(a, b) != behavior.Distance(b, a) {
			return false
		}
		return behavior.Distance(a, c) <= behavior.Distance(a, b)+behavior.Distance(b, c)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding any member never decreases coverage (min distances are
// pointwise monotone).
func TestCoverageMonotoneUnderAddition(t *testing.T) {
	cov, err := NewCoverageEstimator(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		pts := make([]behavior.Vector, n+1)
		for i := range pts {
			for d := 0; d < behavior.Dims; d++ {
				pts[i][d] = r.Float64()
			}
		}
		return cov.Coverage(pts) >= cov.Coverage(pts[:n])-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy coverage selection reproduces its reported members:
// re-evaluating the returned sets yields monotone coverage in k.
func TestGreedySetsAreNested(t *testing.T) {
	cov, err := NewCoverageEstimator(3000, 13)
	if err != nil {
		t.Fatal(err)
	}
	pool := randomPoolB(24, 17)
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sets := BestCoverageGreedy(cov, pool, idx, 6)
	for k := 2; k <= 6; k++ {
		prev := map[int]bool{}
		for _, m := range sets[k-1] {
			prev[m] = true
		}
		missing := 0
		for _, m := range sets[k-1] {
			found := false
			for _, m2 := range sets[k] {
				if m2 == m {
					found = true
					break
				}
			}
			if !found {
				missing++
			}
		}
		if missing != 0 {
			t.Fatalf("greedy set of size %d is not a superset of size %d", k, k-1)
		}
	}
}
