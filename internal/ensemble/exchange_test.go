package ensemble

import (
	"context"
	"math"
	"sort"
	"testing"

	"gcbench/internal/behavior"
)

// naiveSpreadExchange is the pre-optimization reference implementation:
// every candidate swap is scored with a full SpreadOf recomputation. Kept
// here as the oracle for the incremental version.
func naiveSpreadExchange(pool []behavior.Vector, members, candidates []int) []int {
	cur := append([]int(nil), members...)
	curSpread := SpreadOf(pool, cur)
	inSet := make(map[int]bool, len(cur))
	for _, m := range cur {
		inSet[m] = true
	}
	const maxPasses = 20
	for pass := 0; pass < maxPasses; pass++ {
		bestGain := 1e-12
		bestPos, bestCand := -1, -1
		for pos := range cur {
			for _, cand := range candidates {
				if inSet[cand] {
					continue
				}
				old := cur[pos]
				cur[pos] = cand
				s := SpreadOf(pool, cur)
				cur[pos] = old
				if gain := s - curSpread; gain > bestGain {
					bestGain, bestPos, bestCand = gain, pos, cand
				}
			}
		}
		if bestPos < 0 {
			break
		}
		delete(inSet, cur[bestPos])
		inSet[bestCand] = true
		curSpread += bestGain
		cur[bestPos] = bestCand
	}
	sort.Ints(cur)
	return cur
}

// TestSpreadExchangeMatchesNaive cross-checks the incremental exchange
// against the full-recomputation reference over a grid of pool shapes
// and seeds: the selected sets must agree, and the achieved spread must
// be at least the reference's (never a regression from the speedup).
func TestSpreadExchangeMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		n, k int
	}{
		{8, 2}, {12, 3}, {20, 4}, {20, 8}, {30, 5}, {40, 10},
	} {
		for seed := uint64(1); seed <= 8; seed++ {
			pool := randomPool(tc.n, seed*101)
			members := allIdx(tc.n)[:tc.k]
			candidates := allIdx(tc.n)

			want := naiveSpreadExchange(pool, members, candidates)
			got, err := ImproveSpreadExchangeCtx(context.Background(), pool, members, candidates)
			if err != nil {
				t.Fatalf("n=%d k=%d seed=%d: unexpected error: %v", tc.n, tc.k, seed, err)
			}

			wantSpread := SpreadOf(pool, want)
			gotSpread := SpreadOf(pool, got)
			if gotSpread < wantSpread-1e-9 {
				t.Errorf("n=%d k=%d seed=%d: incremental spread %v < naive %v",
					tc.n, tc.k, seed, gotSpread, wantSpread)
			}
			if math.Abs(gotSpread-wantSpread) > 1e-9 {
				t.Errorf("n=%d k=%d seed=%d: spread diverged: incremental %v, naive %v (sets %v vs %v)",
					tc.n, tc.k, seed, gotSpread, wantSpread, got, want)
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d seed=%d: size mismatch: %v vs %v", tc.n, tc.k, seed, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("n=%d k=%d seed=%d: sets differ: incremental %v, naive %v",
						tc.n, tc.k, seed, got, want)
					break
				}
			}
		}
	}
}

// TestSpreadExchangeSmallSets covers the degenerate sizes the incremental
// bookkeeping special-cases.
func TestSpreadExchangeSmallSets(t *testing.T) {
	pool := randomPool(10, 7)
	for _, members := range [][]int{nil, {3}} {
		got, err := ImproveSpreadExchangeCtx(context.Background(), pool, members, allIdx(10))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(members) {
			t.Fatalf("members %v: got %v, want same size", members, got)
		}
	}
	// A cancelled context must surface, not be swallowed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ImproveSpreadExchangeCtx(ctx, pool, []int{0, 1, 2}, allIdx(10)); err == nil {
		t.Fatal("expected context error from cancelled exchange")
	}
}

func benchmarkExchange(b *testing.B, n, k int, fn func(pool []behavior.Vector, members, candidates []int)) {
	pool := randomPool(n, 42)
	candidates := allIdx(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Start from the worst-case seed set (first k points) every
		// iteration so each run performs real exchange work.
		fn(pool, candidates[:k], candidates)
	}
}

func BenchmarkSpreadExchangeIncremental(b *testing.B) {
	benchmarkExchange(b, 120, 12, func(pool []behavior.Vector, members, candidates []int) {
		_, _ = ImproveSpreadExchangeCtx(context.Background(), pool, members, candidates)
	})
}

func BenchmarkSpreadExchangeNaive(b *testing.B) {
	benchmarkExchange(b, 120, 12, func(pool []behavior.Vector, members, candidates []int) {
		naiveSpreadExchange(pool, members, candidates)
	})
}
