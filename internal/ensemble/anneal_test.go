package ensemble

import (
	"gcbench/internal/behavior"
	"math"
	"testing"
)

func TestAnnealSpreadAtLeastGreedy(t *testing.T) {
	pool := randomPoolB(60, 21)
	idx := allIdx(60)
	greedySets := BestSpreadGreedy(pool, idx, 8)
	greedySpread := SpreadOf(pool, greedySets[8])
	members, annealSpread, err := AnnealSpread(pool, idx, AnnealOptions{Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 8 {
		t.Fatalf("ensemble size %d", len(members))
	}
	// Annealing is seeded with the greedy solution and keeps the best seen,
	// so it can never end below it.
	if annealSpread < greedySpread-1e-9 {
		t.Fatalf("anneal %v below greedy %v", annealSpread, greedySpread)
	}
	// Reported spread must match a recomputation.
	if got := SpreadOf(pool, members); math.Abs(got-annealSpread) > 1e-9 {
		t.Fatalf("reported spread %v, recomputed %v", annealSpread, got)
	}
	// Members must be distinct.
	seen := map[int]bool{}
	for _, m := range members {
		if seen[m] {
			t.Fatal("duplicate member")
		}
		seen[m] = true
	}
}

func TestAnnealSpreadMatchesExactOnSmallPool(t *testing.T) {
	pool := randomPoolB(14, 23)
	idx := allIdx(14)
	exact, err := BestSpreadExhaustive(pool, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := SpreadOf(pool, exact[4])
	_, got, err := AnnealSpread(pool, idx, AnnealOptions{Size: 4, Seed: 5, Steps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.98*want {
		t.Fatalf("anneal %v below 98%% of exact %v", got, want)
	}
}

func TestAnnealSpreadDeterministic(t *testing.T) {
	pool := randomPoolB(40, 25)
	idx := allIdx(40)
	a, sa, err := AnnealSpread(pool, idx, AnnealOptions{Size: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := AnnealSpread(pool, idx, AnnealOptions{Size: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same seed different spreads: %v vs %v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different members")
		}
	}
}

func TestAnnealSpreadErrors(t *testing.T) {
	pool := randomPoolB(5, 1)
	if _, _, err := AnnealSpread(pool, allIdx(5), AnnealOptions{Size: 1}); err == nil {
		t.Fatal("size 1 accepted")
	}
	if _, _, err := AnnealSpread(pool, allIdx(5), AnnealOptions{Size: 9}); err == nil {
		t.Fatal("oversize accepted")
	}
}

func TestAnnealCoverageAtLeastGreedy(t *testing.T) {
	cov := newCov(t, 5000)
	pool := randomPoolB(40, 27)
	idx := allIdx(40)
	greedySets := BestCoverageGreedy(cov, pool, idx, 5)
	pts := make([]int, len(greedySets[5]))
	copy(pts, greedySets[5])
	greedyCov := coverageOfIdx(cov, pool, pts)
	members, annealCov, err := AnnealCoverage(cov, pool, idx, AnnealOptions{Size: 5, Seed: 3, Steps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if annealCov < greedyCov-1e-9 {
		t.Fatalf("anneal coverage %v below greedy %v", annealCov, greedyCov)
	}
	if got := coverageOfIdx(cov, pool, members); math.Abs(got-annealCov) > 1e-9 {
		t.Fatalf("reported %v, recomputed %v", annealCov, got)
	}
}

func coverageOfIdx(cov *CoverageEstimator, pool []behavior.Vector, idx []int) float64 {
	pts := make([]behavior.Vector, len(idx))
	for i, j := range idx {
		pts[i] = pool[j]
	}
	return cov.Coverage(pts)
}

func TestAnnealCoverageErrors(t *testing.T) {
	pool := randomPoolB(5, 1)
	if _, _, err := AnnealCoverage(nil, pool, allIdx(5), AnnealOptions{Size: 2}); err == nil {
		t.Fatal("nil estimator accepted")
	}
	cov := newCov(t, 1000)
	if _, _, err := AnnealCoverage(cov, pool, allIdx(5), AnnealOptions{Size: 0}); err == nil {
		t.Fatal("size 0 accepted")
	}
}
