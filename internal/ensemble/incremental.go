package ensemble

import (
	"fmt"
	"math"
	"sync"

	"gcbench/internal/behavior"
)

// IncrementalCoverage maintains the coverage of one evolving ensemble
// against a CoverageEstimator's sample set, re-scoring only the dirty
// subset of samples when a member is swapped or added — the coverage
// analogue of ImproveSpreadExchangeCtx's delta-scoring. It caches, per
// sample, the distances to (and positions of) the nearest AND
// second-nearest members, and per grid cell the sequential sum and max
// of those distances. Because the second-nearest distance is exactly
// "the minimum over every position except the assigned one", removing
// the assigned member never forces a rescan during evaluation: the
// proposed minimum is min(minDist2, d(s, incoming)) for samples
// assigned to the removed position and min(minDist, d(s, incoming)) for
// everyone else — one distance computation per affected sample. A
// proposal therefore touches only:
//
//   - cells holding a sample assigned to the removed position (the
//     cached sum is invalid there); and
//   - cells whose bounding box lies closer to the incoming point than
//     the cell's max min-distance, where the new point may lower some
//     samples' minima.
//
// Every other cell keeps its cached sum. Totals accumulate per cell and
// then across cells in cell order — the same canonical summation
// coverageFromMin uses — and min-of-floats is an exact, order-free
// value, so Coverage, EvalSwap, and EvalAdd return results
// bit-identical to a fresh CoverageEstimator.Coverage over the same
// members (the property the differential tests in incremental_test.go
// pin).
//
// Commits are where rescans happen: a sample whose nearest or
// second-nearest was the outgoing member may need a fresh two-minima
// pass over the members to restore the cache invariant. Commit
// classification uses the per-cell second-distance counters and maxima
// (posCount2, cellMax2) so those cells are never skipped.
//
// The skip test is float-safe: boxDistance accumulates in the same
// order as behavior.Distance, and correctly-rounded operations are
// monotone, so the computed bound never exceeds the computed distance
// of any sample in the cell, and a skipped cell provably had nothing to
// improve.
//
// Eval* methods do not mutate; Swap/Add commit. The struct is not safe
// for concurrent use (it reuses internal scratch), matching the
// single-goroutine searches it serves; the internal fan-out over
// affected cells writes disjoint per-cell slots and stays deterministic.
type IncrementalCoverage struct {
	est     *CoverageEstimator
	members []behavior.Vector

	minDist  []float64 // per sample: distance to nearest member
	assign   []int32   // per sample: a member position achieving minDist (-1 if none)
	minDist2 []float64 // per sample: min distance over positions != assign (+Inf if < 2 members)
	assign2  []int32   // per sample: a position != assign achieving minDist2 (-1 if none)
	cellSum  []float64 // per cell: sequential sum of minDist over the cell
	cellMax  []float64 // per cell: max of minDist over the cell
	cellMax2 []float64 // per cell: max of minDist2 over the cell

	// posCount[c][pos] and posCount2[c][pos] count the cell's samples
	// whose nearest (resp. second-nearest) member is pos, so removal
	// dirtiness is a single lookup.
	posCount  [][]int32
	posCount2 [][]int32

	// Reusable scratch (the reason Eval* are single-goroutine).
	affected   []int // cell ids needing re-scoring this proposal
	newSum     []float64
	isAffected []bool
}

// NewIncrementalCoverage builds the cache for the given members. The
// members slice is copied. The estimator must come from
// NewCoverageEstimator (a zero-value estimator has no sample grid).
func NewIncrementalCoverage(est *CoverageEstimator, members []behavior.Vector) (*IncrementalCoverage, error) {
	if est == nil || est.numCells() == 0 {
		return nil, fmt.Errorf("ensemble: incremental coverage needs an estimator with samples")
	}
	nc := est.numCells()
	ic := &IncrementalCoverage{
		est:        est,
		members:    append([]behavior.Vector(nil), members...),
		minDist:    make([]float64, len(est.samples)),
		assign:     make([]int32, len(est.samples)),
		minDist2:   make([]float64, len(est.samples)),
		assign2:    make([]int32, len(est.samples)),
		cellSum:    make([]float64, nc),
		cellMax:    make([]float64, nc),
		cellMax2:   make([]float64, nc),
		posCount:   make([][]int32, nc),
		posCount2:  make([][]int32, nc),
		newSum:     make([]float64, nc),
		isAffected: make([]bool, nc),
	}
	for ci := 0; ci < nc; ci++ {
		ic.posCount[ci] = make([]int32, len(members))
		ic.posCount2[ci] = make([]int32, len(members))
	}
	ic.forEachCell(allCells(nc), ic.rescoreCell)
	return ic, nil
}

func allCells(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Members returns a copy of the current member set.
func (ic *IncrementalCoverage) Members() []behavior.Vector {
	return append([]behavior.Vector(nil), ic.members...)
}

// Len returns the current member count.
func (ic *IncrementalCoverage) Len() int { return len(ic.members) }

// Coverage returns the coverage of the current members, bit-identical
// to est.Coverage(ic.Members()).
func (ic *IncrementalCoverage) Coverage() float64 {
	if len(ic.members) == 0 {
		return 0
	}
	var sum float64
	for _, s := range ic.cellSum {
		sum += s
	}
	return ic.finish(sum)
}

func (ic *IncrementalCoverage) finish(sum float64) float64 {
	n := len(ic.est.samples)
	if n == 0 {
		return 0
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(n) / sum
}

// twoMins computes the nearest and second-nearest members of sample i
// from scratch.
func (ic *IncrementalCoverage) twoMins(i int) (m1 float64, a1 int32, m2 float64, a2 int32) {
	m1, a1 = math.Inf(1), -1
	m2, a2 = math.Inf(1), -1
	s := ic.est.samples[i]
	for p, m := range ic.members {
		d := behavior.Distance(s, m)
		if d < m1 {
			m2, a2 = m1, a1
			m1, a1 = d, int32(p)
		} else if d < m2 {
			m2, a2 = d, int32(p)
		}
	}
	return m1, a1, m2, a2
}

// rescoreCell recomputes every cache slot of one cell against the
// current member set, writing only that cell's slots — safe to run for
// disjoint cells concurrently.
func (ic *IncrementalCoverage) rescoreCell(ci int) {
	est := ic.est
	lo, hi := est.cellStart[ci], est.cellStart[ci+1]
	pc, pc2 := ic.posCount[ci], ic.posCount2[ci]
	for p := range pc {
		pc[p], pc2[p] = 0, 0
	}
	var sum float64
	cellMax, cellMax2 := math.Inf(-1), math.Inf(-1)
	for i := lo; i < hi; i++ {
		m1, a1, m2, a2 := ic.twoMins(i)
		ic.minDist[i], ic.assign[i] = m1, a1
		ic.minDist2[i], ic.assign2[i] = m2, a2
		if a1 >= 0 {
			pc[a1]++
		}
		if a2 >= 0 {
			pc2[a2]++
		}
		sum += m1
		if m1 > cellMax {
			cellMax = m1
		}
		if m2 > cellMax2 {
			cellMax2 = m2
		}
	}
	ic.cellSum[ci], ic.cellMax[ci], ic.cellMax2[ci] = sum, cellMax, cellMax2
}

// classify fills ic.affected for a proposal that removes position
// removed (-1 for pure adds) and introduces point p. Evaluation only
// needs cells where the cached sum could change (a sample assigned to
// the removed position, or p beating a nearest distance); a commit must
// additionally repair second-nearest caches, so it widens the net to
// cells where the removed position is any sample's second-nearest or p
// beats a second distance.
func (ic *IncrementalCoverage) classify(removed int, p behavior.Vector, commit bool) {
	est := ic.est
	ic.affected = ic.affected[:0]
	for ci := 0; ci < est.numCells(); ci++ {
		lo, hi := est.cellStart[ci], est.cellStart[ci+1]
		if lo == hi {
			continue
		}
		hit := removed >= 0 && ic.posCount[ci][removed] > 0
		if commit && !hit && removed >= 0 {
			hit = ic.posCount2[ci][removed] > 0
		}
		if !hit {
			bound := ic.cellMax[ci]
			if commit {
				bound = ic.cellMax2[ci]
			}
			if est.boxDistance(ci, p) >= bound {
				continue // p cannot lower any tracked distance here
			}
		}
		ic.isAffected[ci] = true
		ic.affected = append(ic.affected, ci)
	}
}

// forEachCell runs fn over the given cells, fanning out across the
// estimator's workers when the cells hold enough samples to amortize
// goroutine startup. fn must write only its own cell's slots.
func (ic *IncrementalCoverage) forEachCell(cells []int, fn func(ci int)) {
	est := ic.est
	w := est.workers
	if w > len(cells) {
		w = len(cells)
	}
	if w <= 1 || len(est.samples) < 50_000 {
		for _, ci := range cells {
			fn(ci)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(cells) + w - 1) / w
	for lo := 0; lo < len(cells); lo += chunk {
		hi := lo + chunk
		if hi > len(cells) {
			hi = len(cells)
		}
		wg.Add(1)
		go func(cells []int) {
			defer wg.Done()
			for _, ci := range cells {
				fn(ci)
			}
		}(cells[lo:hi])
	}
	wg.Wait()
}

// evalCells computes, without mutating, each affected cell's would-be
// sum into ic.newSum: one distance computation per sample. removed is
// the position the proposal vacates (-1 for adds) and p its incoming
// point. For a sample assigned to the removed position, the minimum
// over the remaining members is exactly its cached second distance.
func (ic *IncrementalCoverage) evalCells(removed int, p behavior.Vector) {
	est := ic.est
	rm := int32(removed)
	ic.forEachCell(ic.affected, func(ci int) {
		lo, hi := est.cellStart[ci], est.cellStart[ci+1]
		var sum float64
		for i := lo; i < hi; i++ {
			v := ic.minDist[i]
			if rm >= 0 && ic.assign[i] == rm {
				v = ic.minDist2[i]
			}
			if d := behavior.Distance(est.samples[i], p); d < v {
				v = d
			}
			sum += v
		}
		ic.newSum[ci] = sum
	})
}

// total sums cached and proposed cell sums across all cells in cell
// order — the canonical accumulation shared with coverageFromMin.
func (ic *IncrementalCoverage) total() float64 {
	var sum float64
	for ci, s := range ic.cellSum {
		if ic.isAffected[ci] {
			s = ic.newSum[ci]
		}
		sum += s
	}
	return sum
}

// reset clears the per-proposal scratch marks.
func (ic *IncrementalCoverage) reset() {
	for _, ci := range ic.affected {
		ic.isAffected[ci] = false
	}
}

// EvalSwap returns the coverage the ensemble would have with
// members[pos] replaced by p, bit-identical to a fresh
// est.Coverage(swapped members). No state is mutated.
func (ic *IncrementalCoverage) EvalSwap(pos int, p behavior.Vector) float64 {
	ic.classify(pos, p, false)
	ic.evalCells(pos, p)
	sum := ic.total()
	ic.reset()
	return ic.finish(sum)
}

// Swap commits: members[pos] = p, re-scoring only the affected cells,
// and returns the new coverage.
func (ic *IncrementalCoverage) Swap(pos int, p behavior.Vector) float64 {
	ic.classify(pos, p, true)
	ic.members[pos] = p
	ic.commitCells(pos, true, p)
	ic.reset()
	return ic.Coverage()
}

// EvalAdd returns the coverage the ensemble would have with p appended,
// bit-identical to a fresh est.Coverage(members+p). No state is mutated.
func (ic *IncrementalCoverage) EvalAdd(p behavior.Vector) float64 {
	ic.classify(-1, p, false)
	ic.evalCells(-1, p)
	sum := ic.total()
	ic.reset()
	return ic.finish(sum)
}

// Add commits: appends p as a new member, re-scoring only the affected
// cells, and returns the new coverage.
func (ic *IncrementalCoverage) Add(p behavior.Vector) float64 {
	ic.classify(-1, p, true)
	pos := len(ic.members)
	ic.members = append(ic.members, p)
	for ci := range ic.posCount {
		ic.posCount[ci] = append(ic.posCount[ci], 0)
		ic.posCount2[ci] = append(ic.posCount2[ci], 0)
	}
	ic.commitCells(pos, false, p)
	ic.reset()
	return ic.Coverage()
}

// commitCells updates the caches of every affected cell for the
// committed member set, where incoming is the position now holding the
// new point p (for swaps that position is also the removed one). Most
// samples update in O(1) from the cached pair; only a sample whose
// nearest or second-nearest was the outgoing member — and whose new
// pair the cache cannot determine — pays a fresh two-minima rescan.
func (ic *IncrementalCoverage) commitCells(incoming int, swapped bool, p behavior.Vector) {
	est := ic.est
	in := int32(incoming)
	ic.forEachCell(ic.affected, func(ci int) {
		lo, hi := est.cellStart[ci], est.cellStart[ci+1]
		pc, pc2 := ic.posCount[ci], ic.posCount2[ci]
		var sum float64
		cellMax, cellMax2 := math.Inf(-1), math.Inf(-1)
		for i := lo; i < hi; i++ {
			m1, a1 := ic.minDist[i], ic.assign[i]
			m2, a2 := ic.minDist2[i], ic.assign2[i]
			d := behavior.Distance(est.samples[i], p)
			switch {
			case swapped && a1 == in:
				// Nearest member was replaced: the min over the others is
				// exactly m2. If p beats it, p is the new nearest and the
				// runner-up set is unchanged; otherwise the cache cannot
				// name the new runner-up — rescan.
				if d < m2 {
					m1 = d // a1 stays == in
				} else {
					m1, a1, m2, a2 = ic.twoMins(i)
				}
			case swapped && a2 == in:
				// Second-nearest was replaced. If p beats the nearest, the
				// old nearest becomes the runner-up; otherwise the new
				// runner-up is unknowable from the cache — rescan.
				if d < m1 {
					m2, a2 = m1, a1
					m1, a1 = d, in
				} else {
					m1, a1, m2, a2 = ic.twoMins(i)
				}
			default:
				// Both cached positions survive; p can only displace them.
				if d < m1 {
					m2, a2 = m1, a1
					m1, a1 = d, in
				} else if d < m2 {
					m2, a2 = d, in
				}
			}
			if old := ic.assign[i]; old != a1 {
				if old >= 0 {
					pc[old]--
				}
				if a1 >= 0 {
					pc[a1]++
				}
				ic.assign[i] = a1
			}
			if old := ic.assign2[i]; old != a2 {
				if old >= 0 {
					pc2[old]--
				}
				if a2 >= 0 {
					pc2[a2]++
				}
				ic.assign2[i] = a2
			}
			ic.minDist[i], ic.minDist2[i] = m1, m2
			sum += m1
			if m1 > cellMax {
				cellMax = m1
			}
			if m2 > cellMax2 {
				cellMax2 = m2
			}
		}
		ic.cellSum[ci], ic.cellMax[ci], ic.cellMax2[ci] = sum, cellMax, cellMax2
	})
}
