package ensemble

import (
	"math"
	"sort"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

func vec(xs ...float64) behavior.Vector {
	var v behavior.Vector
	copy(v[:], xs)
	return v
}

func TestSpreadBasics(t *testing.T) {
	if Spread(nil) != 0 {
		t.Fatal("empty spread not 0")
	}
	if Spread([]behavior.Vector{vec(1, 0, 0, 0)}) != 0 {
		t.Fatal("singleton spread not 0")
	}
	two := []behavior.Vector{vec(0, 0, 0, 0), vec(1, 0, 0, 0)}
	if s := Spread(two); math.Abs(s-1) > 1e-12 {
		t.Fatalf("pair spread = %v, want 1", s)
	}
	// Equilateral-ish: three unit-apart points on axes have all pairwise
	// distances √2.
	three := []behavior.Vector{vec(1, 0, 0, 0), vec(0, 1, 0, 0), vec(0, 0, 1, 0)}
	if s := Spread(three); math.Abs(s-math.Sqrt2) > 1e-12 {
		t.Fatalf("spread = %v, want √2", s)
	}
}

func TestSpreadClusteredBelowDispersed(t *testing.T) {
	clustered := []behavior.Vector{vec(0.5, 0.5, 0.5, 0.5), vec(0.51, 0.5, 0.5, 0.5), vec(0.5, 0.51, 0.5, 0.5)}
	dispersed := []behavior.Vector{vec(0, 0, 0, 0), vec(1, 1, 1, 1), vec(1, 0, 1, 0)}
	if Spread(clustered) >= Spread(dispersed) {
		t.Fatal("clustered ensemble spread not below dispersed")
	}
}

func newCov(t *testing.T, n int) *CoverageEstimator {
	t.Helper()
	c, err := NewCoverageEstimator(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoverageOrdering(t *testing.T) {
	cov := newCov(t, 20000)
	center := []behavior.Vector{vec(0.5, 0.5, 0.5, 0.5)}
	corner := []behavior.Vector{vec(0, 0, 0, 0)}
	// The center point is closer on average to random points than a corner.
	if cov.Coverage(center) <= cov.Coverage(corner) {
		t.Fatal("center coverage not above corner coverage")
	}
	// Adding members can only improve (min distance is monotone).
	many := []behavior.Vector{vec(0.25, 0.25, 0.25, 0.25), vec(0.75, 0.75, 0.75, 0.75), vec(0.25, 0.75, 0.25, 0.75)}
	if cov.Coverage(many) <= cov.Coverage(many[:1]) {
		t.Fatal("coverage did not improve with more members")
	}
	if cov.Coverage(nil) != 0 {
		t.Fatal("empty ensemble coverage not 0")
	}
}

func TestCoverageMatchesAnalyticExpectation(t *testing.T) {
	// For a single point at the center of the unit 4-cube, E[d²] = 4/12,
	// and the mean distance is ≈ 0.5609, so coverage ≈ 1.783. Sanity band.
	cov := newCov(t, 200000)
	c := cov.Coverage([]behavior.Vector{vec(0.5, 0.5, 0.5, 0.5)})
	if c < 1.75 || c > 1.82 {
		t.Fatalf("center coverage = %v, want ≈1.78", c)
	}
}

func TestCoverageDeterministic(t *testing.T) {
	a := newCov(t, 10000)
	b := newCov(t, 10000)
	pts := []behavior.Vector{vec(0.3, 0.1, 0.9, 0.2), vec(0.8, 0.6, 0.1, 0.4)}
	if a.Coverage(pts) != b.Coverage(pts) {
		t.Fatal("same seed estimators disagree")
	}
}

func TestCoverageWithMatchesFull(t *testing.T) {
	cov := newCov(t, 30000)
	base := []behavior.Vector{vec(0.2, 0.2, 0.2, 0.2)}
	add := vec(0.8, 0.8, 0.8, 0.8)
	minDist := cov.MinDistances(nil, base)
	got := cov.CoverageWith(minDist, add)
	want := cov.Coverage(append(base, add))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("incremental coverage %v != full %v", got, want)
	}
}

func randomPool(n int, seed uint64) []behavior.Vector {
	r := rng.New(seed)
	pool := make([]behavior.Vector, n)
	for i := range pool {
		for d := 0; d < behavior.Dims; d++ {
			pool[i][d] = r.Float64()
		}
	}
	return pool
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// bruteBestSpread enumerates all C(n,k) subsets.
func bruteBestSpread(pool []behavior.Vector, k int) ([]int, float64) {
	n := len(pool)
	best := -1.0
	var bestSet []int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			if s := SpreadOf(pool, cur); s > best {
				best = s
				bestSet = append([]int(nil), cur...)
			}
			return
		}
		for j := start; j < n; j++ {
			cur = append(cur, j)
			rec(j + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return bestSet, best
}

func TestBestSpreadExhaustiveMatchesBrute(t *testing.T) {
	pool := randomPool(12, 3)
	sets, err := BestSpreadExhaustive(pool, allIdx(12), 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 6; k++ {
		_, want := bruteBestSpread(pool, k)
		got := SpreadOf(pool, sets[k])
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("size %d: exhaustive spread %v, brute force %v", k, got, want)
		}
	}
}

func TestBestSpreadExhaustiveRejectsLargePool(t *testing.T) {
	pool := randomPool(30, 1)
	if _, err := BestSpreadExhaustive(pool, allIdx(30), 5); err == nil {
		t.Fatal("oversized pool accepted")
	}
}

func TestBestSpreadGreedyNearExhaustive(t *testing.T) {
	pool := randomPool(16, 9)
	exact, err := BestSpreadExhaustive(pool, allIdx(16), 5)
	if err != nil {
		t.Fatal(err)
	}
	greedy := BestSpreadGreedy(pool, allIdx(16), 5)
	for k := 2; k <= 5; k++ {
		e := SpreadOf(pool, exact[k])
		g := SpreadOf(pool, greedy[k])
		if g < 0.9*e {
			t.Fatalf("size %d: greedy+exchange spread %v below 90%% of exact %v", k, g, e)
		}
	}
}

func TestSpreadDecreasesWithSize(t *testing.T) {
	// The paper's Figures 14/16/18: best-achievable spread declines as
	// ensembles grow (new members are never farther than the initial pair).
	pool := randomPool(40, 11)
	sets := BestSpreadGreedy(pool, allIdx(40), 10)
	prev := math.Inf(1)
	for k := 2; k <= 10; k++ {
		s := SpreadOf(pool, sets[k])
		if s > prev+1e-9 {
			t.Fatalf("best spread rose from %v to %v at size %d", prev, s, k)
		}
		prev = s
	}
}

func TestBestCoverageGreedyImproves(t *testing.T) {
	cov := newCov(t, 20000)
	pool := randomPool(30, 13)
	sets := BestCoverageGreedy(cov, pool, allIdx(30), 8)
	prev := -1.0
	for k := 1; k <= 8; k++ {
		pts := make([]behavior.Vector, len(sets[k]))
		for i, j := range sets[k] {
			pts[i] = pool[j]
		}
		c := cov.Coverage(pts)
		if c <= prev {
			t.Fatalf("coverage did not improve at size %d: %v → %v", k, prev, c)
		}
		prev = c
	}
}

func TestImproveSpreadExchangeNeverWorsens(t *testing.T) {
	pool := randomPool(25, 17)
	members := []int{0, 1, 2, 3}
	before := SpreadOf(pool, members)
	after := ImproveSpreadExchange(pool, members, allIdx(25))
	if SpreadOf(pool, after) < before-1e-12 {
		t.Fatal("exchange worsened spread")
	}
	if len(after) != len(members) {
		t.Fatal("exchange changed ensemble size")
	}
}

func TestTopEnsemblesSpread(t *testing.T) {
	pool := randomPool(12, 19)
	tops, err := TopEnsembles(MetricSpread, pool, allIdx(12), TopKOptions{Size: 3, K: 10, BeamWidth: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 10 {
		t.Fatalf("got %d ensembles, want 10", len(tops))
	}
	// Scores sorted descending and the best matches brute force (the beam
	// at width 500 over C(12,3)=220 is exhaustive).
	_, want := bruteBestSpread(pool, 3)
	if math.Abs(tops[0].Score-want) > 1e-12 {
		t.Fatalf("top score %v, brute force %v", tops[0].Score, want)
	}
	for i := 1; i < len(tops); i++ {
		if tops[i].Score > tops[i-1].Score+1e-12 {
			t.Fatal("top ensembles not sorted by score")
		}
	}
	// Members are unique and sorted.
	for _, s := range tops {
		if !sort.IntsAreSorted(s.Members) {
			t.Fatal("members not sorted")
		}
		for i := 1; i < len(s.Members); i++ {
			if s.Members[i] == s.Members[i-1] {
				t.Fatal("duplicate member")
			}
		}
	}
}

func TestTopEnsemblesCoverage(t *testing.T) {
	cov := newCov(t, 5000)
	pool := randomPool(10, 23)
	tops, err := TopEnsembles(MetricCoverage, pool, allIdx(10), TopKOptions{Size: 2, K: 5, BeamWidth: 100, Cov: cov})
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 5 {
		t.Fatalf("got %d, want 5", len(tops))
	}
	// Verify the reported scores are true coverage values.
	for _, s := range tops {
		pts := make([]behavior.Vector, len(s.Members))
		for i, j := range s.Members {
			pts[i] = pool[j]
		}
		if math.Abs(cov.Coverage(pts)-s.Score) > 1e-9 {
			t.Fatalf("score mismatch: %v vs %v", cov.Coverage(pts), s.Score)
		}
	}
}

func TestTopEnsemblesErrors(t *testing.T) {
	pool := randomPool(5, 1)
	if _, err := TopEnsembles(MetricSpread, pool, allIdx(5), TopKOptions{Size: 0}); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := TopEnsembles(MetricSpread, pool, allIdx(5), TopKOptions{Size: 9}); err == nil {
		t.Fatal("size beyond pool accepted")
	}
	if _, err := TopEnsembles(MetricCoverage, pool, allIdx(5), TopKOptions{Size: 2}); err == nil {
		t.Fatal("coverage without estimator accepted")
	}
}

func TestFrequency(t *testing.T) {
	tops := []Scored{
		{Members: []int{0, 1}},
		{Members: []int{0, 2}},
	}
	names := []string{"ALS", "KM", "TC"}
	freq := Frequency(tops, func(i int) string { return names[i] })
	if freq["ALS"] != 2 || freq["KM"] != 1 || freq["TC"] != 1 {
		t.Fatalf("freq = %v", freq)
	}
}

func TestUpperBoundsDominateRandomEnsembles(t *testing.T) {
	cov := newCov(t, 20000)
	ubS := UpperBoundSpread(8, 29)
	ubC := UpperBoundCoverage(cov, 8, 29)
	pool := randomPool(40, 31)
	sets := BestSpreadGreedy(pool, allIdx(40), 8)
	csets := BestCoverageGreedy(cov, pool, allIdx(40), 8)
	for k := 2; k <= 8; k++ {
		if s := SpreadOf(pool, sets[k]); s > ubS[k]+1e-9 {
			t.Fatalf("size %d: random-pool spread %v exceeds upper bound %v", k, s, ubS[k])
		}
		pts := make([]behavior.Vector, len(csets[k]))
		for i, j := range csets[k] {
			pts[i] = pool[j]
		}
		if c := cov.Coverage(pts); c > ubC[k]+1e-9 {
			t.Fatalf("size %d: random-pool coverage %v exceeds upper bound %v", k, c, ubC[k])
		}
	}
	// The pair upper bound is the main diagonal: length 2.
	if math.Abs(ubS[2]-2) > 1e-9 {
		t.Fatalf("spread upper bound at size 2 = %v, want 2 (the main diagonal)", ubS[2])
	}
}

func TestNewCoverageEstimatorErrors(t *testing.T) {
	if _, err := NewCoverageEstimator(0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}
