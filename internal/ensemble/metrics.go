// Package ensemble implements the paper's ensemble methodology (§5): an
// ensemble is a set of graph computations, and its quality as a benchmark
// suite is quantified by two metrics over the behavior space —
//
//   - Spread: the mean pairwise Euclidean distance between members
//     ("dispersion"; higher is better, §5.1);
//   - Coverage: how close a uniformly random point of the space is, on
//     average, to its nearest member, reported as the reciprocal of that
//     mean minimum distance so that thorough sampling scores higher and
//     the values match the paper's magnitudes (≈4 at 20 well-spread
//     members; see DESIGN.md §2 for why the reciprocal reading is the
//     consistent one).
//
// The package also provides the ensemble searches behind Figures 14-23 and
// Table 3: exhaustive subset search for small pools, greedy construction
// with pairwise-exchange refinement for the unrestricted 215-run corpus,
// beam-searched top-K enumeration for the §5.5 frequency analysis, and
// empirical upper bounds from maximally dispersed synthetic point sets.
package ensemble

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// Spread returns the mean pairwise distance of the given points (§5.1).
// Ensembles with fewer than two members (including nil and singleton
// inputs) have zero spread by definition — no pairs, no dispersion —
// never NaN from the 0/0 pair mean.
func Spread(points []behavior.Vector) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += behavior.Distance(points[i], points[j])
		}
	}
	// Mean over ordered pairs N(N-1) equals mean over unordered pairs.
	return sum / (float64(n) * float64(n-1) / 2)
}

// SpreadOf evaluates Spread over pool[idx].
func SpreadOf(pool []behavior.Vector, idx []int) float64 {
	pts := make([]behavior.Vector, len(idx))
	for i, j := range idx {
		pts[i] = pool[j]
	}
	return Spread(pts)
}

// CoverageEstimator Monte-Carlo-samples the unit behavior hypercube once
// and reuses the sample set for every coverage evaluation, so comparisons
// between ensembles are exact (same sample noise) and incremental greedy
// selection is cheap. The paper uses one million samples (§5.1).
//
// The samples are stored grouped by a uniform grid over the hypercube
// (grid cells per axis, cell-major order, original draw order preserved
// within each cell). The grid is what makes IncrementalCoverage's
// dirty-cell rescoring possible: a member swap touches only the cells
// whose samples it could affect, and each cell carries a tight bounding
// box (cellLo/cellHi, from the actual sample coordinates) so whole cells
// are skipped by a single box-distance test. Coverage totals are always
// accumulated per cell and then across cells in cell order — the
// canonical summation both the fresh and incremental paths share, which
// is what makes them bit-identical (see DESIGN.md §13).
type CoverageEstimator struct {
	samples []behavior.Vector
	workers int
	// grid is the number of cells per axis (≥1). cellStart has
	// numCells+1 entries; samples[cellStart[c]:cellStart[c+1]] is cell c.
	grid      int
	cellStart []int
	cellLo    []behavior.Vector
	cellHi    []behavior.Vector
}

// DefaultSamples matches the paper's sample count.
const DefaultSamples = 1_000_000

// gridResolution picks cells-per-axis so a cell holds ≥256 samples on
// average (enough to amortize the per-cell box test), capped at 10 per
// axis. Below 4096 samples the grid degenerates to a single cell and the
// estimator behaves exactly like the historical flat implementation.
func gridResolution(numSamples int) int {
	g := 1
	for g < 10 && (g+1)*(g+1)*(g+1)*(g+1)*256 <= numSamples {
		g++
	}
	return g
}

// NewCoverageEstimator draws numSamples uniform points with a fixed seed.
func NewCoverageEstimator(numSamples int, seed uint64) (*CoverageEstimator, error) {
	if numSamples <= 0 {
		return nil, fmt.Errorf("ensemble: need a positive sample count, got %d", numSamples)
	}
	r := rng.New(seed)
	samples := make([]behavior.Vector, numSamples)
	for i := range samples {
		for d := 0; d < behavior.Dims; d++ {
			samples[i][d] = r.Float64()
		}
	}
	c := &CoverageEstimator{samples: samples, workers: runtime.GOMAXPROCS(0)}
	c.buildGrid(gridResolution(numSamples))
	return c, nil
}

// cellOf buckets a point into its grid cell id (dim-major).
func (c *CoverageEstimator) cellOf(s behavior.Vector) int {
	id := 0
	for d := 0; d < behavior.Dims; d++ {
		b := int(s[d] * float64(c.grid))
		if b >= c.grid {
			b = c.grid - 1
		}
		if b < 0 {
			b = 0
		}
		id = id*c.grid + b
	}
	return id
}

// buildGrid regroups the samples cell-major (stable: draw order is kept
// within each cell) and computes per-cell tight bounding boxes.
func (c *CoverageEstimator) buildGrid(g int) {
	c.grid = g
	numCells := g * g * g * g
	counts := make([]int, numCells)
	for _, s := range c.samples {
		counts[c.cellOf(s)]++
	}
	c.cellStart = make([]int, numCells+1)
	for ci := 0; ci < numCells; ci++ {
		c.cellStart[ci+1] = c.cellStart[ci] + counts[ci]
	}
	ordered := make([]behavior.Vector, len(c.samples))
	next := append([]int(nil), c.cellStart[:numCells]...)
	for _, s := range c.samples {
		ci := c.cellOf(s)
		ordered[next[ci]] = s
		next[ci]++
	}
	c.samples = ordered

	c.cellLo = make([]behavior.Vector, numCells)
	c.cellHi = make([]behavior.Vector, numCells)
	for ci := 0; ci < numCells; ci++ {
		lo, hi := c.cellLo[ci], c.cellHi[ci]
		for d := 0; d < behavior.Dims; d++ {
			lo[d], hi[d] = math.Inf(1), math.Inf(-1)
		}
		for _, s := range c.samples[c.cellStart[ci]:c.cellStart[ci+1]] {
			for d := 0; d < behavior.Dims; d++ {
				if s[d] < lo[d] {
					lo[d] = s[d]
				}
				if s[d] > hi[d] {
					hi[d] = s[d]
				}
			}
		}
		c.cellLo[ci], c.cellHi[ci] = lo, hi
	}
}

// numCells returns the grid cell count (0 for a zero-value estimator,
// which has no grid and falls back to flat summation).
func (c *CoverageEstimator) numCells() int {
	if len(c.cellStart) == 0 {
		return 0
	}
	return len(c.cellStart) - 1
}

// boxDistance returns a lower bound on the distance from p to any sample
// in cell ci, computed with the same dimension-order accumulation and
// square root as behavior.Distance. Monotonicity of correctly-rounded
// float operations makes the computed bound ≤ the computed
// behavior.Distance of every sample in the box, so comparisons against
// it never wrongly skip a cell.
func (c *CoverageEstimator) boxDistance(ci int, p behavior.Vector) float64 {
	lo, hi := &c.cellLo[ci], &c.cellHi[ci]
	var s float64
	for d := 0; d < behavior.Dims; d++ {
		var diff float64
		if p[d] < lo[d] {
			diff = lo[d] - p[d]
		} else if p[d] > hi[d] {
			diff = p[d] - hi[d]
		}
		s += diff * diff
	}
	return math.Sqrt(s)
}

// NumSamples returns the sample count.
func (c *CoverageEstimator) NumSamples() int { return len(c.samples) }

// Coverage returns NS / Σ min-distance for the ensemble — the reciprocal
// of the mean distance from a random behavior point to its nearest member.
// An empty ensemble covers nothing and scores a defined 0 (every sample's
// nearest-member distance is unbounded), never NaN or a division panic.
func (c *CoverageEstimator) Coverage(points []behavior.Vector) float64 {
	if len(points) == 0 {
		return 0
	}
	minDist := c.MinDistances(nil, points)
	return c.coverageFromMin(minDist)
}

func (c *CoverageEstimator) coverageFromMin(minDist []float64) float64 {
	// No samples means no evidence either way; report 0 rather than the
	// 0/0 NaN the bare formula would produce.
	if len(minDist) == 0 {
		return 0
	}
	// Canonical summation: per-cell sequential sums, then a sequential
	// sum across cells in cell order. IncrementalCoverage caches the
	// per-cell sums and reproduces this exact accumulation, which is what
	// makes the fast path bit-identical to this fresh one. With one cell
	// (small estimators, zero-value estimators) this is the historical
	// flat sum.
	var sum float64
	if nc := c.numCells(); nc > 1 && len(minDist) == len(c.samples) {
		for ci := 0; ci < nc; ci++ {
			var cellSum float64
			for _, d := range minDist[c.cellStart[ci]:c.cellStart[ci+1]] {
				cellSum += d
			}
			sum += cellSum
		}
	} else {
		for _, d := range minDist {
			sum += d
		}
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(minDist)) / sum
}

// MinDistances returns, per sample, the distance to the nearest of the
// given points, starting from prev (a previous ensemble's result) when
// non-nil — the incremental step greedy selection relies on. prev is not
// modified.
func (c *CoverageEstimator) MinDistances(prev []float64, points []behavior.Vector) []float64 {
	out := make([]float64, len(c.samples))
	if prev == nil {
		for i := range out {
			out[i] = math.Inf(1)
		}
	} else {
		copy(out, prev)
	}
	c.parallelSamples(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best := out[i]
			for _, p := range points {
				if d := behavior.Distance(c.samples[i], p); d < best {
					best = d
				}
			}
			out[i] = best
		}
	})
	return out
}

// CoverageWith evaluates the coverage of prev ∪ {p} given prev's min
// distances, without allocating a new array per candidate.
func (c *CoverageEstimator) CoverageWith(prevMin []float64, p behavior.Vector) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	partial := make([]float64, c.workers)
	c.parallelSamplesWorker(func(w, lo, hi int) {
		var sum float64
		for i := lo; i < hi; i++ {
			d := behavior.Distance(c.samples[i], p)
			if prevMin != nil && prevMin[i] < d {
				d = prevMin[i]
			}
			sum += d
		}
		partial[w] += sum
	})
	var sum float64
	for _, s := range partial {
		sum += s
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(c.samples)) / sum
}

// LloydRefine improves a set of coverage centers by Lloyd iterations on
// the estimator's own sample cloud: each sample joins its nearest center,
// centers move to their cluster means, and the best configuration seen
// (by coverage) is returned. Because the centers move continuously rather
// than being restricted to a candidate pool, the result upper-bounds any
// pool-restricted ensemble of the same size in practice — which is what
// the paper's empirical coverage upper bound requires.
func (c *CoverageEstimator) LloydRefine(centers []behavior.Vector, iters int) []behavior.Vector {
	if len(centers) == 0 {
		return nil
	}
	cur := append([]behavior.Vector(nil), centers...)
	best := append([]behavior.Vector(nil), centers...)
	bestCov := c.Coverage(cur)
	k := len(cur)
	for it := 0; it < iters; it++ {
		sums := make([]behavior.Vector, k)
		counts := make([]float64, k)
		for _, s := range c.samples {
			nearest, nd := 0, math.Inf(1)
			for j, p := range cur {
				if d := behavior.Distance(s, p); d < nd {
					nd, nearest = d, j
				}
			}
			for d := 0; d < behavior.Dims; d++ {
				sums[nearest][d] += s[d]
			}
			counts[nearest]++
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue
			}
			for d := 0; d < behavior.Dims; d++ {
				cur[j][d] = sums[j][d] / counts[j]
			}
		}
		if cov := c.Coverage(cur); cov > bestCov {
			bestCov = cov
			copy(best, cur)
		}
	}
	return best
}

func (c *CoverageEstimator) parallelSamples(fn func(lo, hi int)) {
	c.parallelSamplesWorker(func(_, lo, hi int) { fn(lo, hi) })
}

func (c *CoverageEstimator) parallelSamplesWorker(fn func(w, lo, hi int)) {
	n := len(c.samples)
	w := c.workers
	if w > n {
		w = n
	}
	// Below ~50k samples goroutine fan-out costs more than it saves.
	if w <= 1 || n < 50_000 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}
