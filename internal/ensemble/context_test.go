package ensemble

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// ctxTestPool builds a deterministic candidate pool for search tests.
func ctxTestPool(n int, seed uint64) ([]behavior.Vector, []int) {
	r := rng.New(seed)
	pool := make([]behavior.Vector, n)
	idx := make([]int, n)
	for i := range pool {
		for d := 0; d < behavior.Dims; d++ {
			pool[i][d] = r.Float64()
		}
		idx[i] = i
	}
	return pool, idx
}

// TestSearchesHonorCancelledContext checks that every search entry point
// returns ctx.Err() when invoked with an already-cancelled context —
// the strictest form of the "abort within one search step" contract.
func TestSearchesHonorCancelledContext(t *testing.T) {
	pool, idx := ctxTestPool(40, 7)
	cov, err := NewCoverageEstimator(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	checks := []struct {
		name string
		run  func() error
	}{
		{"BestSpreadGreedyCtx", func() error {
			_, err := BestSpreadGreedyCtx(ctx, pool, idx, 8)
			return err
		}},
		{"BestSpreadExhaustiveCtx", func() error {
			_, err := BestSpreadExhaustiveCtx(ctx, pool, idx[:12], 6)
			return err
		}},
		{"ImproveSpreadExchangeCtx", func() error {
			_, err := ImproveSpreadExchangeCtx(ctx, pool, idx[:4], idx)
			return err
		}},
		{"BestCoverageGreedyCtx", func() error {
			_, err := BestCoverageGreedyCtx(ctx, cov, pool, idx, 8)
			return err
		}},
		{"ImproveCoverageExchangeCtx", func() error {
			_, err := ImproveCoverageExchangeCtx(ctx, cov, pool, idx[:4], idx)
			return err
		}},
		{"AnnealSpreadCtx", func() error {
			_, _, err := AnnealSpreadCtx(ctx, pool, idx, AnnealOptions{Size: 6, Seed: 1})
			return err
		}},
		{"AnnealCoverageCtx", func() error {
			_, _, err := AnnealCoverageCtx(ctx, cov, pool, idx, AnnealOptions{Size: 6, Seed: 1})
			return err
		}},
		{"TopEnsemblesCtx", func() error {
			_, err := TopEnsemblesCtx(ctx, MetricSpread, pool, idx, TopKOptions{Size: 4, K: 10})
			return err
		}},
	}
	for _, c := range checks {
		if err := c.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context: got err %v, want context.Canceled", c.name, err)
		}
	}
}

// TestAnnealCoverageDeadlinePrompt verifies that a mid-flight deadline
// aborts an expensive coverage search long before it would finish: 2000
// annealing steps at 200k samples take seconds, but the search must
// return within roughly one Monte-Carlo step of the deadline.
func TestAnnealCoverageDeadlinePrompt(t *testing.T) {
	pool, idx := ctxTestPool(60, 11)
	cov, err := NewCoverageEstimator(200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = AnnealCoverageCtx(ctx, cov, pool, idx, AnnealOptions{Size: 10, Steps: 5000, Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got err %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: deadline (30ms) + a handful of MC evaluations.
	if elapsed > 2*time.Second {
		t.Fatalf("search returned %v after the 30ms deadline — not a prompt abort", elapsed)
	}
}

// TestCtxVariantsMatchPlainResults pins the Ctx variants to the plain
// entry points on an uncancelled context — the wrappers must be pure
// plumbing, not a second implementation.
func TestCtxVariantsMatchPlainResults(t *testing.T) {
	pool, idx := ctxTestPool(30, 3)
	plain := BestSpreadGreedy(pool, idx, 6)
	withCtx, err := BestSpreadGreedyCtx(context.Background(), pool, idx, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		if len(plain[k]) != len(withCtx[k]) {
			t.Fatalf("size %d: plain %v != ctx %v", k, plain[k], withCtx[k])
		}
		for i := range plain[k] {
			if plain[k][i] != withCtx[k][i] {
				t.Fatalf("size %d: plain %v != ctx %v", k, plain[k], withCtx[k])
			}
		}
	}
}

// TestEmptyAndSingletonMetricValues pins the defined-value contract for
// degenerate ensembles: 0, never NaN and never a panic.
func TestEmptyAndSingletonMetricValues(t *testing.T) {
	cov, err := NewCoverageEstimator(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Spread(nil); got != 0 {
		t.Errorf("Spread(nil) = %v, want 0", got)
	}
	if got := Spread([]behavior.Vector{{0.5, 0.5, 0.5, 0.5}}); got != 0 {
		t.Errorf("Spread(singleton) = %v, want 0", got)
	}
	if got := SpreadOf(nil, nil); got != 0 {
		t.Errorf("SpreadOf(empty) = %v, want 0", got)
	}
	if got := cov.Coverage(nil); got != 0 {
		t.Errorf("Coverage(nil) = %v, want 0", got)
	}
	if got := cov.Coverage([]behavior.Vector{}); got != 0 {
		t.Errorf("Coverage(empty) = %v, want 0", got)
	}
	single := cov.Coverage([]behavior.Vector{{0.5, 0.5, 0.5, 0.5}})
	if math.IsNaN(single) || math.IsInf(single, 0) || single <= 0 {
		t.Errorf("Coverage(singleton) = %v, want a finite positive value", single)
	}
	// CoverageWith starting from no prior ensemble must agree with the
	// singleton evaluation and stay finite.
	with := cov.CoverageWith(nil, behavior.Vector{0.5, 0.5, 0.5, 0.5})
	if math.Abs(with-single) > 1e-12 {
		t.Errorf("CoverageWith(nil, p) = %v, Coverage({p}) = %v — want equal", with, single)
	}
	if got := (&CoverageEstimator{}).CoverageWith(nil, behavior.Vector{}); got != 0 {
		t.Errorf("zero-sample CoverageWith = %v, want 0", got)
	}
	if got := (&CoverageEstimator{}).coverageFromMin(nil); got != 0 {
		t.Errorf("coverageFromMin(empty) = %v, want 0", got)
	}
}
