package ensemble

import (
	"context"
	"math"
	"sort"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// The differential harness for IncrementalCoverage: every incremental
// result must be BIT-IDENTICAL (==, not approximately equal) to a fresh
// full Monte-Carlo estimate from the same estimator, because the
// searches make strict float comparisons on these values and any ulp of
// drift could change a search trajectory.

// freshCoverage is the oracle: a full recompute over the same sample
// stream.
func freshCoverage(t *testing.T, est *CoverageEstimator, members []behavior.Vector) float64 {
	t.Helper()
	return est.Coverage(members)
}

func newIC(t *testing.T, est *CoverageEstimator, members []behavior.Vector) *IncrementalCoverage {
	t.Helper()
	ic, err := NewIncrementalCoverage(est, members)
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

// gridEstimators returns estimators that exercise both the gridded
// (30k samples → 3 cells/axis) and flat single-cell (2k samples)
// layouts.
func gridEstimators(t *testing.T) []*CoverageEstimator {
	t.Helper()
	return []*CoverageEstimator{newCov(t, 30000), newCov(t, 2000)}
}

func TestIncrementalCoverageMatchesFresh(t *testing.T) {
	for _, est := range gridEstimators(t) {
		pool := randomPool(40, 101)
		ic := newIC(t, est, pool[:6])
		if got, want := ic.Coverage(), freshCoverage(t, est, pool[:6]); got != want {
			t.Fatalf("initial: incremental %v != fresh %v (n=%d)", got, want, est.NumSamples())
		}
	}
}

// TestIncrementalSwapMatchesFresh is the satellite equivalence test at
// the estimator level: after ANY single-member swap, both the
// non-mutating EvalSwap and the committed state equal a fresh full
// estimate with the same sample stream.
func TestIncrementalSwapMatchesFresh(t *testing.T) {
	for _, est := range gridEstimators(t) {
		r := rng.New(202)
		pool := randomPool(60, 103)
		members := append([]behavior.Vector(nil), pool[:8]...)
		ic := newIC(t, est, members)
		for step := 0; step < 40; step++ {
			pos := r.Intn(len(members))
			cand := pool[r.Intn(len(pool))]

			swapped := append([]behavior.Vector(nil), members...)
			swapped[pos] = cand
			want := freshCoverage(t, est, swapped)

			if got := ic.EvalSwap(pos, cand); got != want {
				t.Fatalf("step %d: EvalSwap(%d) = %v, fresh = %v (n=%d)",
					step, pos, got, want, est.NumSamples())
			}
			// EvalSwap must not have mutated anything.
			if got, want := ic.Coverage(), freshCoverage(t, est, members); got != want {
				t.Fatalf("step %d: EvalSwap mutated state: %v != %v", step, got, want)
			}
			// Commit every other proposal so the cache evolves through
			// many generations of dirty-cell rescoring.
			if step%2 == 0 {
				if got := ic.Swap(pos, cand); got != want {
					t.Fatalf("step %d: Swap = %v, fresh = %v", step, got, want)
				}
				members = swapped
			}
		}
	}
}

// TestIncrementalAddMatchesFresh: growing the ensemble one member at a
// time (the greedy pattern) stays bit-identical to fresh estimates,
// starting from an empty ensemble.
func TestIncrementalAddMatchesFresh(t *testing.T) {
	for _, est := range gridEstimators(t) {
		pool := randomPool(20, 107)
		ic := newIC(t, est, nil)
		var members []behavior.Vector
		for i, p := range pool {
			grown := append(append([]behavior.Vector(nil), members...), p)
			want := freshCoverage(t, est, grown)
			if got := ic.EvalAdd(p); got != want {
				t.Fatalf("add %d: EvalAdd = %v, fresh = %v (n=%d)", i, got, want, est.NumSamples())
			}
			if got := ic.Add(p); got != want {
				t.Fatalf("add %d: Add = %v, fresh = %v", i, got, want)
			}
			members = grown
		}
	}
}

// TestIncrementalDuplicateAndDegenerate: duplicate members, a swap that
// replaces a member with itself, and a swap to a duplicate of another
// member all stay bit-identical (these stress tie assignments).
func TestIncrementalDuplicateAndDegenerate(t *testing.T) {
	est := newCov(t, 30000)
	p := randomPool(6, 109)
	members := []behavior.Vector{p[0], p[1], p[0], p[2]} // duplicate up front
	ic := newIC(t, est, members)
	cases := []struct {
		pos  int
		cand behavior.Vector
	}{
		{1, p[1]}, // self-swap
		{3, p[0]}, // three-way duplicate
		{0, p[4]}, // break the duplicate pair
		{2, p[5]},
	}
	for i, c := range cases {
		swapped := append([]behavior.Vector(nil), members...)
		swapped[c.pos] = c.cand
		want := freshCoverage(t, est, swapped)
		if got := ic.EvalSwap(c.pos, c.cand); got != want {
			t.Fatalf("case %d: EvalSwap = %v, fresh = %v", i, got, want)
		}
		if got := ic.Swap(c.pos, c.cand); got != want {
			t.Fatalf("case %d: Swap = %v, fresh = %v", i, got, want)
		}
		members = swapped
	}
}

// TestIncrementalRandomizedProperty: randomized corpora across several
// seeds — interleaved adds and swaps, every result checked against the
// oracle.
func TestIncrementalRandomizedProperty(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		est := newCov(t, 30000)
		r := rng.New(seed * 7919)
		pool := randomPool(80, seed*31)
		members := append([]behavior.Vector(nil), pool[:5]...)
		ic := newIC(t, est, members)
		for step := 0; step < 25; step++ {
			cand := pool[r.Intn(len(pool))]
			if r.Intn(3) == 0 && len(members) < 15 {
				grown := append(append([]behavior.Vector(nil), members...), cand)
				want := freshCoverage(t, est, grown)
				if got := ic.Add(cand); got != want {
					t.Fatalf("seed %d step %d: Add = %v, fresh = %v", seed, step, got, want)
				}
				members = grown
			} else {
				pos := r.Intn(len(members))
				swapped := append([]behavior.Vector(nil), members...)
				swapped[pos] = cand
				want := freshCoverage(t, est, swapped)
				if got := ic.EvalSwap(pos, cand); got != want {
					t.Fatalf("seed %d step %d: EvalSwap = %v, fresh = %v", seed, step, got, want)
				}
				if got := ic.Swap(pos, cand); got != want {
					t.Fatalf("seed %d step %d: Swap = %v, fresh = %v", seed, step, got, want)
				}
				members = swapped
			}
		}
	}
}

func TestIncrementalRejectsEmptyEstimator(t *testing.T) {
	if _, err := NewIncrementalCoverage(nil, nil); err == nil {
		t.Fatal("nil estimator accepted")
	}
	if _, err := NewIncrementalCoverage(&CoverageEstimator{}, nil); err == nil {
		t.Fatal("zero-value estimator accepted")
	}
}

// --- search-trace oracles -------------------------------------------
//
// The naive searches below re-evaluate coverage with a fresh full
// Monte-Carlo pass per proposal — the implementations the rewired
// searches replaced. The traces (member sets AND scores) must match
// exactly, proving the incremental rewiring changed cost, not behavior.

func naiveCoverageGreedy(cov *CoverageEstimator, pool []behavior.Vector, idx []int, maxSize int) [][]int {
	n := len(idx)
	if maxSize > n {
		maxSize = n
	}
	out := make([][]int, maxSize+1)
	var members []int
	inSet := make([]bool, n)
	pts := func(set []int, extra int) []behavior.Vector {
		o := make([]behavior.Vector, 0, len(set)+1)
		for _, m := range set {
			o = append(o, pool[m])
		}
		return append(o, pool[extra])
	}
	for k := 1; k <= maxSize; k++ {
		bestJ, bestCov := -1, -1.0
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			if c := cov.Coverage(pts(members, idx[j])); c > bestCov {
				bestCov, bestJ = c, j
			}
		}
		if bestJ < 0 {
			break
		}
		inSet[bestJ] = true
		members = append(members, idx[bestJ])
		set := append([]int(nil), members...)
		sort.Ints(set)
		out[k] = set
	}
	return out
}

func naiveCoverageExchange(cov *CoverageEstimator, pool []behavior.Vector, members, candidates []int) []int {
	cur := append([]int(nil), members...)
	pts := func(set []int) []behavior.Vector {
		out := make([]behavior.Vector, len(set))
		for i, m := range set {
			out[i] = pool[m]
		}
		return out
	}
	curCov := cov.Coverage(pts(cur))
	inSet := make(map[int]bool, len(cur))
	for _, m := range cur {
		inSet[m] = true
	}
	const maxPasses = 5
	for pass := 0; pass < maxPasses; pass++ {
		bestGain := 1e-12
		bestPos, bestCand := -1, -1
		for pos := range cur {
			for _, cand := range candidates {
				if inSet[cand] {
					continue
				}
				old := cur[pos]
				cur[pos] = cand
				c := cov.Coverage(pts(cur))
				cur[pos] = old
				if gain := c - curCov; gain > bestGain {
					bestGain, bestPos, bestCand = gain, pos, cand
				}
			}
		}
		if bestPos < 0 {
			break
		}
		delete(inSet, cur[bestPos])
		inSet[bestCand] = true
		cur[bestPos] = bestCand
		curCov = cov.Coverage(pts(cur))
	}
	sort.Ints(cur)
	return cur
}

func naiveAnnealCoverage(t *testing.T, cov *CoverageEstimator, pool []behavior.Vector, idx []int, opt AnnealOptions) ([]int, float64) {
	t.Helper()
	steps := opt.Steps
	temp := opt.InitTemp
	if temp == 0 {
		temp = 0.1
	}
	r := rng.New(opt.Seed ^ 0xc0ffee51)
	seedSets := naiveCoverageGreedy(cov, pool, idx, opt.Size)
	cur := append([]int(nil), seedSets[opt.Size]...)
	k := len(cur)
	inSet := make(map[int]bool, k)
	for _, m := range cur {
		inSet[m] = true
	}
	eval := func(members []int) float64 {
		pts := make([]behavior.Vector, len(members))
		for i, m := range members {
			pts[i] = pool[m]
		}
		return cov.Coverage(pts)
	}
	curCov := eval(cur)
	best := append([]int(nil), cur...)
	bestCov := curCov
	for step := 0; step < steps; step++ {
		t_ := temp * (1 - float64(step)/float64(steps))
		pos := r.Intn(k)
		cand := idx[r.Intn(len(idx))]
		if inSet[cand] {
			continue
		}
		old := cur[pos]
		cur[pos] = cand
		c := eval(cur)
		delta := c - curCov
		if delta >= 0 || r.Float64() < math.Exp(delta/math.Max(curCov, 1e-9)/math.Max(t_, 1e-9)) {
			delete(inSet, old)
			inSet[cand] = true
			curCov = c
			if c > bestCov {
				bestCov = c
				copy(best, cur)
			}
		} else {
			cur[pos] = old
		}
	}
	return best, bestCov
}

// TestCoverageGreedyTraceMatchesNaive: the rewired greedy makes the
// same choices at every size as the full-recompute oracle.
func TestCoverageGreedyTraceMatchesNaive(t *testing.T) {
	for _, est := range gridEstimators(t) {
		pool := randomPool(30, 211)
		want := naiveCoverageGreedy(est, pool, allIdx(30), 8)
		got := BestCoverageGreedy(est, pool, allIdx(30), 8)
		for k := 1; k <= 8; k++ {
			if !equalInts(got[k], want[k]) {
				t.Fatalf("n=%d size %d: greedy %v, naive %v", est.NumSamples(), k, got[k], want[k])
			}
		}
	}
}

// TestCoverageExchangeTraceMatchesNaive: the rewired exchange applies
// the same swaps as the full-recompute oracle.
func TestCoverageExchangeTraceMatchesNaive(t *testing.T) {
	for _, est := range gridEstimators(t) {
		for seed := uint64(1); seed <= 3; seed++ {
			pool := randomPool(25, 223*seed)
			members := []int{0, 1, 2, 3, 4}
			want := naiveCoverageExchange(est, pool, members, allIdx(25))
			got := ImproveCoverageExchange(est, pool, members, allIdx(25))
			if !equalInts(got, want) {
				t.Fatalf("n=%d seed %d: exchange %v, naive %v", est.NumSamples(), seed, got, want)
			}
		}
	}
}

// TestAnnealCoverageTraceMatchesNaive: the rewired annealer consumes
// the same RNG stream and makes the same accept/reject decisions as the
// full-recompute oracle — member set and score both identical.
func TestAnnealCoverageTraceMatchesNaive(t *testing.T) {
	for _, est := range gridEstimators(t) {
		pool := randomPool(30, 227)
		opt := AnnealOptions{Size: 5, Steps: 300, Seed: 99}
		wantSet, wantCov := naiveAnnealCoverage(t, est, pool, allIdx(30), opt)
		gotSet, gotCov, err := AnnealCoverage(est, pool, allIdx(30), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(gotSet, wantSet) || gotCov != wantCov {
			t.Fatalf("n=%d: anneal (%v, %v), naive (%v, %v)",
				est.NumSamples(), gotSet, gotCov, wantSet, wantCov)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncrementalSearchesHonorContext: the rewired searches still abort
// promptly on a pre-cancelled context.
func TestIncrementalSearchesHonorContext(t *testing.T) {
	est := newCov(t, 2000)
	pool := randomPool(10, 229)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BestCoverageGreedyCtx(ctx, est, pool, allIdx(10), 3); err == nil {
		t.Fatal("greedy ignored cancelled context")
	}
	if _, err := ImproveCoverageExchangeCtx(ctx, est, pool, []int{0, 1}, allIdx(10)); err == nil {
		t.Fatal("exchange ignored cancelled context")
	}
	if _, _, err := AnnealCoverageCtx(ctx, est, pool, allIdx(10), AnnealOptions{Size: 2, Steps: 10}); err == nil {
		t.Fatal("anneal ignored cancelled context")
	}
}
