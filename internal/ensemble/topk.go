package ensemble

import (
	"context"
	"fmt"
	"sort"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// Scored is an ensemble (pool indices, sorted) with its metric value.
type Scored struct {
	Members []int
	Score   float64
}

// Metric selects the objective of a top-K enumeration.
type Metric int

const (
	// MetricSpread ranks ensembles by Spread.
	MetricSpread Metric = iota
	// MetricCoverage ranks ensembles by Coverage.
	MetricCoverage
)

func (m Metric) String() string {
	if m == MetricCoverage {
		return "coverage"
	}
	return "spread"
}

// TopKOptions configures TopEnsembles.
type TopKOptions struct {
	// Size is the ensemble size to enumerate (the paper uses the 100 best
	// ensembles of each size n, §5.5).
	Size int
	// K is how many top ensembles to return (default 100).
	K int
	// BeamWidth bounds the partial-ensemble frontier per size step
	// (default 2000). Wider beams approach exact enumeration.
	BeamWidth int
	// Cov is required for MetricCoverage.
	Cov *CoverageEstimator
}

// TopEnsembles enumerates (approximately, by beam search) the K best
// ensembles of the given size from pool[idx] under the chosen metric —
// the input to the §5.5 "frequency of appearance" diversity analysis.
// To minimize the shadowing the paper worries about, the beam keeps many
// more partials than K.
func TopEnsembles(metric Metric, pool []behavior.Vector, idx []int, opt TopKOptions) ([]Scored, error) {
	return TopEnsemblesCtx(context.Background(), metric, pool, idx, opt)
}

// TopEnsemblesCtx is TopEnsembles with cooperative cancellation, checked
// before each frontier partial's extension (coverage scoring makes one
// Monte-Carlo pass per extension, so that is the step granularity).
func TopEnsemblesCtx(ctx context.Context, metric Metric, pool []behavior.Vector, idx []int, opt TopKOptions) ([]Scored, error) {
	if opt.Size < 1 {
		return nil, fmt.Errorf("ensemble: top-K size must be positive, got %d", opt.Size)
	}
	if opt.Size > len(idx) {
		return nil, fmt.Errorf("ensemble: size %d exceeds pool %d", opt.Size, len(idx))
	}
	k := opt.K
	if k == 0 {
		k = 100
	}
	beam := opt.BeamWidth
	if beam == 0 {
		beam = 2000
	}
	if beam < k {
		beam = k
	}
	if metric == MetricCoverage && opt.Cov == nil {
		return nil, fmt.Errorf("ensemble: coverage metric needs a CoverageEstimator")
	}

	// Beam state: partial ensembles as sorted index slices, deduplicated
	// by requiring strictly increasing positions (combination order), so
	// no dedup map is needed: extend only with candidates after the last.
	type partial struct {
		members []int // positions into idx, increasing
		score   float64
	}
	frontier := make([]partial, 0, len(idx))
	for p := range idx {
		frontier = append(frontier, partial{members: []int{p}})
	}
	scoreOf := func(members []int) float64 {
		pts := make([]behavior.Vector, len(members))
		for i, p := range members {
			pts[i] = pool[idx[p]]
		}
		if metric == MetricSpread {
			return Spread(pts)
		}
		return opt.Cov.Coverage(pts)
	}

	for size := 2; size <= opt.Size; size++ {
		var next []partial
		for _, f := range frontier {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			last := f.members[len(f.members)-1]
			for p := last + 1; p < len(idx); p++ {
				m := append(append([]int(nil), f.members...), p)
				next = append(next, partial{members: m, score: scoreOf(m)})
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].score > next[j].score })
		if len(next) > beam {
			next = next[:beam]
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	// Score singletons if Size == 1.
	if opt.Size == 1 {
		for i := range frontier {
			frontier[i].score = scoreOf(frontier[i].members)
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].score > frontier[j].score })
	}
	if len(frontier) > k {
		frontier = frontier[:k]
	}
	out := make([]Scored, len(frontier))
	for i, f := range frontier {
		members := make([]int, len(f.members))
		for j, p := range f.members {
			members[j] = idx[p]
		}
		sort.Ints(members)
		out[i] = Scored{Members: members, Score: f.score}
	}
	return out, nil
}

// Frequency counts how often each key (e.g. algorithm name) appears across
// the top ensembles — Figures 20 and 21.
func Frequency(tops []Scored, keyOf func(runIdx int) string) map[string]int {
	freq := make(map[string]int)
	for _, t := range tops {
		for _, m := range t.Members {
			freq[keyOf(m)]++
		}
	}
	return freq
}

// UpperBoundPool generates a synthetic candidate cloud for the empirical
// upper bounds of Figures 14-19: the 16 hypercube corners (the most
// dispersed points available) plus uniformly random fill.
func UpperBoundPool(extra int, seed uint64) []behavior.Vector {
	var pts []behavior.Vector
	for mask := 0; mask < 1<<behavior.Dims; mask++ {
		var v behavior.Vector
		for d := 0; d < behavior.Dims; d++ {
			if mask&(1<<d) != 0 {
				v[d] = 1
			}
		}
		pts = append(pts, v)
	}
	r := rng.New(seed)
	for i := 0; i < extra; i++ {
		var v behavior.Vector
		for d := 0; d < behavior.Dims; d++ {
			v[d] = r.Float64()
		}
		pts = append(pts, v)
	}
	return pts
}

// UpperBoundSpread returns the empirical spread upper bound for each
// ensemble size 1..maxSize, "computed assuming ensemble members uniformly
// and maximally distributed in the behavior space" — here by optimizing
// member placement over a corner-seeded candidate cloud.
func UpperBoundSpread(maxSize int, seed uint64) []float64 {
	pool := UpperBoundPool(512, seed)
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sets := BestSpreadGreedy(pool, idx, maxSize)
	out := make([]float64, maxSize+1)
	for k := 1; k <= maxSize && k < len(sets); k++ {
		if sets[k] != nil {
			out[k] = SpreadOf(pool, sets[k])
		}
	}
	return out
}

// UpperBoundCoverage returns the empirical coverage upper bound per size:
// greedy k-median placement over a corner-seeded candidate cloud, refined
// by Lloyd iterations over the estimator's sample cloud so the centers are
// continuously optimized rather than pool-restricted.
func UpperBoundCoverage(cov *CoverageEstimator, maxSize int, seed uint64) []float64 {
	pool := UpperBoundPool(512, seed)
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sets := BestCoverageGreedy(cov, pool, idx, maxSize)
	out := make([]float64, maxSize+1)
	for k := 1; k <= maxSize && k < len(sets); k++ {
		if sets[k] == nil {
			continue
		}
		pts := make([]behavior.Vector, len(sets[k]))
		for i, j := range sets[k] {
			pts[i] = pool[j]
		}
		out[k] = cov.Coverage(cov.LloydRefine(pts, 25))
	}
	return out
}
