package ensemble

import (
	"context"
	"fmt"
	"math"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// Simulated-annealing ensemble design — a stronger optimizer for the §7
// question "can we design optimal ensembles?". Greedy+exchange stops at
// the first local optimum; annealing accepts occasional worsening swaps
// and escapes it. Spread proposals are evaluated in O(k) via the pairwise
// sum delta; coverage proposals need a full Monte-Carlo evaluation, so
// coverage annealing should use a moderate sample count.

// AnnealOptions configures the annealing schedule.
type AnnealOptions struct {
	// Size is the ensemble size to design.
	Size int
	// Steps is the number of proposal steps (default 20000 for spread,
	// 2000 for coverage).
	Steps int
	// InitTemp is the initial temperature relative to the objective scale
	// (default 0.1).
	InitTemp float64
	// Seed selects the proposal stream.
	Seed uint64
}

// AnnealSpread searches for a maximum-spread ensemble of the given size
// from pool[idx], seeded by the greedy solution. Returns the best member
// set found and its spread.
func AnnealSpread(pool []behavior.Vector, idx []int, opt AnnealOptions) ([]int, float64, error) {
	return AnnealSpreadCtx(context.Background(), pool, idx, opt)
}

// annealCancelStride is how many cheap (O(k)) spread proposals run
// between cancellation checks; coverage proposals check every step
// because each one is a full Monte-Carlo pass.
const annealCancelStride = 64

// AnnealSpreadCtx is AnnealSpread with cooperative cancellation, checked
// every annealCancelStride proposal steps.
func AnnealSpreadCtx(ctx context.Context, pool []behavior.Vector, idx []int, opt AnnealOptions) ([]int, float64, error) {
	if opt.Size < 2 {
		return nil, 0, fmt.Errorf("ensemble: annealing needs size ≥ 2, got %d", opt.Size)
	}
	if opt.Size > len(idx) {
		return nil, 0, fmt.Errorf("ensemble: size %d exceeds pool %d", opt.Size, len(idx))
	}
	steps := opt.Steps
	if steps == 0 {
		steps = 20000
	}
	temp := opt.InitTemp
	if temp == 0 {
		temp = 0.1
	}
	r := rng.New(opt.Seed ^ 0xa11ea1)

	// Seed with greedy+exchange.
	seedSets, err := BestSpreadGreedyCtx(ctx, pool, idx, opt.Size)
	if err != nil {
		return nil, 0, err
	}
	cur := append([]int(nil), seedSets[opt.Size]...)
	k := len(cur)
	inSet := make(map[int]bool, k)
	for _, m := range cur {
		inSet[m] = true
	}
	// Pairwise sums: distSum[i] = Σ_{j∈cur, j≠i-th} d(cur[i], cur[j]).
	pairSum := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairSum += behavior.Distance(pool[cur[i]], pool[cur[j]])
		}
	}
	pairs := float64(k) * float64(k-1) / 2
	best := append([]int(nil), cur...)
	bestSum := pairSum

	candidates := idx
	for step := 0; step < steps; step++ {
		if step%annealCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		t := temp * (1 - float64(step)/float64(steps))
		pos := r.Intn(k)
		cand := candidates[r.Intn(len(candidates))]
		if inSet[cand] {
			continue
		}
		old := cur[pos]
		// Delta: replace old with cand.
		var removed, added float64
		for i := 0; i < k; i++ {
			if i == pos {
				continue
			}
			removed += behavior.Distance(pool[old], pool[cur[i]])
			added += behavior.Distance(pool[cand], pool[cur[i]])
		}
		delta := added - removed
		if delta >= 0 || r.Float64() < math.Exp(delta/pairs/math.Max(t, 1e-9)) {
			delete(inSet, old)
			inSet[cand] = true
			cur[pos] = cand
			pairSum += delta
			if pairSum > bestSum {
				bestSum = pairSum
				copy(best, cur)
			}
		}
	}
	return best, bestSum / pairs, nil
}

// AnnealCoverage searches for a maximum-coverage ensemble. Each proposal
// re-evaluates coverage over the estimator's samples, so pass a
// moderately sized estimator (~20k samples) and refine the winner with a
// larger one if needed.
func AnnealCoverage(cov *CoverageEstimator, pool []behavior.Vector, idx []int, opt AnnealOptions) ([]int, float64, error) {
	return AnnealCoverageCtx(context.Background(), cov, pool, idx, opt)
}

// AnnealCoverageCtx is AnnealCoverage with cooperative cancellation,
// checked before every proposal's Monte-Carlo evaluation.
func AnnealCoverageCtx(ctx context.Context, cov *CoverageEstimator, pool []behavior.Vector, idx []int, opt AnnealOptions) ([]int, float64, error) {
	if opt.Size < 1 {
		return nil, 0, fmt.Errorf("ensemble: annealing needs size ≥ 1, got %d", opt.Size)
	}
	if opt.Size > len(idx) {
		return nil, 0, fmt.Errorf("ensemble: size %d exceeds pool %d", opt.Size, len(idx))
	}
	if cov == nil {
		return nil, 0, fmt.Errorf("ensemble: coverage annealing needs an estimator")
	}
	steps := opt.Steps
	if steps == 0 {
		steps = 2000
	}
	temp := opt.InitTemp
	if temp == 0 {
		temp = 0.1
	}
	r := rng.New(opt.Seed ^ 0xc0ffee51)

	seedSets, err := BestCoverageGreedyCtx(ctx, cov, pool, idx, opt.Size)
	if err != nil {
		return nil, 0, err
	}
	cur := append([]int(nil), seedSets[opt.Size]...)
	k := len(cur)
	inSet := make(map[int]bool, k)
	for _, m := range cur {
		inSet[m] = true
	}
	pts := make([]behavior.Vector, k)
	for i, m := range cur {
		pts[i] = pool[m]
	}
	// Proposals are scored through IncrementalCoverage.EvalSwap: only the
	// sample cells the swap can affect are rescanned, with results
	// bit-identical to the full Monte-Carlo evaluation this loop used to
	// run per proposal (pinned by TestAnnealCoverageTraceMatchesNaive) —
	// the RNG stream and accept/reject decisions are unchanged.
	ic, err := NewIncrementalCoverage(cov, pts)
	if err != nil {
		return nil, 0, err
	}
	curCov := ic.Coverage()
	best := append([]int(nil), cur...)
	bestCov := curCov

	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		t := temp * (1 - float64(step)/float64(steps))
		pos := r.Intn(k)
		cand := idx[r.Intn(len(idx))]
		if inSet[cand] {
			continue
		}
		old := cur[pos]
		c := ic.EvalSwap(pos, pool[cand])
		delta := c - curCov
		if delta >= 0 || r.Float64() < math.Exp(delta/math.Max(curCov, 1e-9)/math.Max(t, 1e-9)) {
			delete(inSet, old)
			inSet[cand] = true
			cur[pos] = cand
			ic.Swap(pos, pool[cand])
			curCov = c
			if c > bestCov {
				bestCov = c
				copy(best, cur)
			}
		}
	}
	return best, bestCov, nil
}
