package ensemble

import (
	"testing"

	"gcbench/internal/behavior"
)

// Ablation: incremental coverage evaluation (CoverageWith over cached min
// distances) vs. recomputing the full ensemble coverage per candidate.
// Greedy selection makes one such call per candidate per step, so this
// ratio decides whether 1M-sample coverage search is tractable.

func benchPoolAndEstimator(b *testing.B, samples int) (*CoverageEstimator, []behavior.Vector, []float64) {
	b.Helper()
	cov, err := NewCoverageEstimator(samples, 3)
	if err != nil {
		b.Fatal(err)
	}
	pool := randomPoolB(64, 5)
	base := pool[:8]
	minDist := cov.MinDistances(nil, base)
	return cov, pool, minDist
}

func randomPoolB(n int, seed uint64) []behavior.Vector {
	pool := make([]behavior.Vector, n)
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	for i := range pool {
		for d := 0; d < behavior.Dims; d++ {
			pool[i][d] = next()
		}
	}
	return pool
}

func BenchmarkCoverageWithCachedMin(b *testing.B) {
	cov, pool, minDist := benchPoolAndEstimator(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov.CoverageWith(minDist, pool[9+i%32])
	}
}

func BenchmarkCoverageFullRecompute(b *testing.B) {
	cov, pool, _ := benchPoolAndEstimator(b, 200_000)
	base := append([]behavior.Vector(nil), pool[:8]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov.Coverage(append(base, pool[9+i%32]))
	}
}

// The ISSUE's headline pair: swap evaluation through the grid-backed
// IncrementalCoverage (only affected cells rescanned) vs a full
// Monte-Carlo coverage recompute of the proposed set. This is the inner
// loop of exchange and annealing at serving-size pools (n=120, k=12).

func benchIncrementalSetup(b *testing.B, samples int) (*IncrementalCoverage, *CoverageEstimator, []behavior.Vector) {
	b.Helper()
	cov, err := NewCoverageEstimator(samples, 3)
	if err != nil {
		b.Fatal(err)
	}
	pool := randomPoolB(120, 5)
	ic, err := NewIncrementalCoverage(cov, pool[:12])
	if err != nil {
		b.Fatal(err)
	}
	return ic, cov, pool
}

func BenchmarkCoverageIncremental(b *testing.B) {
	ic, _, pool := benchIncrementalSetup(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.EvalSwap(i%12, pool[12+i%108])
	}
}

func BenchmarkCoverageNaive(b *testing.B) {
	_, cov, pool := benchIncrementalSetup(b, 200_000)
	members := append([]behavior.Vector(nil), pool[:12]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := members[i%12]
		members[i%12] = pool[12+i%108]
		cov.Coverage(members)
		members[i%12] = old
	}
}

// Ablation: exact subset enumeration vs greedy+exchange for best-spread.
// Exhaustive is exact but exponential; greedy+exchange is the fallback
// for the 220-run unrestricted pool.

func BenchmarkBestSpreadExhaustive20(b *testing.B) {
	pool := randomPoolB(20, 7)
	idx := make([]int, 20)
	for i := range idx {
		idx[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BestSpreadExhaustive(pool, idx, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestSpreadGreedy220(b *testing.B) {
	pool := randomPoolB(220, 7)
	idx := make([]int, 220)
	for i := range idx {
		idx[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestSpreadGreedy(pool, idx, 10)
	}
}
