package ensemble

import (
	"fmt"
	"sort"

	"gcbench/internal/behavior"
)

// maxExhaustivePool bounds the pool size for exact subset enumeration
// (2^22 subset DFS nodes stay well under a second).
const maxExhaustivePool = 22

// BestSpreadExhaustive finds, for every size 1..maxSize, the subset of
// pool[idx] with maximum spread, by a single DFS over all subsets with an
// incrementally maintained pairwise-distance sum. Exact, usable for the
// single-algorithm pools of Figure 14 (20 runs each). Returns best[k] for
// ensemble size k (best[0] and best[1] are trivial).
func BestSpreadExhaustive(pool []behavior.Vector, idx []int, maxSize int) ([][]int, error) {
	n := len(idx)
	if n > maxExhaustivePool {
		return nil, fmt.Errorf("ensemble: pool of %d too large for exhaustive search (max %d)", n, maxExhaustivePool)
	}
	if maxSize > n {
		maxSize = n
	}
	// Pairwise distances within the pool.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = behavior.Distance(pool[idx[i]], pool[idx[j]])
		}
	}
	bestSum := make([]float64, maxSize+1)
	bestSet := make([][]int, maxSize+1)
	for k := range bestSum {
		bestSum[k] = -1
	}
	cur := make([]int, 0, maxSize)
	var dfs func(start int, sum float64)
	dfs = func(start int, sum float64) {
		k := len(cur)
		if k >= 1 && sum > bestSum[k] {
			bestSum[k] = sum
			bestSet[k] = append([]int(nil), cur...)
		}
		if k == maxSize {
			return
		}
		for j := start; j < n; j++ {
			add := 0.0
			for _, i := range cur {
				add += dist[i][j]
			}
			cur = append(cur, j)
			dfs(j+1, sum+add)
			cur = cur[:len(cur)-1]
		}
	}
	dfs(0, 0)

	out := make([][]int, maxSize+1)
	for k := 1; k <= maxSize; k++ {
		set := make([]int, len(bestSet[k]))
		for i, j := range bestSet[k] {
			set[i] = idx[j]
		}
		out[k] = set
	}
	return out, nil
}

// BestSpreadGreedy grows an ensemble by repeatedly adding the candidate
// maximizing the resulting spread, then refines each size with pairwise
// exchange (ImproveSpreadExchange). Used for pools too large to enumerate
// (the unrestricted 215-run corpus of Figure 18). Returns best[k] for
// k = 1..maxSize.
func BestSpreadGreedy(pool []behavior.Vector, idx []int, maxSize int) [][]int {
	n := len(idx)
	if maxSize > n {
		maxSize = n
	}
	out := make([][]int, maxSize+1)
	if n == 0 || maxSize == 0 {
		return out
	}

	// Start from the farthest pair (or the single first point for k=1).
	var a, b int
	bestD := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := behavior.Distance(pool[idx[i]], pool[idx[j]]); d > bestD {
				bestD, a, b = d, i, j
			}
		}
	}
	out[1] = []int{idx[a]}

	members := []int{a, b}
	// distSum[j] = Σ_{i∈members} d(j, i) for every pool element.
	distSum := make([]float64, n)
	for j := 0; j < n; j++ {
		distSum[j] = behavior.Distance(pool[idx[j]], pool[idx[a]]) +
			behavior.Distance(pool[idx[j]], pool[idx[b]])
	}
	inSet := make([]bool, n)
	inSet[a], inSet[b] = true, true
	pairSum := bestD

	emit := func(k int) {
		set := make([]int, len(members))
		for i, j := range members {
			set[i] = idx[j]
		}
		out[k] = ImproveSpreadExchange(pool, set, idx)
	}
	if maxSize >= 2 {
		emit(2)
	}
	for k := 3; k <= maxSize; k++ {
		bestJ, bestAdd := -1, -1.0
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			// Adding j: new mean = (pairSum + distSum[j]) / C(k,2).
			if distSum[j] > bestAdd {
				bestAdd, bestJ = distSum[j], j
			}
		}
		if bestJ < 0 {
			break
		}
		inSet[bestJ] = true
		members = append(members, bestJ)
		pairSum += distSum[bestJ]
		for j := 0; j < n; j++ {
			distSum[j] += behavior.Distance(pool[idx[j]], pool[idx[bestJ]])
		}
		emit(k)
	}
	return out
}

// ImproveSpreadExchange refines an ensemble by swapping members with
// outside candidates while any swap improves spread. Deterministic:
// candidates are scanned in order and the best single swap is applied per
// pass, up to a fixed pass budget.
func ImproveSpreadExchange(pool []behavior.Vector, members, candidates []int) []int {
	cur := append([]int(nil), members...)
	curSpread := SpreadOf(pool, cur)
	inSet := make(map[int]bool, len(cur))
	for _, m := range cur {
		inSet[m] = true
	}
	const maxPasses = 20
	for pass := 0; pass < maxPasses; pass++ {
		bestGain := 1e-12
		bestPos, bestCand := -1, -1
		for pos := range cur {
			for _, cand := range candidates {
				if inSet[cand] {
					continue
				}
				old := cur[pos]
				cur[pos] = cand
				s := SpreadOf(pool, cur)
				cur[pos] = old
				if gain := s - curSpread; gain > bestGain {
					bestGain, bestPos, bestCand = gain, pos, cand
				}
			}
		}
		if bestPos < 0 {
			break
		}
		delete(inSet, cur[bestPos])
		inSet[bestCand] = true
		curSpread += bestGain
		cur[bestPos] = bestCand
	}
	sort.Ints(cur)
	return cur
}

// BestCoverageGreedy grows an ensemble by repeatedly adding the candidate
// that maximizes coverage, using incremental min-distance maintenance.
// Greedy is the standard near-optimal heuristic for this k-median-style
// objective. Returns best[k] for k = 1..maxSize.
func BestCoverageGreedy(cov *CoverageEstimator, pool []behavior.Vector, idx []int, maxSize int) [][]int {
	n := len(idx)
	if maxSize > n {
		maxSize = n
	}
	out := make([][]int, maxSize+1)
	var members []int
	var minDist []float64
	inSet := make([]bool, n)
	for k := 1; k <= maxSize; k++ {
		bestJ := -1
		bestCov := -1.0
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			if c := cov.CoverageWith(minDist, pool[idx[j]]); c > bestCov {
				bestCov, bestJ = c, j
			}
		}
		if bestJ < 0 {
			break
		}
		inSet[bestJ] = true
		members = append(members, idx[bestJ])
		minDist = cov.MinDistances(minDist, []behavior.Vector{pool[idx[bestJ]]})
		set := append([]int(nil), members...)
		sort.Ints(set)
		out[k] = set
	}
	return out
}
